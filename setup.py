"""Legacy setup shim.

The reference environment is offline and lacks the ``wheel`` package, so a
PEP 517 editable install cannot build. Keeping this ``setup.py`` (and no
``[build-system]`` table in pyproject.toml) lets ``pip install -e .`` fall
back to ``setup.py develop``, which works everywhere.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Clonos reproduction: consistent causal recovery for highly-available "
        "streaming dataflows, on a simulated distributed stream processor"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
