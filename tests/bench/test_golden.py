"""The determinism gate behind the perf overhaul.

Byte-for-byte regression pins: the golden workload's kernel schedule hash,
sink output, and trace export must match the digests recorded on the
pre-optimisation tree.  Any kernel/record-path change that reorders, adds,
or drops events fails here — being faster is only legal if the simulation
is unchanged.
"""

import pytest

from repro.bench.golden import EXPECTED, check_goldens, run_golden
from repro.trace import profiling


@pytest.mark.parametrize("label", sorted(EXPECTED))
def test_golden_digests_are_byte_identical(label):
    assert run_golden(label) == EXPECTED[label]


def test_check_goldens_reports_clean():
    assert check_goldens() == []


def test_profiler_is_passive():
    # The sim-aware profiler hooks the kernel's dispatch loop; attaching it
    # must not perturb the schedule, the outputs, or the trace: wall-clock
    # readings stay outside the sim.  Same digests with and without.
    with profiling() as profilers:
        digests = run_golden("clonos")
    assert profilers, "golden run should have built profiled environments"
    assert digests == EXPECTED["clonos"]
    # The profiler counts only events that dispatched callbacks (tombstoned
    # wake-ups are hashed by the tracer but never timed), so its step count
    # trails the schedule's slightly but can never exceed it.
    merged_steps = sum(p.steps for p in profilers)
    assert 0 < merged_steps <= EXPECTED["clonos"].kernel_steps
