"""Unit tests for the perf-suite bookkeeping (no suites are run here)."""

from repro.bench.perf import BASELINE, SUITES, SuiteResult, perf_payload


def test_suites_cover_the_baseline():
    assert set(BASELINE) == set(SUITES)


def test_records_per_wall_second():
    result = SuiteResult(name="fig5", wall_clock_s=2.0, simulated_records=144000)
    assert result.records_per_wall_second == 72000.0


def test_perf_payload_shape():
    results = [
        SuiteResult(name="fig5", wall_clock_s=2.0, simulated_records=144000),
        SuiteResult(name="fig6-multi", wall_clock_s=50.0, simulated_records=140000),
    ]
    payload = perf_payload(results, golden_failures=[])
    assert payload["bench"] == "perf"
    assert payload["golden_ok"] is True
    assert payload["total_wall_clock_s"] == 52.0
    fig5 = payload["suites"]["fig5"]
    assert fig5["simulated_records"] == 144000
    assert fig5["records_per_wall_second"] == 72000.0
    assert fig5["baseline_wall_clock_s"] == BASELINE["fig5"]
    assert fig5["speedup_vs_baseline"] == round(BASELINE["fig5"] / 2.0, 2)
    # The headline number: combined speedup over the pinned baseline.
    expected_total = BASELINE["fig5"] + BASELINE["fig6-multi"]
    assert payload["baseline_total_wall_clock_s"] == expected_total
    assert payload["speedup_vs_baseline"] == round(expected_total / 52.0, 2)


def test_perf_payload_reports_golden_drift():
    payload = perf_payload([], golden_failures=["clonos: schedule_hash drifted"])
    assert payload["golden_ok"] is False
    assert payload["golden_failures"] == ["clonos: schedule_hash drifted"]
