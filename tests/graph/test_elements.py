"""Tests for stream element semantics."""

from repro.graph.elements import (
    CheckpointBarrier,
    EndOfStream,
    StreamRecord,
    Watermark,
)


def test_record_kind_flags():
    record = StreamRecord(1)
    assert record.is_record and not record.is_watermark and not record.is_barrier
    wm = Watermark(1.0)
    assert wm.is_watermark and not wm.is_record
    barrier = CheckpointBarrier(1)
    assert barrier.is_barrier and not barrier.is_record


def test_record_equality_ignores_created_at():
    a = StreamRecord(1, timestamp=2.0, key="k", created_at=0.5)
    b = StreamRecord(1, timestamp=2.0, key="k", created_at=9.9)
    assert a == b
    assert hash(a) == hash(b)


def test_record_with_value_inherits_metadata():
    base = StreamRecord(1, timestamp=2.0, key="k", created_at=0.5)
    derived = base.with_value(99)
    assert derived.value == 99
    assert derived.timestamp == 2.0
    assert derived.key == "k"
    assert derived.created_at == 0.5
    rekeyed = base.with_value(99, key="other")
    assert rekeyed.key == "other"


def test_control_element_equality():
    assert Watermark(3.0) == Watermark(3.0)
    assert Watermark(3.0) != Watermark(4.0)
    assert CheckpointBarrier(1) == CheckpointBarrier(1)
    assert CheckpointBarrier(1) != CheckpointBarrier(2)
    assert EndOfStream() == EndOfStream()


def test_elements_are_hashable():
    seen = {StreamRecord(1), Watermark(1.0), CheckpointBarrier(1), EndOfStream()}
    assert len(seen) == 4


def test_reprs_are_informative():
    assert "StreamRecord" in repr(StreamRecord(1, key="k"))
    assert "Watermark" in repr(Watermark(1.0))
    assert "CheckpointBarrier" in repr(CheckpointBarrier(2))
    assert "EndOfStream" in repr(EndOfStream())
