"""Tests for operator chaining (fusion)."""

from collections import Counter

import pytest

from repro.config import FaultToleranceMode
from repro.external.kafka import DurableLog
from repro.graph.fusion import ChainedOperator, fuse
from repro.graph.logical import JobGraphBuilder
from repro.operators import (
    CountAggregator,
    EventTimeWindowOperator,
    FilterOperator,
    KafkaSink,
    KafkaSource,
    KeyedCounterOperator,
    MapOperator,
)
from repro.runtime.jobmanager import JobManager
from repro.sim.core import Environment

from tests.operators.helpers import OperatorHarness
from tests.runtime.helpers import make_config, sink_values


def pipeline_graph(log, parallelism=2):
    """src -> map -> filter -> (keyBy) count -> format -> sink:
    map+filter chain; count+format+sink chain."""
    builder = JobGraphBuilder("fusable")
    stream = builder.source("src", lambda: KafkaSource(log, "in"),
                            parallelism=parallelism)
    doubled = stream.process("double", lambda: MapOperator(lambda v: v * 2))
    kept = doubled.process("keep", lambda: FilterOperator(lambda v: v % 4 == 0))
    counted = kept.key_by(lambda v: v % 5).process(
        "count", lambda: KeyedCounterOperator()
    )
    shaped = counted.process("shape", lambda: MapOperator(lambda kv: kv))
    shaped.sink("sink", lambda: KafkaSink(log, "out"))
    return builder.build()


class TestFuseRewrite:
    def test_chains_are_merged(self):
        log = DurableLog()
        log.create_generated_topic("in", 2, lambda p, off: off, 1000.0, 10)
        log.create_topic("out", 2)
        graph = pipeline_graph(log)
        fused = fuse(graph)
        names = {node.name for node in fused.nodes}
        assert names == {"src", "double+keep", "count+shape+sink", }
        assert fused.depth == 2
        # The hash edge survives; forward edges inside chains are gone.
        assert len(fused.edges) == 2

    def test_sources_are_not_fused(self):
        log = DurableLog()
        log.create_generated_topic("in", 2, lambda p, off: off, 1000.0, 10)
        log.create_topic("out", 2)
        fused = fuse(pipeline_graph(log))
        src = fused.node_by_name("src")
        assert src.is_source and "+" not in src.name

    def test_fan_out_blocks_fusion(self):
        log = DurableLog()
        log.create_generated_topic("in", 1, lambda p, off: off, 1000.0, 10)
        log.create_topic("out", 1)
        builder = JobGraphBuilder("fanout")
        src = builder.source("src", lambda: KafkaSource(log, "in"))
        mid = src.process("mid", lambda: MapOperator(lambda v: v))
        mid.process("a", lambda: MapOperator(lambda v: v)).sink(
            "sa", lambda: KafkaSink(log, "out"))
        mid.process("b", lambda: MapOperator(lambda v: v)).sink(
            "sb", lambda: KafkaSink(log, "out"))
        fused = fuse(builder.build())
        # mid has two outputs: it must not fuse with either branch head,
        # but each branch fuses with its sink.
        names = {node.name for node in fused.nodes}
        assert "mid" in names
        assert "a+sa" in names and "b+sb" in names


class TestChainedOperatorUnit:
    def test_cascade_through_stages(self):
        chained = ChainedOperator(
            [MapOperator(lambda v: v + 1), FilterOperator(lambda v: v % 2 == 0)]
        )
        h = OperatorHarness(chained)
        for v in range(4):
            h.send(v)
        assert h.values == [2, 4]

    def test_state_names_do_not_collide(self):
        chained = ChainedOperator([KeyedCounterOperator(), KeyedCounterOperator()])
        h = OperatorHarness(chained)
        h.send(1, key="k")
        # Stage 0 emits ("k", 1); stage 1 counts that record independently.
        assert h.values == [(None, 1)] or h.values == [("k", 1)]
        names = set(h.backend._tables)
        assert names == {"chain0.count", "chain1.count"}

    def test_snapshot_restore_per_stage(self):
        first = KeyedCounterOperator()
        chained = ChainedOperator([first, MapOperator(lambda v: v)])
        h = OperatorHarness(chained)
        h.send(1, key="k")
        state = chained.snapshot()
        restored = ChainedOperator([KeyedCounterOperator(), MapOperator(lambda v: v)])
        restored.restore(state)
        assert restored.operators[0] is not first

    def test_windows_inside_chain_fire_via_routed_timers(self):
        chained = ChainedOperator(
            [
                MapOperator(lambda v: v),
                EventTimeWindowOperator(
                    10.0, CountAggregator(), result_fn=lambda k, w, c: ("win", c)
                ),
            ]
        )
        h = OperatorHarness(chained)
        h.send("x", timestamp=1.0, key="k")
        h.send("y", timestamp=2.0, key="k")
        h.advance_watermark(10.0)
        assert h.values == [("win", 2)]

    def test_determinism_flag_aggregates(self):
        from repro.operators import ProcessOperator

        det = ChainedOperator([MapOperator(lambda v: v)])
        assert det.deterministic
        nondet = ChainedOperator(
            [MapOperator(lambda v: v), ProcessOperator(lambda r, c: None)]
        )
        assert not nondet.deterministic


class TestFusedExecution:
    def run_job(self, fused: bool, kill: bool = False):
        env = Environment()
        log = DurableLog()
        log.create_generated_topic("in", 2, lambda p, off: off, 1500.0, 2000)
        log.create_topic("out", 2)
        graph = pipeline_graph(log)
        if fused:
            graph = fuse(graph)
        config = make_config(FaultToleranceMode.CLONOS, checkpoint_interval=0.4)
        jm = JobManager(env, graph, config)
        jm.deploy()
        if kill:
            # Kill a non-sink chain: sink-task failures duplicate external
            # appends by design (the §5.5 output-commit problem).
            victim = "double+keep[0]" if fused else "keep[0]"
            env.schedule_callback(0.6, lambda: jm.kill_task(victim))
        jm.run_until_done(limit=300)
        return Counter(sink_values(log)), jm

    def test_fused_output_matches_unfused(self):
        fused_counts, _ = self.run_job(fused=True)
        plain_counts, _ = self.run_job(fused=False)
        assert fused_counts == plain_counts

    def test_fused_job_uses_fewer_tasks(self):
        _c1, jm_fused = self.run_job(fused=True)
        _c2, jm_plain = self.run_job(fused=False)
        assert len(jm_fused.vertices) < len(jm_plain.vertices)

    def test_fused_task_recovers_exactly_once(self):
        baseline, _ = self.run_job(fused=True)
        with_failure, jm = self.run_job(fused=True, kill=True)
        assert jm.failures_injected
        assert with_failure == baseline
