"""Tests for job graph construction and validation."""

import pytest

from repro.errors import JobError
from repro.graph.logical import FORWARD, HASH, JobGraphBuilder
from repro.operators import MapOperator


def noop_factory():
    return MapOperator(lambda v: v)


def test_linear_graph_depth_and_order():
    builder = JobGraphBuilder("linear")
    (
        builder.source("src", noop_factory, parallelism=2)
        .process("a", noop_factory)
        .process("b", noop_factory)
        .sink("out", noop_factory)
    )
    graph = builder.build()
    assert graph.depth == 3
    assert [n.name for n in graph.topological_order()] == ["src", "a", "b", "out"]
    assert graph.total_tasks == 8


def test_key_by_sets_hash_edge():
    builder = JobGraphBuilder("keyed")
    src = builder.source("src", noop_factory, parallelism=2)
    src.key_by(lambda v: v).process("agg", noop_factory).sink("out", noop_factory)
    graph = builder.build()
    edge = graph.node_by_name("agg").inputs[0]
    assert edge.partitioning == HASH
    assert edge.key_selector(42) == 42


def test_forward_edge_requires_equal_parallelism():
    builder = JobGraphBuilder("bad")
    src = builder.source("src", noop_factory, parallelism=2)
    with pytest.raises(JobError):
        src.process("a", noop_factory, parallelism=3)


def test_two_input_connect():
    builder = JobGraphBuilder("join")
    left = builder.source("left", noop_factory).key_by(lambda v: v)
    right = builder.source("right", noop_factory).key_by(lambda v: v)
    joined = builder.connect(left, right, "join", noop_factory)
    joined.sink("out", noop_factory)
    graph = builder.build()
    join_node = graph.node_by_name("join")
    assert [e.input_index for e in join_node.inputs] == [0, 1]
    assert graph.depth == 2


def test_diamond_depth_is_longest_path():
    builder = JobGraphBuilder("diamond")
    src = builder.source("src", noop_factory)
    short = src.rebalance().process("short", noop_factory)
    long1 = src.rebalance().process("l1", noop_factory)
    long2 = long1.rebalance().process("l2", noop_factory)
    builder.connect(short.rebalance(), long2.rebalance(), "merge", noop_factory)
    graph = builder.build()
    assert graph.depth == 3


def test_duplicate_names_rejected():
    builder = JobGraphBuilder("dup")
    builder.source("x", noop_factory)
    with pytest.raises(JobError):
        builder.source("x", noop_factory)


def test_graph_without_source_rejected():
    builder = JobGraphBuilder("empty")
    with pytest.raises(JobError):
        builder.build()


def test_hash_edge_without_selector_rejected():
    from repro.graph.logical import LogicalEdge, LogicalNode

    a = LogicalNode(0, "a", noop_factory, 1, is_source=True)
    b = LogicalNode(1, "b", noop_factory, 1)
    with pytest.raises(JobError):
        LogicalEdge(a, b, HASH)
