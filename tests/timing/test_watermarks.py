"""Tests for watermark tracking and generation."""

import pytest

from repro.timing import SourceWatermarkGenerator, WatermarkTracker


def test_tracker_takes_min_across_channels():
    tracker = WatermarkTracker(2)
    assert tracker.update(0, 10.0) is None  # channel 1 still at -inf
    assert tracker.update(1, 5.0) == 5.0
    assert tracker.current == 5.0
    assert tracker.update(0, 12.0) is None  # min still 5
    assert tracker.update(1, 8.0) == 8.0


def test_tracker_ignores_regressing_watermark():
    tracker = WatermarkTracker(1)
    assert tracker.update(0, 10.0) == 10.0
    assert tracker.update(0, 4.0) is None
    assert tracker.current == 10.0


def test_tracker_snapshot_restore():
    tracker = WatermarkTracker(2)
    tracker.update(0, 10.0)
    tracker.update(1, 7.0)
    snap = tracker.snapshot()
    fresh = WatermarkTracker(2)
    fresh.restore(snap)
    assert fresh.current == 7.0
    with pytest.raises(ValueError):
        WatermarkTracker(3).restore(snap)


def test_generator_applies_lateness_bound():
    gen = SourceWatermarkGenerator(lateness=2.0, interval=0.1)
    gen.observe(10.0)
    assert gen.next_watermark() == 8.0
    assert gen.next_watermark() is None  # no progress, no emission
    gen.observe(9.0)  # out-of-order: max unchanged
    assert gen.next_watermark() is None
    gen.observe(13.0)
    assert gen.next_watermark() == 11.0


def test_generator_snapshot_restore():
    gen = SourceWatermarkGenerator(2.0, 0.1)
    gen.observe(10.0)
    gen.next_watermark()
    snap = gen.snapshot()
    fresh = SourceWatermarkGenerator(2.0, 0.1)
    fresh.restore(snap)
    assert fresh.next_watermark() is None
    fresh.observe(20.0)
    assert fresh.next_watermark() == 18.0
