"""Tests for the timer service."""

from repro.sim import Environment
from repro.timing import TimerService


def test_processing_timer_becomes_due_at_fire_time():
    env = Environment()
    svc = TimerService(env)
    svc.register_processing_timer(5.0, key="k", namespace="n")
    env.run(until=4.9)
    assert not svc.has_due()
    env.run(until=5.1)
    assert svc.has_due()
    timer = svc.pop_due()
    assert timer.key == "k"
    assert timer.fire_time == 5.0


def test_cancelled_processing_timer_never_fires():
    env = Environment()
    svc = TimerService(env)
    timer = svc.register_processing_timer(5.0, key="k", namespace="n")
    svc.cancel(timer.timer_id)
    env.run(until=10)
    assert not svc.has_due()


def test_idempotent_reregistration_with_same_id():
    env = Environment()
    svc = TimerService(env)
    first = svc.register_processing_timer(5.0, "k", "n", timer_id="t1")
    second = svc.register_processing_timer(7.0, "k", "n", timer_id="t1")
    assert first is second
    env.run(until=10)
    assert svc.has_due()
    svc.pop_due()
    assert not svc.has_due()


def test_event_timers_fire_on_watermark_in_time_order():
    env = Environment()
    svc = TimerService(env)
    svc.register_event_timer(10.0, "k", "w")
    svc.register_event_timer(5.0, "k", "w")
    svc.register_event_timer(20.0, "k", "w")
    fired = svc.advance_watermark(12.0)
    assert [t.fire_time for t in fired] == [5.0, 10.0]
    assert svc.advance_watermark(12.0) == []
    assert [t.fire_time for t in svc.advance_watermark(25.0)] == [20.0]


def test_suspended_timers_are_parked_then_armed():
    env = Environment()
    svc = TimerService(env)
    svc.suspend()
    svc.register_processing_timer(1.0, "k", "n")
    env.run(until=2.0)
    assert not svc.has_due()  # parked, not armed
    svc.arm_parked()
    env.run(until=2.1)
    assert svc.has_due()  # overdue timer fired immediately on arming


def test_force_fire_removes_timer_from_future_arming():
    env = Environment()
    svc = TimerService(env)
    svc.suspend()
    timer = svc.register_processing_timer(1.0, "k", "n")
    fired = svc.force_fire(timer.timer_id)
    assert fired is timer
    svc.arm_parked()
    env.run(until=5)
    assert not svc.has_due()


def test_snapshot_restore_preserves_timers():
    env = Environment()
    svc = TimerService(env)
    svc.register_processing_timer(5.0, "k", "n", timer_id="p1")
    svc.register_event_timer(9.0, "k", "w", timer_id="e1")
    snap = svc.snapshot()

    restored = TimerService(env)
    restored.restore(snap)
    assert restored.suspended
    fired_event = restored.advance_watermark(10.0)
    assert [t.timer_id for t in fired_event] == ["e1"]
    restored.arm_parked()
    env.run(until=6)
    assert restored.has_due()
    assert restored.pop_due().timer_id == "p1"


def test_due_signal_pulses_waiters():
    env = Environment()
    svc = TimerService(env)
    woken = []

    def waiter():
        yield svc.due_signal.wait()
        woken.append(env.now)

    env.process(waiter())
    svc.register_processing_timer(3.0, "k", "n")
    env.run()
    assert woken == [3.0]
