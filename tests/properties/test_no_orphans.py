"""Property-based tests of the Figure-4 / Section 5.3 recovery analysis.

Random DAGs, random failure sets, random sharing depths — checking the
always-no-orphans discipline:

* with full sharing, no single-failure scenario ever orphans;
* a connected chain of concurrent failures no longer than the DSD never
  forces a global rollback (the `f` of Section 5.4);
* classification is exactly the predicate of Equation 2/3.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dsd import (
    RecoveryCase,
    classify_failed_task,
    downstream_within,
    holders_of,
    longest_failed_chain,
    requires_global_rollback,
    transitive_downstream,
)


@st.composite
def dags(draw, max_nodes=8):
    """A random DAG over nodes n0..nk with edges only forward (i -> j, i<j)."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    names = [f"n{i}" for i in range(n)]
    adjacency = {name: [] for name in names}
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                adjacency[names[i]].append(names[j])
    return adjacency


@st.composite
def dag_with_failures(draw):
    adjacency = draw(dags())
    names = sorted(adjacency)
    failed = draw(
        st.sets(st.sampled_from(names), min_size=1, max_size=len(names))
    )
    dsd = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=6)))
    return adjacency, failed, dsd


@given(dag_with_failures())
@settings(max_examples=300, deadline=None)
def test_classification_matches_equation(case):
    """ORPHANED  <=>  Log(e) ⊆ F  and  Depend(e) ⊄ F."""
    adjacency, failed, dsd = case
    for task in failed:
        holders = holders_of(adjacency, task, dsd)
        dependents = transitive_downstream(adjacency, task)
        verdict = classify_failed_task(adjacency, failed, task, dsd)
        if holders - failed:
            assert verdict is RecoveryCase.WITH_DETERMINANTS
        elif dependents <= failed:
            assert verdict is RecoveryCase.FREE
        else:
            assert verdict is RecoveryCase.ORPHANED


@given(dags(), st.integers(min_value=0, max_value=7))
@settings(max_examples=200, deadline=None)
def test_full_sharing_never_orphans_any_single_failure(adjacency, index):
    names = sorted(adjacency)
    task = names[index % len(names)]
    assert (
        classify_failed_task(adjacency, {task}, task, dsd=None)
        is not RecoveryCase.ORPHANED
    )


@given(dag_with_failures())
@settings(max_examples=300, deadline=None)
def test_chains_within_dsd_never_roll_back_globally(case):
    """Section 5.4: DSD = f tolerates any f consecutive concurrent failures."""
    adjacency, failed, dsd = case
    if dsd is None:
        assert not requires_global_rollback(adjacency, failed, None)
        return
    if dsd >= 1 and longest_failed_chain(adjacency, failed) <= dsd:
        assert not requires_global_rollback(adjacency, failed, dsd)


@given(dag_with_failures())
@settings(max_examples=200, deadline=None)
def test_orphanhood_is_monotone_in_dsd(case):
    """Sharing deeper can only help: if DSD=k has no orphans, neither does
    DSD=k+1 (holders grow monotonically with depth)."""
    adjacency, failed, dsd = case
    if dsd is None or dsd >= 6:
        return
    if not requires_global_rollback(adjacency, failed, dsd):
        assert not requires_global_rollback(adjacency, failed, dsd + 1)
        assert not requires_global_rollback(adjacency, failed, None)


@given(dags(), st.integers(min_value=1, max_value=6))
@settings(max_examples=200, deadline=None)
def test_downstream_within_is_monotone_and_bounded(adjacency, hops):
    for task in adjacency:
        nearer = downstream_within(adjacency, task, hops)
        farther = downstream_within(adjacency, task, hops + 1)
        assert nearer <= farther
        assert farther <= transitive_downstream(adjacency, task)
