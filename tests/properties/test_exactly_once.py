"""The headline property, tested property-style: for random workloads,
failure times, victims, and checkpoint cadences, Clonos recovery is
exactly-once — even with nondeterministic operators.
"""

from collections import Counter

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.config import FaultToleranceMode
from repro.external.kafka import DurableLog
from repro.graph.logical import JobGraphBuilder
from repro.operators import KafkaSink, KafkaSource, Operator
from repro.runtime.jobmanager import JobManager
from repro.sim.core import Environment

from tests.runtime.helpers import make_config, sink_values


class NondetFanout(Operator):
    deterministic = False

    def process(self, record, ctx):
        copies = 1 + int(ctx.services.random() * 2)
        for copy_index in range(copies):
            ctx.collect((record.value, copy_index, copies))


@st.composite
def scenarios(draw):
    return dict(
        n_records=draw(st.integers(min_value=800, max_value=2000)),
        kill_at=draw(st.floats(min_value=0.15, max_value=0.9)),
        victim=draw(st.sampled_from(["src[0]", "mid[0]", "mid[1]"])),
        checkpoint_interval=draw(st.sampled_from([0.2, 0.35, 0.5])),
        seed=draw(st.integers(min_value=0, max_value=10**6)),
    )


@given(scenarios())
# Pinned regression: killing a fan-in peer just after it forwards a barrier
# its siblings have already aligned on downstream used to deadlock the job —
# the sinks' alignment held the live channels' credits, the blocked
# backpressure wedged the common upstream mid-send, and the wedged upstream
# could then never serve the replacement's replay request.  Fixed by
# cancelling the (already aborted) alignment when the replacement reconnects
# (StreamTask.on_upstream_reconnected).
@example(
    dict(
        n_records=981,
        kill_at=0.3515625,
        victim="mid[0]",
        checkpoint_interval=0.35,
        seed=0,
    )
)
@settings(max_examples=12, deadline=None)
def test_clonos_exactly_once_everywhere(params):
    env = Environment()
    log = DurableLog()
    log.create_generated_topic(
        "in", 1, lambda p, off: off, 2000.0, params["n_records"]
    )
    log.create_topic("out", 1)
    config = make_config(
        FaultToleranceMode.CLONOS,
        checkpoint_interval=params["checkpoint_interval"],
    )
    config.seed = params["seed"]
    builder = JobGraphBuilder("prop")
    stream = builder.source("src", lambda: KafkaSource(log, "in"))
    mid = stream.key_by(lambda v: v % 5).process(
        "mid", NondetFanout, parallelism=2
    )
    mid.key_by(lambda v: v[0] % 2).sink(
        "sink", lambda: KafkaSink(log, "out"), parallelism=2
    )
    jm = JobManager(env, builder.build(), config)
    jm.deploy()
    env.schedule_callback(
        params["kill_at"], lambda: jm.kill_task(params["victim"])
    )
    jm.run_until_done(limit=600)

    by_input = {}
    for input_id, copy_index, copies in sink_values(log):
        by_input.setdefault(input_id, []).append((copy_index, copies))
    assert set(by_input) == set(range(params["n_records"])), "records lost"
    for input_id, entries in by_input.items():
        copies = entries[0][1]
        assert sorted(e[0] for e in entries) == list(range(copies)), (
            f"input {input_id}: duplicates or divergent regeneration {entries}"
        )
