"""Property-based tests on the core data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.causal_log import EpochLog
from repro.core.determinants import TimestampDeterminant
from repro.graph.elements import StreamRecord
from repro.net.partitioner import HashPartitioner, RebalancePartitioner, stable_hash
from repro.net.serialization import payload_size
from repro.operators.window import EventTimeWindowOperator, CountAggregator
from repro.sim import Environment, Store
from repro.timing.watermarks import WatermarkTracker


# -- causal log merge ---------------------------------------------------------


@st.composite
def delta_schedules(draw):
    """A ground-truth log plus a sequence of (base, end) slices every one of
    which starts at or before the receiver's current frontier (FIFO channels
    guarantee this: you can re-receive, but never skip ahead)."""
    n = draw(st.integers(min_value=1, max_value=30))
    truth = [TimestampDeterminant(float(i)) for i in range(n)]
    slices = []
    frontier = 0
    for _ in range(draw(st.integers(min_value=1, max_value=12))):
        base = draw(st.integers(min_value=0, max_value=frontier))
        end = draw(st.integers(min_value=base, max_value=n))
        slices.append((base, end))
        frontier = max(frontier, end)
    return truth, slices


@given(delta_schedules())
@settings(max_examples=200, deadline=None)
def test_merge_slices_yield_exact_prefix(case):
    truth, slices = case
    log = EpochLog()
    frontier = 0
    for base, end in slices:
        log.merge_slice(0, base, truth[base:end])
        frontier = max(frontier, end)
        # Invariant: the stored entries are exactly the longest prefix seen.
        assert log.entries(0) == truth[:frontier]


# -- partitioners -------------------------------------------------------------


@given(st.one_of(st.integers(), st.text(), st.tuples(st.integers(), st.text())))
@settings(max_examples=200, deadline=None)
def test_stable_hash_is_deterministic_and_64bit(key):
    assert stable_hash(key) == stable_hash(key)
    assert 0 <= stable_hash(key) < 2**64


@given(
    st.lists(st.integers(), min_size=1, max_size=50),
    st.integers(min_value=1, max_value=16),
)
@settings(max_examples=100, deadline=None)
def test_hash_partitioner_in_range_and_stable(keys, channels):
    part = HashPartitioner()
    for key in keys:
        record = StreamRecord(key, key=key)
        first = part.select(record, channels)
        assert first == part.select(record, channels)
        assert all(0 <= c < channels for c in first)


@given(
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=1, max_value=200),
)
@settings(max_examples=100, deadline=None)
def test_rebalance_is_fair(channels, n_records):
    part = RebalancePartitioner()
    counts = [0] * channels
    for i in range(n_records):
        [target] = part.select(StreamRecord(i), channels)
        counts[target] += 1
    assert max(counts) - min(counts) <= 1


# -- serialization ------------------------------------------------------------


@given(
    st.recursive(
        st.one_of(st.none(), st.booleans(), st.integers(), st.floats(allow_nan=False),
                  st.text(max_size=40), st.binary(max_size=40)),
        lambda children: st.one_of(
            st.lists(children, max_size=5),
            st.dictionaries(st.text(max_size=8), children, max_size=5),
        ),
        max_leaves=20,
    )
)
@settings(max_examples=200, deadline=None)
def test_payload_size_is_positive_and_deterministic(value):
    size = payload_size(value)
    assert size >= 1
    assert payload_size(value) == size


# -- watermark tracker ---------------------------------------------------------


@given(
    st.integers(min_value=1, max_value=5),
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=4),
                  st.floats(min_value=-1e6, max_value=1e6)),
        max_size=60,
    ),
)
@settings(max_examples=200, deadline=None)
def test_watermark_never_regresses(channels, updates):
    tracker = WatermarkTracker(channels)
    last = tracker.current
    for channel, ts in updates:
        tracker.update(channel % channels, ts)
        assert tracker.current >= last
        last = tracker.current


# -- windows ---------------------------------------------------------------------


@given(
    st.floats(min_value=0.0, max_value=1e6),
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=1, max_value=20),
)
@settings(max_examples=200, deadline=None)
def test_sliding_window_assignment_covers_timestamp(ts, size_steps, slide_steps):
    size = size_steps * 0.5
    slide = min(slide_steps * 0.5, size)
    op = EventTimeWindowOperator(size, CountAggregator(), slide=slide)
    windows = op._assigned_windows(ts)
    assert windows, "every timestamp belongs to at least one window"
    for window in windows:
        assert window.start <= ts < window.end
        assert abs((window.end - window.start) - size) < 1e-9
    # Expected multiplicity: ceil(size / slide) windows cover each instant.
    expected = int(size / slide + 0.5)
    assert abs(len(windows) - expected) <= 1


# -- store FIFO -------------------------------------------------------------------


@given(st.lists(st.integers(), max_size=60), st.integers(min_value=1, max_value=8))
@settings(max_examples=100, deadline=None)
def test_store_preserves_fifo_under_bounded_capacity(items, capacity):
    env = Environment()
    store = Store(env, capacity=capacity)
    received = []

    def producer():
        for item in items:
            yield store.put(item)

    def consumer():
        for _ in items:
            value = yield store.get()
            received.append(value)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert received == items
