"""ND107 honours inline suppression anywhere in a multi-line construct,
and duplicate findings across the file/graph engines collapse."""

from repro.analysis import dedupe_reports, lint_file

SNAPSHOT_SET_ITERATION = """
class Op:
    def __init__(self):
        self.items = []

    def snapshot(self):
        return {
            value
            for value in self.items  # ndlint: disable=ND107
        }

    def snapshot_state(self):
        return {
            value
            for value in self.items
        }
"""


def test_nd107_suppressed_set_iteration_in_snapshot_method(tmp_path):
    # Regression: the disable comment sits on an *interior* line of the
    # multi-line set comprehension; before RawFinding carried end_lineno the
    # engine only consulted the construct's first line and missed it.
    path = tmp_path / "op.py"
    path.write_text(SNAPSHOT_SET_ITERATION)
    report = lint_file(path)
    flagged = [f for f in report.findings if f.rule.rule_id == "ND107"]
    suppressed = [f for f in report.suppressed if f.rule.rule_id == "ND107"]
    assert len(suppressed) == 1, report.render()
    assert len(flagged) == 1  # the uncommented twin still fires
    assert flagged[0].line > suppressed[0].line


def test_nd107_suppression_on_single_line_still_works(tmp_path):
    path = tmp_path / "op.py"
    path.write_text(
        "class Op:\n"
        "    def snapshot(self):\n"
        "        return {1, 2, 3}  # ndlint: disable=ND107\n"
    )
    report = lint_file(path)
    assert not [f for f in report.findings if f.rule.rule_id == "ND107"]
    assert [f for f in report.suppressed if f.rule.rule_id == "ND107"]


def test_dedupe_reports_drops_cross_engine_duplicates(tmp_path):
    # The same file swept twice (as `lint all` does when a graph UDF lives
    # in an already-linted module) reports each finding once.
    path = tmp_path / "op.py"
    path.write_text(
        "import time\n\n\ndef op(record, ctx):\n    ctx.collect(time.time())\n"
    )
    first, second = lint_file(path), lint_file(path)
    assert first.findings and second.findings
    dedupe_reports([first, second])
    assert len(first.findings) == 1
    assert second.findings == []


def test_dedupe_reports_keeps_distinct_findings(tmp_path):
    a, b = tmp_path / "a.py", tmp_path / "b.py"
    a.write_text("import time\n\n\ndef op(r, ctx):\n    ctx.collect(time.time())\n")
    b.write_text("import time\n\n\ndef op(r, ctx):\n    ctx.collect(time.time())\n")
    ra, rb = lint_file(a), lint_file(b)
    dedupe_reports([ra, rb])
    assert ra.findings and rb.findings  # different files: both stay
