"""CLI exit-code tests for ``repro lint`` / ``repro sanitize``."""

from pathlib import Path

from repro.cli import main

from tests.analysis import fixture_udfs as fx

FIXTURE_FILE = str(Path(fx.__file__))


def test_lint_all_shipped_code_is_clean(capsys):
    assert main(["lint", "all"]) == 0
    out = capsys.readouterr().out
    assert "ndlint" in out and "0 errors" in out


def test_lint_flags_fixture_file(capsys):
    assert main(["lint", FIXTURE_FILE]) == 1
    out = capsys.readouterr().out
    assert "ND101" in out and "ND103" in out


def test_lint_strict_fails_on_warnings(tmp_path, capsys):
    warn_only = tmp_path / "warn_only.py"
    warn_only.write_text(
        "def op(record, ctx):\n"
        "    for item in {1, 2, 3}:\n"
        "        ctx.collect(item)\n"
    )
    assert main(["lint", str(warn_only)]) == 0
    assert main(["lint", "--strict", str(warn_only)]) == 1


def test_lint_single_query(capsys):
    assert main(["lint", "q5"]) == 0
    assert "nexmark-q5" in capsys.readouterr().out


def test_lint_unknown_target(capsys):
    assert main(["lint", "nonsense"]) == 2
    assert "unknown lint target" in capsys.readouterr().err


def test_sanitize_unknown_target(capsys):
    assert main(["sanitize", "nonsense"]) == 2
    assert "unknown sanitize target" in capsys.readouterr().err
