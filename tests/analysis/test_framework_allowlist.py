"""The framework allowlist exempts exactly the profiler's wall-clock reads —
nothing else, nowhere else."""

from pathlib import Path

import repro.trace.profiler as profiler_module
from repro.analysis import lint_file
from repro.analysis.rules import FRAMEWORK_ALLOWLIST, allowlisted_calls

PROFILER_FILE = Path(profiler_module.__file__)


def test_profiler_module_lints_clean():
    report = lint_file(PROFILER_FILE)
    assert report.findings == []
    assert report.ok(strict=True)


def test_allowlist_matches_by_path_suffix():
    allowed = allowlisted_calls(str(PROFILER_FILE))
    assert "time.perf_counter_ns" in allowed
    assert allowlisted_calls("repro/trace/profiler.py") == allowed
    assert allowlisted_calls("repro\\trace\\profiler.py") == allowed


def test_other_modules_get_no_exemption():
    assert allowlisted_calls("src/repro/trace/events.py") == frozenset()
    assert allowlisted_calls("user_code/profiler.py") == frozenset()


def test_wall_clock_still_flagged_outside_the_allowlist(tmp_path):
    # The same call the profiler is allowed to make stays an ND101 error in
    # any non-allowlisted file.
    bad = tmp_path / "user_op.py"
    bad.write_text(
        "import time\n\n\ndef measure():\n    return time.perf_counter()\n"
    )
    report = lint_file(bad)
    assert not report.ok()
    assert any(f.rule.rule_id == "ND101" for f in report.errors)


def test_allowlist_stays_minimal():
    # Guard against the exemption quietly growing: one file, wall-clock
    # reads only.
    assert set(FRAMEWORK_ALLOWLIST) == {"repro/trace/profiler.py"}
    assert FRAMEWORK_ALLOWLIST["repro/trace/profiler.py"] <= {
        "time.perf_counter",
        "time.perf_counter_ns",
    }
