"""UDF fixtures for the NDLint tests.

Each ``bad_*`` function exhibits exactly the nondeterminism its name says;
each ``good_*`` function is the causally-loggable rewrite the rule's
remediation asks for.  The linter reads this file's source, so keep each
violation on its own line.
"""

import os
import random
import time


def bad_wall_clock(record, ctx):
    ctx.collect((record.value, time.time()))


def good_wall_clock(record, ctx):
    ctx.collect((record.value, ctx.services.timestamp()))


def bad_rng(record, ctx):
    if random.random() < 0.5:
        ctx.collect(record.value)


def good_rng(record, ctx):
    if ctx.services.random() < 0.5:
        ctx.collect(record.value)


#: Swapped in by tests that actually run these UDFs.
_EXTERNAL_SERVICE = None


def bad_external(record, ctx):
    ctx.collect(_EXTERNAL_SERVICE.get_now(record.value))


def good_external(record, ctx):
    ctx.collect(
        ctx.services.custom(
            "risk", lambda key: _EXTERNAL_SERVICE.get_now(key), record.value
        )
    )


def bad_unordered(record, ctx):
    for item in {record.value, record.value * 2, -record.value}:
        ctx.collect(item)


def good_unordered(record, ctx):
    for item in sorted({record.value, record.value * 2, -record.value}):
        ctx.collect(item)


def make_bad_closure_counter():
    counts = {}

    def op(record, ctx):
        counts[record.value] = counts.get(record.value, 0) + 1
        ctx.collect((record.value, counts[record.value]))

    return op


def make_bad_nonlocal_counter():
    total = 0

    def op(record, ctx):
        nonlocal total
        total += 1
        ctx.collect((record.value, total))

    return op


def bad_ambient(record, ctx):
    ctx.collect((record.value, os.getenv("HOSTNAME", "?")))


def suppressed_wall_clock(record, ctx):
    ctx.collect((record.value, time.time()))  # ndlint: disable=wall-clock


class BadSnapshotKeys:
    """ND107: persists a hash-ordered projection of its keyed state, so the
    same logical state serializes (and fingerprints) differently per run."""

    def __init__(self):
        self.seen = {}

    def process(self, record, ctx):
        self.seen[record.value] = True
        ctx.collect(record.value)

    def snapshot(self):
        return {"seen": set(self.seen)}

    def restore(self, state):
        self.seen = dict.fromkeys(state["seen"], True)


class BadDigestWriter:
    """ND107 twice over: a hash() of a frozenset, both process-dependent."""

    def __init__(self):
        self.channels = []

    def snapshot_state(self):
        return {"digest": hash(frozenset(self.channels))}


class GoodSnapshotKeys:
    """The ND107 remediation: persist a sorted projection."""

    def __init__(self):
        self.seen = {}

    def snapshot(self):
        return {"seen": sorted(set(self.seen))}

    def restore(self, state):
        self.seen = dict.fromkeys(state["seen"], True)
