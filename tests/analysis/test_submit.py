"""Submission-path tests: ``JobManager.submit(lint=...)`` gates deployment
on the NDLint verdict."""

import pytest

from repro import Environment, FaultToleranceMode, JobConfig, JobGraphBuilder, JobManager
from repro.errors import DeterminismViolation, JobError, LintError
from repro.external.kafka import DurableLog
from repro.operators import KafkaSink, KafkaSource, ProcessOperator

from tests.analysis import fixture_udfs as fx


def _job(udf):
    env = Environment()
    log = DurableLog()
    log.create_generated_topic("in", 1, lambda p, off: off, 2000.0, 200)
    log.create_topic("out", 1)
    builder = JobGraphBuilder("lintjob")
    stream = builder.source("src", lambda: KafkaSource(log, "in"))
    stream.key_by(lambda v: v % 2).process("op", lambda: ProcessOperator(udf)).key_by(
        lambda v: 0
    ).sink("snk", lambda: KafkaSink(log, "out"))
    config = JobConfig(mode=FaultToleranceMode.CLONOS, checkpoint_interval=0.5)
    return env, log, JobManager(env, builder.build(), config)


def test_strict_submit_rejects_wall_clock_udf():
    _env, _log, jm = _job(fx.bad_wall_clock)
    with pytest.raises(DeterminismViolation) as excinfo:
        jm.submit(lint="strict")
    exc = excinfo.value
    assert exc.rule_id == "ND101"
    assert "fixture_udfs.py" in exc.location
    assert "ctx.services.timestamp()" in exc.hint
    assert exc.findings
    # Structured errors still form one hierarchy.
    assert isinstance(exc, LintError)


def test_strict_submit_accepts_sanctioned_udf():
    env, log, jm = _job(fx.good_wall_clock)
    report = jm.submit(lint="strict")
    assert report.ok(strict=False)
    jm.run_until_done(limit=120)
    assert list(log.read_all("out"))


def test_warn_submit_deploys_despite_findings(capsys):
    env, _log, jm = _job(fx.bad_wall_clock)
    report = jm.submit(lint="warn")
    assert report.errors
    assert "ND101" in capsys.readouterr().err
    # Deployment went ahead: the job can run to completion.
    jm.run_until_done(limit=120)


def test_off_submit_skips_linting():
    _env, _log, jm = _job(fx.bad_wall_clock)
    assert jm.submit(lint="off") is None
    assert jm.lint_report is None


def test_unknown_lint_policy_rejected():
    _env, _log, jm = _job(fx.good_wall_clock)
    with pytest.raises(JobError):
        jm.submit(lint="loose")


def test_static_gate_runs_the_causal_analyzer_on_submit():
    _env, _log, jm = _job(fx.good_wall_clock)
    jm.submit(lint="off", static="strict")
    assert jm.static_report is not None
    assert jm.static_report.ok  # the shipped tree passes its own gate
    assert jm.static_report.stats["modules"] > 50


def test_static_off_skips_the_causal_analyzer():
    _env, _log, jm = _job(fx.good_wall_clock)
    jm.submit(lint="off", static="off")
    assert jm.static_report is None


def test_unknown_static_policy_rejected():
    _env, _log, jm = _job(fx.good_wall_clock)
    with pytest.raises(JobError):
        jm.submit(static="loose")
