"""Runtime sanitizer tests: schedule hashing, double-run divergence
detection, and the online protocol invariants."""

import importlib.util
from pathlib import Path

from repro.analysis import SANITIZER, double_run
from repro.analysis.sanitizer import combined_digest, traced_environments
from repro.sim.core import Environment

EXAMPLES = Path(__file__).parents[2] / "examples"


def _mini_sim(delay=0.1):
    env = Environment()

    def proc(env):
        for _ in range(5):
            yield env.timeout(delay)

    env.process(proc(env), name="worker")
    env.run()


def test_tracer_hashes_schedule():
    with traced_environments() as tracers:
        _mini_sim()
    (tracer,) = tracers
    assert tracer.steps > 0
    assert len(tracer.entries) == tracer.steps
    assert tracer.entries[0][3] in ("", "worker")
    assert len(tracer.digest()) == 16  # blake2b(digest_size=8) hex


def test_tracer_detached_outside_context():
    with traced_environments():
        pass
    assert Environment().tracer is None


def test_double_run_deterministic():
    report = double_run(_mini_sim, label="mini")
    assert report.deterministic and report.ok
    assert report.hash_a == report.hash_b
    assert report.environments == 1
    assert "MATCH" in report.render()


def test_double_run_reports_first_divergence():
    calls = []

    def drifting():
        calls.append(None)
        _mini_sim(delay=0.1 * len(calls))

    report = double_run(drifting, label="drift")
    assert not report.deterministic
    assert report.hash_a != report.hash_b
    assert report.divergence is not None
    rendered = report.divergence.render()
    assert "run A" in rendered and "run B" in rendered
    assert "NONDETERMINISM" in report.render()


def test_combined_digest_covers_all_environments():
    with traced_environments() as run_a:
        _mini_sim()
        _mini_sim()
    assert len(run_a) == 2
    assert combined_digest(run_a) != run_a[0].digest()


# -- protocol invariants -------------------------------------------------------


def test_fifo_violation_only_when_strict():
    with SANITIZER.armed():
        SANITIZER.on_buffer("map[0]", 0, seq=1, strict=True)
        SANITIZER.on_buffer("map[0]", 0, seq=1, strict=True)  # duplicate
        assert [v.check for v in SANITIZER.violations] == ["fifo-seq"]
    with SANITIZER.armed():
        SANITIZER.on_buffer("map[0]", 0, seq=2, strict=False)
        SANITIZER.on_buffer("map[0]", 0, seq=1, strict=False)  # SEEP re-delivery
        assert SANITIZER.violations == []


def test_task_restart_resets_fifo_tracking():
    with SANITIZER.armed():
        SANITIZER.on_buffer("map[0]", 0, seq=7, strict=True)
        SANITIZER.on_task_start("map[0]")  # standby takes over, replays
        SANITIZER.on_buffer("map[0]", 0, seq=1, strict=True)
        assert SANITIZER.violations == []


def test_epoch_regression_detected():
    with SANITIZER.armed():
        SANITIZER.on_barrier("snk[0]", 0, 3)
        SANITIZER.on_barrier("snk[0]", 0, 3)  # same epoch twice is fine
        SANITIZER.on_barrier("snk[0]", 0, 2)  # regression is not
        assert [v.check for v in SANITIZER.violations] == ["epoch-monotonic"]


def test_replay_provenance_accounting():
    with SANITIZER.armed():
        SANITIZER.on_replay_loaded("map[0]", 2)
        SANITIZER.on_replay_consumed("map[0]")
        SANITIZER.on_replay_consumed("map[0]")
        assert SANITIZER.violations == []
        SANITIZER.on_replay_consumed("map[0]")  # one more than the bundle held
        assert [v.check for v in SANITIZER.violations] == ["replay-provenance"]


def test_sanitizer_disabled_hooks_are_noops():
    assert not SANITIZER.enabled
    SANITIZER.reset()  # violations stay readable after armed() exits; clear them
    SANITIZER.on_buffer("x", 0, 1, strict=True)
    SANITIZER.on_buffer("x", 0, 1, strict=True)
    assert SANITIZER.violations == []


# -- the acceptance check: quickstart is deterministic under failure -----------


def test_quickstart_double_run_identical_hashes():
    spec = importlib.util.spec_from_file_location(
        "example_quickstart_sanitize", EXAMPLES / "quickstart.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    report = double_run(
        lambda: module.run(kill_the_counter=True), label="quickstart", keep_trace=False
    )
    assert report.hash_a == report.hash_b
    assert report.ok, report.render()
