"""The causal allowlist stays minimal and every entry justifies itself."""

import pytest

from repro.analysis.causal.allowlist import (
    CAUSAL_ALLOWLIST,
    Exemption,
    exemption_for,
    partition,
)
from repro.analysis.causal.model import CausalFinding, FlowStep, ND_STATE


def _finding(file="src/repro/trace/profiler.py", symbol="Profiler.lap"):
    return CausalFinding(
        rule=ND_STATE,
        file=file,
        line=10,
        message="test finding",
        path=(FlowStep(file, 10, "source"),),
        symbol=symbol,
    )


def test_allowlist_stays_minimal():
    # Guard against the exemption set quietly growing: the tree is clean
    # without any, so the seeded set is exactly empty.  Adding an entry
    # means editing this test — a reviewed decision.
    assert CAUSAL_ALLOWLIST == ()


def test_every_entry_carries_a_reason():
    for entry in CAUSAL_ALLOWLIST:
        assert entry.reason.strip(), f"unreasoned allowlist entry: {entry}"


def test_unreasoned_exemption_cannot_be_constructed():
    with pytest.raises(ValueError, match="non-empty reason"):
        Exemption("ND201", "trace/profiler.py", "", "")
    with pytest.raises(ValueError, match="non-empty reason"):
        Exemption("ND201", "trace/profiler.py", "", "   ")


def test_exemption_matches_rule_suffix_and_symbol():
    entry = Exemption(
        "ND201", "trace/profiler.py", "Profiler", "profiler timings are observability-only"
    )
    assert entry.matches(_finding())
    assert not entry.matches(_finding(file="src/repro/runtime/task.py"))
    assert not entry.matches(_finding(symbol="Other.method"))
    other_rule = _finding()
    assert exemption_for(other_rule, allowlist=(entry,)) is entry
    assert exemption_for(other_rule, allowlist=()) is None


def test_partition_moves_matches_to_exempted_with_reason():
    entry = Exemption(
        "ND201", "trace/profiler.py", "", "profiler timings are observability-only"
    )
    live_finding = _finding(file="src/repro/runtime/task.py")
    exempt_finding = _finding()
    live, exempted = partition([exempt_finding, live_finding], allowlist=(entry,))
    assert live == [live_finding]
    assert exempted == [(exempt_finding, entry)]
    assert exempted[0][1].reason
