"""Shared fixture: build a synthetic mini-package on disk and analyze it.

The causal analyzer parses sources from disk and never imports them, so
tests write small module trees into ``tmp_path`` and run
:func:`repro.analysis.causal.analyze_tree` directly over them.
"""

from pathlib import Path
from typing import Dict, Tuple

import pytest

from repro.analysis.causal import analyze_tree


@pytest.fixture
def mini_tree(tmp_path):
    """``mini_tree(files)`` writes ``files`` under a ``mini/`` package and
    returns the analyzer report (allowlist off, so tests see raw findings)."""

    def build(
        files: Dict[str, str],
        consumer_suffixes: Tuple[str, ...] = ("consumer.py",),
    ):
        root = tmp_path / "mini"
        root.mkdir(exist_ok=True)
        for name, text in files.items():
            path = root / name
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text)
        return analyze_tree(
            root,
            package="mini",
            consumer_suffixes=consumer_suffixes,
            use_allowlist=False,
        )

    return build


def rule_ids(report):
    return [f.rule.rule_id for f in report.findings]


def findings_of(report, rule_id):
    return [f for f in report.findings if f.rule.rule_id == rule_id]
