"""Exit codes and report formats of ``repro verify-static``.

The determinism-tooling convention: 0 clean, 1 findings, 2 internal/usage
error — shared with ``repro lint``.
"""

import json

from repro.cli import main

BAD_OP = """
import time


class WindowOp:
    def __init__(self):
        self.last_seen = 0.0

    def process(self, record, ctx):
        self.last_seen = time.time()

    def snapshot(self):
        return {"last_seen": self.last_seen}
"""


def _bad_tree(tmp_path):
    root = tmp_path / "badpkg"
    root.mkdir()
    (root / "ops.py").write_text(BAD_OP)
    return root


def test_shipped_tree_exits_zero(capsys):
    assert main(["verify-static"]) == 0
    out = capsys.readouterr().out
    assert "status: clean" in out


def test_findings_exit_one_with_file_line_paths(tmp_path, capsys):
    assert main(["verify-static", str(_bad_tree(tmp_path))]) == 1
    out = capsys.readouterr().out
    assert "ND201" in out
    assert "ops.py" in out
    # Human report numbers the flow path steps with file:line anchors.
    assert "1. " in out and ":" in out


def test_json_report_parses(tmp_path, capsys):
    assert main(["verify-static", "--json", str(_bad_tree(tmp_path))]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["counts"]["ND201"] >= 1
    assert all(f["path"] for f in payload["findings"])


def test_missing_directory_exits_two(capsys):
    assert main(["verify-static", "/no/such/tree"]) == 2
    assert "not a directory" in capsys.readouterr().err


def test_bench_file_records_wall_clock_and_counts(tmp_path, capsys):
    bench = tmp_path / "BENCH_static.json"
    assert main(
        ["verify-static", "--bench", str(bench), str(_bad_tree(tmp_path))]
    ) == 1
    payload = json.loads(bench.read_text())
    assert payload["bench"] == "verify-static"
    assert payload["ok"] is False
    assert payload["counts_by_rule"]["ND201"] >= 1
    assert payload["findings"] >= 1
    assert payload["wall_clock_s"] > 0
    assert payload["modules"] >= 1 and payload["functions"] >= 1


def test_parse_error_in_tree_is_a_finding_not_a_crash(tmp_path, capsys):
    root = tmp_path / "broken"
    root.mkdir()
    (root / "oops.py").write_text("def f(:\n")
    assert main(["verify-static", str(root)]) == 1
    out = capsys.readouterr().out
    assert "parse errors" in out
