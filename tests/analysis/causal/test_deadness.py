"""ND203: determinant kinds recorded but never consumed on replay."""

from tests.analysis.causal.conftest import findings_of

DETS = """
class Determinant:
    kind = "base"


class ShinyDeterminant(Determinant):
    kind = "shiny"


class UsefulDeterminant(Determinant):
    kind = "useful"
"""

RECORDER = """
from mini.dets import ShinyDeterminant, UsefulDeterminant


class Recorder:
    def __init__(self, log):
        self.log = log

    def record(self, value):
        self.log.append_main(ShinyDeterminant())
        self.log.append_main(UsefulDeterminant())
"""

CONSUMER_USEFUL_ONLY = """
def replay(entry):
    if entry.kind == "useful":
        return entry.value
    return None
"""


def test_recorded_but_never_replayed_is_dead(mini_tree):
    report = mini_tree(
        {
            "dets.py": DETS,
            "recorder.py": RECORDER,
            "consumer.py": CONSUMER_USEFUL_ONLY,
        }
    )
    hits = findings_of(report, "ND203")
    assert len(hits) == 1, report.render()
    finding = hits[0]
    assert finding.symbol == "ShinyDeterminant"
    # Anchored at the recording site, not the class definition.
    assert finding.file.endswith("recorder.py")
    assert any(step.file.endswith("dets.py") for step in finding.path)


def test_kind_literal_in_consumer_counts_as_replayed(mini_tree):
    consumer = CONSUMER_USEFUL_ONLY + '\n\ndef also(entry):\n    return entry.kind == "shiny"\n'
    report = mini_tree(
        {"dets.py": DETS, "recorder.py": RECORDER, "consumer.py": consumer}
    )
    assert findings_of(report, "ND203") == [], report.render()


def test_class_reference_in_consumer_counts_as_replayed(mini_tree):
    consumer = (
        "import mini.dets\n\n\n"
        "def replay(entry):\n"
        "    return isinstance(entry, mini.dets.ShinyDeterminant) or "
        'entry.kind == "useful"\n'
    )
    report = mini_tree(
        {"dets.py": DETS, "recorder.py": RECORDER, "consumer.py": consumer}
    )
    assert findings_of(report, "ND203") == [], report.render()


def test_never_recorded_kind_is_not_flagged(mini_tree):
    # A defined-but-unused determinant class records nothing, so nothing
    # piggybacks and there is nothing to replay: not a finding.
    report = mini_tree({"dets.py": DETS, "consumer.py": CONSUMER_USEFUL_ONLY})
    assert findings_of(report, "ND203") == [], report.render()


def test_import_only_reference_does_not_count_as_replay(mini_tree):
    # Importing the class in a consumer without ever touching it is not
    # consumption — the import line is excluded from the vocabulary.
    consumer = "from mini.dets import ShinyDeterminant\n" + CONSUMER_USEFUL_ONLY
    report = mini_tree(
        {"dets.py": DETS, "recorder.py": RECORDER, "consumer.py": consumer}
    )
    hits = findings_of(report, "ND203")
    assert [f.symbol for f in hits] == ["ShinyDeterminant"], report.render()
