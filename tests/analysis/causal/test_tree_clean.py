"""The acceptance gate: the shipped tree passes its own causal analyzer."""

from repro.analysis.causal import CAUSAL_RULES, analyze_tree
from repro.analysis.rules import RULES_BY_KEY


def test_shipped_tree_is_clean():
    report = analyze_tree()
    assert report.parse_errors == []
    assert report.findings == [], report.render()
    assert report.ok
    # With an empty allowlist nothing can be exempted either.
    assert report.exempted == []


def test_analyzer_covers_the_real_tree():
    report = analyze_tree()
    # Sanity-check the scan actually saw the runtime, not an empty dir.
    assert report.stats["modules"] > 50
    assert report.stats["functions"] > 500
    assert report.stats["fixpoint_iterations"] >= 1
    assert report.stats["wall_clock_s"] > 0


def test_causal_rules_registered_for_suppression_comments():
    # `# ndlint: disable=ND201` must resolve exactly like ND101..ND107.
    for rule in CAUSAL_RULES:
        assert RULES_BY_KEY[rule.rule_id] is rule
        assert RULES_BY_KEY[rule.name] is rule
