"""ND201/ND202: taint flows from nondeterminism sources to state/output.

Each test builds a synthetic mini-package (see conftest) shaped like the
real runtime: operator classes with ``snapshot`` methods, a causal-log
handle, determinant constructors, and context/writer sinks.
"""

from tests.analysis.causal.conftest import findings_of, rule_ids

BAD_STATE = """
import time


class WindowOp:
    def __init__(self):
        self.last_seen = 0.0

    def process(self, record, ctx):
        self.last_seen = time.time()

    def snapshot(self):
        return {"last_seen": self.last_seen}
"""

BAD_OUTPUT = """
import time


class StampOp:
    def process(self, record, ctx):
        ctx.collect((record, time.time()))
"""

SANITIZED = """
import time


class TimestampDeterminant:
    kind = "timestamp"

    def __init__(self, value):
        self.value = value


class GoodOp:
    def __init__(self, causal):
        self.causal = causal
        self.last_seen = 0.0

    def process(self, record, ctx):
        now = time.time()
        if self.causal is not None:
            self.causal.append_main(TimestampDeterminant(now))
        self.last_seen = now
        ctx.collect((record, now))

    def snapshot(self):
        return {"last_seen": self.last_seen}
"""

INTERPROCEDURAL = """
import random


def draw():
    return random.random()


class SampleOp:
    def __init__(self, backend):
        self.state_backend = backend

    def process(self, record, ctx):
        value = draw()
        self.state_backend.put(record, value)
"""

SEEDED = """
import random


class SeededOp:
    def __init__(self, seed):
        self.rng = random.Random(seed)

    def process(self, record, ctx):
        ctx.collect(self.rng.random())
"""


def test_unlogged_clock_reaches_snapshot_state(mini_tree):
    report = mini_tree({"ops.py": BAD_STATE})
    hits = findings_of(report, "ND201")
    assert hits, report.render()
    finding = hits[0]
    assert finding.file.endswith("ops.py")
    # The flow path names both the source and the sink, with line numbers.
    descriptions = " ".join(step.description for step in finding.path)
    assert "time.time" in descriptions
    assert all(step.line > 0 for step in finding.path)


def test_unlogged_clock_reaches_output(mini_tree):
    report = mini_tree({"ops.py": BAD_OUTPUT})
    hits = findings_of(report, "ND202")
    assert hits, report.render()
    assert hits[0].file.endswith("ops.py")
    assert "ND201" not in rule_ids(report)  # no snapshot method -> no state sink


def test_determinant_logging_sanitizes_the_flow(mini_tree):
    report = mini_tree({"ops.py": SANITIZED})
    assert findings_of(report, "ND201") == [], report.render()
    assert findings_of(report, "ND202") == [], report.render()


def test_interprocedural_rng_through_helper_return(mini_tree):
    report = mini_tree({"ops.py": INTERPROCEDURAL})
    hits = findings_of(report, "ND201")
    assert hits, report.render()
    # The path crosses the helper call: source inside draw(), sink in process.
    descriptions = " ".join(step.description for step in hits[0].path)
    assert "random.random" in descriptions
    assert len(hits[0].path) >= 2


def test_seeded_rng_stream_is_deterministic(mini_tree):
    report = mini_tree({"ops.py": SEEDED})
    assert findings_of(report, "ND202") == [], report.render()


def test_inline_suppression_applies_to_causal_rules(mini_tree):
    suppressed = BAD_STATE.replace(
        "self.last_seen = time.time()",
        "self.last_seen = time.time()  # ndlint: disable=ND201",
    )
    report = mini_tree({"ops.py": suppressed})
    assert findings_of(report, "ND201") == [], report.render()


def test_report_json_carries_flow_paths(mini_tree):
    import json

    report = mini_tree({"ops.py": BAD_STATE})
    payload = json.loads(report.to_json())
    assert payload["ok"] is False
    assert payload["counts"].get("ND201", 0) >= 1
    finding = next(f for f in payload["findings"] if f["rule"] == "ND201")
    assert finding["path"], "JSON findings must carry their flow path"
    assert all(step["line"] > 0 for step in finding["path"])
