"""ND210: phase-begin/phase-end well-nesting on every exit edge."""

from tests.analysis.causal.conftest import findings_of

UNCOVERED_RAISE = """
class Coordinator:
    def __init__(self, trace):
        self.trace = trace

    def _emit(self, kind, **fields):
        self.trace.emit(kind, **fields)

    def step(self, thunk):
        self._emit("phase-begin", phase="restore")
        if thunk is None:
            raise ValueError("no thunk")
        result = thunk()
        self._emit("phase-end", phase="restore", status="ok")
        return result
"""

EARLY_RETURN = """
class Coordinator:
    def _emit(self, kind, **fields):
        pass

    def step(self, ready):
        self._emit("phase-begin", phase="fetch")
        if not ready:
            return None
        self._emit("phase-end", phase="fetch", status="ok")
        return ready
"""

WELL_FORMED = """
class Coordinator:
    def _emit(self, kind, **fields):
        pass

    def step(self, thunk):
        self._emit("phase-begin", phase="restore")
        try:
            result = thunk()
        except TimeoutError:
            self._emit("phase-end", phase="restore", status="timeout")
            return None
        self._emit("phase-end", phase="restore", status="ok")
        return result
"""

MARKER_STYLE = """
class ReplayCoordinator:
    def _emit(self, kind, **fields):
        pass

    def recover(self, victim):
        self._emit("phase-begin", phase="determinant-fetch")
        self._emit("phase-mark", phase="replay")
        self._emit("phase-mark", phase="catch-up")
        return victim
"""

MISMATCHED = """
class Coordinator:
    def _emit(self, kind, **fields):
        pass

    def step(self):
        self._emit("phase-begin", phase="restore")
        self._emit("phase-end", phase="fetch", status="ok")
"""

DYNAMIC_TOKEN = """
class Coordinator:
    def _emit(self, kind, **fields):
        pass

    def step(self, label, thunk):
        self._emit("phase-begin", phase=label)
        try:
            result = thunk()
        finally:
            self._emit("phase-end", phase=label, status="done")
        return result
"""


def test_raise_with_open_phase_is_flagged(mini_tree):
    report = mini_tree({"coord.py": UNCOVERED_RAISE})
    hits = findings_of(report, "ND210")
    assert hits, report.render()
    assert "restore" in hits[0].message
    # The path points back at the phase-begin that stayed open.
    assert any("opened" in step.description for step in hits[0].path)


def test_early_return_with_open_phase_is_flagged(mini_tree):
    report = mini_tree({"coord.py": EARLY_RETURN})
    hits = findings_of(report, "ND210")
    assert hits, report.render()
    assert "fetch" in hits[0].message


def test_every_exit_paired_is_clean(mini_tree):
    report = mini_tree({"coord.py": WELL_FORMED})
    assert findings_of(report, "ND210") == [], report.render()


def test_marker_style_functions_are_not_checked(mini_tree):
    # Begin/mark-only functions delegate closing to the next marker (the
    # PR-5 timeline semantics); only functions emitting phase-end opt in.
    report = mini_tree({"coord.py": MARKER_STYLE})
    assert findings_of(report, "ND210") == [], report.render()


def test_mismatched_tokens_are_flagged(mini_tree):
    report = mini_tree({"coord.py": MISMATCHED})
    hits = findings_of(report, "ND210")
    assert hits, report.render()
    assert "mismatched" in hits[0].message


def test_dynamic_phase_token_matches_by_expression(mini_tree):
    report = mini_tree({"coord.py": DYNAMIC_TOKEN})
    assert findings_of(report, "ND210") == [], report.render()
