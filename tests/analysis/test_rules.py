"""Per-rule NDLint tests: every rule fires on its bad fixture and stays
silent on the sanctioned rewrite."""

from repro.analysis import lint_callable

from tests.analysis import fixture_udfs as fx


def rule_ids(report):
    return {f.rule.rule_id for f in report.findings}


def test_wall_clock_flagged():
    report = lint_callable(fx.bad_wall_clock, target="bad_wall_clock")
    assert rule_ids(report) == {"ND101"}
    (finding,) = report.findings
    assert finding.rule.severity == "error"
    assert finding.rule.determinant == "TimestampDeterminant"
    assert "time.time" in finding.message
    assert finding.file.endswith("fixture_udfs.py")
    assert finding.source_line.strip() in open(finding.file).read()


def test_wall_clock_sanctioned():
    assert lint_callable(fx.good_wall_clock).findings == []


def test_rng_flagged():
    report = lint_callable(fx.bad_rng)
    assert rule_ids(report) == {"ND102"}
    assert report.findings[0].rule.determinant == "RngSeedDeterminant"


def test_rng_sanctioned():
    assert lint_callable(fx.good_rng).findings == []


def test_external_io_flagged():
    report = lint_callable(fx.bad_external)
    assert rule_ids(report) == {"ND103"}
    assert report.findings[0].rule.determinant == "ExternalCallDeterminant"


def test_external_io_inside_services_custom_is_sanctioned():
    assert lint_callable(fx.good_external).findings == []


def test_unordered_iteration_flagged_as_warning():
    report = lint_callable(fx.bad_unordered)
    assert rule_ids(report) == {"ND104"}
    assert report.findings[0].rule.severity == "warning"


def test_sorted_iteration_passes():
    assert lint_callable(fx.good_unordered).findings == []


def test_closure_mutation_flagged():
    op = fx.make_bad_closure_counter()
    report = lint_callable(op)
    assert "ND105" in rule_ids(report)
    assert any("counts" in f.message for f in report.findings)


def test_ambient_environment_flagged():
    report = lint_callable(fx.bad_ambient)
    assert rule_ids(report) == {"ND106"}
    assert report.findings[0].rule.determinant == "CustomDeterminant"


def test_inline_suppression():
    report = lint_callable(fx.suppressed_wall_clock)
    assert report.findings == []
    assert len(report.suppressed) == 1
    assert report.suppressed[0].rule.rule_id == "ND101"
    assert report.ok(strict=True)


def test_nondet_serialization_flagged():
    report = lint_callable(
        fx.BadSnapshotKeys.snapshot, target="BadSnapshotKeys.snapshot"
    )
    assert rule_ids(report) == {"ND107"}
    (finding,) = report.findings
    assert finding.rule.severity == "warning"
    assert "hash" in finding.message


def test_nondet_serialization_hash_digest_flagged():
    report = lint_callable(fx.BadDigestWriter.snapshot_state)
    assert rule_ids(report) == {"ND107"}
    assert len(report.findings) == 2  # hash() and frozenset()


def test_sorted_projection_in_snapshot_passes():
    assert lint_callable(fx.GoodSnapshotKeys.snapshot).findings == []


def test_sets_outside_snapshot_methods_are_not_nd107():
    # bad_unordered builds a set in process logic: ND104's business, not ND107's.
    assert "ND107" not in rule_ids(lint_callable(fx.bad_unordered))


def test_nd107_reached_from_operator_class():
    from repro.analysis.engine import resolve_callables

    targets = dict(resolve_callables(fx.BadSnapshotKeys, "op"))
    assert any(t.endswith("BadSnapshotKeys.snapshot") for t in targets)


def test_report_strictness():
    warn_only = lint_callable(fx.bad_unordered)
    assert warn_only.ok() and not warn_only.ok(strict=True)
    errors = lint_callable(fx.bad_wall_clock)
    assert not errors.ok()
    assert "NOT causally loggable" in errors.summary()
