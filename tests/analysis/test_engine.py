"""NDLint engine tests: callable resolution over job graphs, trust
boundaries, and the whole-file sweep."""

from pathlib import Path

from repro.analysis import lint_file, lint_graph
from repro.analysis.engine import resolve_callables
from repro.graph.logical import JobGraphBuilder
from repro.operators import FlatMapOperator, ProcessOperator

from tests.analysis import fixture_udfs as fx

FIXTURE_FILE = Path(fx.__file__)


class _StubSource:
    def poll(self, ctx):
        return None


def _graph(udf):
    builder = JobGraphBuilder("lint-fixture")
    stream = builder.source("src", lambda: _StubSource())
    stream.key_by(lambda v: v).process("op", lambda: ProcessOperator(udf)).sink(
        "snk", lambda: _StubSource()
    )
    return builder.build()


def test_graph_with_bad_udf_fails():
    report = lint_graph(_graph(fx.bad_wall_clock))
    assert not report.ok()
    (finding,) = report.errors
    assert finding.rule.rule_id == "ND101"
    # The target names the graph element the engine reached the UDF from.
    assert "node 'op' factory" in finding.target
    assert "bad_wall_clock" in finding.target


def test_graph_with_sanctioned_udf_passes():
    report = lint_graph(_graph(fx.good_wall_clock))
    assert report.ok(strict=True)
    assert report.findings == []


def test_resolution_reaches_operator_methods():
    targets = [t for t, _ in resolve_callables(lambda: _StubSource(), "factory")]
    assert any("_StubSource.poll" in t for t in targets)


def test_library_operators_are_trusted():
    # A graph of pure repro.operators callables has no lint surface at all:
    # their nondeterminism already flows through the causal services.
    builder = JobGraphBuilder("trusted")
    stream = builder.source("src", lambda: _StubSource())
    stream.process("split", lambda: FlatMapOperator(str.split)).sink(
        "snk", lambda: _StubSource()
    )
    report = lint_graph(builder.build())
    assert report.ok(strict=True)


def test_bad_key_selector_is_linted(tmp_path):
    fixture = tmp_path / "keyed.py"
    fixture.write_text(
        "import random\n"
        "from repro.graph.logical import JobGraphBuilder\n"
        "class Src:\n"
        "    def poll(self, ctx):\n"
        "        return None\n"
        "def build():\n"
        "    b = JobGraphBuilder('g')\n"
        "    s = b.source('src', lambda: Src())\n"
        "    s.key_by(lambda v: random.randrange(4)).sink('snk', lambda: Src())\n"
        "    return b.build()\n"
    )
    import importlib.util

    spec = importlib.util.spec_from_file_location("keyed_fixture", fixture)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    report = lint_graph(module.build())
    assert {f.rule.rule_id for f in report.errors} == {"ND102"}
    assert any("key_selector" in f.target for f in report.errors)


def test_lint_file_sweeps_whole_module():
    report = lint_file(FIXTURE_FILE)
    ids = {f.rule.rule_id for f in report.findings}
    assert {"ND101", "ND102", "ND103", "ND104", "ND105", "ND106"} <= ids
    assert len(report.suppressed) == 1  # the # ndlint: disable line


def test_lint_file_missing_path_is_unresolved():
    report = lint_file("/nonexistent/nowhere.py")
    assert report.unresolved == ["/nonexistent/nowhere.py"]


def test_duplicate_udfs_reported_once():
    bad = fx.bad_wall_clock
    builder = JobGraphBuilder("dedup")
    stream = builder.source("src", lambda: _StubSource())
    a = stream.process("a", lambda: ProcessOperator(bad))
    a.process("b", lambda: ProcessOperator(bad)).sink("snk", lambda: _StubSource())
    report = lint_graph(builder.build())
    assert len(report.errors) == 1
