"""Tests for the experiment harness and reporters."""

import pytest

from repro.config import FaultToleranceMode
from repro.harness.experiment import run_experiment
from repro.harness.figures import _consistency_of, experiment_config
from repro.harness.reporters import render_series, render_table
from repro.workloads.synthetic import synthetic_chain

from tests.runtime.helpers import fast_cost, make_config


def simple_graph(total=1500):
    def build(log, external):
        return synthetic_chain(
            log,
            depth=3,
            parallelism=1,
            rate_per_partition=2000.0,
            total_per_partition=total,
            out_topic="out",
        )

    return build


class TestRunExperiment:
    def test_finite_run_to_completion(self):
        result = run_experiment(
            simple_graph(), make_config(FaultToleranceMode.CLONOS), limit=120
        )
        assert len(result.output_values()) == 1500
        assert result.duration > 0
        assert result.input_throughput  # source progress was sampled
        assert result.sustained_input_rate(warmup=0.1) > 0

    def test_duration_bounded_run(self):
        def unbounded(log, external):
            return synthetic_chain(
                log,
                depth=3,
                parallelism=1,
                rate_per_partition=2000.0,
                total_per_partition=None,
                out_topic="out",
            )

        result = run_experiment(
            unbounded, make_config(FaultToleranceMode.CLONOS), duration=2.0
        )
        assert result.duration == pytest.approx(2.0, abs=0.2)
        assert result.output_values()

    def test_kills_are_recorded(self):
        result = run_experiment(
            simple_graph(),
            make_config(FaultToleranceMode.CLONOS),
            kills=[(0.3, "stage1[0]")],
            limit=120,
        )
        assert [name for _t, name in result.failures] == ["stage1[0]"]
        assert any(kind == "recovered" for _t, kind, _n in result.recovery_events)

    def test_latency_percentile_accessor(self):
        result = run_experiment(
            simple_graph(), make_config(FaultToleranceMode.CLONOS), limit=120
        )
        assert result.latency_percentile(50) > 0
        assert result.latency_percentile(99) >= result.latency_percentile(50)


class TestConsistencyClassifier:
    def test_clean_output(self):
        values = [(0, 0, 1), (1, 0, 2), (1, 1, 2)]
        assert _consistency_of(values, 2) == (0, 0, 0)

    def test_detects_loss(self):
        assert _consistency_of([(0, 0, 1)], 3) == (2, 0, 0)

    def test_detects_duplicates(self):
        values = [(0, 0, 1), (0, 0, 1)]
        assert _consistency_of(values, 1) == (0, 1, 0)

    def test_detects_contradictory_copies(self):
        # Record 0 claims 2 copies but only copy 0 arrived.
        values = [(0, 0, 2)]
        assert _consistency_of(values, 1) == (0, 0, 1)


class TestReporters:
    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [(1, "xy"), (100, "z")])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)

    def test_render_series_sketch(self):
        series = [(float(t), float(t % 5)) for t in range(50)]
        out = render_series("demo", series, bins=5)
        assert out.count("|") == 2 * 5  # two bars per bin row
        assert "demo" in out

    def test_render_series_empty(self):
        assert "(empty)" in render_series("demo", [])


def test_experiment_config_overrides_costs():
    config = experiment_config(
        FaultToleranceMode.CLONOS, dsd=2, checkpoint_interval=1.0,
        task_deploy_time=42.0,
    )
    assert config.clonos.determinant_sharing_depth == 2
    assert config.cost.task_deploy_time == 42.0
