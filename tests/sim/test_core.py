"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Interrupt


def test_timeout_advances_clock():
    env = Environment()
    seen = []

    def proc():
        yield env.timeout(1.5)
        seen.append(env.now)
        yield env.timeout(0.5)
        seen.append(env.now)

    env.process(proc())
    env.run()
    assert seen == [1.5, 2.0]


def test_run_until_stops_clock_between_events():
    env = Environment()

    def proc():
        yield env.timeout(10.0)

    env.process(proc())
    assert env.run(until=3.0) == 3.0
    assert env.now == 3.0
    env.run()
    assert env.now == 10.0


def test_zero_delay_events_fifo_order():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(0)
        order.append(tag)

    env.process(proc("a"))
    env.process(proc("b"))
    env.process(proc("c"))
    env.run()
    assert order == ["a", "b", "c"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_process_return_value_propagates():
    env = Environment()
    result = []

    def child():
        yield env.timeout(1)
        return 42

    def parent():
        value = yield env.process(child())
        result.append(value)

    env.process(parent())
    env.run()
    assert result == [42]


def test_process_exception_propagates_to_waiter():
    env = Environment()
    caught = []

    def child():
        yield env.timeout(1)
        raise ValueError("boom")

    def parent():
        try:
            yield env.process(child())
        except ValueError as exc:
            caught.append(str(exc))

    env.process(parent())
    env.run()
    assert caught == ["boom"]


def test_unwaited_failed_event_raises():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("lost"))
    with pytest.raises(RuntimeError):
        env.run()


def test_interrupt_delivers_cause():
    env = Environment()
    causes = []

    def victim():
        try:
            yield env.timeout(100)
        except Interrupt as intr:
            causes.append((env.now, intr.cause))

    def killer(proc):
        yield env.timeout(5)
        proc.interrupt("failure")

    victim_proc = env.process(victim())
    env.process(killer(victim_proc))
    env.run()
    assert causes == [(5, "failure")]


def test_interrupt_finished_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(1)

    proc = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_kill_silences_process_without_notifying_waiters():
    env = Environment()
    resumed = []

    def victim():
        yield env.timeout(100)
        resumed.append("victim ran")

    def waiter(proc):
        yield proc
        resumed.append("waiter ran")

    victim_proc = env.process(victim())
    env.process(waiter(victim_proc))
    env.run(until=1)
    victim_proc.kill()
    env.run(until=200)
    assert resumed == []


def test_any_of_returns_first_event():
    env = Environment()
    winners = []

    def proc():
        fast = env.timeout(1, value="fast")
        slow = env.timeout(5, value="slow")
        winner = yield env.any_of([fast, slow])
        winners.append(winner.value)

    env.process(proc())
    env.run()
    assert winners == ["fast"]


def test_all_of_collects_all_values():
    env = Environment()
    results = []

    def proc():
        values = yield env.all_of([env.timeout(1, "a"), env.timeout(2, "b")])
        results.append(values)

    env.process(proc())
    env.run()
    assert results == [["a", "b"]]
    assert env.now == 2


def test_yield_non_event_fails_process():
    env = Environment()

    def bad():
        yield 42

    def parent():
        with pytest.raises(SimulationError):
            yield env.process(bad())

    env.process(parent())
    env.run()


def test_schedule_callback():
    env = Environment()
    fired = []
    env.schedule_callback(3.0, lambda: fired.append(env.now))
    env.run()
    assert fired == [3.0]


def test_determinism_same_program_same_trace():
    def build_trace():
        env = Environment()
        trace = []

        def worker(tag, delay):
            for _ in range(3):
                yield env.timeout(delay)
                trace.append((env.now, tag))

        env.process(worker("x", 1.0))
        env.process(worker("y", 1.5))
        env.run()
        return trace

    assert build_trace() == build_trace()
