"""Edge cases for AnyOf/AllOf conditions and the Signal primitive."""

import pytest

from repro.sim import Environment, Signal


def test_any_of_with_future_timeouts_waits():
    """Regression: a *scheduled* Timeout is triggered-at-birth internally;
    AnyOf must not treat it as already fired."""
    env = Environment()
    seen = []

    def proc():
        winner = yield env.any_of([env.timeout(5, "slow"), env.timeout(2, "fast")])
        seen.append((env.now, winner.value))

    env.process(proc())
    env.run()
    assert seen == [(2, "fast")]


def test_any_of_with_already_processed_event_fires_immediately():
    env = Environment()
    ev = env.event()
    ev.succeed("done")
    env.run()  # process the event so callbacks are consumed
    seen = []

    def proc():
        winner = yield env.any_of([ev, env.timeout(100)])
        seen.append((env.now, winner.value))

    env.process(proc())
    env.run(until=1)
    assert seen == [(0, "done")]


def test_all_of_with_mixed_processed_and_pending():
    env = Environment()
    first = env.event()
    first.succeed("a")
    env.run()
    seen = []

    def proc():
        values = yield env.all_of([first, env.timeout(3, "b")])
        seen.append((env.now, values))

    env.process(proc())
    env.run()
    assert seen == [(3, ["a", "b"])]


def test_all_of_fails_fast_on_child_failure():
    env = Environment()
    failing = env.event()
    caught = []

    def proc():
        try:
            yield env.all_of([failing, env.timeout(100)])
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(proc())
    env.run(until=1)
    failing.fail(RuntimeError("child died"))
    env.run(until=2)
    assert caught == ["child died"]


def test_signal_wakes_all_waiters_once():
    env = Environment()
    signal = Signal(env)
    woken = []

    def waiter(tag):
        yield signal.wait()
        woken.append(tag)

    env.process(waiter("a"))
    env.process(waiter("b"))
    env.run(until=1)
    signal.pulse()
    env.run(until=2)
    assert sorted(woken) == ["a", "b"]
    # A second pulse with no waiters is a no-op.
    signal.pulse()
    env.run(until=3)
    assert sorted(woken) == ["a", "b"]


def test_signal_check_then_wait_has_no_lost_wakeup():
    env = Environment()
    signal = Signal(env)
    items = []
    got = []

    def consumer():
        for _ in range(3):
            while not items:
                yield signal.wait()
            got.append(items.pop(0))

    def producer():
        for i in range(3):
            yield env.timeout(1)
            items.append(i)
            signal.pulse()

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [0, 1, 2]


def test_nested_any_of_conditions():
    env = Environment()
    seen = []

    def proc():
        inner = env.any_of([env.timeout(4, "x"), env.timeout(6, "y")])
        winner = yield env.any_of([inner, env.timeout(10, "z")])
        seen.append(env.now)

    env.process(proc())
    env.run()
    assert seen == [4]


def test_environment_peek_and_empty_step():
    env = Environment()
    assert env.peek() == float("inf")
    from repro.errors import SimulationError

    with pytest.raises(SimulationError):
        env.step()


def test_run_until_past_is_rejected():
    env = Environment()
    env.schedule_callback(5.0, lambda: None)
    env.run(until=5.0)
    from repro.errors import SimulationError

    with pytest.raises(SimulationError):
        env.run(until=1.0)
