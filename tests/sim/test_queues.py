"""Unit tests for Store and Resource primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Resource, Store


def test_store_fifo_order():
    env = Environment()
    got = []

    def producer(store):
        for i in range(5):
            yield store.put(i)

    def consumer(store):
        for _ in range(5):
            item = yield store.get()
            got.append(item)

    store = Store(env)
    env.process(producer(store))
    env.process(consumer(store))
    env.run()
    assert got == [0, 1, 2, 3, 4]


def test_store_get_blocks_until_put():
    env = Environment()
    got = []

    def consumer(store):
        item = yield store.get()
        got.append((env.now, item))

    def producer(store):
        yield env.timeout(7)
        yield store.put("late")

    store = Store(env)
    env.process(consumer(store))
    env.process(producer(store))
    env.run()
    assert got == [(7, "late")]


def test_store_capacity_blocks_putter():
    env = Environment()
    put_times = []

    def producer(store):
        for i in range(3):
            yield store.put(i)
            put_times.append(env.now)

    def consumer(store):
        yield env.timeout(10)
        yield store.get()

    store = Store(env, capacity=2)
    env.process(producer(store))
    env.process(consumer(store))
    env.run()
    # First two puts are immediate; third waits for the get at t=10.
    assert put_times == [0, 0, 10]


def test_store_try_put_and_try_get():
    env = Environment()
    store = Store(env, capacity=1)
    assert store.try_get() is None
    assert store.try_put("a")
    assert not store.try_put("b")
    assert store.try_get() == "a"


def test_store_clear_drops_items_and_admits_putters():
    env = Environment()
    store = Store(env, capacity=1)
    assert store.try_put("a")
    admitted = []

    def producer():
        yield store.put("b")
        admitted.append(env.now)

    env.process(producer())
    env.run(until=1)
    assert store.clear() == ["a"]
    env.run(until=2)
    assert admitted == [1]
    assert list(store.items) == ["b"]


def test_store_cancel_waiters():
    env = Environment()
    store = Store(env)
    failed = []

    def consumer():
        try:
            yield store.get()
        except ConnectionError:
            failed.append(True)

    env.process(consumer())
    env.run(until=1)
    store.cancel_waiters(ConnectionError("torn down"))
    env.run(until=2)
    assert failed == [True]


def test_store_zero_capacity_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        Store(env, capacity=0)


def test_resource_acquire_release_cycle():
    env = Environment()
    pool = Resource(env, capacity=2)
    times = []

    def worker(tag):
        yield pool.acquire()
        times.append((env.now, tag, "acq"))
        yield env.timeout(5)
        pool.release()

    env.process(worker("a"))
    env.process(worker("b"))
    env.process(worker("c"))
    env.run()
    acquire_times = [t for t, _tag, _ in times]
    assert acquire_times == [0, 0, 5]


def test_resource_try_acquire_respects_waiters():
    env = Environment()
    pool = Resource(env, capacity=1)
    assert pool.try_acquire()

    def waiter():
        yield pool.acquire()

    env.process(waiter())
    env.run(until=1)
    # A waiter is queued, so try_acquire must not jump the line even after
    # release makes capacity available again.
    pool.release()
    env.run(until=2)
    assert pool.available == 0
    assert not pool.try_acquire()


def test_resource_over_release_rejected():
    env = Environment()
    pool = Resource(env, capacity=1)
    with pytest.raises(SimulationError):
        pool.release()


def test_resource_resize_grow_admits_waiters():
    env = Environment()
    pool = Resource(env, capacity=1)
    assert pool.try_acquire()
    acquired = []

    def waiter():
        yield pool.acquire()
        acquired.append(env.now)

    env.process(waiter())
    env.run(until=1)
    pool.resize(2)
    env.run(until=2)
    assert acquired == [1]
