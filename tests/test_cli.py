"""Tests for the experiment CLI."""

import pytest

from repro.cli import build_parser, main


def test_parser_knows_all_subcommands():
    parser = build_parser()
    for command in ("fig5", "fig6-single", "fig6-multi", "memory", "table1"):
        args = parser.parse_args([command] if command != "fig6-single" else [command])
        assert callable(args.fn)


def test_fig5_runs_one_query(capsys):
    assert main(["fig5", "--queries", "Q1", "--events", "1500"]) == 0
    out = capsys.readouterr().out
    assert "Figure 5" in out
    assert "Q1" in out
    assert "clonos DSD=1" in out


def test_fig5_rejects_unknown_query(capsys):
    assert main(["fig5", "--queries", "Q99"]) == 2
    assert "unknown queries" in capsys.readouterr().err


def test_table1_prints_matrix(capsys):
    assert main(["table1", "--events", "1200"]) == 0
    out = capsys.readouterr().out
    assert "clonos" in out and "gap_recovery" in out
    assert "exactly-once" in out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
