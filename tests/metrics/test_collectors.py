"""Unit tests for the measurement layer."""

import pytest

from repro.external.kafka import DurableLog
from repro.metrics.collectors import (
    LatencyPoint,
    ThroughputSampler,
    latency_points,
    percentile,
    recovery_time,
    throughput_dip,
)
from repro.operators.sink import SinkEntry
from repro.sim.core import Environment


class TestPercentile:
    def test_empty(self):
        assert percentile([], 50) == 0.0

    def test_median_and_extremes(self):
        values = list(range(1, 102))  # 1..101
        assert percentile(values, 0) == 1
        assert percentile(values, 50) == 51
        assert percentile(values, 100) == 101

    def test_unsorted_input(self):
        assert percentile([5, 1, 3], 50) == 3


class TestThroughputSampler:
    def test_samples_rate_of_new_records(self):
        env = Environment()
        log = DurableLog()
        log.create_topic("out", 1)

        def producer():
            for i in range(100):
                yield env.timeout(0.01)
                log.append("out", 0, env.now, SinkEntry(i, env.now, env.now))

        env.process(producer())
        sampler = ThroughputSampler(env, log, "out", period=0.5)
        env.run(until=1.0)
        sampler.stop()
        # 100 records/s steady rate.
        assert all(abs(s.records_per_second - 100.0) < 10 for s in sampler.samples)
        assert sampler.mean_rate() == pytest.approx(100.0, rel=0.1)

    def test_mean_rate_of_empty_window_is_zero(self):
        env = Environment()
        log = DurableLog()
        log.create_topic("out", 1)
        sampler = ThroughputSampler(env, log, "out", period=0.5)
        env.run(until=2.0)
        sampler.stop()
        assert sampler.samples, "sampler did run"
        # A window past the last sample holds nothing — not a ZeroDivisionError.
        assert sampler.mean_rate(start=100.0, end=200.0) == 0.0
        # Inverted bounds select nothing either.
        assert sampler.mean_rate(start=2.0, end=1.0) == 0.0

    def test_mean_rate_without_any_samples_is_zero(self):
        env = Environment()
        log = DurableLog()
        log.create_topic("out", 1)
        sampler = ThroughputSampler(env, log, "out", period=0.5)
        sampler.stop()  # never advanced the sim: no samples at all
        assert sampler.samples == []
        assert sampler.mean_rate() == 0.0


class TestLatencyPoints:
    def test_uses_created_at_when_present(self):
        log = DurableLog()
        log.create_topic("out", 1)
        log.append("out", 0, 5.0, SinkEntry("v", 4.0, 1.0))
        points = latency_points(log, "out")
        assert points == [LatencyPoint(5.0, 1.0)]

    def test_falls_back_to_event_time(self):
        log = DurableLog()
        log.create_topic("out", 1)
        log.append("out", 0, 5.0, SinkEntry("v", None, 4.5))
        assert latency_points(log, "out") == [LatencyPoint(5.0, 0.5)]

    def test_skips_infinite_event_times(self):
        log = DurableLog()
        log.create_topic("out", 1)
        log.append("out", 0, 5.0, SinkEntry("v", None, float("inf")))
        assert latency_points(log, "out") == []

    def test_points_sorted_by_time_across_partitions(self):
        # Parallel sink subtasks interleave appends out of global time order;
        # recovery_time depends on the points arriving sorted.
        log = DurableLog()
        log.create_topic("out", 2)
        log.append("out", 1, 9.0, SinkEntry("d", 8.0, 8.0))
        log.append("out", 0, 5.0, SinkEntry("a", 4.0, 4.0))
        log.append("out", 1, 3.0, SinkEntry("b", 2.0, 2.0))
        log.append("out", 0, 7.0, SinkEntry("c", 6.0, 6.0))
        points = latency_points(log, "out")
        assert [p.time for p in points] == [3.0, 5.0, 7.0, 9.0]
        assert all(p.latency == pytest.approx(1.0) for p in points)


class TestRecoveryTime:
    def baseline(self, latency=0.01, until=10.0):
        return [LatencyPoint(t / 10.0, latency) for t in range(int(until * 10))]

    def test_zero_when_nothing_exceeds_envelope(self):
        points = self.baseline() + [LatencyPoint(11.0, 0.0101)]
        assert recovery_time(points, failure_time=10.0) == 0.0

    def test_last_late_record_defines_recovery(self):
        points = self.baseline()
        points += [LatencyPoint(10.5, 5.0), LatencyPoint(13.0, 2.0),
                   LatencyPoint(14.0, 0.01)]
        assert recovery_time(points, failure_time=10.0) == pytest.approx(3.0)

    def test_none_without_baseline(self):
        points = [LatencyPoint(11.0, 5.0)]
        assert recovery_time(points, failure_time=10.0) is None

    def test_latency_never_returning_to_baseline(self):
        # Every post-failure point stays above the envelope: recovery time is
        # pinned to the last observation, not None/zero/negative.
        points = self.baseline()
        points += [LatencyPoint(10.0 + 0.5 * i, 2.0 + 0.1 * i) for i in range(1, 9)]
        measured = recovery_time(points, failure_time=10.0)
        assert measured == pytest.approx(4.0)  # last point at t=14.0
        # The measurement is the full observed window, i.e. recovery never
        # completed within it.
        assert measured == pytest.approx(max(p.time for p in points) - 10.0)


class TestThroughputDip:
    def test_baseline_and_worst(self):
        from repro.metrics.collectors import ThroughputSample

        samples = [ThroughputSample(t / 2.0, 100.0) for t in range(20)]
        samples += [ThroughputSample(10.5, 0.0), ThroughputSample(11.0, 50.0)]
        baseline, worst = throughput_dip(samples, failure_time=10.0)
        assert baseline == pytest.approx(100.0)
        assert worst == 0.0
