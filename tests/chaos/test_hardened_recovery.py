"""Hardened recovery supervision: per-step deadlines, the escalation
ladder, graceful degradation to global rollback, deferred kills, and the
suspicion-based failure detector."""

import pytest

from repro.config import RetryPolicy
from repro.errors import FailureInjectionError
from repro.runtime.task import TaskStatus

from tests.chaos.helpers import (
    assert_exactly_once,
    deploy_chaos_chain,
    origin_counts,
)
from tests.runtime.helpers import fast_cost, make_config


def events(jm, prefix, who=None):
    return [
        (t, kind, subject)
        for (t, kind, subject) in jm.recovery_events
        if kind.startswith(prefix) and (who is None or subject == who)
    ]


class TestEscalationLadder:
    def test_step_timeouts_escalate_to_global_rollback(self):
        # A step deadline below the deploy time makes every local attempt
        # time out; the standby is dead so there is no fast path either.
        # The ladder must exhaust, record the degradation, and hand the job
        # to the global-rollback fallback — which completes it.
        config = make_config()
        config.clonos.recovery_step_deadline = 0.05  # < task_deploy_time 0.2
        env, log, jm = deploy_chaos_chain(config=config)
        jm.vertices["stage1[0]"].standby.fail()
        env.schedule_callback(0.25, lambda: jm.kill_task("stage1[0]"))
        jm.run_until_done(limit=60.0)

        assert events(jm, "step-timeout:checkpoint-restore", "stage1[0]")
        retries = events(jm, "recovery-retry:", "stage1[0]")
        assert len(retries) >= 2, "every ladder rung must be recorded"
        assert events(jm, "degraded:global_rollback", "stage1[0]")
        assert events(jm, "global-restart-begin")
        assert events(jm, "global-restart-done")
        # Degraded semantics: at-least-once.  Nothing may be lost; the
        # degradation makes duplicates legal (and the event records it).
        counts = origin_counts(log)
        expected = {(p, o) for p in range(2) for o in range(1200)}
        missing = [pair for pair in expected if counts[pair] == 0]
        assert not missing, f"degraded run lost {len(missing)} records"

    def test_standby_crash_during_activation_escalates_and_recovers(self):
        env, log, jm = deploy_chaos_chain()
        # Let checkpoint 1 complete (t=0.5) so the standby holds a snapshot
        # and the DFS holds a restorable checkpoint.
        env.schedule_callback(0.60, lambda: jm.kill_task("stage1[0]"))
        # Detection fires at 0.62 and the fast-path activation step starts;
        # the standby dies inside that window.
        env.schedule_callback(
            0.63, lambda: jm.vertices["stage1[0]"].standby.fail()
        )
        jm.run_until_done(limit=60.0)
        assert events(jm, "recovery-retry:standby-activation", "stage1[0]")
        assert events(jm, "recovered", "stage1[0]")
        assert not events(jm, "degraded:")
        assert_exactly_once(log, 2, 1200)

    def test_successful_recovery_reprovisions_lost_standby(self):
        env, log, jm = deploy_chaos_chain()
        env.schedule_callback(
            0.58, lambda: jm.vertices["stage1[0]"].standby.fail()
        )
        env.schedule_callback(0.60, lambda: jm.kill_task("stage1[0]"))
        jm.run_until_done(limit=60.0)
        assert events(jm, "recovered", "stage1[0]")
        assert events(jm, "standby-reprovisioned", "stage1[0]")
        standby = jm.vertices["stage1[0]"].standby
        assert standby is not None and not standby.failed
        assert_exactly_once(log, 2, 1200)


class TestFailureDuringRecovery:
    def test_refailure_while_recovering_supersedes_and_completes(self):
        env, log, jm = deploy_chaos_chain()
        env.schedule_callback(0.25, lambda: jm.kill_task("stage1[0]"))
        # 50ms later the first recovery is mid-flight (slow-path deploy
        # takes 0.2s); the second force-kill must supersede it, not race it.
        env.schedule_callback(
            0.30, lambda: jm.kill_task("stage1[0]", force=True)
        )
        jm.run_until_done(limit=60.0)
        assert len([1 for (_t, n) in jm.failures_injected
                    if n == "stage1[0]"]) == 2
        assert events(jm, "recovered", "stage1[0]")
        assert_exactly_once(log, 2, 1200)

    def test_unforced_kill_of_dead_task_waits_for_recovery(self):
        # Without force=True the second kill is not eligible until the task
        # is RUNNING again: it must wait out the recovery, then strike.
        env, log, jm = deploy_chaos_chain()
        env.schedule_callback(0.25, lambda: jm.kill_task("stage1[0]"))
        env.schedule_callback(0.27, lambda: jm.kill_task("stage1[0]"))
        jm.run_until_done(limit=60.0)
        kills = [t for (t, n) in jm.failures_injected if n == "stage1[0]"]
        assert len(kills) == 2
        recovered = events(jm, "recovered", "stage1[0]")
        assert len(recovered) == 2
        assert kills[1] >= recovered[0][0], (
            "deferred kill must wait for the first recovery to finish"
        )
        assert_exactly_once(log, 2, 1200)


class TestKillDeferral:
    def test_killing_finished_task_raises_structured_error(self):
        env, log, jm = deploy_chaos_chain(n_records=100)
        jm.run_until_done(limit=60.0)
        with pytest.raises(FailureInjectionError) as err:
            jm.kill_task("stage1[0]")
        assert "stage1[0]" in str(err.value)
        assert "finished" in str(err.value)

    def test_deferral_deadline_names_victims_actual_status(self):
        config = make_config(cost=fast_cost(kill_deferral_deadline=0.1))
        env, log, jm = deploy_chaos_chain(config=config)
        # Kill the task, then immediately ask for another (unforced) kill:
        # the victim stays un-killable past the tiny deadline because
        # recovery (deploy 0.2s) is still running when it expires.
        env.schedule_callback(0.25, lambda: jm.kill_task("stage1[0]"))
        env.schedule_callback(0.26, lambda: jm.kill_task("stage1[0]"))
        with pytest.raises(FailureInjectionError) as err:
            jm.run_until_done(limit=60.0)
        assert "stage1[0]" in str(err.value)
        assert "0.1" in str(err.value)


class TestSuspicionFailureDetector:
    def test_clean_run_has_no_spurious_failovers(self):
        config = make_config(cost=fast_cost(heartbeat_interval=0.05))
        env, log, jm = deploy_chaos_chain(config=config)
        detector = jm.start_failure_detector()
        jm.run_until_done(limit=60.0)
        assert detector.declared_failed == []
        assert not events(jm, "spurious-failover")
        assert_exactly_once(log, 2, 1200)

    def test_sustained_heartbeat_loss_triggers_failover_after_threshold(self):
        import random

        from repro.chaos.engine import ControlPlaneChaos

        config = make_config(cost=fast_cost(heartbeat_interval=0.05))
        env, log, jm = deploy_chaos_chain(config=config)
        detector = jm.start_failure_detector(threshold=3)
        victim = "stage1[0]"
        # A partial control-plane partition: ONLY the victim's control
        # traffic is lost, for ~6 heartbeat intervals — well past the
        # threshold of consecutive misses.  The rest of the job heartbeats
        # normally, so exactly one task fails over.
        jm.control_chaos = ControlPlaneChaos(
            env, random.Random(2), drop_rate=1.0, start=0.2, until=0.5,
            target=victim,
        )
        jm.run_until_done(limit=60.0)
        assert detector.heartbeats_lost > 0
        assert any(
            missed >= 3
            for (_t, name, missed) in detector.suspicions
            if name == victim
        )
        assert events(jm, "spurious-failover", victim)
        # Only the starved task crosses the threshold; the one-beat loss
        # window never fails anyone over.
        assert [name for (_t, name) in detector.declared_failed] == [victim]
        # The spurious failover is handled like any real one: the victim
        # recovers and the output stays exactly-once.
        assert_exactly_once(log, 2, 1200)

    def test_single_missed_beat_is_forgiven(self):
        config = make_config(cost=fast_cost(heartbeat_interval=0.05))
        env, log, jm = deploy_chaos_chain(config=config)
        detector = jm.start_failure_detector(threshold=3)
        victim = "stage1[0]"
        # Drop exactly one beat by faking a stale timestamp once.
        def lose_one_beat():
            detector.last_beat[victim] -= 0.08

        env.schedule_callback(0.3, lose_one_beat)
        jm.run_until_done(limit=60.0)
        assert detector.declared_failed == []
        assert not events(jm, "spurious-failover")
