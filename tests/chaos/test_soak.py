"""The chaos soak, property-style: random fault schedules against the
recovery protocol.

The acceptance property: every run either preserves the failure-free output
(exactly-once on input origins) or explicitly records its degradation to
global-rollback semantics (at-least-once) — never silent loss, never silent
duplication, never a hang (``run_until_done`` raises on the deadline, which
Hypothesis reports as a failure with the offending seed).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import FaultPlan
from repro.chaos.soak import (
    DEGRADATION_MARKERS,
    chaos_soak,
    fast_chaos_config,
    run_chaos_experiment,
)

LIMIT = 120.0


def describe(result):
    return (
        f"seed {result.seed}: verdict={result.verdict} "
        f"missing={result.missing} duplicated={result.duplicated} "
        f"faults={result.chaos_summary.get('applied')} "
        f"({result.chaos_summary.get('kinds')})"
    )


@given(
    seed=st.integers(min_value=0, max_value=10**6),
    max_faults=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=10, deadline=None)
def test_random_fault_schedules_never_violate(seed, max_faults):
    [result] = chaos_soak([seed], max_faults=max_faults, limit=LIMIT)
    assert result.ok, describe(result)
    assert result.duration < LIMIT
    if result.verdict != "exactly-once":
        # Degradation is only acceptable when announced.
        assert result.degradations, describe(result)


@st.composite
def recovery_overlap_scenarios(draw):
    """Fault schedules aimed at the recovery machinery itself: the standby
    dies right around the kill (standby crash during activation), and a
    second forced kill lands while the first recovery is still running."""
    # The 1200-record default workload drains around t=0.6: keep the kill
    # well inside the run so the victim is never already FINISHED.
    kill_at = draw(st.floats(min_value=0.2, max_value=0.5))
    return dict(
        seed=draw(st.integers(min_value=0, max_value=10**6)),
        victim=draw(st.sampled_from(["stage1[0]", "stage1[1]", "stage2[0]"])),
        kill_at=kill_at,
        # Negative: standby dies before the kill (slow path from the start).
        # Small positive: standby dies inside the activation window.
        standby_delta=draw(st.floats(min_value=-0.05, max_value=0.04)),
        refail_delta=draw(st.floats(min_value=0.02, max_value=0.15)),
        second_kill=draw(st.booleans()),
    )


@given(recovery_overlap_scenarios())
@settings(max_examples=10, deadline=None)
def test_faults_during_ongoing_recovery_never_violate(params):
    plan = FaultPlan(seed=params["seed"])
    plan.add(
        max(0.0, params["kill_at"] + params["standby_delta"]),
        "standby_loss",
        target=params["victim"],
    )
    plan.add(params["kill_at"], "task_kill", target=params["victim"])
    if params["second_kill"]:
        # The engine kills with force=True, so this lands mid-recovery.
        plan.add(
            params["kill_at"] + params["refail_delta"],
            "task_kill",
            target=params["victim"],
        )
    result = run_chaos_experiment(
        plan, config=fast_chaos_config(seed=params["seed"]), limit=LIMIT
    )
    assert result.ok, describe(result)
    assert result.duration < LIMIT
    kills = [k for (_t, k, _w) in result.recovery_events if k == "chaos:task_kill"]
    assert kills, "the kill must actually apply"


def test_degraded_runs_announce_themselves():
    # Force the ladder to exhaust: dead standby plus a step deadline below
    # the deploy time.  The verdict must be the *announced* degradation.
    config = fast_chaos_config()
    config.clonos.recovery_step_deadline = 0.05
    plan = (
        FaultPlan(seed=3)
        .add(0.20, "standby_loss", target="stage1[0]")
        .add(0.25, "task_kill", target="stage1[0]")
    )
    result = run_chaos_experiment(plan, config=config, limit=LIMIT)
    assert result.verdict == "degraded:global_rollback", describe(result)
    assert any(k in DEGRADATION_MARKERS for (_t, k, _w) in result.degradations)
    assert result.missing == 0, "degraded still means at-least-once"
