"""FaultPlan/FaultSpec validation and random-plan determinism."""

import pytest

from repro.chaos import FAULT_KINDS, FaultPlan, FaultSpec, random_plan
from repro.errors import ChaosError

TASKS = ["src[0]", "stage1[0]", "stage1[1]", "sink[0]"]
LINKS = ["src[0]->stage1[0]", "stage1[0]->sink[0]"]


def test_every_kind_validates():
    for kind in FAULT_KINDS:
        FaultSpec(at=1.0, kind=kind).validate()


@pytest.mark.parametrize(
    "bad",
    [
        dict(at=1.0, kind="meteor_strike"),
        dict(at=-0.1, kind="task_kill"),
        dict(at=1.0, kind="link_partition", duration=-1.0),
        dict(at=1.0, kind="rpc_chaos", rate=1.5),
        dict(at=1.0, kind="rpc_chaos", dup_rate=-0.2),
        dict(at=1.0, kind="link_loss", count=0),
        dict(at=1.0, kind="link_delay", factor=0.5),
        dict(at=1.0, kind="dfs_brownout", factor=0.9),
    ],
)
def test_invalid_specs_rejected(bad):
    with pytest.raises(ChaosError):
        FaultSpec(**bad).validate()


def test_plan_add_validates_eagerly():
    plan = FaultPlan(seed=3)
    with pytest.raises(ChaosError):
        plan.add(0.5, "not_a_fault")
    assert len(plan) == 0


def test_random_plan_is_deterministic():
    a = random_plan(42, 10.0, task_names=TASKS, link_names=LINKS)
    b = random_plan(42, 10.0, task_names=TASKS, link_names=LINKS)
    assert a.specs == b.specs
    c = random_plan(43, 10.0, task_names=TASKS, link_names=LINKS)
    assert a.specs != c.specs or a.seed != c.seed


def test_random_plan_faults_inside_horizon():
    plan = random_plan(7, 10.0, task_names=TASKS, link_names=LINKS, max_faults=8)
    assert 1 <= len(plan) <= 8
    for spec in plan.specs:
        spec.validate()
        assert 1.0 <= spec.at <= 9.0  # middle 80% of the horizon
    assert [s.at for s in plan.specs] == sorted(s.at for s in plan.specs)


def test_random_plan_without_targets_skips_targeted_kinds():
    plan = random_plan(11, 10.0, task_names=(), link_names=(), max_faults=16)
    for spec in plan.specs:
        assert spec.kind in ("rpc_chaos", "dfs_outage", "dfs_brownout",
                             "external_faults")


def test_random_plan_kind_restriction():
    plan = random_plan(5, 10.0, task_names=TASKS, kinds=["task_kill"],
                       max_faults=6)
    assert plan.kinds() == ["task_kill"]


@pytest.mark.parametrize(
    "bad",
    [
        # Uniform range checks across every kind:
        dict(at=1.0, kind="external_faults", factor=0.5),
        dict(at=1.0, kind="compute_slowdown", factor=0.9),
        dict(at=1.0, kind="poison_pill", count=0),
        dict(at=1.0, kind="broker_brownout", rate=1.5),
        # Targetless kinds are job-wide: a task/link target is a spec bug.
        dict(at=1.0, kind="dfs_outage", target="stage1[0]"),
        dict(at=1.0, kind="broker_outage", target="stage1[0]"),
        dict(at=1.0, kind="external_faults", target="x"),
    ],
)
def test_uniform_validation_rejects(bad):
    with pytest.raises(ChaosError):
        FaultSpec(**bad).validate()


def test_targetless_kinds_accept_only_wildcard():
    from repro.chaos import TARGETLESS_KINDS

    for kind in TARGETLESS_KINDS:
        FaultSpec(at=1.0, kind=kind).validate()  # target="*" is fine
        with pytest.raises(ChaosError, match="target"):
            FaultSpec(at=1.0, kind=kind, target="node0").validate()
