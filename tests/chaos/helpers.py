"""Shared builders for chaos tests."""

from repro.config import FaultToleranceMode
from repro.external.kafka import DurableLog
from repro.runtime.jobmanager import JobManager
from repro.sim.core import Environment
from repro.workloads.synthetic import synthetic_chain

from tests.runtime.helpers import make_config


def deploy_chaos_chain(
    mode=FaultToleranceMode.CLONOS,
    depth=3,
    parallelism=2,
    n_records=1200,
    rate=2000.0,
    config=None,
):
    """The soak workload: nondeterministic chain + exactly-once sink."""
    config = config or make_config(mode)
    env = Environment()
    log = DurableLog()
    graph = synthetic_chain(
        log,
        depth=depth,
        parallelism=parallelism,
        rate_per_partition=rate,
        total_per_partition=n_records,
        state_bytes_per_task=8192,
        num_keys=16,
        nondeterministic=True,
        in_topic="chaos-in",
        out_topic="out",
        exactly_once_sink=True,
    )
    jm = JobManager(env, graph, config, external=None)
    jm.deploy()
    return env, log, jm


def origin_counts(log, topic="out"):
    from collections import Counter

    return Counter((e.value[0], e.value[1]) for e in log.read_all(topic))


def assert_exactly_once(log, parallelism, n_records, topic="out"):
    counts = origin_counts(log, topic)
    expected = {(p, o) for p in range(parallelism) for o in range(n_records)}
    missing = [pair for pair in expected if counts[pair] == 0]
    dup = {pair: c for pair, c in counts.items() if c > 1}
    extra = [pair for pair in counts if pair not in expected]
    assert not missing, f"lost {len(missing)} records, e.g. {missing[:5]}"
    assert not dup, f"duplicated {len(dup)} records, e.g. {list(dup.items())[:5]}"
    assert not extra, f"unexpected records: {extra[:5]}"
