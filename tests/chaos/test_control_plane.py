"""At-least-once control RPCs: ack/resend under loss, idempotent receivers,
and the acceptance scenario — recovery over a lossy control plane completes
with visible retries, while the same scenario without reliable RPCs wedges.
"""

import random

import pytest

from repro.chaos.engine import ControlPlaneChaos
from repro.config import CostModel
from repro.errors import JobError
from repro.runtime.rpc import ControlQueue
from repro.sim.core import Environment

from tests.chaos.helpers import assert_exactly_once, deploy_chaos_chain


class _JmStub:
    def __init__(self, control_chaos=None):
        self.control_chaos = control_chaos
        self.drops = []

    def note_control_drop(self, owner, kind, reason):
        self.drops.append((owner, kind, reason))


def drain(queue):
    messages = []
    while True:
        message = queue.poll()
        if message is None:
            return messages
        messages.append(message)


class TestReliableRpcUnit:
    def test_unreliable_send_is_lost_under_total_drop(self):
        env = Environment()
        chaos = ControlPlaneChaos(env, random.Random(1), drop_rate=1.0)
        jm = _JmStub(chaos)
        queue = ControlQueue(env, CostModel(), "victim", jm=jm)
        queue.send("probe", sender="test")
        env.run(until=5.0)
        assert drain(queue) == []
        assert queue.drops_lost == 1
        assert jm.drops == [("victim", "probe", "lost")]

    def test_reliable_send_survives_a_loss_window(self):
        env = Environment()
        # Total loss for the first 0.2s, clean afterwards.
        chaos = ControlPlaneChaos(env, random.Random(1), drop_rate=1.0,
                                  until=0.2)
        jm = _JmStub(chaos)
        queue = ControlQueue(env, CostModel(), "victim", jm=jm)
        retries = []
        queue.send("probe", payload={"n": 1}, sender="test", reliable=True,
                   on_retry=retries.append)
        env.run(until=10.0)
        delivered = drain(queue)
        assert [m.kind for m in delivered] == ["probe"]
        assert retries, "loss window must force at least one resend"
        assert queue.drops_lost >= 1
        assert queue.delivered == 1

    def test_receiver_dedups_resent_duplicates(self):
        env = Environment()
        # Acks are also control traffic: dropping them forces resends of a
        # message the receiver already holds — dedup must suppress those.
        chaos = ControlPlaneChaos(env, random.Random(3), drop_rate=0.7,
                                  until=0.3)
        jm = _JmStub(chaos)
        queue = ControlQueue(env, CostModel(), "victim", jm=jm)
        for n in range(6):
            queue.send("probe", payload={"n": n}, sender="test", reliable=True)
        env.run(until=10.0)
        delivered = drain(queue)
        assert sorted(m.payload["n"] for m in delivered) == list(range(6))
        assert queue.duplicates_suppressed >= 1

    def test_chaos_duplication_of_reliable_messages_is_idempotent(self):
        env = Environment()
        chaos = ControlPlaneChaos(env, random.Random(5), dup_rate=1.0,
                                  until=1.0)
        jm = _JmStub(chaos)
        queue = ControlQueue(env, CostModel(), "victim", jm=jm)
        queue.send("probe", payload={"n": 0}, sender="test", reliable=True)
        env.run(until=10.0)
        assert [m.payload["n"] for m in drain(queue)] == [0]
        assert queue.duplicates_suppressed >= 1

    def test_give_up_after_retry_budget(self):
        env = Environment()
        chaos = ControlPlaneChaos(env, random.Random(7), drop_rate=1.0)
        jm = _JmStub(chaos)
        queue = ControlQueue(env, CostModel(), "victim", jm=jm)
        gave_up = []
        queue.send("probe", sender="test", reliable=True,
                   on_give_up=gave_up.append)
        env.run(until=60.0)
        assert gave_up and gave_up[0] >= 1
        assert drain(queue) == []


class TestLossyRecoveryScenario:
    """The acceptance pair: identical lossy-recovery scenarios, with and
    without reliable control RPCs."""

    KILL_AT = 0.25
    # Total control-plane loss from just before the kill until after the
    # replay requests go out.  No checkpoint has completed at the kill
    # instant, so the standby is not usable and recovery takes the slow
    # deploy path: detection (0.02) + deploy (0.2) puts the replay requests
    # around t=0.48, well inside the window.
    LOSS_FROM = 0.24
    LOSS_UNTIL = 0.70

    def _run(self, reliable):
        env, log, jm = deploy_chaos_chain()
        jm.config.reliable_control_plane = reliable
        jm.control_chaos = ControlPlaneChaos(
            env, random.Random(11), drop_rate=1.0,
            start=self.LOSS_FROM, until=self.LOSS_UNTIL,
        )
        env.schedule_callback(
            self.KILL_AT, lambda: jm.kill_task("stage1[0]", force=True)
        )
        jm.run_until_done(limit=30.0)
        return log, jm

    def test_reliable_control_plane_completes_with_visible_retries(self):
        log, jm = self._run(reliable=True)
        retries = [
            (t, kind, who)
            for (t, kind, who) in jm.recovery_events
            if kind.startswith("rpc-retry:replay_request")
        ]
        assert retries, "resends during the loss window must be recorded"
        assert sum(jm.control_plane_drops.values()) > 0
        assert_exactly_once(log, 2, 1200)

    def test_unreliable_control_plane_wedges(self):
        # Fire-and-forget replay requests die in the loss window; the
        # recovering task waits for a replay that never comes and the job
        # never finishes: the simulation deadline is the only way out.
        with pytest.raises(JobError):
            self._run(reliable=False)
