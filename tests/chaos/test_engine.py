"""ChaosEngine: fault application, targeting, and mode guards."""

import pytest

from repro.chaos import ChaosEngine, FaultPlan
from repro.config import FaultToleranceMode
from repro.errors import ChaosError

from tests.chaos.helpers import assert_exactly_once, deploy_chaos_chain


def test_task_kill_applies_and_job_recovers_exactly_once():
    env, log, jm = deploy_chaos_chain()
    plan = FaultPlan(seed=1).add(0.25, "task_kill", target="stage1[0]")
    engine = ChaosEngine(jm, plan)
    engine.arm()
    jm.run_until_done(limit=600)
    assert engine.applied == [(0.25, "task_kill", "stage1[0]")]
    assert (0.25, "chaos:task_kill", "stage1[0]") in jm.recovery_events
    assert any(k == "recovered" and who == "stage1[0]"
               for (_t, k, who) in jm.recovery_events)
    assert_exactly_once(log, 2, 1200)


def test_wildcard_target_picks_deterministically():
    def victims(seed):
        env, _log, jm = deploy_chaos_chain()
        engine = ChaosEngine(jm, FaultPlan(seed=seed).add(0.2, "task_kill",
                                                          target="stage*"))
        engine.arm()
        jm.run_until_done(limit=600)
        return [t for (_w, _k, t) in engine.applied]

    assert victims(5) == victims(5)
    assert all(v.startswith("stage") for v in victims(5))


def test_unmatched_target_is_skipped_not_fatal():
    env, log, jm = deploy_chaos_chain()
    engine = ChaosEngine(jm, FaultPlan().add(0.2, "task_kill",
                                             target="no-such-task"))
    engine.arm()
    jm.run_until_done(limit=600)
    assert engine.applied == []
    assert engine.skipped[0][3] == "no matching task"
    assert_exactly_once(log, 2, 1200)


def test_link_loss_requires_inflight_log_mode():
    env, _log, jm = deploy_chaos_chain(mode=FaultToleranceMode.GLOBAL_ROLLBACK)
    engine = ChaosEngine(jm, FaultPlan().add(0.2, "link_loss", target="*"))
    with pytest.raises(ChaosError, match="in-flight-log"):
        engine.arm()


def test_arming_twice_rejected():
    env, _log, jm = deploy_chaos_chain()
    engine = ChaosEngine(jm, FaultPlan())
    engine.arm()
    with pytest.raises(ChaosError):
        engine.arm()


def test_dfs_outage_injects_and_heals():
    env, log, jm = deploy_chaos_chain()
    plan = FaultPlan().add(0.1, "dfs_outage", duration=0.15)
    ChaosEngine(jm, plan).arm()
    seen = {}
    env.schedule_callback(
        0.2, lambda: seen.setdefault("during", env.now < jm.dfs.outage_until)
    )
    env.schedule_callback(
        0.3, lambda: seen.setdefault("after", env.now < jm.dfs.outage_until)
    )
    jm.run_until_done(limit=600)
    assert seen == {"during": True, "after": False}


def test_rpc_chaos_installs_windowed_control_plane():
    env, _log, jm = deploy_chaos_chain()
    plan = FaultPlan(seed=9).add(0.1, "rpc_chaos", rate=0.5, dup_rate=0.1,
                                 duration=0.2)
    ChaosEngine(jm, plan).arm()
    probes = {}
    env.schedule_callback(
        0.15, lambda: probes.setdefault("installed", jm.control_chaos is not None)
    )
    jm.run_until_done(limit=600)
    assert probes["installed"]
    chaos = jm.control_chaos
    assert chaos.drop_rate == 0.5
    assert not chaos._active(chaos.until + 1.0)  # window closed


def test_node_crash_by_task_name_kills_co_residents():
    env, log, jm = deploy_chaos_chain()
    node = jm.vertices["stage1[0]"].node_id
    residents = {
        name for name in jm.cluster.occupants_of_node(node) if name in jm.vertices
    }
    plan = FaultPlan().add(0.25, "node_crash", target="stage1[0]")
    ChaosEngine(jm, plan).arm()
    jm.run_until_done(limit=600)
    killed = {name for (_t, name) in jm.failures_injected}
    assert killed >= residents
    assert_exactly_once(log, 2, 1200)


def test_summary_reports_applied_and_drops():
    env, _log, jm = deploy_chaos_chain()
    plan = FaultPlan().add(0.2, "standby_loss", target="stage1[0]")
    engine = ChaosEngine(jm, plan)
    engine.arm()
    jm.run_until_done(limit=600)
    summary = engine.summary()
    assert summary["applied"] == 1
    assert summary["kinds"] == ["standby_loss"]


def test_node_crash_by_node_id():
    """Node-targeting kinds accept a bare node id as well as a task name."""
    env, log, jm = deploy_chaos_chain()
    node = jm.vertices["stage1[0]"].node_id
    plan = FaultPlan().add(0.25, "node_crash", target=str(node))
    engine = ChaosEngine(jm, plan)
    engine.arm()
    jm.run_until_done(limit=600)
    assert engine.applied == [(0.25, "node_crash", f"node:{node}")]
    assert_exactly_once(log, 2, 1200)


def test_node_crash_out_of_range_node_id_skips():
    env, log, jm = deploy_chaos_chain()
    plan = FaultPlan().add(0.25, "node_crash", target="9999")
    engine = ChaosEngine(jm, plan)
    engine.arm()
    jm.run_until_done(limit=600)
    assert engine.applied == []
    assert engine.skipped[0][3] == "no such node"
    assert_exactly_once(log, 2, 1200)
