"""Unit tests for naive vs causal services (Section 4.2)."""

import pytest

from repro.core.causal_log import MAIN, CausalLogManager
from repro.core.recovery import RecoveryManager
from repro.core.services import CausalServices, NaiveServices
from repro.errors import DeterminantLogError
from repro.external.http import ExternalService
from repro.sim.core import Environment
from repro.sim.rng import RandomStreams


def make_causal(env, name="t", granularity=1e-3, external=None):
    causal = CausalLogManager(name, 1, dsd=None)
    recovery = RecoveryManager(name)
    services = CausalServices(
        env, causal, recovery, external, name, root_seed=1,
        timestamp_granularity=granularity,
    )
    return services, causal, recovery


def drive(env, gen):
    """Run a service generator to completion, returning its value (or
    re-raising its exception in the caller)."""
    result = {}

    def proc():
        try:
            result["value"] = yield from gen
        except BaseException as exc:  # noqa: BLE001 — re-raised below
            result["error"] = exc

    env.process(proc())
    env.run()
    if "error" in result:
        raise result["error"]
    return result["value"]


class TestNaiveServices:
    def test_timestamp_is_wall_clock(self):
        env = Environment()
        svc = NaiveServices(env, None, "t")
        env.run(until=3.5)
        assert svc.timestamp() == 3.5

    def test_rng_differs_across_restart_times(self):
        env = Environment()
        first = NaiveServices(env, None, "t", root_seed=1)
        env.run(until=1.0)
        second = NaiveServices(env, None, "t", root_seed=1)
        assert first.random() != second.random()

    def test_http_requires_external(self):
        env = Environment()
        svc = NaiveServices(env, None, "t")
        with pytest.raises(RuntimeError):
            drive(env, svc.http_get("k"))

    def test_custom_runs_function(self):
        env = Environment()
        svc = NaiveServices(env, None, "t")
        assert svc.custom("double", lambda x: x * 2, 21) == 42


class TestCausalServicesNormalOperation:
    def test_timestamp_logged_and_cached(self):
        env = Environment()
        svc, causal, _ = make_causal(env, granularity=0.5)
        env.run(until=1.0)
        first = svc.timestamp()
        second = svc.timestamp()  # cache hit within granularity
        assert first == second == 1.0
        entries = causal.bundle.log(MAIN).entries(0)
        assert [d.fresh for d in entries] == [True, False]

    def test_timestamp_refreshes_after_granularity(self):
        env = Environment()
        svc, causal, _ = make_causal(env, granularity=0.5)
        env.run(until=1.0)
        svc.timestamp()
        env.run(until=2.0)
        assert svc.timestamp() == 2.0

    def test_rng_reseed_logs_seed_per_epoch(self):
        env = Environment()
        svc, causal, _ = make_causal(env)
        svc.reseed_for_epoch(0)
        draws = [svc.random() for _ in range(3)]
        entries = causal.bundle.log(MAIN).entries(0)
        assert len(entries) == 1  # one seed determinant, not three
        assert entries[0].kind == "rng"
        # Same seed -> same sequence.
        svc2, _c, _r = make_causal(env, name="t")
        svc2.reseed_for_epoch(0)
        assert [svc2.random() for _ in range(3)] == draws

    def test_http_logs_response(self):
        env = Environment()
        external = ExternalService(env, RandomStreams(0))
        svc, causal, _ = make_causal(env, external=external)
        value = drive(env, svc.http_get("stock"))
        entries = causal.bundle.log(MAIN).entries(0)
        assert entries[0].kind == "http"
        assert entries[0].response == value

    def test_custom_logs_result(self):
        env = Environment()
        svc, causal, _ = make_causal(env)
        out = svc.custom("inc", lambda x: x + 1, 1)
        assert out == 2
        assert causal.bundle.log(MAIN).entries(0)[0].result == 2


class TestCausalServicesReplay:
    def replay_setup(self, env, external=None):
        """Record determinants with one service, load into a fresh one."""
        svc, causal, _ = make_causal(env, name="orig", external=external)
        return svc, causal

    def test_timestamp_replayed_from_log(self):
        env = Environment()
        original, causal = self.replay_setup(env)
        env.run(until=1.0)
        logged = original.timestamp()

        replay_svc, replay_causal, recovery = make_causal(env, name="new")
        recovery.load(causal.bundle, from_epoch=0)
        env.run(until=9.0)  # wall clock moved on
        assert replay_svc.timestamp() == logged
        assert replay_svc.replayed_calls == 1
        # The log is rebuilt during replay.
        assert replay_causal.bundle.log(MAIN).length(0) == 1

    def test_http_replayed_without_calling_service(self):
        env = Environment()
        external = ExternalService(env, RandomStreams(0))
        original, causal = self.replay_setup(env, external)
        logged = drive(env, original.http_get("stock"))
        calls_before = external.calls

        replay_svc, _c, recovery = make_causal(env, name="new", external=external)
        recovery.load(causal.bundle, from_epoch=0)
        env.run(until=50.0)  # service has drifted by now
        replayed = drive(env, replay_svc.http_get("stock"))
        assert replayed == logged
        assert external.calls == calls_before  # no real call during replay

    def test_http_replay_divergence_detected(self):
        env = Environment()
        external = ExternalService(env, RandomStreams(0))
        original, causal = self.replay_setup(env, external)
        drive(env, original.http_get("stock"))

        replay_svc, _c, recovery = make_causal(env, name="new", external=external)
        recovery.load(causal.bundle, from_epoch=0)
        with pytest.raises(DeterminantLogError):
            drive(env, replay_svc.http_get("DIFFERENT-KEY"))

    def test_custom_replayed_without_running_fn(self):
        env = Environment()
        original, causal = self.replay_setup(env)
        original.custom("draw", lambda _x: 123, None)

        replay_svc, _c, recovery = make_causal(env, name="new")
        recovery.load(causal.bundle, from_epoch=0)
        ran = []
        result = replay_svc.custom("draw", lambda _x: ran.append(1) or 999, None)
        assert result == 123
        assert ran == []  # the nondeterministic logic did NOT re-run

    def test_rng_replay_reseed_reproduces_sequence(self):
        env = Environment()
        original, causal = self.replay_setup(env)
        original.reseed_for_epoch(0)
        draws = [original.random() for _ in range(5)]

        replay_svc, _c, recovery = make_causal(env, name="new")
        recovery.load(causal.bundle, from_epoch=0)
        replay_svc.replay_reseed()
        assert [replay_svc.random() for _ in range(5)] == draws
