"""Unit tests for the recovery manager's determinant scheduling."""

import pytest

from repro.core.causal_log import LogBundle, queue_log_name
from repro.core.determinants import (
    BarrierInjectDeterminant,
    BufferSizeDeterminant,
    ExternalCallDeterminant,
    OrderDeterminant,
    RngSeedDeterminant,
    TimerFiredDeterminant,
    TimestampDeterminant,
)
from repro.core.recovery import RecoveryManager
from repro.errors import DeterminantLogError


def bundle_with(entries, epoch=1, queue_entries=()):
    bundle = LogBundle()
    for det in entries:
        bundle.log("main").append(epoch, det)
    for det in queue_entries:
        bundle.log(queue_log_name(0)).append(epoch, det)
    return bundle


def test_load_splits_control_and_values():
    manager = RecoveryManager("t")
    manager.load(
        bundle_with(
            [
                OrderDeterminant(0, 5),
                TimestampDeterminant(1.0),
                TimerFiredDeterminant("t#1", 3),
                ExternalCallDeterminant("k", 42),
            ]
        ),
        from_epoch=1,
    )
    assert manager.active
    assert manager.peek_control().kind == "order"
    manager.pop_control()
    assert manager.peek_control().kind == "timer"
    assert manager.pop_value("timestamp").value == 1.0
    assert manager.pop_value("http", match="k").response == 42


def test_epochs_before_restore_are_ignored():
    bundle = LogBundle()
    bundle.log("main").append(0, OrderDeterminant(0, 1))
    bundle.log("main").append(2, OrderDeterminant(0, 9))
    manager = RecoveryManager("t")
    manager.load(bundle, from_epoch=2)
    assert manager.pop_control() == OrderDeterminant(0, 9)


def test_finishes_when_exhausted():
    manager = RecoveryManager("t")
    manager.load(bundle_with([OrderDeterminant(0, 1)]), from_epoch=0)
    assert manager.active
    manager.pop_control()
    assert not manager.active


def test_value_exhaustion_raises():
    manager = RecoveryManager("t")
    manager.load(bundle_with([]), from_epoch=0)
    with pytest.raises(DeterminantLogError):
        manager.pop_value("timestamp")


def test_mismatched_http_key_detected():
    manager = RecoveryManager("t")
    manager.load(
        bundle_with([ExternalCallDeterminant("expected", 1)]), from_epoch=0
    )
    with pytest.raises(DeterminantLogError):
        manager.pop_value("http", match="other")


def test_queue_logs_become_forced_cuts():
    manager = RecoveryManager("t")
    manager.load(
        bundle_with(
            [OrderDeterminant(0, 1)],
            queue_entries=[
                BufferSizeDeterminant(7, 12, 900),
                BufferSizeDeterminant(8, 3, 250),
            ],
        ),
        from_epoch=1,
    )
    assert manager.forced_cuts_for_channel(0) == [12, 3]
    assert manager.first_replayed_seq(0) == 7
    assert manager.forced_cuts_for_channel(99) == []


def test_force_finish_clears_everything():
    manager = RecoveryManager("t")
    manager.load(
        bundle_with([OrderDeterminant(0, 1), TimestampDeterminant(2.0)]),
        from_epoch=0,
    )
    manager.force_finish()
    assert not manager.active
    assert manager.peek_control() is None


def test_rng_and_barrier_routing():
    manager = RecoveryManager("t")
    manager.load(
        bundle_with([RngSeedDeterminant(99), BarrierInjectDeterminant(2, 14)]),
        from_epoch=0,
    )
    assert manager.peek_control().kind == "barrier"
    assert manager.pop_value("rng").seed == 99
