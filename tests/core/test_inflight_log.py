"""Unit tests for the in-flight record log and its spill policies."""

import pytest

from repro.config import CostModel, SpillPolicy
from repro.core.inflight_log import InFlightLog
from repro.net.buffer import BufferPool, NetworkBuffer
from repro.net.link import NetworkLink
from repro.net.gate import InputChannel
from repro.sim.core import Environment


def make_log(env, policy=SpillPolicy.IN_MEMORY, pool_buffers=8, **cost_overrides):
    cost = CostModel(buffer_size_bytes=256, **cost_overrides)
    return (
        InFlightLog(env, cost, pool_buffers * 256, policy, 0.25, name="t"),
        cost,
    )


def make_buffer(env, cost, pool, seq, epoch=0, fill=100):
    buffer = NetworkBuffer(0, seq, epoch, pool)
    buffer.append(object(), fill)
    return buffer


def run_append(env, log, pool, seq, epoch=0, sent=True):
    buffer = NetworkBuffer(0, seq, epoch, pool)
    buffer.append(("x", seq), 100)

    def proc():
        assert pool.try_acquire()
        yield from log.append(0, buffer, sent)

    env.process(proc())
    env.run()
    return buffer


class TestExchangeAndTruncation:
    def test_append_exchanges_ownership(self):
        env = Environment()
        log, cost = make_log(env)
        out_pool = BufferPool(env, 4 * 256, 256, "out")
        run_append(env, log, out_pool, seq=0)
        # The output pool got its permit back; the log pool holds one.
        assert out_pool.available_buffers == out_pool.total_buffers
        assert log.pool.in_use_buffers == 1

    def test_truncation_releases_memory(self):
        env = Environment()
        log, cost = make_log(env)
        out_pool = BufferPool(env, 16 * 256, 256, "out")
        for seq, epoch in [(0, 0), (1, 0), (2, 1), (3, 1)]:
            run_append(env, log, out_pool, seq, epoch)
        assert log.pool.in_use_buffers == 4
        dropped = log.truncate_before(1)
        assert dropped == 2
        assert log.pool.in_use_buffers == 2
        assert sorted(log._entries) == [1]

    def test_has_epoch_after_truncation(self):
        env = Environment()
        log, _ = make_log(env)
        out_pool = BufferPool(env, 4 * 256, 256, "out")
        run_append(env, log, out_pool, 0, epoch=0)
        log.truncate_before(2)
        assert not log.has_epoch(1)
        assert log.has_epoch(2)


class TestSpillPolicies:
    def test_in_memory_blocks_when_pool_full(self):
        env = Environment()
        log, cost = make_log(env, SpillPolicy.IN_MEMORY, pool_buffers=2)
        out_pool = BufferPool(env, 16 * 256, 256, "out")
        appended = []

        def producer():
            for seq in range(4):
                buffer = NetworkBuffer(0, seq, 0, out_pool)
                buffer.append(("x", seq), 100)
                assert out_pool.try_acquire()
                yield from log.append(0, buffer, True)
                appended.append(seq)

        env.process(producer())
        env.run(until=10)
        assert appended == [0, 1]  # blocked: backpressure

    def test_spill_buffer_never_occupies_memory(self):
        env = Environment()
        log, cost = make_log(env, SpillPolicy.SPILL_BUFFER, pool_buffers=2)
        out_pool = BufferPool(env, 16 * 256, 256, "out")
        for seq in range(6):
            run_append(env, log, out_pool, seq)
        assert log.pool.in_use_buffers == 0
        assert log.buffers_spilled == 6
        assert log.sync_spill_time > 0

    def test_spill_threshold_frees_memory_asynchronously(self):
        env = Environment()
        log, cost = make_log(env, SpillPolicy.SPILL_THRESHOLD, pool_buffers=4)
        out_pool = BufferPool(env, 32 * 256, 256, "out")
        for seq in range(8):
            run_append(env, log, out_pool, seq)
            env.run(until=env.now + 0.1)  # let the spiller catch up
        assert log.buffers_spilled > 0
        assert log.buffers_logged == 8

    def test_spill_epoch_spills_closed_epochs(self):
        env = Environment()
        log, cost = make_log(env, SpillPolicy.SPILL_EPOCH, pool_buffers=8)
        out_pool = BufferPool(env, 32 * 256, 256, "out")
        run_append(env, log, out_pool, 0, epoch=0)
        run_append(env, log, out_pool, 1, epoch=0)
        run_append(env, log, out_pool, 2, epoch=1)  # epoch 0 now closed
        env.run(until=env.now + 1)
        epoch0 = [e for e in log._entries[0]]
        assert all(entry.spilled for entry in epoch0)


class TestReplay:
    def test_replay_resends_in_order_with_skip(self):
        env = Environment()
        log, cost = make_log(env)
        out_pool = BufferPool(env, 16 * 256, 256, "out")
        for seq in range(5):
            run_append(env, log, out_pool, seq, epoch=1)
        link = NetworkLink(env, cost, "l")
        received = []

        class Recorder(InputChannel):
            pass

        channel = Recorder(env, 0, capacity=32)
        link.attach_receiver(channel)

        def replayer():
            yield from log.replay(0, from_epoch=1, link=link, skip_up_to_seq=1)

        env.process(replayer())
        env.run()
        seqs = [b.seq for b in channel.queue.items]
        assert seqs == [2, 3, 4]
        assert log.buffers_replayed == 3

    def test_replay_from_epoch_filters_older(self):
        env = Environment()
        log, cost = make_log(env)
        out_pool = BufferPool(env, 16 * 256, 256, "out")
        run_append(env, log, out_pool, 0, epoch=0)
        run_append(env, log, out_pool, 1, epoch=1)
        link = NetworkLink(env, cost, "l")
        channel = InputChannel(env, 0, capacity=32)
        link.attach_receiver(channel)

        def replayer():
            yield from log.replay(0, from_epoch=1, link=link)

        env.process(replayer())
        env.run()
        assert [b.seq for b in channel.queue.items] == [1]

    def test_replay_picks_up_buffers_appended_during_replay(self):
        env = Environment()
        log, cost = make_log(env, pool_buffers=32)
        out_pool = BufferPool(env, 64 * 256, 256, "out")
        for seq in range(6):
            run_append(env, log, out_pool, seq, epoch=0)
        # Tiny wire + receiver window: the replay backpressures until the
        # slow consumer drains, leaving time for a late (parked) append.
        link = NetworkLink(env, cost, "l", capacity=1)
        channel = InputChannel(env, 0, capacity=1)
        link.attach_receiver(channel)
        consumed = []

        def replayer():
            yield from log.replay(0, from_epoch=0, link=link)

        def late_appender():
            yield env.timeout(0.05)
            buffer = NetworkBuffer(0, 6, 0, out_pool)
            buffer.append(("x", 6), 100)
            assert out_pool.try_acquire()
            yield from log.append(0, buffer, sent=False)  # parked unsent

        def consumer():
            for _ in range(100):
                if len(consumed) >= 7:
                    return
                yield env.timeout(0.1)
                buffer = channel.queue.try_get()
                if buffer is not None:
                    consumed.append(buffer.seq)

        env.process(replayer())
        env.process(late_appender())
        env.process(consumer())
        env.run()
        assert consumed == [0, 1, 2, 3, 4, 5, 6]
