"""Unit tests for determinants and the causal log."""

import pytest

from repro.core.causal_log import (
    MAIN,
    CausalLogManager,
    EpochLog,
    LogBundle,
    delta_wire_size,
    merge_bundles,
    queue_log_name,
)
from repro.core.determinants import (
    BufferSizeDeterminant,
    OrderDeterminant,
    TimestampDeterminant,
)
from repro.errors import DeterminantLogError


def ts(v, fresh=True):
    return TimestampDeterminant(v, fresh)


class TestEpochLog:
    def test_append_returns_index_within_epoch(self):
        log = EpochLog()
        assert log.append(0, ts(1.0)) == 0
        assert log.append(0, ts(2.0)) == 1
        assert log.append(1, ts(3.0)) == 0

    def test_truncate_drops_old_epochs(self):
        log = EpochLog()
        log.append(0, ts(1.0))
        log.append(1, ts(2.0))
        log.append(2, ts(3.0))
        assert log.truncate_before(2) == 2
        assert log.epochs() == [2]

    def test_merge_slice_is_idempotent(self):
        log = EpochLog()
        entries = [ts(1.0), ts(2.0), ts(3.0)]
        log.merge_slice(0, 0, entries[:2])
        log.merge_slice(0, 0, entries)  # overlap: extends by one
        log.merge_slice(0, 1, entries[1:])  # fully covered
        assert log.entries(0) == entries

    def test_merge_slice_rejects_gap(self):
        log = EpochLog()
        with pytest.raises(DeterminantLogError):
            log.merge_slice(0, 2, [ts(1.0)])

    def test_size_bytes_counts_wire_sizes(self):
        log = EpochLog()
        log.append(0, ts(1.0, fresh=True))   # 9 bytes
        log.append(0, ts(1.0, fresh=False))  # 1 byte (cache hit)
        assert log.size_bytes() == 10


class TestTimestampCachingEncoding:
    def test_cache_hit_is_one_byte(self):
        assert ts(5.0, fresh=True).wire_size() == 9
        assert ts(5.0, fresh=False).wire_size() == 1


class TestCausalLogManager:
    def make(self, dsd=None, channels=2, name="t"):
        return CausalLogManager(name, channels, dsd)

    def test_delta_carries_new_entries_once(self):
        mgr = self.make()
        mgr.append_main(OrderDeterminant(0, 0))
        slices, nbytes = mgr.delta_for_dispatch(0)
        assert len(slices) == 1
        assert nbytes > 0
        again, nbytes2 = mgr.delta_for_dispatch(0)
        assert again == [] and nbytes2 == 0
        # A different channel still needs the entries.
        other, _ = mgr.delta_for_dispatch(1)
        assert len(other) == 1

    def test_dsd_zero_disables_logging_delta(self):
        mgr = self.make(dsd=0)
        assert not mgr.enabled
        mgr.append_main(OrderDeterminant(0, 0))
        assert mgr.delta_for_dispatch(0) == ([], 0)

    def test_merge_delta_builds_store(self):
        up = self.make(name="up")
        down = self.make(name="down")
        up.append_main(OrderDeterminant(0, 7))
        slices, _ = up.delta_for_dispatch(0)
        down.merge_delta(slices, sender_task_id="up")
        bundle = down.stored_bundle_for("up")
        assert bundle is not None
        assert bundle.log(MAIN).entries(0) == [OrderDeterminant(0, 7)]

    def test_duplicate_delta_merge_is_harmless(self):
        up = self.make(name="up")
        down = self.make(name="down")
        up.append_main(OrderDeterminant(0, 7))
        slices, _ = up.delta_for_dispatch(0)
        down.merge_delta(slices, "up")
        down.merge_delta(slices, "up")
        assert down.stored_bundle_for("up").log(MAIN).length(0) == 1

    def test_dsd_forwarding_depth(self):
        # a -> b -> c with DSD=2: b forwards a's bundle to c.
        a = self.make(dsd=2, name="a")
        b = self.make(dsd=2, name="b")
        c = self.make(dsd=2, name="c")
        a.append_main(OrderDeterminant(0, 1))
        slices, _ = a.delta_for_dispatch(0)
        b.merge_delta(slices, "a")
        b.append_main(OrderDeterminant(0, 2))
        forward, _ = b.delta_for_dispatch(0)
        c.merge_delta(forward, "b")
        assert c.stored_bundle_for("a") is not None
        assert c.stored_bundle_for("b") is not None

    def test_dsd1_does_not_forward(self):
        a = self.make(dsd=1, name="a")
        b = self.make(dsd=1, name="b")
        a.append_main(OrderDeterminant(0, 1))
        slices, _ = a.delta_for_dispatch(0)
        b.merge_delta(slices, "a")
        forward, _ = b.delta_for_dispatch(0)
        assert all(task_id == "b" for (task_id, *_rest) in forward)

    def test_checkpoint_complete_truncates_everything(self):
        mgr = self.make()
        mgr.append_main(OrderDeterminant(0, 1))
        mgr.on_barrier(1)
        mgr.append_main(OrderDeterminant(0, 2))
        dropped = mgr.on_checkpoint_complete(1)
        assert dropped == 1
        assert mgr.bundle.log(MAIN).epochs() == [1]

    def test_queue_log_uses_explicit_epoch(self):
        mgr = self.make()
        mgr.on_barrier(3)
        # A barrier-carrying buffer belongs to the epoch it closes.
        mgr.append_queue(0, BufferSizeDeterminant(9, 4, 100), epoch=2)
        assert mgr.bundle.log(queue_log_name(0)).epochs() == [2]

    def test_reset_channel_cursors_resends_full_log(self):
        mgr = self.make()
        mgr.append_main(OrderDeterminant(0, 1))
        mgr.delta_for_dispatch(0)
        mgr.reset_channel_cursors(0)
        slices, _ = mgr.delta_for_dispatch(0)
        assert len(slices) == 1


def test_merge_bundles_keeps_longest_prefix():
    b1, b2 = LogBundle(), LogBundle()
    b1.log(MAIN).append(0, ts(1.0))
    b2.log(MAIN).append(0, ts(1.0))
    b2.log(MAIN).append(0, ts(2.0))
    merged = merge_bundles([b1, b2])
    assert merged.log(MAIN).length(0) == 2


def test_delta_wire_size_counts_headers_and_entries():
    slices = [("t", MAIN, 0, 0, [ts(1.0), ts(2.0, fresh=False)])]
    assert delta_wire_size(slices) == 12 + 9 + 1
