"""Unit tests for the Figure-4 determinant-sharing-depth case analysis."""

import pytest

from repro.core.dsd import (
    RecoveryCase,
    classify_failed_task,
    downstream_within,
    holders_of,
    longest_failed_chain,
    max_consecutive_failures_tolerated,
    requires_global_rollback,
)

# a -> b -> c -> d (chain); e is a side sink of b.
CHAIN = {"a": ["b"], "b": ["c", "e"], "c": ["d"], "d": [], "e": []}


def test_downstream_within_hop_limits():
    assert downstream_within(CHAIN, "a", 1) == {"b"}
    assert downstream_within(CHAIN, "a", 2) == {"b", "c", "e"}
    assert downstream_within(CHAIN, "a", None) == {"b", "c", "d", "e"}


def test_single_failure_with_dsd1_recovers_with_determinants():
    case = classify_failed_task(CHAIN, {"b"}, "b", dsd=1)
    assert case is RecoveryCase.WITH_DETERMINANTS


def test_two_consecutive_failures_with_dsd1_orphan():
    # b's determinants live only at c and e; c failed, e survives -> still ok
    assert (
        classify_failed_task(CHAIN, {"b", "c"}, "b", dsd=1)
        is RecoveryCase.WITH_DETERMINANTS
    )
    # but c's determinants live only at d... d survives -> ok
    assert (
        classify_failed_task(CHAIN, {"b", "c"}, "c", dsd=1)
        is RecoveryCase.WITH_DETERMINANTS
    )


def test_orphan_when_all_holders_fail_but_dependents_survive():
    graph = {"a": ["b"], "b": ["c"], "c": ["d"], "d": []}
    # a's only holder (dsd=1) is b; both fail; c survives and depends on a.
    assert classify_failed_task(graph, {"a", "b"}, "a", dsd=1) is RecoveryCase.ORPHANED
    assert requires_global_rollback(graph, {"a", "b"}, dsd=1)


def test_dsd2_rescues_the_same_failure():
    graph = {"a": ["b"], "b": ["c"], "c": ["d"], "d": []}
    assert (
        classify_failed_task(graph, {"a", "b"}, "a", dsd=2)
        is RecoveryCase.WITH_DETERMINANTS
    )
    assert not requires_global_rollback(graph, {"a", "b"}, dsd=2)


def test_free_recovery_when_no_survivor_depends():
    graph = {"a": ["b"], "b": ["c"], "c": []}
    # a, b, c all fail: nobody surviving depends on anything.
    for task in ("a", "b", "c"):
        assert (
            classify_failed_task(graph, {"a", "b", "c"}, task, dsd=1)
            in (RecoveryCase.FREE, RecoveryCase.WITH_DETERMINANTS)
        )
    assert classify_failed_task(graph, {"a", "b", "c"}, "a", dsd=1) is RecoveryCase.FREE
    assert not requires_global_rollback(graph, {"a", "b", "c"}, dsd=1)


def test_dsd_zero_has_no_holders():
    assert holders_of(CHAIN, "a", 0) == set()
    # With dsd=0 any failure with surviving dependents is orphaned.
    assert classify_failed_task(CHAIN, {"b"}, "b", dsd=0) is RecoveryCase.ORPHANED


def test_full_dsd_never_orphans_single_failures():
    for task in CHAIN:
        assert (
            classify_failed_task(CHAIN, {task}, task, dsd=None)
            is not RecoveryCase.ORPHANED
        )


def test_classify_requires_task_in_failure_set():
    with pytest.raises(ValueError):
        classify_failed_task(CHAIN, {"a"}, "b", dsd=1)


def test_longest_failed_chain():
    assert longest_failed_chain(CHAIN, set()) == 0
    assert longest_failed_chain(CHAIN, {"a"}) == 1
    assert longest_failed_chain(CHAIN, {"a", "c"}) == 1  # not consecutive
    assert longest_failed_chain(CHAIN, {"a", "b", "c"}) == 3
    assert longest_failed_chain(CHAIN, {"b", "c", "d"}) == 3


def test_tolerated_failures_matches_dsd():
    assert max_consecutive_failures_tolerated(CHAIN, 2, depth=3) == 2
    assert max_consecutive_failures_tolerated(CHAIN, None, depth=3) == 3
