"""Unit + integration tests for the Section 5.5 exactly-once output sink."""

from collections import Counter

from repro.config import FaultToleranceMode
from repro.core.output import ExactlyOnceKafkaSink
from repro.external.kafka import DurableLog
from repro.graph.logical import JobGraphBuilder
from repro.operators import KafkaSink, KafkaSource, MapOperator
from repro.runtime.jobmanager import JobManager
from repro.sim.core import Environment

from tests.operators.helpers import OperatorHarness
from tests.runtime.helpers import make_config


class TestUnit:
    def make(self):
        log = DurableLog()
        log.create_topic("out", 1)
        sink = ExactlyOnceKafkaSink(log, "out")
        return log, sink, OperatorHarness(sink)

    def test_appends_and_stores_metadata(self):
        log, sink, h = self.make()
        h.send("a")
        h.send("b")
        assert [e.value for e in log.read_all("out")] == ["a", "b"]
        store = log.partition("out", 0).output_determinants
        assert len(store[0]) == 2

    def test_restore_skips_already_stored_epoch_records(self):
        log, sink, h = self.make()
        sink.on_barrier(1, h.ctx)
        h.send("a")
        h.send("b")
        # Crash after two appends of epoch 1; replacement restores at chk 1.
        replacement = ExactlyOnceKafkaSink(log, "out")
        replacement.restore({"epoch": 1})
        h2 = OperatorHarness(replacement)
        for value in ("a", "b", "c"):  # exact regeneration (Clonos)
            h2.send(value)
        assert [e.value for e in log.read_all("out")] == ["a", "b", "c"]
        assert replacement.skipped_duplicates == 2

    def test_checkpoint_complete_truncates_metadata(self):
        log, sink, h = self.make()
        h.send("a")  # epoch 0
        sink.on_barrier(1, h.ctx)
        h.send("b")  # epoch 1
        sink.on_checkpoint_complete(1, h.ctx)
        store = log.partition("out", 0).output_determinants
        assert 0 not in store and 1 in store


def test_integration_sink_failure_exactly_once_output():
    env = Environment()
    log = DurableLog()
    log.create_generated_topic("in", 1, lambda p, off: off, 2000.0, 3000)
    log.create_topic("out", 1)
    config = make_config(FaultToleranceMode.CLONOS, checkpoint_interval=0.4)
    builder = JobGraphBuilder("s55")
    stream = builder.source("src", lambda: KafkaSource(log, "in"))
    mid = stream.key_by(lambda v: v % 3).process(
        "mid", lambda: MapOperator(lambda v: v)
    )
    mid.key_by(lambda v: 0).sink("sink", lambda: ExactlyOnceKafkaSink(log, "out"))
    jm = JobManager(env, builder.build(), config)
    jm.deploy()
    env.schedule_callback(0.8, lambda: jm.kill_task("sink[0]"))
    jm.run_until_done(limit=300)
    counts = Counter(e.value for e in log.read_all("out"))
    assert set(counts) == set(range(3000))
    assert all(c == 1 for c in counts.values())


def test_integration_plain_sink_duplicates_on_sink_failure():
    """The contrast case: without Section 5.5 the output-commit problem
    shows up as duplicated external output when the sink itself fails."""
    env = Environment()
    log = DurableLog()
    log.create_generated_topic("in", 1, lambda p, off: off, 2000.0, 3000)
    log.create_topic("out", 1)
    config = make_config(FaultToleranceMode.CLONOS, checkpoint_interval=0.4)
    builder = JobGraphBuilder("s55-plain")
    stream = builder.source("src", lambda: KafkaSource(log, "in"))
    mid = stream.key_by(lambda v: v % 3).process(
        "mid", lambda: MapOperator(lambda v: v)
    )
    mid.key_by(lambda v: 0).sink("sink", lambda: KafkaSink(log, "out"))
    jm = JobManager(env, builder.build(), config)
    jm.deploy()
    env.schedule_callback(0.8, lambda: jm.kill_task("sink[0]"))
    jm.run_until_done(limit=300)
    counts = Counter(e.value for e in log.read_all("out"))
    assert set(counts) == set(range(3000))  # never lossy
    assert any(c > 1 for c in counts.values())  # but duplicated
