"""Tests for the serialized-size model."""

from repro.graph.elements import CheckpointBarrier, StreamRecord, Watermark
from repro.net.serialization import element_size, payload_size, register_sizer


def test_scalar_sizes():
    assert payload_size(None) == 1
    assert payload_size(True) == 1
    assert payload_size(12345) == 8
    assert payload_size(3.14) == 8
    assert payload_size("abc") == 7
    assert payload_size(b"abcd") == 8


def test_container_sizes_are_recursive():
    assert payload_size((1, 2)) == 4 + 16
    assert payload_size([1, "ab"]) == 4 + 8 + 6
    assert payload_size({"k": 1}) == 4 + 5 + 8


def test_record_size_includes_header():
    record = StreamRecord(100, timestamp=1.0, key="k")
    assert element_size(record) == 4 + 20 + 8


def test_control_element_sizes():
    assert element_size(Watermark(1.0)) == 12
    assert element_size(CheckpointBarrier(3)) == 12


def test_custom_sizer_registration():
    class Trade:
        def __init__(self, qty):
            self.qty = qty

    register_sizer(Trade, lambda t: 99)
    assert payload_size(Trade(5)) == 99


def test_object_with_dict_falls_back_to_fields():
    class Point:
        def __init__(self):
            self.x = 1
            self.y = 2.0

    assert payload_size(Point()) == 4 + 8 + 8


def test_slots_object_size():
    class Slotted:
        __slots__ = ("a", "b")

        def __init__(self):
            self.a = 1
            self.b = "xy"

    assert payload_size(Slotted()) == 4 + 8 + 6
