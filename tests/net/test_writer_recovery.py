"""Unit tests for the writer's recovery mechanics: forced cuts, suppression,
buffer-pool accounting."""

import pytest

from repro.config import CostModel
from repro.graph.elements import StreamRecord
from repro.net import (
    BufferPool,
    HashPartitioner,
    InputChannel,
    NetworkLink,
    OutputChannel,
    RecordWriter,
)
from repro.net.serialization import element_size
from repro.sim import Environment


def build_channel(env, cost, input_capacity=64, pool_buffers=16):
    pool = BufferPool(
        env, pool_buffers * cost.buffer_size_bytes, cost.buffer_size_bytes, "out"
    )
    link = NetworkLink(env, cost, "l")
    receiver = InputChannel(env, 0, capacity=input_capacity)
    link.attach_receiver(receiver)
    channel = OutputChannel(env, cost, 0, link, pool, charge=lambda s: None)
    return channel, receiver, pool


def run(env, gen):
    env.process(gen)
    env.run()


def test_forced_cuts_reproduce_boundaries():
    env = Environment()
    cost = CostModel(buffer_size_bytes=4096)
    channel, receiver, _pool = build_channel(env, cost)
    channel.forced_cuts.extend([2, 3, 1])

    def producer():
        for i in range(6):
            record = StreamRecord(i, key=0)
            yield from channel.append_element(record, element_size(record))

    run(env, producer())
    sizes = [len(b.elements) for b in receiver.queue.items]
    assert sizes == [2, 3, 1]


def test_forced_cuts_override_size_based_cut():
    env = Environment()
    cost = CostModel(buffer_size_bytes=64)  # would normally cut every record
    channel, receiver, _pool = build_channel(env, cost)
    channel.forced_cuts.extend([5])

    def producer():
        for i in range(5):
            record = StreamRecord(i, key=0)
            yield from channel.append_element(record, element_size(record))

    run(env, producer())
    # One buffer with 5 elements, despite exceeding the nominal buffer size.
    assert [len(b.elements) for b in receiver.queue.items] == [5]


def test_suppression_skips_wire_but_advances_seq():
    env = Environment()
    cost = CostModel(buffer_size_bytes=4096)
    channel, receiver, pool = build_channel(env, cost)
    channel.suppress_until_seq = 1  # buffers 0 and 1 already delivered

    def producer():
        for i in range(4):
            record = StreamRecord(i, key=0)
            yield from channel.append_element(record, element_size(record))
            yield from channel.flush("test")

    run(env, producer())
    seqs = [b.seq for b in receiver.queue.items]
    assert seqs == [2, 3]
    assert channel.seq == 4
    # Suppressed buffers were recycled (no in-flight log here): no pool leak.
    in_queue = len(receiver.queue.items)
    assert pool.in_use_buffers == in_queue


def test_timer_flush_skipped_while_forced_cuts_pending():
    env = Environment()
    cost = CostModel(buffer_size_bytes=4096)
    channel, _receiver, _pool = build_channel(env, cost)
    channel.forced_cuts.extend([10])

    def producer():
        record = StreamRecord(1, key=0)
        yield from channel.append_element(record, element_size(record))

    run(env, producer())
    assert channel.try_flush_from_timer() is None


def test_buffer_pool_peak_tracking():
    env = Environment()
    cost = CostModel(buffer_size_bytes=4096)
    channel, receiver, pool = build_channel(env, cost, input_capacity=64)

    def producer():
        for i in range(8):
            record = StreamRecord(i, key=0)
            yield from channel.append_element(record, element_size(record))
            yield from channel.flush("test")

    run(env, producer())
    assert pool.peak_in_use >= 1
    assert pool.peak_in_use <= pool.total_buffers


def test_writer_broadcast_goes_to_every_channel():
    env = Environment()
    cost = CostModel(buffer_size_bytes=4096)
    pool = BufferPool(env, 16 * cost.buffer_size_bytes, cost.buffer_size_bytes, "o")
    receivers = []
    channels = []
    for i in range(3):
        link = NetworkLink(env, cost, f"l{i}")
        receiver = InputChannel(env, i, capacity=16)
        link.attach_receiver(receiver)
        receivers.append(receiver)
        channels.append(OutputChannel(env, cost, i, link, pool, lambda s: None))
    writer = RecordWriter(env, cost, channels, HashPartitioner(), lambda s: None)

    from repro.graph.elements import Watermark

    def producer():
        yield from writer.broadcast(Watermark(7.0))
        yield from writer.flush_all()

    run(env, producer())
    for receiver in receivers:
        elements = [el for b in receiver.queue.items for el in b.elements]
        assert elements == [Watermark(7.0)]
