"""Integration tests for links, gates, and writers (no runtime layer yet)."""

import pytest

from repro.config import CostModel
from repro.graph.elements import CheckpointBarrier, StreamRecord
from repro.net import (
    BufferPool,
    HashPartitioner,
    InputChannel,
    InputGate,
    NetworkLink,
    OutputChannel,
    RecordWriter,
    RebalancePartitioner,
)
from repro.sim import Environment


def make_cost(**overrides):
    cost = CostModel(**overrides)
    return cost


def build_pair(env, cost, n_channels=1, input_capacity=8, pool_buffers=10):
    """One writer with n channels wired to one input gate."""
    charges = []
    charge = charges.append
    pool = BufferPool(
        env, pool_buffers * cost.buffer_size_bytes, cost.buffer_size_bytes, "out"
    )
    links, out_channels, in_channels = [], [], []
    for i in range(n_channels):
        link = NetworkLink(env, cost, name=f"l{i}")
        in_ch = InputChannel(env, i, capacity=input_capacity)
        link.attach_receiver(in_ch)
        links.append(link)
        in_channels.append(in_ch)
        out_channels.append(OutputChannel(env, cost, i, link, pool, charge))
    gate = InputGate(env, in_channels)
    writer = RecordWriter(
        env,
        cost,
        out_channels,
        RebalancePartitioner() if n_channels > 1 else HashPartitioner(),
        charge,
    )
    return writer, gate, links, pool, charges


def drain_records(env, gate, count):
    got = []

    def consumer():
        while len(got) < count:
            _idx, buffer = yield from gate.next_buffer()
            for el in buffer.elements:
                if el.is_record:
                    got.append(el.value)
            if buffer.recycle_on_consume:
                buffer.recycle()

    env.process(consumer())
    return got


def test_records_flow_fifo_through_link():
    env = Environment()
    cost = make_cost()
    writer, gate, _links, _pool, _ = build_pair(env, cost)
    got = drain_records(env, gate, 50)

    def producer():
        for i in range(50):
            yield from writer.emit(StreamRecord(i, key=0))
        yield from writer.flush_all()

    env.process(producer())
    env.run()
    assert got == list(range(50))


def test_buffer_cut_when_full():
    env = Environment()
    cost = make_cost(buffer_size_bytes=128)
    writer, gate, links, _pool, _ = build_pair(env, cost)
    got = drain_records(env, gate, 40)

    def producer():
        for i in range(40):
            yield from writer.emit(StreamRecord(i, key=0))
        yield from writer.flush_all()

    env.process(producer())
    env.run()
    assert got == list(range(40))
    # 128-byte buffers hold 4 records of 32 bytes: at least 10 buffers.
    assert links[0].buffers_carried >= 10


def test_backpressure_blocks_producer_when_consumer_slow():
    env = Environment()
    cost = make_cost(buffer_size_bytes=128)
    writer, gate, _links, pool, _ = build_pair(env, cost, input_capacity=2, pool_buffers=4)
    produced = []

    def producer():
        for i in range(200):
            yield from writer.emit(StreamRecord(i, key=0))
            yield from writer.flush_all()
            produced.append(i)

    def slow_consumer():
        while True:
            _idx, buffer = yield from gate.next_buffer()
            yield env.timeout(1.0)
            if buffer.recycle_on_consume:
                buffer.recycle()

    env.process(producer())
    env.process(slow_consumer())
    env.run(until=10.0)
    # Pipeline depth is pool(4) + wire(4) + input queue(2) plus the one being
    # consumed; the producer must be throttled well below 200.
    assert len(produced) < 20
    assert pool.available_buffers == 0


def test_rebalance_round_robin_across_channels():
    env = Environment()
    cost = make_cost()
    writer, gate, _links, _pool, _ = build_pair(env, cost, n_channels=3)
    seen_channels = []

    def consumer():
        while len(seen_channels) < 3:
            idx, buffer = yield from gate.next_buffer()
            seen_channels.append(idx)
            if buffer.recycle_on_consume:
                buffer.recycle()

    def producer():
        for i in range(3):
            yield from writer.emit(StreamRecord(i, key=i))
        yield from writer.flush_all()

    env.process(producer())
    env.process(consumer())
    env.run()
    assert sorted(seen_channels) == [0, 1, 2]


def test_hash_partitioning_is_stable():
    env = Environment()
    cost = make_cost()
    writer, gate, _links, _pool, _ = build_pair(env, cost, n_channels=4)
    part = HashPartitioner()
    record = StreamRecord("payload", key="user-42")
    first = part.select(record, 4)
    assert all(part.select(record, 4) == first for _ in range(10))


def test_barrier_is_flushed_immediately_and_advances_epoch():
    env = Environment()
    cost = make_cost()
    writer, gate, _links, _pool, _ = build_pair(env, cost)
    elements = []

    def consumer():
        while len(elements) < 3:
            _idx, buffer = yield from gate.next_buffer()
            elements.extend(buffer.elements)
            if buffer.recycle_on_consume:
                buffer.recycle()

    def producer():
        yield from writer.emit(StreamRecord(1, key=0))
        yield from writer.broadcast_barrier(CheckpointBarrier(1))
        yield from writer.emit(StreamRecord(2, key=0))
        yield from writer.flush_all()

    env.process(producer())
    env.process(consumer())
    env.run()
    kinds = [type(el).__name__ for el in elements]
    assert kinds == ["StreamRecord", "CheckpointBarrier", "StreamRecord"]
    assert writer.channels[0].epoch == 1


def test_epoch_tagging_of_buffers():
    env = Environment()
    cost = make_cost()
    writer, gate, _links, _pool, _ = build_pair(env, cost)
    buffers = []

    def consumer():
        while len(buffers) < 3:
            _idx, buffer = yield from gate.next_buffer()
            buffers.append(buffer)

    def producer():
        yield from writer.emit(StreamRecord(1, key=0))
        yield from writer.broadcast_barrier(CheckpointBarrier(1))
        yield from writer.emit(StreamRecord(2, key=0))
        yield from writer.flush_all()

    env.process(producer())
    env.process(consumer())
    env.run()
    # Pre-barrier buffer (with the barrier riding last) is epoch 0; the
    # post-barrier buffer is epoch 1.
    assert [b.epoch for b in buffers] == [0, 1]
    assert buffers[0].elements[-1].is_barrier


def test_alignment_blocks_channel_until_unblocked():
    env = Environment()
    cost = make_cost()
    writer, gate, _links, _pool, _ = build_pair(env, cost, n_channels=2)
    order = []

    def producer():
        # channel 0 then channel 1 (rebalance round-robin)
        yield from writer.emit(StreamRecord("a", key=0))
        yield from writer.emit(StreamRecord("b", key=0))
        yield from writer.flush_all()

    def consumer():
        idx, buffer = yield from gate.next_buffer()
        order.append((idx, buffer.elements[0].value))
        gate.block_channel(1 - idx)  # block the other channel
        # give the other channel's data time to arrive and defer
        yield env.timeout(1.0)
        assert gate.poll_buffer() is None
        gate.unblock_all()
        idx2, buffer2 = yield from gate.next_buffer()
        order.append((idx2, buffer2.elements[0].value))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert len(order) == 2
    assert {o[1] for o in order} == {"a", "b"}


def test_dead_receiver_drops_buffers():
    env = Environment()
    cost = make_cost()
    writer, gate, links, pool, _ = build_pair(env, cost)
    links[0].detach_receiver()

    def producer():
        for i in range(5):
            yield from writer.emit(StreamRecord(i, key=0))
            yield from writer.flush_all()

    env.process(producer())
    env.run()
    assert links[0].dropped_buffers == 5
    # Dropped vanilla buffers are recycled: no pool leak.
    assert pool.available_buffers == pool.total_buffers


def test_writer_snapshot_restore_roundtrip():
    env = Environment()
    cost = make_cost()
    writer, gate, _links, _pool, _ = build_pair(env, cost, n_channels=2)

    def producer():
        for i in range(10):
            yield from writer.emit(StreamRecord(i, key=i))
        yield from writer.flush_all()

    env.process(producer())
    drain_records(env, gate, 10)
    env.run()
    state = writer.snapshot_state()
    writer.channels[0].seq = 999
    writer.restore_state(state)
    assert writer.channels[0].seq != 999
    assert state["partitioner"] == 10


def test_input_channel_close_fails_pending_put_and_recycles():
    env = Environment()
    cost = make_cost()
    writer, gate, links, pool, _ = build_pair(env, cost, input_capacity=1, pool_buffers=4)

    def producer():
        for i in range(10):
            yield from writer.emit(StreamRecord(i, key=0))
            yield from writer.flush_all()

    env.process(producer())
    env.run(until=0.5)
    gate.close()
    env.run(until=1.0)
    assert links[0].dropped_buffers > 0
