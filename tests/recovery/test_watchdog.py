"""Recovery-liveness watchdog: stalls are announced, health is untouched.

Two properties:

1.  **A frozen recovery never dies silently.**  The ``recovery_freeze``
    fault (kill + permanent input partition) makes replay progress
    impossible; the watchdog must announce ``degraded:recovery_stalled``,
    escalate through the ladder, and terminate the run with a structured
    :class:`~repro.errors.RecoveryStallError` carrying the stuck phase and
    per-task replay positions — never the bare 120-simulated-second
    deadline death that seed 64853 used to produce.

2.  **Passivity.**  The watchdog piggybacks on checkpoint-coordinator
    ticks and adds zero simulation events, so enabling it must leave a
    healthy (and even a failure-and-recover) run byte-identical — checked
    here run-vs-run and, stronger, by the golden determinism digests whose
    recorded runs include a kill.
"""

import pytest

from repro.chaos.plan import FaultPlan
from repro.chaos.soak import fast_chaos_config, run_chaos_experiment
from repro.config import JobConfig, WatchdogConfig
from repro.errors import JobError, RecoveryStallError
from repro.recovery.watchdog import RecoveryWatchdog

LIMIT = 120.0


def freeze_plan(at=0.4, target="stage1[0]"):
    return FaultPlan(seed=0).add(at, "recovery_freeze", target=target)


class TestStallDetection:
    def test_frozen_recovery_raises_structured_stall(self):
        with pytest.raises(RecoveryStallError) as excinfo:
            run_chaos_experiment(
                freeze_plan(),
                config=fast_chaos_config(seed=0, checkpoint_interval=0.25),
                limit=LIMIT,
            )
        err = excinfo.value
        assert err.phase, "stall error must name the stuck phase"
        assert err.last_progress_at is not None
        assert err.last_progress_at < LIMIT
        assert err.replay_positions, "per-task replay positions must ride along"
        for name, pos in err.replay_positions.items():
            assert "status" in pos and "records_processed" in pos, name

    def test_stall_is_announced_not_silent(self):
        env_state = {}

        def capture(jm):
            env_state["jm"] = jm
            return freeze_plan()

        with pytest.raises(RecoveryStallError):
            run_chaos_experiment(
                capture,
                config=fast_chaos_config(seed=0, checkpoint_interval=0.25),
                limit=LIMIT,
            )
        jm = env_state["jm"]
        kinds = [kind for (_t, kind, _w) in jm.recovery_events]
        assert "degraded:recovery_stalled" in kinds
        assert any(kind.startswith("recovery-stalled:") for kind in kinds)
        assert jm.watchdog.stalls_detected >= 1
        assert jm.watchdog.escalations >= 1
        # The terminal verdict is a watchdog decision, not a deadline death:
        # the job "crashed" via the structured stall error.
        assert any(
            isinstance(exc, RecoveryStallError) for (_n, exc) in jm.crashed
        )

    def test_stall_verdict_surfaces_in_metrics(self):
        from repro.metrics.collectors import stall_summary

        state = {}

        def capture(jm):
            state["jm"] = jm
            return freeze_plan()

        with pytest.raises(RecoveryStallError):
            run_chaos_experiment(
                capture,
                config=fast_chaos_config(seed=0, checkpoint_interval=0.25),
                limit=LIMIT,
            )
        summary = stall_summary(state["jm"])
        assert summary["verdict"] == "stalled"
        assert summary["stalls_detected"] >= 1
        assert summary["stalls_announced"] >= 1

    def test_deadline_expiry_is_structured_with_watchdog_disabled(self):
        """Even with the watchdog off, a hung run's deadline death must be a
        structured diagnostic (satellite: run_until_done), not a bare
        JobError string."""
        config = fast_chaos_config(seed=0, checkpoint_interval=0.25)
        config.watchdog = WatchdogConfig(enabled=False)
        with pytest.raises(RecoveryStallError) as excinfo:
            run_chaos_experiment(freeze_plan(), config=config, limit=20.0)
        err = excinfo.value
        assert "did not finish within" in str(err)
        assert err.replay_positions


class TestPassivity:
    def _run(self, enabled):
        config = fast_chaos_config(seed=3, checkpoint_interval=0.25)
        config.watchdog = WatchdogConfig(enabled=enabled)
        plan = FaultPlan(seed=3).add(0.4, "task_kill", target="stage1[0]")
        return run_chaos_experiment(plan, config=config, limit=LIMIT)

    def test_kill_and_recover_run_identical_with_watchdog_on_and_off(self):
        on = self._run(enabled=True)
        off = self._run(enabled=False)
        assert on.verdict == off.verdict == "exactly-once"
        assert on.duration == off.duration
        assert on.delivered == off.delivered
        assert on.recovery_events == off.recovery_events

    def test_golden_digests_unchanged(self):
        """The golden record run includes a kill at t=0.4; any event the
        watchdog inserted would shift its schedule hash."""
        from repro.bench import check_goldens

        assert check_goldens() == []


class TestConfigAndTimeout:
    def test_auto_stall_timeout_tracks_config(self):
        from repro.external.kafka import DurableLog
        from repro.runtime.jobmanager import JobManager
        from repro.sim.core import Environment
        from repro.workloads.synthetic import synthetic_chain

        config = fast_chaos_config(seed=0, checkpoint_interval=0.25)
        env = Environment()
        log = DurableLog()
        graph = synthetic_chain(log, depth=2, parallelism=1,
                                total_per_partition=10)
        jm = JobManager(env, graph, config)
        watchdog = jm.watchdog
        # recovery_step_deadline=5.0 dominates: 2 * 5.0 + 1.0.
        assert watchdog.stall_timeout == pytest.approx(11.0)
        # An explicit setting wins over the derivation.
        config.watchdog.stall_timeout = 42.0
        assert watchdog.stall_timeout == 42.0

    def test_watchdog_config_validation(self):
        with pytest.raises(JobError):
            JobConfig(watchdog=WatchdogConfig(stall_timeout=-1.0)).validate()
        with pytest.raises(JobError):
            JobConfig(watchdog=WatchdogConfig(escalation_limit=-1)).validate()
        JobConfig(watchdog=WatchdogConfig(stall_timeout=None)).validate()

    def test_disarmed_watchdog_reports_no_progress_timestamp(self):
        from repro.external.kafka import DurableLog
        from repro.runtime.jobmanager import JobManager
        from repro.sim.core import Environment
        from repro.workloads.synthetic import synthetic_chain

        env = Environment()
        log = DurableLog()
        graph = synthetic_chain(log, depth=2, parallelism=1,
                                total_per_partition=10)
        jm = JobManager(env, graph, fast_chaos_config(seed=0))
        assert isinstance(jm.watchdog, RecoveryWatchdog)
        assert jm.watchdog.last_progress_at is None
