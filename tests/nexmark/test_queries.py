"""End-to-end smoke tests: every Nexmark query runs and produces output."""

import pytest

from repro.config import FaultToleranceMode
from repro.harness.experiment import run_experiment
from repro.nexmark.generator import NexmarkGenerator
from repro.nexmark.model import Bid, Person
from repro.nexmark.queries import QUERIES, q1, q3

from tests.runtime.helpers import make_config

#: Queries that emit an output per matching input (not window-bursty).
STREAMY = ("Q1", "Q2", "Q13", "Q14")


def build_query(name, events=2500, rate=1500.0, parallelism=2):
    def graph_fn(log, external):
        generator = NexmarkGenerator(seed=5, rate_per_partition=rate)
        generator.install_topic(log, "nexmark", parallelism, events)
        log.create_topic("out", parallelism)
        return QUERIES[name](log, parallelism=parallelism, external=external)

    return graph_fn


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_query_runs_and_produces_output(name):
    config = make_config(FaultToleranceMode.CLONOS, checkpoint_interval=0.5)
    result = run_experiment(
        build_query(name), config, with_external=(name == "Q13"), limit=300
    )
    assert len(result.output_values()) > 0, f"{name} produced no output"


def test_q1_converts_currency():
    config = make_config(FaultToleranceMode.CLONOS)
    result = run_experiment(build_query("Q1"), config, limit=300)
    outputs = result.output_values()
    assert all(isinstance(v, Bid) for v in outputs)
    generator = NexmarkGenerator(seed=5, rate_per_partition=1500.0)
    bids = [
        generator.generate(p, off)
        for p in range(2)
        for off in range(2500)
        if isinstance(generator.generate(p, off), Bid)
    ]
    assert len(outputs) == len(bids)
    expected_prices = sorted(round(b.price * 0.908, 2) for b in bids)
    assert sorted(v.price for v in outputs) == expected_prices


def test_q2_filters_auctions():
    config = make_config(FaultToleranceMode.CLONOS)
    result = run_experiment(build_query("Q2"), config, limit=300)
    assert all(auction % 123 in (0, 1, 2) for auction, _price in result.output_values())


def test_q3_join_output_shape():
    config = make_config(FaultToleranceMode.CLONOS)
    result = run_experiment(build_query("Q3", events=4000), config, limit=300)
    for name, _city, state, _auction in result.output_values():
        assert state in ("OR", "ID", "CA")
        assert isinstance(name, str)


def test_q5_reports_hot_items():
    config = make_config(FaultToleranceMode.CLONOS)
    result = run_experiment(build_query("Q5", events=4000), config, limit=300)
    for row in result.output_values():
        assert row["bids"] >= 1


def test_q12_counts_are_positive():
    config = make_config(FaultToleranceMode.CLONOS)
    result = run_experiment(build_query("Q12"), config, limit=300)
    assert all(count >= 1 for _bidder, count in result.output_values())


def test_query_depths_match_paper_shape():
    """Q1/Q2 are shallow (D=2); Q5/Q7 carry the aggregation trees (D>=5)."""
    from repro.external.kafka import DurableLog

    log = DurableLog()
    NexmarkGenerator().install_topic(log, "nexmark", 2, 100)
    log.create_topic("out", 2)
    assert QUERIES["Q1"](log).depth == 2
    depths = {}
    for name in ("Q3", "Q5", "Q7", "Q8"):
        log2 = DurableLog()
        NexmarkGenerator().install_topic(log2, "nexmark", 2, 100)
        log2.create_topic("out", 2)
        depths[name] = QUERIES[name](log2).depth
    assert depths["Q3"] == 3
    assert depths["Q5"] >= 5
    assert depths["Q7"] >= 5
    assert depths["Q8"] == 3
