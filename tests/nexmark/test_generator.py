"""Tests for the deterministic Nexmark generator."""

from collections import Counter

from repro.external.kafka import DurableLog
from repro.nexmark.generator import (
    AUCTION_PROPORTION,
    BID_PROPORTION,
    PERSON_PROPORTION,
    PROPORTION_DENOMINATOR,
    NexmarkGenerator,
)
from repro.nexmark.model import Auction, Bid, Person


def test_generation_is_deterministic():
    g1 = NexmarkGenerator(seed=1)
    g2 = NexmarkGenerator(seed=1)
    for off in range(200):
        assert repr(g1.generate(0, off)) == repr(g2.generate(0, off))


def test_different_seeds_differ():
    g1, g2 = NexmarkGenerator(seed=1), NexmarkGenerator(seed=2)
    assert any(
        repr(g1.generate(0, off)) != repr(g2.generate(0, off)) for off in range(50)
    )


def test_event_mix_matches_proportions():
    gen = NexmarkGenerator()
    kinds = Counter(type(gen.generate(0, off)).__name__ for off in range(500))
    assert kinds["Person"] == 500 * PERSON_PROPORTION // PROPORTION_DENOMINATOR
    assert kinds["Auction"] == 500 * AUCTION_PROPORTION // PROPORTION_DENOMINATOR
    assert kinds["Bid"] == 500 * BID_PROPORTION // PROPORTION_DENOMINATOR


def test_bids_reference_existing_auctions():
    gen = NexmarkGenerator()
    auction_ids = set()
    for off in range(1000):
        event = gen.generate(0, off)
        if isinstance(event, Auction):
            auction_ids.add(event.auction_id)
        elif isinstance(event, Bid):
            assert event.auction in auction_ids


def test_auctions_reference_existing_persons():
    gen = NexmarkGenerator()
    person_ids = set()
    for off in range(1000):
        event = gen.generate(0, off)
        if isinstance(event, Person):
            person_ids.add(event.person_id)
        elif isinstance(event, Auction):
            assert event.seller in person_ids


def test_partitions_have_disjoint_id_spaces():
    gen = NexmarkGenerator()
    ids_p0 = {gen.generate(0, off).person_id for off in range(0, 500, 50)}
    ids_p1 = {gen.generate(1, off).person_id for off in range(0, 500, 50)}
    assert not ids_p0 & ids_p1


def test_install_topic_serves_by_arrival_time():
    gen = NexmarkGenerator(rate_per_partition=100.0)
    log = DurableLog()
    gen.install_topic(log, "nexmark", partitions=2, total_per_partition=1000)
    partition = log.partition("nexmark", 0)
    entries = partition.read(0, 1000, now=1.0)
    assert len(entries) == 101  # offsets 0..100 available by t=1 at 100/s
    assert partition.end_offset(float("inf")) == 1000


def test_event_times_track_offsets():
    gen = NexmarkGenerator(rate_per_partition=200.0)
    assert gen.generate(0, 100).event_time == 0.5
