"""Recovery on the nondeterministic Nexmark queries (Q12/Q13/Q14).

These are the workloads the paper's introduction motivates: under Clonos a
mid-query failure must neither crash, nor lose, nor contradict previously
emitted results.
"""

from collections import Counter

import pytest

from repro.config import FaultToleranceMode
from repro.harness.experiment import run_experiment
from repro.nexmark.generator import NexmarkGenerator
from repro.nexmark.queries import QUERIES

from tests.runtime.helpers import make_config


def build_query(name, events=3000, rate=1500.0, parallelism=2):
    def graph_fn(log, external):
        generator = NexmarkGenerator(seed=5, rate_per_partition=rate)
        generator.install_topic(log, "nexmark", parallelism, events)
        log.create_topic("out", parallelism)
        return QUERIES[name](log, parallelism=parallelism, external=external)

    return graph_fn


@pytest.mark.parametrize("name,victim", [
    ("Q12", "pt-count[0]"),
    ("Q13", "enrich[0]"),
    ("Q14", "calc[0]"),
])
def test_nondeterministic_query_survives_failure(name, victim):
    config = make_config(FaultToleranceMode.CLONOS, checkpoint_interval=0.4)
    result = run_experiment(
        build_query(name),
        config,
        kills=[(0.8, victim)],
        with_external=(name == "Q13"),
        limit=600,
    )
    assert result.output_values(), f"{name} produced no output after recovery"
    assert any(kind == "recovered" for _t, kind, _n in result.recovery_events)


def test_q13_enrichment_values_unique_per_bid():
    """Q13 queries the drifting side-input service; after recovery each bid
    must still have exactly one enrichment (no contradictory re-queries)."""
    config = make_config(FaultToleranceMode.CLONOS, checkpoint_interval=0.4)
    result = run_experiment(
        build_query("Q13", events=4000),
        config,
        kills=[(0.8, "enrich[0]")],
        with_external=True,
        limit=600,
    )
    # With exactly-once + causal replay, no output row is emitted twice —
    # in particular no bid gets re-enriched with a different (drifted) value
    # alongside its original one.
    rows = Counter(result.output_values())
    assert all(c == 1 for c in rows.values()), "duplicated enrichments"


def test_q12_under_flink_also_consistent_after_global_restart():
    """Sanity: global rollback is exactly-once for state too — only its
    availability differs (it needs a full restart)."""
    config = make_config(FaultToleranceMode.GLOBAL_ROLLBACK, checkpoint_interval=0.4)
    result = run_experiment(
        build_query("Q12"),
        config,
        kills=[(0.8, "pt-count[0]")],
        limit=600,
    )
    assert result.output_values()
