"""Tests for the keyed state backend."""

import pytest

from repro.errors import StateError
from repro.state import (
    HashMapStateBackend,
    ListStateDescriptor,
    MapStateDescriptor,
    ReducingStateDescriptor,
    ValueStateDescriptor,
)


@pytest.fixture
def backend():
    return HashMapStateBackend()


def test_value_state_is_scoped_by_key(backend):
    state = backend.get_state(ValueStateDescriptor("v", default=0))
    backend.set_current_key("a")
    state.update(1)
    backend.set_current_key("b")
    assert state.value() == 0
    state.update(2)
    backend.set_current_key("a")
    assert state.value() == 1


def test_value_state_default_is_copied(backend):
    state = backend.get_state(ValueStateDescriptor("v", default=[]))
    backend.set_current_key("a")
    got = state.value()
    got.append(1)
    assert state.value() == []


def test_access_without_key_raises(backend):
    state = backend.get_state(ValueStateDescriptor("v"))
    with pytest.raises(StateError):
        state.value()


def test_list_state_append_and_clear(backend):
    state = backend.get_state(ListStateDescriptor("l"))
    backend.set_current_key("k")
    state.add(1)
    state.add(2)
    assert state.get() == [1, 2]
    state.clear()
    assert state.get() == []


def test_map_state_operations(backend):
    state = backend.get_state(MapStateDescriptor("m"))
    backend.set_current_key("k")
    state.put("x", 1)
    state.put("y", 2)
    assert state.get("x") == 1
    assert state.contains("y")
    state.remove("x")
    assert not state.contains("x")
    assert dict(state.items()) == {"y": 2}


def test_reducing_state(backend):
    state = backend.get_state(ReducingStateDescriptor("r", lambda a, b: a + b))
    backend.set_current_key("k")
    state.add(3)
    state.add(4)
    assert state.get() == 7


def test_conflicting_descriptor_kinds_rejected(backend):
    backend.get_state(ValueStateDescriptor("s"))
    with pytest.raises(StateError):
        backend.get_state(ListStateDescriptor("s"))


def test_snapshot_restore_roundtrip_is_isolated(backend):
    state = backend.get_state(ValueStateDescriptor("v", 0))
    backend.set_current_key("a")
    state.update(10)
    snap = backend.snapshot()
    state.update(20)
    backend.restore(snap)
    assert state.value() == 10
    # Restored tables are deep copies: mutating the snapshot has no effect.
    snap["v"]["a"] = 999
    assert state.value() == 10


def test_size_bytes_grows_with_state(backend):
    state = backend.get_state(ListStateDescriptor("l"))
    backend.set_current_key("k")
    empty = backend.size_bytes()
    for i in range(100):
        state.add(i)
    assert backend.size_bytes() > empty + 500


def test_keys_enumeration(backend):
    state = backend.get_state(ValueStateDescriptor("v"))
    for key in ("a", "b", "c"):
        backend.set_current_key(key)
        state.update(1)
    assert sorted(backend.keys("v")) == ["a", "b", "c"]
