"""Tests for task snapshots and the checkpoint store."""

import pytest

from repro.config import CostModel
from repro.errors import CheckpointError
from repro.external.dfs import DistributedFileSystem
from repro.sim.core import Environment
from repro.state.snapshot import SnapshotStore, TaskSnapshot


def snapshot_of(name="t", cid=1, keys=100):
    keyed = {"state": {i: "x" * 50 for i in range(keys)}}
    return TaskSnapshot(name, cid, keyed, None, {"edges": []}, {}, None)


def drive(env, gen):
    out = {}

    def proc():
        out["value"] = yield from gen

    env.process(proc())
    env.run()
    return out.get("value")


def test_snapshot_size_scales_with_state():
    small = snapshot_of(keys=10)
    large = snapshot_of(keys=1000)
    assert large.size_bytes > small.size_bytes * 10


def test_save_load_roundtrip():
    env = Environment()
    store = SnapshotStore(DistributedFileSystem(env, CostModel()))
    snapshot = snapshot_of(cid=3)
    drive(env, store.save(snapshot))
    loaded = drive(env, store.load("t", 3))
    assert loaded is snapshot
    assert store.latest_id("t") == 3


def test_load_missing_raises():
    env = Environment()
    store = SnapshotStore(DistributedFileSystem(env, CostModel()))
    with pytest.raises(CheckpointError):
        list(store.load("t", 9))


def test_discard_older_than():
    env = Environment()
    store = SnapshotStore(DistributedFileSystem(env, CostModel()))
    for cid in (1, 2, 3):
        drive(env, store.save(snapshot_of(cid=cid)))
    assert store.discard_older_than(3) == 2
    assert store.get("t", 1) is None
    assert store.get("t", 3) is not None


def test_incremental_mode_charges_delta_only():
    env = Environment()
    cost = CostModel(dfs_write_bandwidth=1e6, dfs_latency=0.0)
    dfs = DistributedFileSystem(env, cost)
    store = SnapshotStore(dfs, incremental=True)
    snapshot = snapshot_of(keys=1000)
    drive(env, store.save(snapshot, delta_bytes=1000))
    assert dfs.bytes_written == 1000  # not snapshot.size_bytes

    full_store = SnapshotStore(dfs, incremental=False)
    before = dfs.bytes_written
    drive(env, full_store.save(snapshot_of(name="u", keys=1000), delta_bytes=1000))
    assert dfs.bytes_written - before > 10000


def test_latest_id_none_for_unknown_task():
    env = Environment()
    store = SnapshotStore(DistributedFileSystem(env, CostModel()))
    assert store.latest_id("ghost") is None
