"""Tests for the synthetic chain workload."""

from collections import Counter

import pytest

from repro.config import FaultToleranceMode
from repro.harness.experiment import run_experiment
from repro.workloads.synthetic import synthetic_chain

from tests.runtime.helpers import make_config


def graph_fn(depth=4, parallelism=2, total=1200, nondeterministic=False):
    def build(log, external):
        return synthetic_chain(
            log,
            depth=depth,
            parallelism=parallelism,
            rate_per_partition=1500.0,
            total_per_partition=total,
            state_bytes_per_task=8192,
            nondeterministic=nondeterministic,
            out_topic="out",
        )

    return build


def test_chain_depth_and_parallelism():
    from repro.external.kafka import DurableLog

    graph = synthetic_chain(DurableLog(), depth=5, parallelism=3, out_topic="out")
    assert graph.depth == 5
    assert graph.total_tasks == 5 * 3 + 3  # stages+sink... src counts too


def test_chain_processes_every_record_exactly_once():
    config = make_config(FaultToleranceMode.CLONOS)
    result = run_experiment(graph_fn(), config, out_topic="out", limit=300)
    values = result.output_values()
    origins = Counter((v[0], v[1]) for v in values)
    assert len(origins) == 2 * 1200
    assert all(c == 1 for c in origins.values())


def test_chain_exactly_once_under_mid_stage_failure():
    config = make_config(FaultToleranceMode.CLONOS)
    result = run_experiment(
        graph_fn(), config, kills=[(0.4, "stage2[0]")], out_topic="out", limit=300
    )
    origins = Counter((v[0], v[1]) for v in result.output_values())
    assert len(origins) == 2 * 1200
    assert all(c == 1 for c in origins.values())


def test_nondeterministic_chain_consistent_under_clonos():
    config = make_config(FaultToleranceMode.CLONOS)
    result = run_experiment(
        graph_fn(nondeterministic=True),
        config,
        kills=[(0.4, "stage2[0]")],
        out_topic="out",
        limit=300,
    )
    origins = Counter((v[0], v[1]) for v in result.output_values())
    assert len(origins) == 2 * 1200
    assert all(c == 1 for c in origins.values())
