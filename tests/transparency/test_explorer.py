"""Failure-transparency explorer: enumeration is exhaustive, verdicts sound.

The CI gate runs the full default matrix via ``repro transparency``; the
tests here keep a reduced matrix (the 2- and 3-operator graphs) in the
tier-1 suite so a transparency regression fails the PR, and unit-test the
enumeration and verdict logic in isolation.
"""

from collections import Counter

import pytest

from repro.transparency.explorer import (
    Baseline,
    CaseResult,
    FailurePoint,
    default_topologies,
    enumerate_failure_points,
    explore_topology,
    run_baseline,
    run_case,
    suite_payload,
)


def topo(name):
    (match,) = [t for t in default_topologies() if t.name == name]
    return match


class TestEnumeration:
    def baseline(self):
        return Baseline(
            projection=Counter(),
            duration=1.0,
            snapshot_times={
                ("src[0]", 1): 0.25,
                ("src[0]", 2): 0.50,
                ("sink[0]", 1): 0.26,
                ("sink[0]", 2): 0.51,
            },
            completed={1: 0.30, 2: 0.55},
            tasks=("sink[0]", "src[0]"),
        )

    def test_singles_cover_task_x_boundary_x_side(self):
        points = enumerate_failure_points(self.baseline(), compound=False)
        labels = {p.label for p in points}
        assert labels == {
            "src[0]@cp1-pre", "src[0]@cp1-post",
            "src[0]@cp2-pre", "src[0]@cp2-post",
            "sink[0]@cp1-pre", "sink[0]@cp1-post",
            "sink[0]@cp2-pre", "sink[0]@cp2-post",
        }
        for point in points:
            assert len(point.kills) == 1
            (at, victim) = point.kills[0]
            side = point.label.rsplit("-", 1)[1]
            cid = int(point.label.split("@cp")[1].split("-")[0])
            snap = self.baseline().snapshot_times[(victim, cid)]
            assert (at < snap) == (side == "pre")

    def test_compound_pairs_overlap_recoveries(self):
        points = enumerate_failure_points(self.baseline(), compound=True)
        pairs = [p for p in points if p.label.startswith("pair:")]
        assert len(pairs) == 1  # C(2, 2)
        (pair,) = pairs
        assert len(pair.kills) == 2
        (t0, _a), (t1, _b) = pair.kills
        assert t1 > t0  # second kill lands inside the first recovery

    def test_boundaries_knob_truncates_epochs(self):
        points = enumerate_failure_points(
            self.baseline(), boundaries=1, compound=False
        )
        assert {p.label for p in points} == {
            "src[0]@cp1-pre", "src[0]@cp1-post",
            "sink[0]@cp1-pre", "sink[0]@cp1-post",
        }


class TestPairTopology:
    def test_baseline_is_exactly_once_and_harvests_boundaries(self):
        baseline = run_baseline(topo("pair-p1"))
        assert set(baseline.projection) == {(0, off) for off in range(600)}
        assert all(c == 1 for c in baseline.projection.values())
        assert len(baseline.completed) >= 2
        assert baseline.tasks == ("sink[0]", "src[0]")

    def test_full_matrix_has_no_silent_divergence(self):
        report = explore_topology(topo("pair-p1"))
        assert report.cases, "matrix must not be empty"
        assert report.violations == []
        assert report.transparent + report.announced + report.skipped == len(
            report.cases
        )


class TestChainTopology:
    def test_three_operator_matrix_has_no_silent_divergence(self):
        report = explore_topology(topo("chain3-p1"))
        assert report.cases
        assert report.violations == []
        # Every task must be probed on both sides of at least one boundary.
        probed = {
            p.kills[0][1]
            for p in (c.point for c in report.cases)
            if not p.label.startswith("pair:")
        }
        assert probed == {"src[0]", "stage1[0]", "sink[0]"}


class TestPayload:
    def test_payload_shape_and_tallies(self):
        report = explore_topology(topo("pair-p1"), boundaries=1, compound=False)
        payload = suite_payload([report])
        assert payload["suite"] == "transparency"
        assert payload["cases_total"] == len(report.cases)
        assert payload["violations"] == 0
        assert payload["violating_cases"] == []
        (entry,) = payload["topologies"]
        assert entry["name"] == "pair-p1"
        assert entry["operators"] == 2
        assert (
            entry["transparent"]
            + entry["announced_degradation"]
            + entry["skipped"]
            == entry["cases"]
        )

    def test_violating_case_is_replayable_from_payload(self):
        point = FailurePoint(label="x@cp1-pre", kills=((0.23, "x"),))
        bad = CaseResult(point, "violation:data-loss", missing=3)
        report = explore_topology(topo("pair-p1"), boundaries=1, compound=False)
        report.cases.append(bad)
        payload = suite_payload([report])
        assert payload["violations"] == 1
        (case,) = payload["violating_cases"]
        assert case["case"] == "x@cp1-pre"
        assert case["kills"] == [[0.23, "x"]]
        assert case["missing"] == 3


class TestVerdicts:
    def test_kill_that_never_lands_is_skipped_not_transparent(self):
        t = topo("pair-p1")
        expected = {(0, off) for off in range(t.n_records)}
        # Scheduled far beyond the baseline duration (~0.6s): the job ends
        # first, the kill never lands, and the case probed nothing.
        late = FailurePoint(label="src[0]@late", kills=((50.0, "src[0]"),))
        result = run_case(t, late, expected)
        assert result.outcome == "skipped:kill-not-landed"
        assert result.ok

    def test_single_kill_case_is_transparent(self):
        t = topo("pair-p1")
        expected = {(0, off) for off in range(t.n_records)}
        point = FailurePoint(label="src[0]@cp1-post", kills=((0.27, "src[0]"),))
        result = run_case(t, point, expected)
        assert result.outcome == "transparent"
        assert result.missing == 0
        assert result.duplicated == 0
