"""The new fault/workload primitives the scenario pack composes.

Unit-level checks for the poison registry, input shaping, zoned clusters,
and broker fault windows — plus end-to-end checks that the compound
primitives (zone outage, broker outage, sink determinant externalization)
recover with the guarantees the scenarios assert.
"""

import pytest

from repro.chaos import ChaosEngine, FaultPlan, PoisonRegistry
from repro.errors import ExternalSystemError, ScenarioError
from repro.external.kafka import DurableLog
from repro.runtime.cluster import Cluster
from repro.workloads.synthetic import InputBurst, rate_segments_for

from tests.chaos.helpers import (
    assert_exactly_once,
    deploy_chaos_chain,
    origin_counts,
)


# -- poison registry ---------------------------------------------------------


def test_poison_registry_crash_then_quarantine():
    reg = PoisonRegistry(quarantine_after=2)
    reg.arm("stage1[0]", 1)
    # First two encounters crash; the third quarantines; later ones skip.
    assert reg.on_record("stage1[0]", (0, 7)) == "crash"
    assert reg.on_record("stage1[0]", (0, 7)) == "crash"
    assert reg.on_record("stage1[0]", (0, 7)) == "quarantine"
    assert reg.on_record("stage1[0]", (0, 7)) == "skip"
    # Other records pass, other tasks are unaffected.
    assert reg.on_record("stage1[0]", (0, 8)) == "pass"
    assert reg.on_record("stage2[0]", (0, 7)) == "pass"
    assert reg.quarantined_count() == 1
    assert reg.quarantine_log == [("stage1[0]", (0, 7))]


# -- input shaping -----------------------------------------------------------


def test_rate_segments_realize_bursts():
    segments = rate_segments_for(
        1000.0, (InputBurst(start=0.1, duration=0.2, factor=4.0),)
    )
    assert [(pytest.approx(t), r) for (t, r) in segments] == [
        (pytest.approx(0.0), 1000.0),
        (pytest.approx(0.1), 4000.0),
        (pytest.approx(0.3), 1000.0),
    ]
    assert rate_segments_for(1000.0, ()) is None


def test_overlapping_bursts_rejected():
    with pytest.raises(ScenarioError, match="overlap"):
        rate_segments_for(
            1000.0,
            (
                InputBurst(start=0.1, duration=0.3, factor=2.0),
                InputBurst(start=0.2, duration=0.1, factor=3.0),
            ),
        )


def test_shaped_topic_same_values_different_times():
    """A burst reshapes arrival *times* only: record identity (and thus the
    exactly-once projection) matches the flat-rate topic."""
    flat_log, shaped_log = DurableLog(), DurableLog()
    gen = lambda p, o: (p, o)  # noqa: E731
    flat_log.create_generated_topic("t", 1, gen, 1000.0, total_per_partition=100)
    shaped_log.create_shaped_generated_topic(
        "t", 1, gen, 1000.0, total_per_partition=100,
        rate_segments=[(0.0, 1000.0), (0.02, 4000.0), (0.05, 1000.0)],
    )
    flat = flat_log.partition("t", 0)
    shaped = shaped_log.partition("t", 0)
    # Offsets inside/after the 4x window arrive earlier on the shaped topic...
    assert shaped.next_arrival_after(80) < flat.next_arrival_after(80)
    # ...while the generated sequence itself is untouched (same gen_fn).
    flat_values = [v for (_o, _t, v) in flat.read(0, 100)]
    shaped_values = [v for (_o, _t, v) in shaped.read(0, 100)]
    assert flat_values == shaped_values == [(0, o) for o in range(100)]


# -- zoned cluster -----------------------------------------------------------


def test_cluster_zones_round_robin_and_queries():
    cluster = Cluster(6, slots_per_node=2, zones=2)
    assert sorted(cluster.live_zones()) == [0, 1]
    zone0 = [n.node_id for n in cluster.nodes_in_zone(0)]
    zone1 = [n.node_id for n in cluster.nodes_in_zone(1)]
    assert sorted(zone0 + zone1) == list(range(6))
    assert abs(len(zone0) - len(zone1)) <= 1


def test_cluster_rejects_more_zones_than_nodes():
    from repro.errors import JobError

    with pytest.raises(JobError):
        Cluster(2, zones=3)


def test_zone_outage_recovers_with_announcement_at_worst():
    from repro.scenarios.model import WorkloadSpec
    from repro.scenarios.runner import OUT_TOPIC, _build_job

    env, log, jm = _build_job(
        WorkloadSpec(zones=2, spare_nodes=4), seed=3, checkpoint_interval=0.5
    )
    jm.deploy()
    plan = FaultPlan(seed=3).add(0.25, "zone_outage", target="0", duration=0.5)
    engine = ChaosEngine(jm, plan)
    engine.arm()
    jm.run_until_done(limit=600)
    assert engine.applied, engine.skipped
    counts = origin_counts(log, topic=OUT_TOPIC)
    expected = {(p, o) for p in range(2) for o in range(1200)}
    missing = [pair for pair in expected if counts[pair] == 0]
    degradations = [e for e in jm.recovery_events if e[1].startswith("degraded:")]
    # Mass failure may exceed local recovery, but never silently:
    assert not missing
    if any(c > 1 for c in counts.values()):
        assert degradations


# -- broker fault windows ----------------------------------------------------


def test_broker_outage_refuses_then_heals():
    log = DurableLog()
    log.create_topic("out")
    log.set_outage(until=1.0)
    with pytest.raises(ExternalSystemError, match="outage"):
        log.check_available(0.5, "append")
    assert log.failed_ops == 1
    assert log.retry_at(0.5) >= 1.0
    log.check_available(1.5, "append")  # healed: no raise


def test_broker_brownout_is_seeded_and_partial():
    log = DurableLog()
    log.set_brownout(until=1.0, failure_rate=0.5, seed=42)
    outcomes = []
    for i in range(50):
        try:
            log.check_available(0.5, "append")
            outcomes.append(True)
        except ExternalSystemError:
            outcomes.append(False)
    assert any(outcomes) and not all(outcomes)
    # Seeded: an identical log replays the same refusal pattern.
    log2 = DurableLog()
    log2.set_brownout(until=1.0, failure_rate=0.5, seed=42)
    outcomes2 = []
    for i in range(50):
        try:
            log2.check_available(0.5, "append")
            outcomes2.append(True)
        except ExternalSystemError:
            outcomes2.append(False)
    assert outcomes == outcomes2


def test_broker_outage_end_to_end_exactly_once():
    """Sinks crash on the refused append, recover, and the Section 5.5
    external determinant store keeps the re-appended output exactly-once."""
    env, log, jm = deploy_chaos_chain()
    plan = FaultPlan(seed=5).add(0.2, "broker_outage", duration=0.3)
    ChaosEngine(jm, plan).arm()
    jm.run_until_done(limit=600)
    assert any(k == "external-crash" for (_t, k, _w) in jm.recovery_events)
    assert_exactly_once(log, 2, 1200)


def test_sink_determinants_are_externalized():
    """The Section 5.5 contract: the external system stores the sink's
    causal-log bundle alongside its output, so a recovering sink replays
    byte-identically even though no downstream task holds determinants."""
    env, log, jm = deploy_chaos_chain()
    plan = FaultPlan(seed=2).add(0.25, "task_kill", target="sink[0]")
    ChaosEngine(jm, plan).arm()
    jm.run_until_done(limit=600)
    assert log.sink_bundles, "sinks should externalize determinant bundles"
    assert set(log.sink_bundles) <= {"sink[0]", "sink[1]"}
    assert_exactly_once(log, 2, 1200)


# -- compute slowdown --------------------------------------------------------


def test_compute_slowdown_applies_and_restores():
    env, log, jm = deploy_chaos_chain()
    victim = jm.vertices["stage1[1]"]
    node = victim.node_id
    plan = FaultPlan().add(0.1, "compute_slowdown", target="stage1[1]",
                           factor=6.0, duration=0.2)
    ChaosEngine(jm, plan).arm()
    seen = {}
    env.schedule_callback(
        0.15, lambda: seen.setdefault("during", victim.task.compute_slowdown)
    )
    env.schedule_callback(
        0.35, lambda: seen.setdefault("after", victim.task.compute_slowdown)
    )
    jm.run_until_done(limit=600)
    assert seen["during"] == 6.0
    assert seen["after"] == 1.0
    assert node not in jm.node_slowdowns
    assert_exactly_once(log, 2, 1200)
