"""The scenario DSL: strict loading, round-tripping, plan flattening."""

import pytest

from repro.errors import ScenarioError
from repro.scenarios import SCENARIOS, FaultEntry, Phase, Scenario, VerdictSpec
from repro.scenarios.library import scenario_by_name


def _minimal_dict(**overrides):
    data = {
        "name": "one-kill",
        "description": "kill one task",
        "phases": [
            {
                "name": "kill",
                "at": 0.2,
                "faults": [{"kind": "task_kill", "target": "stage1[0]"}],
            }
        ],
        "verdict": {"exactly_once": True},
    }
    data.update(overrides)
    return data


def test_round_trip_every_library_scenario():
    for scenario in SCENARIOS:
        data = scenario.to_dict()
        again = Scenario.from_dict(data)
        assert again == scenario
        assert again.to_dict() == data


def test_round_trip_preserves_fault_plan():
    for scenario in SCENARIOS:
        again = Scenario.from_dict(scenario.to_dict())
        assert again.fault_plan().specs == scenario.fault_plan().specs


def test_minimal_scenario_loads():
    scenario = Scenario.from_dict(_minimal_dict())
    plan = scenario.fault_plan()
    assert [(s.at, s.kind, s.target) for s in plan.specs] == [
        (0.2, "task_kill", "stage1[0]")
    ]


def test_unknown_fault_kind_rejected():
    bad = _minimal_dict()
    bad["phases"][0]["faults"][0]["kind"] = "meteor_strike"
    with pytest.raises(ScenarioError, match="meteor_strike"):
        Scenario.from_dict(bad)


def test_unknown_keys_rejected_at_every_level():
    with pytest.raises(ScenarioError, match="unknown keys"):
        Scenario.from_dict(_minimal_dict(bogus=1))
    bad = _minimal_dict()
    bad["phases"][0]["bogus"] = 1
    with pytest.raises(ScenarioError, match="unknown keys"):
        Scenario.from_dict(bad)
    bad = _minimal_dict()
    bad["phases"][0]["faults"][0]["bogus"] = 1
    with pytest.raises(ScenarioError, match="unknown keys"):
        Scenario.from_dict(bad)
    bad = _minimal_dict()
    bad["verdict"]["bogus"] = 1
    with pytest.raises(ScenarioError, match="unknown keys"):
        Scenario.from_dict(bad)


def test_missing_verdict_rejected():
    bad = _minimal_dict()
    del bad["verdict"]
    with pytest.raises(ScenarioError, match="verdict"):
        Scenario.from_dict(bad)


def test_negative_phase_offset_rejected():
    bad = _minimal_dict()
    bad["phases"][0]["at"] = -0.1
    with pytest.raises(ScenarioError, match="offset"):
        Scenario.from_dict(bad)


def test_empty_phase_rejected():
    bad = _minimal_dict()
    bad["phases"][0]["faults"] = []
    with pytest.raises(ScenarioError, match="at least one fault"):
        Scenario.from_dict(bad)


def test_repeat_needs_spacing():
    with pytest.raises(ScenarioError, match="every"):
        Phase(
            name="loop",
            at=0.1,
            faults=(FaultEntry(kind="task_kill", target="a"),),
            repeat=3,
        ).validate()


def test_verdict_consistency_enforced():
    with pytest.raises(ScenarioError, match="allow_announced_divergence"):
        VerdictSpec(
            exactly_once=False, allow_announced_divergence=False
        ).validate()


def test_invalid_fault_parameters_rejected_at_load():
    bad = _minimal_dict()
    bad["phases"][0]["faults"][0] = {"kind": "compute_slowdown",
                                     "target": "stage1[0]", "factor": 0.5}
    with pytest.raises(ScenarioError, match="factor"):
        Scenario.from_dict(bad)


def test_repeat_flattens_into_spaced_specs():
    scenario = Scenario(
        name="loop",
        description="",
        phases=(
            Phase(
                name="loop",
                at=0.1,
                faults=(FaultEntry(kind="task_kill", target="a", at=0.02),),
                repeat=3,
                every=0.5,
            ),
        ),
    )
    ats = [round(s.at, 4) for s in scenario.fault_plan().specs]
    assert ats == [0.12, 0.62, 1.12]


def test_fault_plan_seed_override():
    scenario = scenario_by_name("backpressure_storm")
    assert scenario.fault_plan().seed == scenario.seed
    assert scenario.fault_plan(seed=99).seed == 99


def test_library_names_are_unique_and_lookup_works():
    names = [s.name for s in SCENARIOS]
    assert len(names) == len(set(names))
    assert len(names) >= 10
    assert scenario_by_name(names[0]) is SCENARIOS[0]
    with pytest.raises(ScenarioError, match="unknown scenario"):
        scenario_by_name("nope")
