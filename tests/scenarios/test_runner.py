"""The scenario runner: verdict grading, determinism, passivity."""

import pytest

from repro.errors import ScenarioError
from repro.metrics.collectors import scenario_summary
from repro.scenarios import (
    FaultEntry,
    Phase,
    Scenario,
    VerdictSpec,
    WorkloadSpec,
    run_pack,
    run_scenario,
)
from repro.scenarios.library import pack_summary

#: A small, fast incident: one mid-pipeline kill over a short workload.
SMALL = Scenario(
    name="small-kill",
    description="one kill, small workload",
    phases=(
        Phase(
            name="kill",
            at=0.15,
            faults=(FaultEntry(kind="task_kill", target="stage1[0]"),),
        ),
    ),
    workload=WorkloadSpec(n_records=600),
    verdict=VerdictSpec(max_recovery_s=10.0),
)


def test_single_kill_passes_strict_verdict():
    result = run_scenario(SMALL)
    assert result.ok, result.checks
    assert result.checks["completed"] == "ok"
    assert result.checks["output"] == "ok"
    assert result.checks["recovery"] == "ok"
    assert result.checks["watchdog"] == "ok"
    assert result.missing == 0 and result.duplicated == 0
    assert result.expected == result.delivered > 0
    assert result.recovery_time is not None
    assert result.duration_overhead >= 1.0


def test_same_seed_is_byte_identical():
    a = run_scenario(SMALL)
    b = run_scenario(SMALL)
    assert a.transcript_digest == b.transcript_digest
    assert a.recovery_events == b.recovery_events
    assert a.to_dict() == b.to_dict()


def test_different_seed_diverges():
    a = run_scenario(SMALL)
    b = run_scenario(SMALL, seed=7)
    assert b.seed == 7
    assert a.transcript_digest != b.transcript_digest


def test_impossible_recovery_budget_fails_the_verdict():
    strict = Scenario(
        name="too-strict",
        description="",
        phases=SMALL.phases,
        workload=SMALL.workload,
        verdict=VerdictSpec(max_recovery_s=0.0001),
    )
    result = run_scenario(strict)
    assert not result.ok
    assert result.checks["recovery"].startswith("fail")
    assert result.checks["output"] == "ok"  # still exactly-once


def test_run_pack_filters_and_rejects_unknown():
    results = run_pack([SMALL], only=["small-kill"])
    assert [r.name for r in results] == ["small-kill"]
    with pytest.raises(ScenarioError, match="unknown scenario"):
        run_pack([SMALL], only=["nope"])


def test_result_dict_shape():
    result = run_scenario(SMALL)
    data = result.to_dict()
    for key in (
        "name", "verdict", "checks", "seed", "duration_s",
        "baseline_duration_s", "duration_overhead", "expected", "delivered",
        "missing", "duplicated", "quarantined", "degradations",
        "recovery_time_s", "transcript_digest", "chaos",
    ):
        assert key in data, key
    assert data["verdict"] == "pass"
    assert data["chaos"]["applied"] == 1


def test_summaries_agree():
    results = [run_scenario(SMALL)]
    assert pack_summary(results)["verdict"] == "ok"
    summary = scenario_summary(results)
    assert summary["verdict"] == "ok"
    assert summary["passed"] == summary["scenarios"] == 1
    assert summary["worst_recovery_scenario"] == "small-kill"
    # The dict form grades identically.
    assert scenario_summary([r.to_dict() for r in results])["verdict"] == "ok"


def test_scenario_runs_leave_goldens_untouched():
    """Passivity: running scenarios must not perturb the byte-for-byte
    golden digests of the perf workload (no global state leaks out of the
    scenario machinery)."""
    from repro.bench.golden import check_goldens

    run_scenario(SMALL)
    assert check_goldens() == []
