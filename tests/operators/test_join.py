"""Unit tests for the join operators."""

from repro.operators.join import FullHistoryJoinOperator, WindowJoinOperator

from tests.operators.helpers import OperatorHarness


def pair(left, right):
    return (left, right)


class TestFullHistoryJoin:
    def test_matches_across_time_both_directions(self):
        h = OperatorHarness(FullHistoryJoinOperator(pair))
        h.send("L1", key="k", input_index=0)
        assert h.values == []
        h.send("R1", key="k", input_index=1)
        assert h.values == [("L1", "R1")]
        h.send("L2", key="k", input_index=0)
        assert h.values == [("L1", "R1"), ("L2", "R1")]

    def test_join_is_keyed(self):
        h = OperatorHarness(FullHistoryJoinOperator(pair))
        h.send("L1", key="a", input_index=0)
        h.send("R1", key="b", input_index=1)
        assert h.values == []

    def test_full_history_is_retained(self):
        h = OperatorHarness(FullHistoryJoinOperator(pair))
        for i in range(3):
            h.send(f"L{i}", key="k", input_index=0)
        h.send("R", key="k", input_index=1)
        assert sorted(h.values) == [("L0", "R"), ("L1", "R"), ("L2", "R")]

    def test_retention_can_be_disabled_per_side(self):
        h = OperatorHarness(FullHistoryJoinOperator(pair, retain_left=False))
        h.send("L1", key="k", input_index=0)
        h.send("R1", key="k", input_index=1)
        # L1 was not retained, so R1 found no match.
        assert h.values == []
        h.send("L2", key="k", input_index=0)
        assert h.values == [("L2", "R1")]


class TestWindowJoin:
    def test_same_window_matches_fire_at_window_end(self):
        h = OperatorHarness(WindowJoinOperator(10.0, pair))
        h.send("L1", timestamp=2.0, key="k", input_index=0)
        h.send("R1", timestamp=7.0, key="k", input_index=1)
        h.advance_watermark(9.9)
        assert h.values == []
        h.advance_watermark(10.0)
        assert h.values == [("L1", "R1")]

    def test_cross_window_records_do_not_match(self):
        h = OperatorHarness(WindowJoinOperator(10.0, pair))
        h.send("L1", timestamp=2.0, key="k", input_index=0)
        h.send("R1", timestamp=12.0, key="k", input_index=1)
        h.advance_watermark(100.0)
        assert h.values == []

    def test_cartesian_within_window(self):
        h = OperatorHarness(WindowJoinOperator(10.0, pair))
        for left in ("L1", "L2"):
            h.send(left, timestamp=1.0, key="k", input_index=0)
        for right in ("R1", "R2"):
            h.send(right, timestamp=2.0, key="k", input_index=1)
        h.advance_watermark(10.0)
        assert sorted(h.values) == [
            ("L1", "R1"), ("L1", "R2"), ("L2", "R1"), ("L2", "R2")
        ]

    def test_emit_once_per_key(self):
        h = OperatorHarness(WindowJoinOperator(10.0, pair, emit_once_per_key=True))
        for left in ("L1", "L2"):
            h.send(left, timestamp=1.0, key="k", input_index=0)
        h.send("R1", timestamp=2.0, key="k", input_index=1)
        h.advance_watermark(10.0)
        assert h.values == [("L1", "R1")]

    def test_state_cleared_after_firing(self):
        h = OperatorHarness(WindowJoinOperator(10.0, pair))
        h.send("L1", timestamp=1.0, key="k", input_index=0)
        h.send("R1", timestamp=2.0, key="k", input_index=1)
        h.advance_watermark(10.0)
        assert len(h.values) == 1
        # New window, fresh state: old entries must not resurface.
        h.send("R2", timestamp=11.0, key="k", input_index=1)
        h.advance_watermark(20.0)
        assert h.values == [("L1", "R1")]
