"""Unit + integration tests for the two-input combinators."""

from collections import Counter

from repro.config import FaultToleranceMode
from repro.external.kafka import DurableLog
from repro.graph.logical import JobGraphBuilder
from repro.operators import (
    BroadcastApplyOperator,
    CoMapOperator,
    KafkaSink,
    KafkaSource,
    UnionOperator,
)
from repro.runtime.jobmanager import JobManager
from repro.sim.core import Environment

from tests.operators.helpers import OperatorHarness
from tests.runtime.helpers import make_config, sink_values


def test_union_passes_both_inputs():
    h = OperatorHarness(UnionOperator())
    h.send("a", input_index=0)
    h.send("b", input_index=1)
    assert h.values == ["a", "b"]


def test_co_map_routes_by_input():
    h = OperatorHarness(CoMapOperator(lambda v: ("L", v), lambda v: ("R", v)))
    h.send(1, input_index=0)
    h.send(2, input_index=1)
    assert h.values == [("L", 1), ("R", 2)]


def test_broadcast_apply_uses_latest_rule():
    h = OperatorHarness(BroadcastApplyOperator(lambda v, rule: v * (rule or 1)))
    h.send(5, input_index=0)
    h.send(10, input_index=1)  # rule update
    h.send(5, input_index=0)
    assert h.values == [5, 50]


def test_broadcast_apply_rule_survives_snapshot():
    op = BroadcastApplyOperator(lambda v, rule: (v, rule))
    h = OperatorHarness(op)
    h.send(3, input_index=1)
    state = op.snapshot()
    other = BroadcastApplyOperator(lambda v, rule: (v, rule))
    other.restore(state)
    h2 = OperatorHarness(other)
    h2.send("x", input_index=0)
    assert h2.values == [("x", 3)]


def test_union_pipeline_exactly_once_under_failure():
    """Two sources union-merged; kill the union operator mid-run."""
    env = Environment()
    log = DurableLog()
    log.create_generated_topic("left", 1, lambda p, off: ("L", off), 1500.0, 1500)
    log.create_generated_topic("right", 1, lambda p, off: ("R", off), 1500.0, 1500)
    log.create_topic("out", 1)
    config = make_config(FaultToleranceMode.CLONOS, checkpoint_interval=0.3)
    builder = JobGraphBuilder("union")
    left = builder.source("lsrc", lambda: KafkaSource(log, "left"))
    right = builder.source("rsrc", lambda: KafkaSource(log, "right"))
    merged = builder.connect(
        left.key_by(lambda v: v[1] % 3),
        right.key_by(lambda v: v[1] % 3),
        "union",
        UnionOperator,
    )
    merged.key_by(lambda v: 0).sink("sink", lambda: KafkaSink(log, "out"))
    jm = JobManager(env, builder.build(), config)
    jm.deploy()
    env.schedule_callback(0.5, lambda: jm.kill_task("union[0]"))
    jm.run_until_done(limit=300)
    counts = Counter(sink_values(log))
    expected = {("L", i) for i in range(1500)} | {("R", i) for i in range(1500)}
    assert set(counts) == expected
    assert all(c == 1 for c in counts.values())
