"""Unit tests for sources and sinks."""

import pytest

from repro.errors import StateError
from repro.external.kafka import DurableLog
from repro.operators.sink import CollectSink, KafkaSink, SinkEntry, TransactionalKafkaSink
from repro.operators.source import IteratorSource, KafkaSource

from tests.operators.helpers import OperatorHarness


def make_topic(values, rate=100.0):
    log = DurableLog()
    log.create_generated_topic(
        "t", 1, lambda p, off: values[off], rate, total_per_partition=len(values)
    )
    return log


class TestKafkaSource:
    def test_poll_respects_arrival_times(self):
        log = make_topic(list(range(10)), rate=100.0)
        source = KafkaSource(log, "t")
        h = OperatorHarness(source)
        h.env.run(until=0.049)  # 5 records available (offsets 0..4)
        records, next_arrival = source.poll(h.ctx, 100)
        assert [r.value for r in records] == [0, 1, 2, 3, 4]
        assert next_arrival == pytest.approx(0.05)

    def test_poll_batches(self):
        log = make_topic(list(range(10)))
        source = KafkaSource(log, "t")
        h = OperatorHarness(source)
        h.env.run(until=1.0)
        records, _ = source.poll(h.ctx, 3)
        assert len(records) == 3
        records, _ = source.poll(h.ctx, 100)
        assert len(records) == 7

    def test_offset_snapshot_restore_replays(self):
        log = make_topic(list(range(10)))
        source = KafkaSource(log, "t")
        h = OperatorHarness(source)
        h.env.run(until=1.0)
        source.poll(h.ctx, 4)
        snap = source.snapshot()
        source.poll(h.ctx, 100)
        source.restore(snap)
        records, _ = source.poll(h.ctx, 100)
        assert [r.value for r in records] == [4, 5, 6, 7, 8, 9]

    def test_poll_before_open_raises(self):
        log = make_topic([1])
        source = KafkaSource(log, "t")
        import types

        fake_ctx = types.SimpleNamespace(now=0.0, subtask_index=0)
        with pytest.raises(StateError):
            source.poll(fake_ctx, 1)

    def test_key_and_timestamp_extractors(self):
        log = make_topic([("k1", 10.0), ("k2", 20.0)])
        source = KafkaSource(
            log, "t",
            timestamp_fn=lambda v, arrival: v[1],
            key_fn=lambda v: v[0],
        )
        h = OperatorHarness(source)
        h.env.run(until=1.0)
        records, _ = source.poll(h.ctx, 10)
        assert [(r.key, r.timestamp) for r in records] == [("k1", 10.0), ("k2", 20.0)]

    def test_watermark_generator_tracks_event_time(self):
        log = make_topic([5.0, 9.0], rate=100.0)
        source = KafkaSource(
            log, "t", timestamp_fn=lambda v, a: v, lateness=1.0
        )
        h = OperatorHarness(source)
        h.env.run(until=1.0)
        source.poll(h.ctx, 10)
        assert source.watermark_generator().next_watermark() == 8.0


class TestIteratorSource:
    def test_emits_all_then_none(self):
        source = IteratorSource([1, 2, 3])
        h = OperatorHarness(source)
        records, next_arrival = source.poll(h.ctx, 10)
        assert [r.value for r in records] == [1, 2, 3]
        assert next_arrival is None
        assert source.poll(h.ctx, 10) == ([], None)


class TestSinks:
    def test_kafka_sink_appends_immediately(self):
        log = DurableLog()
        log.create_topic("out", 1)
        sink = KafkaSink(log, "out")
        h = OperatorHarness(sink)
        h.send("v1", timestamp=1.0)
        assert [e.value for e in log.read_all("out")] == ["v1"]
        assert sink.appended == 1

    def test_transactional_sink_commits_on_checkpoint_complete(self):
        log = DurableLog()
        log.create_topic("out", 1)
        sink = TransactionalKafkaSink(log, "out")
        h = OperatorHarness(sink)
        h.send("a")
        sink.on_barrier(1, h.ctx)
        h.send("b")
        assert log.read_all("out") == []  # nothing visible yet
        sink.on_checkpoint_complete(1, h.ctx)
        assert [e.value for e in log.read_all("out")] == ["a"]
        sink.on_checkpoint_complete(2, h.ctx)
        assert [e.value for e in log.read_all("out")] == ["a", "b"]

    def test_transactional_sink_discards_pending_on_restore(self):
        log = DurableLog()
        log.create_topic("out", 1)
        sink = TransactionalKafkaSink(log, "out")
        h = OperatorHarness(sink)
        sink.on_barrier(1, h.ctx)
        h.send("uncommitted")
        snap = sink.snapshot()
        sink.restore(snap)
        sink.on_checkpoint_complete(5, h.ctx)
        assert log.read_all("out") == []  # the abort path

    def test_transactional_sink_close_commits_tail(self):
        log = DurableLog()
        log.create_topic("out", 1)
        sink = TransactionalKafkaSink(log, "out")
        h = OperatorHarness(sink)
        h.send("tail")
        h.close()
        assert [e.value for e in log.read_all("out")] == ["tail"]

    def test_collect_sink(self):
        collected = []
        h = OperatorHarness(CollectSink(collected))
        h.send(1)
        h.send(2)
        assert collected == [1, 2]
