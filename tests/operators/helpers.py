"""A tiny operator test harness: drive an operator without the runtime."""

from typing import Any, List, Optional

from repro.core.causal_log import CausalLogManager
from repro.core.recovery import RecoveryManager
from repro.core.services import CausalServices, NaiveServices
from repro.graph.elements import StreamRecord
from repro.operators.base import Context, Operator
from repro.sim.core import Environment
from repro.state.backend import HashMapStateBackend
from repro.timing.timers import TimerService


class OperatorHarness:
    """Feeds records/watermarks into one operator instance and collects its
    output, emulating the task runtime's keyed dispatch and timer delivery."""

    def __init__(self, operator: Operator, env: Optional[Environment] = None,
                 causal: bool = False, external=None):
        self.env = env or Environment()
        self.operator = operator
        self.backend = HashMapStateBackend()
        self.timers = TimerService(self.env)
        if causal:
            self.causal = CausalLogManager("t", 1, None)
            self.recovery = RecoveryManager("t")
            services = CausalServices(
                self.env, self.causal, self.recovery, external, "t"
            )
        else:
            self.causal = None
            self.recovery = None
            services = NaiveServices(self.env, external, "t")
        self.ctx = Context("t", 0, 1, self.backend, self.timers, services,
                           env=self.env)
        self.outputs: List[Any] = []
        self.watermark = float("-inf")
        operator.open(self.ctx)

    def _drain(self) -> None:
        for record in self.ctx.pending_output:
            self.outputs.append(record)
        self.ctx.pending_output = []

    def send(self, value: Any, timestamp: float = 0.0, key: Any = None,
             input_index: int = 0) -> None:
        record = StreamRecord(value, timestamp=timestamp, key=key)
        self.ctx.current_key = key
        self.ctx.element_timestamp = timestamp
        self.ctx.element_created_at = None
        self.ctx.input_index = input_index
        self.backend.set_current_key(key)
        self.operator.process(record, self.ctx)
        self._drain()

    def advance_watermark(self, ts: float) -> None:
        self.watermark = ts
        self.ctx.current_watermark = ts
        for timer in self.timers.advance_watermark(ts):
            self.fire(timer)

    def fire_due_processing_timers(self) -> None:
        while self.timers.has_due():
            self.fire(self.timers.pop_due())

    def fire(self, timer) -> None:
        self.ctx.current_key = timer.key
        self.ctx.element_timestamp = timer.fire_time
        self.backend.set_current_key(timer.key)
        self.operator.on_timer(timer, self.ctx)
        self._drain()

    def close(self) -> None:
        self.operator.close(self.ctx)
        self._drain()

    @property
    def values(self) -> List[Any]:
        return [r.value for r in self.outputs]
