"""Unit tests for the window operators."""

import pytest

from repro.operators.window import (
    AvgAggregator,
    CountAggregator,
    EventTimeWindowOperator,
    ListAggregator,
    MaxAggregator,
    ProcessingTimeWindowOperator,
    SessionWindowOperator,
    SumAggregator,
)

from tests.operators.helpers import OperatorHarness


class TestAggregators:
    def test_count(self):
        agg = CountAggregator()
        acc = agg.create()
        for _ in range(3):
            acc = agg.add(acc, object())
        assert agg.result(acc) == 3

    def test_sum_with_extractor(self):
        agg = SumAggregator(lambda pair: pair[1])
        acc = agg.create()
        for v in ((None, 1.5), (None, 2.5)):
            acc = agg.add(acc, v)
        assert agg.result(acc) == 4.0

    def test_avg(self):
        agg = AvgAggregator()
        acc = agg.create()
        for v in (2.0, 4.0, 6.0):
            acc = agg.add(acc, v)
        assert agg.result(acc) == 4.0
        assert agg.result(agg.create()) == 0.0  # empty window

    def test_max_keeps_argmax(self):
        agg = MaxAggregator(lambda t: t[1])
        acc = agg.create()
        for v in (("a", 3), ("b", 9), ("c", 5)):
            acc = agg.add(acc, v)
        assert agg.result(acc) == ("b", 9)

    def test_list_collects(self):
        agg = ListAggregator()
        acc = agg.create()
        for v in (1, 2):
            acc = agg.add(acc, v)
        assert agg.result(acc) == [1, 2]


class TestEventTimeTumbling:
    def test_fires_when_watermark_passes_end(self):
        h = OperatorHarness(EventTimeWindowOperator(10.0, CountAggregator()))
        for ts in (1.0, 5.0, 9.9):
            h.send("x", timestamp=ts, key="k")
        h.advance_watermark(9.9)
        assert h.values == []
        h.advance_watermark(10.0)
        assert h.values == [3]

    def test_result_fn_receives_key_and_window(self):
        h = OperatorHarness(
            EventTimeWindowOperator(
                10.0,
                CountAggregator(),
                result_fn=lambda key, window, count: (key, window.start, count),
            )
        )
        h.send("x", timestamp=3.0, key="k")
        h.advance_watermark(10.0)
        assert h.values == [("k", 0.0, 1)]

    def test_windows_are_per_key(self):
        h = OperatorHarness(
            EventTimeWindowOperator(
                10.0, CountAggregator(), result_fn=lambda k, w, c: (k, c)
            )
        )
        h.send("x", timestamp=1.0, key="a")
        h.send("x", timestamp=2.0, key="b")
        h.send("x", timestamp=3.0, key="a")
        h.advance_watermark(10.0)
        assert sorted(h.values) == [("a", 2), ("b", 1)]

    def test_late_records_are_dropped(self):
        h = OperatorHarness(EventTimeWindowOperator(10.0, CountAggregator()))
        h.send("x", timestamp=5.0, key="k")
        h.advance_watermark(10.0)
        h.send("late", timestamp=6.0, key="k")  # watermark already past
        h.advance_watermark(20.0)
        assert h.values == [1]

    def test_output_timestamp_is_window_max_timestamp(self):
        h = OperatorHarness(EventTimeWindowOperator(10.0, CountAggregator()))
        h.send("x", timestamp=5.0, key="k")
        h.advance_watermark(10.0)
        assert h.outputs[0].timestamp == pytest.approx(10.0 - 1e-6)


class TestEventTimeSliding:
    def test_record_lands_in_all_overlapping_windows(self):
        h = OperatorHarness(
            EventTimeWindowOperator(
                10.0,
                CountAggregator(),
                slide=5.0,
                result_fn=lambda k, w, c: (w.start, c),
            )
        )
        h.send("x", timestamp=12.0, key="k")
        h.advance_watermark(100.0)
        assert sorted(h.values) == [(5.0, 1), (10.0, 1)]


class TestProcessingTime:
    def test_fires_on_processing_timer(self):
        h = OperatorHarness(ProcessingTimeWindowOperator(1.0, CountAggregator()))
        h.send("x", key="k")
        h.send("y", key="k")
        h.env.run(until=1.5)
        h.fire_due_processing_timers()
        assert h.values == [2]

    def test_close_flushes_pending_windows(self):
        h = OperatorHarness(ProcessingTimeWindowOperator(100.0, CountAggregator()))
        h.send("x", key="a")
        h.send("y", key="b")
        h.close()
        assert sorted(h.values) == [1, 1]

    def test_uses_timestamp_service(self):
        h = OperatorHarness(
            ProcessingTimeWindowOperator(1.0, CountAggregator()), causal=True
        )
        h.send("x", key="k")
        # The window assignment drew the clock through the causal service:
        # a Timestamp determinant was logged.
        kinds = [d.kind for d in h.causal.bundle.log("main").entries(0)]
        assert "timestamp" in kinds


class TestSessions:
    def session_op(self):
        return SessionWindowOperator(
            gap=5.0,
            aggregator=CountAggregator(),
            result_fn=lambda k, w, c: (k, w.start, w.end, c),
        )

    def test_single_session_fires_after_gap(self):
        h = OperatorHarness(self.session_op())
        h.send("x", timestamp=1.0, key="k")
        h.send("x", timestamp=3.0, key="k")
        h.advance_watermark(7.9)
        assert h.values == []
        h.advance_watermark(8.0)
        assert h.values == [("k", 1.0, 8.0, 2)]

    def test_sessions_merge_on_overlap(self):
        h = OperatorHarness(self.session_op())
        h.send("x", timestamp=1.0, key="k")
        h.send("x", timestamp=10.0, key="k")   # separate session (gap 5)
        h.send("x", timestamp=5.0, key="k")    # bridges both
        h.advance_watermark(100.0)
        assert h.values == [("k", 1.0, 15.0, 3)]

    def test_two_distinct_sessions(self):
        h = OperatorHarness(self.session_op())
        h.send("x", timestamp=1.0, key="k")
        h.send("x", timestamp=20.0, key="k")
        h.advance_watermark(100.0)
        assert [(v[1], v[3]) for v in h.values] == [(1.0, 1), (20.0, 1)]
