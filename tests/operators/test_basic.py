"""Unit tests for the basic operator library."""

import pytest

from repro.operators import (
    FilterOperator,
    FlatMapOperator,
    KeyedCounterOperator,
    KeyedReduceOperator,
    MapOperator,
    ProcessOperator,
    StatefulMapOperator,
)

from tests.operators.helpers import OperatorHarness


def test_map_transforms_each_value():
    h = OperatorHarness(MapOperator(lambda v: v * 2))
    for v in (1, 2, 3):
        h.send(v)
    assert h.values == [2, 4, 6]


def test_map_preserves_time_metadata():
    h = OperatorHarness(MapOperator(str))
    h.send(7, timestamp=3.5)
    assert h.outputs[0].timestamp == 3.5


def test_filter_keeps_matching():
    h = OperatorHarness(FilterOperator(lambda v: v % 2 == 0))
    for v in range(6):
        h.send(v)
    assert h.values == [0, 2, 4]


def test_flat_map_expands_and_contracts():
    h = OperatorHarness(FlatMapOperator(lambda v: [v] * v))
    for v in (0, 1, 3):
        h.send(v)
    assert h.values == [1, 3, 3, 3]


def test_keyed_reduce_accumulates_per_key():
    h = OperatorHarness(KeyedReduceOperator(lambda a, b: a + b))
    h.send(1, key="a")
    h.send(2, key="a")
    h.send(10, key="b")
    h.send(3, key="a")
    assert h.values == [1, 3, 10, 6]


def test_keyed_counter_counts_per_key():
    h = OperatorHarness(KeyedCounterOperator())
    for key in ("x", "y", "x", "x"):
        h.send(0, key=key)
    assert h.values == [("x", 1), ("y", 1), ("x", 2), ("x", 3)]


def test_stateful_map_threads_state():
    def fn(state, value):
        state = (state or 0) + value
        return state, ("sum", state)

    h = OperatorHarness(StatefulMapOperator(fn))
    h.send(5, key="k")
    h.send(7, key="k")
    assert h.values == [("sum", 5), ("sum", 12)]


def test_stateful_map_none_output_is_dropped():
    h = OperatorHarness(StatefulMapOperator(lambda s, v: (v, None)))
    h.send(1, key="k")
    assert h.values == []


def test_process_operator_runs_hooks():
    opened = []

    def fn(record, ctx):
        ctx.collect(record.value + 1)

    h = OperatorHarness(ProcessOperator(fn, open_fn=lambda ctx: opened.append(1)))
    h.send(41)
    assert h.values == [42]
    assert opened == [1]


def test_process_operator_timer_hook():
    fired = []

    def fn(record, ctx):
        ctx.register_processing_timer(1.0, "demo", payload=record.value)

    def on_timer(timer, ctx):
        fired.append(timer.payload)
        ctx.collect(("timer", timer.payload))

    h = OperatorHarness(ProcessOperator(fn, timer_fn=on_timer))
    h.send("x", key="k")
    h.env.run(until=2.0)
    h.fire_due_processing_timers()
    assert fired == ["x"]
    assert h.values == [("timer", "x")]


def test_default_operator_restore_rejects_state():
    from repro.errors import StateError
    from repro.operators.base import Operator

    class Bare(Operator):
        def process(self, record, ctx):
            pass

    op = Bare()
    op.restore(None)  # fine
    with pytest.raises(StateError):
        op.restore({"unexpected": 1})
