"""Validated checkpoint storage: tampered payloads and torn/drifted blobs
fail a validating load, retention keeps the last N completed checkpoints,
and subsumption GC actually deletes DFS blobs (the long-run bound)."""

import pytest

from repro.config import CostModel
from repro.errors import IntegrityError
from repro.external.dfs import DistributedFileSystem
from repro.integrity.monitor import IntegrityMonitor
from repro.sim.core import Environment
from repro.state.snapshot import SnapshotStore, TaskSnapshot


def snapshot_of(name="t", cid=1, keys=20):
    keyed = {"state": {i: "x" * 10 for i in range(keys)}}
    return TaskSnapshot(name, cid, keyed, {"offset": cid * 10}, {"edges": []}, {}, None)


def drive(env, gen):
    out = {}

    def proc():
        out["value"] = yield from gen

    process = env.process(proc())
    env.run()
    if not process.ok:  # failed process events don't surface from run()
        raise process.value
    return out.get("value")


def make_store(retain=None, validate=True):
    env = Environment()
    dfs = DistributedFileSystem(env, CostModel())
    monitor = IntegrityMonitor(validate=validate)
    return env, dfs, SnapshotStore(dfs, retain=retain, monitor=monitor), monitor


class TestValidatedLoads:
    def test_clean_load_counts_a_verification(self):
        env, _dfs, store, monitor = make_store()
        drive(env, store.save(snapshot_of(cid=1)))
        drive(env, store.load("t", 1))
        assert monitor.verified["checkpoint"] == 1
        assert monitor.total_failed == 0

    def test_tampered_payload_fails_validating_load(self):
        env, _dfs, store, monitor = make_store()
        snapshot = snapshot_of(cid=1)
        drive(env, store.save(snapshot))
        snapshot.keyed_state["state"][0] = "tampered"
        with pytest.raises(IntegrityError) as excinfo:
            drive(env, store.load("t", 1))
        assert excinfo.value.artifact == "checkpoint"
        assert monitor.failed["checkpoint"] == 1
        assert monitor.violations

    def test_torn_blob_fails_validating_load(self):
        env, dfs, store, monitor = make_store()
        drive(env, store.save(snapshot_of(cid=1)))
        dfs.blob_record(store.blob_path("t", 1)).torn = True
        with pytest.raises(IntegrityError) as excinfo:
            drive(env, store.load("t", 1))
        assert excinfo.value.artifact == "blob"
        assert monitor.failed["blob"] == 1

    def test_validation_off_lets_corruption_through(self):
        env, _dfs, store, monitor = make_store(validate=False)
        snapshot = snapshot_of(cid=1)
        drive(env, store.save(snapshot))
        snapshot.keyed_state["state"][0] = "tampered"
        loaded = drive(env, store.load("t", 1))  # the silent control arm
        assert loaded is snapshot
        assert monitor.total_failed == 0
        assert not snapshot.intact  # ...but the damage is still auditable

    def test_peek_valid_is_metadata_only(self):
        env, dfs, store, _monitor = make_store()
        snapshot = snapshot_of(cid=1)
        drive(env, store.save(snapshot))
        read_before = dfs.bytes_read
        assert store.peek_valid("t", 1)
        snapshot.keyed_state["state"][0] = "tampered"
        assert not store.peek_valid("t", 1)
        assert not store.peek_valid("t", 99)
        assert dfs.bytes_read == read_before


class TestRetentionAndGC:
    def test_retire_keeps_last_n_and_deletes_blobs(self):
        env, dfs, store, _monitor = make_store(retain=2)
        for cid in (1, 2, 3):
            drive(env, store.save(snapshot_of(cid=cid)))
        assert store.retire([1, 2, 3]) == 1
        assert store.retained_ids("t") == [2, 3]
        assert not dfs.exists(store.blob_path("t", 1))
        assert dfs.exists(store.blob_path("t", 2))

    def test_retire_spares_upload_in_progress(self):
        env, _dfs, store, _monitor = make_store(retain=1)
        for cid in (1, 2, 3):
            drive(env, store.save(snapshot_of(cid=cid)))
        # Only 1 and 2 completed: 3 is an upload in progress and must survive.
        store.retire([1, 2])
        assert store.retained_ids("t") == [2, 3]

    def test_discard_newer_than_drops_abandoned_timeline(self):
        env, dfs, store, _monitor = make_store()
        for cid in (1, 2, 3):
            drive(env, store.save(snapshot_of(cid=cid)))
        assert store.discard_newer_than(1) == 2
        assert store.retained_ids("t") == [1]
        assert not dfs.exists(store.blob_path("t", 3))

    def test_long_run_blob_count_stays_bounded(self):
        # Satellite acceptance: with retain-last-N wired to dfs.delete, a
        # long-running job's DFS blob population is bounded, not monotonic.
        env, dfs, store, _monitor = make_store(retain=2)
        completed = []
        for cid in range(1, 61):
            for task in ("a", "b"):
                drive(env, store.save(snapshot_of(name=task, cid=cid)))
            completed.append(cid)
            store.retire(completed)
            assert dfs.blob_count() <= 2 * 2, f"unbounded at checkpoint {cid}"
        assert store.retained_ids("a") == [59, 60]
        assert store.retained_ids("b") == [59, 60]
