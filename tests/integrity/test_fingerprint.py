"""Properties of the canonical content fingerprint: same logical state →
same digest (regardless of insertion/iteration order), any payload change →
different digest."""

from hypothesis import given
from hypothesis import strategies as st

from repro.integrity.fingerprint import combine, fingerprint

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False),
    st.text(),
    st.binary(),
)


def test_scalars_are_type_tagged():
    # 1 vs True vs "1" vs 1.0 must not collide via stringification.
    digests = {fingerprint(v) for v in (1, True, "1", 1.0, b"1", None)}
    assert len(digests) == 6


def test_dict_insertion_order_is_canonicalised():
    a = {"x": 1, "y": 2, "z": [3, 4]}
    b = {"z": [3, 4], "y": 2, "x": 1}
    assert fingerprint(a) == fingerprint(b)


def test_set_iteration_order_is_canonicalised():
    assert fingerprint({"a", "b", "c"}) == fingerprint({"c", "a", "b"})


def test_sequences_are_order_sensitive():
    assert fingerprint([1, 2, 3]) != fingerprint([3, 2, 1])
    assert combine(combine(0, 1), 2) != combine(combine(0, 2), 1)


def test_objects_digest_their_state():
    class Thing:
        def __init__(self, value):
            self.value = value

    assert fingerprint(Thing(1)) == fingerprint(Thing(1))
    assert fingerprint(Thing(1)) != fingerprint(Thing(2))


def test_slots_objects_digest_their_state():
    class Slotted:
        __slots__ = ("a", "b")

        def __init__(self, a, b):
            self.a = a
            self.b = b

    assert fingerprint(Slotted(1, "x")) == fingerprint(Slotted(1, "x"))
    assert fingerprint(Slotted(1, "x")) != fingerprint(Slotted(2, "x"))


def test_cycles_do_not_recurse():
    loop = {}
    loop["self"] = loop
    assert isinstance(fingerprint(loop), int)


@given(st.dictionaries(st.text(), scalars, min_size=1))
def test_fingerprint_is_insertion_order_invariant(payload):
    shuffled = dict(reversed(list(payload.items())))
    assert fingerprint(payload) == fingerprint(shuffled)


@given(st.dictionaries(st.text(), st.integers(), min_size=1))
def test_fingerprint_detects_single_value_change(payload):
    key = sorted(payload)[0]
    tampered = dict(payload)
    tampered[key] = payload[key] + 1
    assert fingerprint(payload) != fingerprint(tampered)
