"""The integrity-soak property: **corruption is never silent**.

Every seeded corruption run (silent blob corruption, torn writes, in-flight
bit-flips, truncated determinant replicas, each paired with kills that force
recovery to read the damage) must end exactly-once or with an announced
``degraded:global_rollback`` — never silent loss, duplication, or a hang
(``run_until_done`` raises on the deadline, which Hypothesis reports with
the offending seed).  The control arm (``validate=False``) proves the layer
is load-bearing: the same plan then produces a silent violation.

The per-run Hypothesis example budget is widened on the nightly soak job via
``REPRO_SOAK_EXAMPLES`` (PR CI keeps the fast default) so newly-sampled
seeds keep stress-testing the recovery path without slowing PR CI.
"""

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.plan import CORRUPTION_KINDS, random_plan
from repro.integrity.soak import run_integrity_experiment
from repro.runtime.task import TaskStatus

LIMIT = 120.0

#: Hypothesis example budget: 8 on PR CI, widened on the nightly soak job.
SOAK_EXAMPLES = int(os.environ.get("REPRO_SOAK_EXAMPLES", "8"))

#: A seed whose plan corrupts a stored source checkpoint that recovery then
#: restores: with validation off the run silently loses records (the control
#: violation); with validation on the ladder falls back to an older epoch.
CONTROL_SEED = 5


def describe(result):
    return (
        f"seed {result.seed}: verdict={result.verdict} "
        f"missing={result.chaos.missing} duplicated={result.chaos.duplicated} "
        f"injected={result.corruptions_injected} detected={result.detected} "
        f"summary={result.integrity_summary}"
    )


@given(seed=st.integers(min_value=0, max_value=10**6))
@settings(max_examples=SOAK_EXAMPLES, deadline=None)
def test_corruption_is_detected_or_announced_never_silent(seed):
    result = run_integrity_experiment(seed, limit=LIMIT)
    assert result.ok, describe(result)
    assert result.chaos.duration < LIMIT
    if result.verdict != "exactly-once":
        # Degradation is only acceptable when announced.
        assert result.chaos.degradations, describe(result)


# Formerly-bad seeds found by overnight soaks (the closed ROADMAP §0 item),
# kept as permanent named regression tests — one per failure mode — so the
# exact workload timings that exposed each bug are re-checked on every run
# instead of waiting for Hypothesis to resample them.


def test_seed_1655_regression_silent_loss_mode():
    """Loss mode: a single ``task_kill src[0]`` under this seed's timing
    used to silently drop a 41-record tail.

    Root cause: the checkpoint images each writer's ``seq`` *before* the
    epoch-closing barrier goes out; when the barrier opened a fresh buffer,
    regenerated buffers came out numbered one low and — after the replayed
    cuts were deduplicated — the first buffer of fresh records collided with
    ``suppress_until_seq`` and was suppressed.  The fix re-anchors the
    writer's numbering on the output-queue log at replay preparation.
    """
    result = run_integrity_experiment(1655, limit=LIMIT)
    assert result.verdict == "exactly-once", describe(result)
    assert result.chaos.missing == 0, describe(result)
    assert result.chaos.duplicated == 0, describe(result)
    jm = result.chaos.jm
    for vertex in jm.vertices.values():
        task = vertex.task
        assert task is not None and task.status is TaskStatus.FINISHED
        # Source resume offset: the recovered source drained its entire
        # partition — nothing was skipped on restore.
        operator = task.operator
        if vertex.is_source and hasattr(operator, "offset"):
            assert operator.offset == 1200, (vertex.name, operator.offset)
        # Sink dedup window: no writer may end with fresh output numbered
        # inside its sender-side dedup window — that is exactly the
        # collision that silently dropped the tail.
        for channel in task.all_output_channels:
            assert channel.seq > channel.suppress_until_seq, (
                vertex.name,
                channel.index,
                channel.seq,
                channel.suppress_until_seq,
            )


def test_seed_64853_regression_recovery_hang_mode():
    """Hang mode: recovery never converged and the run died on the 120 s
    ``run_until_done`` deadline.

    Root cause: a recovery attempt that failed *after* the network
    reconfiguration handshake abandoned its half-built replacement without
    closing its gate; a link pump blocked forever on the orphaned credit
    queue, so no later incarnation (not even the global restart's) ever
    received another buffer on that link.  The fix dismantles abandoned
    incarnations so their gates cancel every blocked waiter.
    """
    result = run_integrity_experiment(64853, limit=LIMIT)
    assert result.ok, describe(result)
    assert result.chaos.duration < LIMIT, describe(result)
    assert result.chaos.missing == 0, describe(result)
    kinds = [k for (_t, k, _w) in result.chaos.recovery_events]
    # The wedge is real in this plan (a truncated determinant replica fails
    # the fetch step after the rebuild) and must be announced + torn down.
    assert "recovery-incarnation-abandoned" in kinds, kinds
    assert result.chaos.degradations, describe(result)
    # Convergence: every vertex's live incarnation drained to completion —
    # nobody is left waiting on a wedged link pump.
    jm = result.chaos.jm
    for vertex in jm.vertices.values():
        task = vertex.task
        assert task is not None and task.status is TaskStatus.FINISHED, (
            vertex.name,
            None if task is None else task.status,
        )


def test_seed_16079_regression_in_transit_corruption_mode():
    """Wire-corruption mode: a bitflip landing on an already-dispatched log
    entry used to duplicate a record the receiver had yet to consume.

    Root cause: the in-flight log shares buffer objects with the network
    layer (the §6.1 no-copy exchange), and ``corrupt_inflight_entry``
    mutated the shared element list in place — so a flip injected *after*
    the replay's checksum-then-send leaked into the delivery anyway, which
    no real on-disk flip can do to bytes already on the wire.  The fix makes
    the bitflip copy-on-corrupt: the log entry gets a tampered clone and the
    in-transit original stays intact.
    """
    result = run_integrity_experiment(16079, limit=LIMIT)
    assert result.verdict == "exactly-once", describe(result)
    assert result.chaos.missing == 0, describe(result)
    assert result.chaos.duplicated == 0, describe(result)
    # The at-rest damage itself is still real and still detected: the
    # closing audit flags the tampered stored entry.
    assert any(
        kind == "inflight-segment" for (kind, _n, _d) in result.audit.violations
    ), result.audit.violations


def test_bitflip_never_touches_the_buffer_in_motion():
    """The copy-on-corrupt contract, unit-level: after the flip, the log
    stores a tampered clone (audit-detectable) while the originally
    dispatched buffer object — what a receiver would consume — is intact."""
    import random

    from repro.integrity.corruption import corrupt_inflight_entry
    from tests.chaos.helpers import deploy_chaos_chain

    env, log, jm = deploy_chaos_chain()
    victim = "stage1[0]"
    originals = {}

    def snapshot():
        task = jm.vertices[victim].task
        for entries in task.inflight._entries.values():
            for entry in entries:
                key = (entry.buffer.channel_id, entry.buffer.seq)
                originals[key] = (entry.buffer, list(entry.buffer.elements))

    detail = {}

    def flip():
        snapshot()
        detail["flipped"] = corrupt_inflight_entry(jm, victim, random.Random(1))

    env.schedule_callback(0.4, flip)
    jm.run_until_done(limit=600)
    assert detail["flipped"] is not None
    ch, seq, _kind = detail["flipped"].split(":")
    key = (int(ch[2:]), int(seq[3:]))
    buffer, elements = originals[key]
    assert buffer.elements == elements, "in-motion buffer was mutated"


def test_validation_disabled_is_demonstrably_silent():
    # The control arm: identical plan, checksums exist but nothing checks
    # them — the corrupted restore flows through and records are lost with
    # no announced degradation.  This is the wrong output the soak verdict
    # exists to catch.
    control = run_integrity_experiment(CONTROL_SEED, validate=False, limit=LIMIT)
    assert control.verdict == "violation", describe(control)
    assert control.chaos.missing > 0

    validated = run_integrity_experiment(CONTROL_SEED, validate=True, limit=LIMIT)
    assert validated.ok, describe(validated)
    assert validated.detected > 0, describe(validated)


def test_epoch_fallback_rewinds_the_timeline():
    # End-to-end multi-epoch fallback on the control seed: the newest epoch
    # fails validation, the ladder commits the job to the newest *older*
    # epoch that passes, and the abandoned timeline is discarded so later
    # local recoveries cannot resurrect it.
    result = run_integrity_experiment(CONTROL_SEED, limit=LIMIT)
    kinds = [kind for (_t, kind, _w) in result.chaos.recovery_events]
    assert any(k.startswith("integrity:epoch-invalid") for k in kinds), kinds
    assert any(k.startswith("integrity:epoch-fallback") for k in kinds), kinds
    assert any(k.startswith("integrity:timeline-rewind") for k in kinds), kinds
    assert result.verdict == "degraded:global_rollback", describe(result)
    assert result.chaos.missing == 0, "degraded still means at-least-once"


class TestCorruptionPlans:
    TASKS = ["source[0]", "stage1[0]", "sink[0]"]

    def test_corruption_kinds_stay_out_of_the_default_palette(self):
        # Existing chaos seeds must keep producing the exact same plans.
        for seed in range(10):
            plan = random_plan(seed, 1.0, task_names=self.TASKS, max_faults=5)
            assert not set(plan.kinds()) & CORRUPTION_KINDS

    def test_corruption_plans_pair_damage_with_kills(self):
        plan = random_plan(
            3, 1.0, task_names=self.TASKS, max_faults=3,
            kinds=sorted(CORRUPTION_KINDS),
        )
        kinds = [spec.kind for spec in plan.specs]
        assert set(kinds) & CORRUPTION_KINDS, kinds
        # Every corruption plan forces a recovery to read the damage.
        assert "task_kill" in kinds, kinds

    def test_corruption_injection_is_biased_late(self):
        # Artifacts must exist before they can be damaged: corruption never
        # lands in the first 30% of the horizon.
        for seed in range(20):
            plan = random_plan(
                seed, 1.0, task_names=self.TASKS, max_faults=2,
                kinds=sorted(CORRUPTION_KINDS),
            )
            for spec in plan.specs:
                if spec.kind in CORRUPTION_KINDS:
                    assert spec.at >= 0.3, (seed, spec)
