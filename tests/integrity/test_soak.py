"""The integrity-soak property: **corruption is never silent**.

Every seeded corruption run (silent blob corruption, torn writes, in-flight
bit-flips, truncated determinant replicas, each paired with kills that force
recovery to read the damage) must end exactly-once or with an announced
``degraded:global_rollback`` — never silent loss, duplication, or a hang
(``run_until_done`` raises on the deadline, which Hypothesis reports with
the offending seed).  The control arm (``validate=False``) proves the layer
is load-bearing: the same plan then produces a silent violation."""

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.chaos.plan import CORRUPTION_KINDS, random_plan
from repro.errors import JobError
from repro.integrity.soak import run_integrity_experiment

LIMIT = 120.0

#: A seed whose plan corrupts a stored source checkpoint that recovery then
#: restores: with validation off the run silently loses records (the control
#: violation); with validation on the ladder falls back to an older epoch.
CONTROL_SEED = 5


def describe(result):
    return (
        f"seed {result.seed}: verdict={result.verdict} "
        f"missing={result.chaos.missing} duplicated={result.chaos.duplicated} "
        f"injected={result.corruptions_injected} detected={result.detected} "
        f"summary={result.integrity_summary}"
    )


# Known-bad seeds found by overnight soaks, pinned as expected failures so
# (a) every run re-checks them instead of waiting for Hypothesis to
# rediscover them, and (b) the run that fixes them fails loudly here and
# must remove the pin.  Both are tracked as the ROADMAP §0 open item
# "integrity soak flakes".
@example(seed=1655).xfail(
    reason="known-bad seed (ROADMAP §0): corrupted restore slips through "
    "silently — verdict=violation, missing=41",
    raises=AssertionError,
)
@example(seed=64853).xfail(
    reason="known-bad seed (ROADMAP §0): recovery livelock, job misses the "
    "120s simulated-time deadline",
    raises=JobError,
)
@given(seed=st.integers(min_value=0, max_value=10**6))
@settings(max_examples=8, deadline=None)
def test_corruption_is_detected_or_announced_never_silent(seed):
    result = run_integrity_experiment(seed, limit=LIMIT)
    assert result.ok, describe(result)
    assert result.chaos.duration < LIMIT
    if result.verdict != "exactly-once":
        # Degradation is only acceptable when announced.
        assert result.chaos.degradations, describe(result)


def test_validation_disabled_is_demonstrably_silent():
    # The control arm: identical plan, checksums exist but nothing checks
    # them — the corrupted restore flows through and records are lost with
    # no announced degradation.  This is the wrong output the soak verdict
    # exists to catch.
    control = run_integrity_experiment(CONTROL_SEED, validate=False, limit=LIMIT)
    assert control.verdict == "violation", describe(control)
    assert control.chaos.missing > 0

    validated = run_integrity_experiment(CONTROL_SEED, validate=True, limit=LIMIT)
    assert validated.ok, describe(validated)
    assert validated.detected > 0, describe(validated)


def test_epoch_fallback_rewinds_the_timeline():
    # End-to-end multi-epoch fallback on the control seed: the newest epoch
    # fails validation, the ladder commits the job to the newest *older*
    # epoch that passes, and the abandoned timeline is discarded so later
    # local recoveries cannot resurrect it.
    result = run_integrity_experiment(CONTROL_SEED, limit=LIMIT)
    kinds = [kind for (_t, kind, _w) in result.chaos.recovery_events]
    assert any(k.startswith("integrity:epoch-invalid") for k in kinds), kinds
    assert any(k.startswith("integrity:epoch-fallback") for k in kinds), kinds
    assert any(k.startswith("integrity:timeline-rewind") for k in kinds), kinds
    assert result.verdict == "degraded:global_rollback", describe(result)
    assert result.chaos.missing == 0, "degraded still means at-least-once"


class TestCorruptionPlans:
    TASKS = ["source[0]", "stage1[0]", "sink[0]"]

    def test_corruption_kinds_stay_out_of_the_default_palette(self):
        # Existing chaos seeds must keep producing the exact same plans.
        for seed in range(10):
            plan = random_plan(seed, 1.0, task_names=self.TASKS, max_faults=5)
            assert not set(plan.kinds()) & CORRUPTION_KINDS

    def test_corruption_plans_pair_damage_with_kills(self):
        plan = random_plan(
            3, 1.0, task_names=self.TASKS, max_faults=3,
            kinds=sorted(CORRUPTION_KINDS),
        )
        kinds = [spec.kind for spec in plan.specs]
        assert set(kinds) & CORRUPTION_KINDS, kinds
        # Every corruption plan forces a recovery to read the damage.
        assert "task_kill" in kinds, kinds

    def test_corruption_injection_is_biased_late(self):
        # Artifacts must exist before they can be damaged: corruption never
        # lands in the first 30% of the horizon.
        for seed in range(20):
            plan = random_plan(
                seed, 1.0, task_names=self.TASKS, max_faults=2,
                kinds=sorted(CORRUPTION_KINDS),
            )
            for spec in plan.specs:
                if spec.kind in CORRUPTION_KINDS:
                    assert spec.at >= 0.3, (seed, spec)
