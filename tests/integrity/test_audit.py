"""The ``repro audit`` sweep: exits clean on an uncorrupted run and flags
100% of seeded injections across every artifact family."""

import random

from repro.cli import _audit_matches, _audit_run
from repro.integrity.audit import audit_job
from repro.integrity.corruption import (
    corrupt_checkpoint,
    corrupt_standby_image,
    random_corruptions,
    tampered_copy,
)
from repro.sim.rng import derive_seed


class _Args:
    seed = 0
    events = 800


def fresh_job():
    return _audit_run(_Args)


def test_uncorrupted_run_audits_clean():
    report = audit_job(fresh_job())
    assert report.ok, report.render()
    assert report.total_checked > 0
    assert report.checked["checkpoint"] > 0
    assert report.checked["determinant-log"] > 0


def test_every_seeded_injection_is_flagged():
    jm = fresh_job()
    rng = random.Random(derive_seed(0, "audit-inject"))
    injected = random_corruptions(jm, 5, rng)
    assert injected, "the run must hold corruptible artifacts"
    report = audit_job(jm)
    assert not report.ok
    missed = [
        (kind, detail)
        for kind, detail in injected
        if not _audit_matches(kind, detail, report.violations)
    ]
    assert not missed, f"audit missed {missed}; flagged {report.violations}"


def test_injections_hit_distinct_artifacts():
    jm = fresh_job()
    injected = random_corruptions(jm, 6, random.Random(42))
    # blob_corruption and torn_write share the checkpoint namespace; a
    # standby image may legitimately carry the same task@cid detail as a
    # checkpoint injection — distinctness is per (family, artifact).
    family = {"blob_corruption": "checkpoint", "torn_write": "checkpoint"}
    pairs = [(family.get(kind, kind), detail) for (kind, detail) in injected]
    assert len(pairs) == len(set(pairs))
    # Distinctness at audit granularity: at least one violation per injection.
    assert len(audit_job(jm).violations) >= len(injected)


def test_report_render_names_the_damage():
    jm = fresh_job()
    corrupt_checkpoint(jm, sorted(jm.vertices)[0])
    report = audit_job(jm)
    text = report.render()
    assert "violation" in text
    assert any(kind == "checkpoint" for (kind, _n, _d) in report.violations)


def test_corruption_is_copy_on_corrupt():
    # The store and a standby share the snapshot object a completed
    # checkpoint dispatched: corrupting the stored blob must not damage the
    # standby's image (and vice versa), like a real single-replica fault.
    jm = fresh_job()
    victim = None
    for name in sorted(jm.vertices):
        vertex = jm.vertices[name]
        standby = getattr(vertex, "standby", None)
        if standby is not None and standby.snapshot is not None:
            cid = standby.snapshot.checkpoint_id
            if jm.snapshot_store.get(name, cid) is standby.snapshot:
                victim = (name, cid, standby)
                break
    assert victim is not None, "no vertex shares store/standby snapshots"
    name, cid, standby = victim
    assert corrupt_checkpoint(jm, name, checkpoint_id=cid) == cid
    assert not jm.snapshot_store.get(name, cid).intact
    assert standby.snapshot.intact, "standby replica must stay undamaged"

    assert corrupt_standby_image(jm, name) is not None
    assert not standby.snapshot.intact


def test_tampered_copy_changes_payload_not_seal():
    jm = fresh_job()
    name = sorted(jm.vertices)[0]
    cid = jm.snapshot_store.latest_id(name)
    original = jm.snapshot_store.get(name, cid)
    clone = tampered_copy(original)
    assert original.intact
    assert not clone.intact
    assert clone.crc == original.crc  # the seal survives; the payload drifted
