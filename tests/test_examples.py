"""Smoke tests: every example script runs end-to-end (their internal
assertions are the real checks)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(f"example_{name}", EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_quickstart(capsys):
    load_example("quickstart").main()
    assert "exactly-once holds" in capsys.readouterr().out


def test_fraud_detection(capsys):
    load_example("fraud_detection").main()
    out = capsys.readouterr().out
    assert "every transaction has exactly one consistent verdict" in out


def test_exactly_once_output(capsys):
    load_example("exactly_once_output").main()
    out = capsys.readouterr().out
    assert "ExactlyOnceKafkaSink" in out


def test_nexmark_hot_items(capsys, monkeypatch):
    module = load_example("nexmark_hot_items")
    monkeypatch.setattr(module, "EVENTS_PER_PARTITION", 8000)
    monkeypatch.setattr(module, "KILL_AT", 1.0)
    module.main()
    out = capsys.readouterr().out
    assert "Clonos" in out and "vanilla Flink" in out
