"""Failure and recovery tests: the heart of the reproduction.

The assertions encode the guarantees of Section 5.4 / Table 1:

* Clonos: exactly-once, even for nondeterministic operators.
* Divergent local replay (DSD=0 spirit): at-least-once (duplicates).
* Gap recovery: at-most-once (loss).
* SEEP-style receiver dedup: exactly-once iff deterministic.
* Global rollback: exactly-once state, far slower recovery.
"""

from collections import Counter

import pytest

from repro.config import FaultToleranceMode
from repro.external.kafka import DurableLog
from repro.graph.logical import JobGraphBuilder
from repro.operators import KafkaSink, KafkaSource, MapOperator, Operator, TransactionalKafkaSink
from repro.runtime.jobmanager import JobManager
from repro.sim.core import Environment

from tests.runtime.helpers import fast_cost, make_config, sink_values


class TagOperator(Operator):
    """Deterministic: tags each input with a running per-task counter."""

    def __init__(self):
        self._seen = 0

    def process(self, record, ctx):
        self._seen += 1
        ctx.collect(("tag", record.value))

    def snapshot(self):
        return self._seen

    def restore(self, state):
        self._seen = state or 0


class NondetFanoutOperator(Operator):
    """Nondeterministic: emits 1 or 2 copies per input, decided by the
    (causal) RNG service.  Re-execution draws differently unless the seed
    determinants are replayed."""

    deterministic = False

    def process(self, record, ctx):
        copies = 1 + int(ctx.services.random() * 2)
        for copy_index in range(copies):
            ctx.collect((record.value, copy_index, copies))


class StampOperator(Operator):
    """Nondeterministic: stamps each record with processing time via the
    Timestamp service."""

    deterministic = False

    def process(self, record, ctx):
        ctx.collect((record.value, ctx.processing_time()))


def run_job(
    mode,
    mid_factory,
    n_records=3000,
    rate=2000.0,
    kill=(),
    kill_at=0.7,
    checkpoint_interval=0.3,
    sink_factory=None,
    dsd=None,
    seed=7,
):
    """Build source->mid->sink, optionally killing tasks, run to completion."""
    env = Environment()
    log = DurableLog()
    log.create_generated_topic(
        "in", 1, lambda p, off: off, rate, total_per_partition=n_records
    )
    log.create_topic("out", 1)
    config = make_config(mode, checkpoint_interval=checkpoint_interval)
    config.clonos.determinant_sharing_depth = dsd
    config.seed = seed
    builder = JobGraphBuilder("recovery-test")
    stream = builder.source("src", lambda: KafkaSource(log, "in"))
    mid = stream.key_by(lambda v: v % 7).process("mid", mid_factory)
    sink_f = sink_factory or (lambda: KafkaSink(log, "out"))
    mid.key_by(lambda v: 0).sink("sink", sink_f)
    graph = builder.build()
    jm = JobManager(env, graph, config)
    jm.deploy()
    for i, victim in enumerate(kill):
        env.schedule_callback(
            kill_at + i * 0.0, lambda name=victim: jm.kill_task(name)
        )
    jm.run_until_done(limit=600)
    return jm, log


def run_job_staggered(mode, mid_factory, kills, **kwargs):
    """kills: list of (time, task_name)."""
    env = Environment()
    log = DurableLog()
    n_records = kwargs.pop("n_records", 3000)
    rate = kwargs.pop("rate", 2000.0)
    log.create_generated_topic(
        "in", 1, lambda p, off: off, rate, total_per_partition=n_records
    )
    log.create_topic("out", 1)
    config = make_config(mode, checkpoint_interval=kwargs.pop("checkpoint_interval", 0.3))
    builder = JobGraphBuilder("recovery-test")
    stream = builder.source("src", lambda: KafkaSource(log, "in"))
    mid = stream.key_by(lambda v: v % 7).process("mid", mid_factory)
    mid.key_by(lambda v: 0).sink("sink", lambda: KafkaSink(log, "out"))
    jm = JobManager(env, builder.build(), config)
    jm.deploy()
    for when, victim in kills:
        env.schedule_callback(when, lambda name=victim: jm.kill_task(name))
    jm.run_until_done(limit=600)
    return jm, log


# ---------------------------------------------------------------------------
# Clonos: exactly-once under failures
# ---------------------------------------------------------------------------


def test_clonos_middle_failure_deterministic_exactly_once():
    jm, log = run_job(FaultToleranceMode.CLONOS, TagOperator, kill=["mid[0]"])
    values = sink_values(log)
    assert Counter(values) == Counter(("tag", i) for i in range(3000))
    assert jm.failures_injected


def test_clonos_failure_free_baseline_content():
    _jm, log_with = run_job(FaultToleranceMode.CLONOS, TagOperator, kill=["mid[0]"])
    _jm2, log_without = run_job(FaultToleranceMode.CLONOS, TagOperator, kill=[])
    # Deterministic pipeline: the output content (per-partition order aside)
    # is identical with and without the failure.
    assert Counter(sink_values(log_with)) == Counter(sink_values(log_without))


def test_clonos_nondeterministic_fanout_exactly_once():
    jm, log = run_job(FaultToleranceMode.CLONOS, NondetFanoutOperator, kill=["mid[0]"])
    values = sink_values(log)
    by_input = {}
    for input_id, copy_index, copies in values:
        by_input.setdefault(input_id, []).append((copy_index, copies))
    assert set(by_input) == set(range(3000))  # no loss
    for input_id, entries in by_input.items():
        copies = entries[0][1]
        # Exactly `copies` outputs, one per copy index, all agreeing on the
        # draw: no duplicates, no contradictory regeneration.
        assert sorted(e[0] for e in entries) == list(range(copies)), (
            f"input {input_id}: inconsistent copies {entries}"
        )


def test_clonos_timestamp_service_consistent():
    jm, log = run_job(FaultToleranceMode.CLONOS, StampOperator, kill=["mid[0]"])
    values = sink_values(log)
    stamps = {}
    for input_id, stamp in values:
        stamps.setdefault(input_id, set()).add(stamp)
    assert set(stamps) == set(range(3000))
    # Exactly one timestamp per record: nothing was applied twice with
    # different wall-clock observations.
    assert all(len(s) == 1 for s in stamps.values())


def test_clonos_source_failure_exactly_once():
    jm, log = run_job(FaultToleranceMode.CLONOS, TagOperator, kill=["src[0]"])
    assert Counter(sink_values(log)) == Counter(("tag", i) for i in range(3000))


def test_clonos_concurrent_chain_failures_exactly_once():
    jm, log = run_job(
        FaultToleranceMode.CLONOS, TagOperator, kill=["mid[0]", "sink[0]"]
    )
    # sink[0] failed: its Kafka appends of the current epoch are replayed
    # (output-commit is Section 5.5's separate problem), so the output may
    # hold duplicates — but never losses, and the *state path* is exact.
    values = sink_values(log)
    assert set(values) == {("tag", i) for i in range(3000)}


def test_clonos_staggered_failures_exactly_once():
    jm, log = run_job_staggered(
        FaultToleranceMode.CLONOS,
        TagOperator,
        kills=[(0.5, "mid[0]"), (0.9, "src[0]")],
    )
    assert Counter(sink_values(log)) == Counter(("tag", i) for i in range(3000))
    assert len(jm.failures_injected) == 2


def test_clonos_second_failure_of_same_task():
    jm, log = run_job_staggered(
        FaultToleranceMode.CLONOS,
        TagOperator,
        kills=[(0.5, "mid[0]"), (1.0, "mid[0]")],
    )
    assert Counter(sink_values(log)) == Counter(("tag", i) for i in range(3000))


# ---------------------------------------------------------------------------
# Baselines: the guarantee spectrum (Section 5.4, Table 1)
# ---------------------------------------------------------------------------


def test_divergent_replay_is_at_least_once():
    jm, log = run_job(FaultToleranceMode.DIVERGENT, TagOperator, kill=["mid[0]"])
    counts = Counter(v for _tag, v in sink_values(log))
    assert set(counts) == set(range(3000))  # nothing lost
    assert any(c > 1 for c in counts.values())  # replay duplicated records


def test_gap_recovery_is_at_most_once():
    jm, log = run_job(FaultToleranceMode.GAP_RECOVERY, TagOperator, kill=["mid[0]"])
    counts = Counter(v for _tag, v in sink_values(log))
    assert all(c == 1 for c in counts.values())  # no duplicates
    assert len(counts) < 3000  # in-flight records were lost


def test_seep_exactly_once_for_deterministic_operators():
    jm, log = run_job(FaultToleranceMode.SEEP, TagOperator, kill=["mid[0]"])
    counts = Counter(v for _tag, v in sink_values(log))
    assert set(counts) == set(range(3000))
    assert all(c == 1 for c in counts.values())


def test_seep_breaks_under_nondeterminism():
    jm, log = run_job(
        FaultToleranceMode.SEEP, NondetFanoutOperator, kill=["mid[0]"]
    )
    values = sink_values(log)
    by_input = {}
    for input_id, copy_index, copies in values:
        by_input.setdefault(input_id, []).append((copy_index, copies))
    violations = 0
    for input_id in range(3000):
        entries = by_input.get(input_id)
        if entries is None:
            violations += 1  # lost
            continue
        copies = entries[0][1]
        if sorted(e[0] for e in entries) != list(range(copies)):
            violations += 1  # duplicate or contradictory regeneration
    assert violations > 0, (
        "SEEP-style count dedup should misalign when the operator's output "
        "cardinality is nondeterministic"
    )


def test_global_rollback_exactly_once_with_transactional_sink():
    jm, log = run_job(
        FaultToleranceMode.GLOBAL_ROLLBACK,
        TagOperator,
        kill=["mid[0]"],
        sink_factory=None,
    )
    # Plain sink + global restart: the whole graph (sink included) rolls
    # back, so output duplicates appear — but nothing is lost.
    counts = Counter(v for _tag, v in sink_values(log))
    assert set(counts) == set(range(3000))


def test_orphan_with_fallback_disabled_skips_dedup():
    """Section 5.4: beyond f failures, Clonos can favour availability —
    local recovery without determinants, at-least-once."""
    env = Environment()
    log = DurableLog()
    log.create_generated_topic("in", 1, lambda p, off: off, 2000.0, 3000)
    log.create_topic("out", 1)
    config = make_config(FaultToleranceMode.CLONOS, checkpoint_interval=0.3)
    config.clonos.determinant_sharing_depth = 1
    config.clonos.fallback_to_global = False
    builder = JobGraphBuilder("orphan-alo")
    stream = builder.source("src", lambda: KafkaSource(log, "in"))
    a = stream.key_by(lambda v: v % 7).process("a", TagOperator)
    b = a.key_by(lambda v: v[1] % 7).process("b", lambda: TagOperator())
    b.key_by(lambda v: 0).sink("sink", lambda: KafkaSink(log, "out"))
    jm = JobManager(env, builder.build(), config)
    jm.deploy()
    # Two connected concurrent failures exceed DSD=1: a's only determinant
    # holder (b) died with it while the sink survives and depends on a.
    env.schedule_callback(0.7, lambda: jm.kill_task("a[0]"))
    env.schedule_callback(0.7, lambda: jm.kill_task("b[0]"))
    jm.run_until_done(limit=600)
    assert any(kind == "orphan-skip-dedup" for _t, kind, _n in jm.recovery_events)
    assert not any("global-restart" in kind for _t, kind, _n in jm.recovery_events)
    counts = Counter(v[1] for _tag, v in sink_values(log))
    assert set(counts) == set(range(3000))  # at-least-once: nothing lost


# ---------------------------------------------------------------------------
# Recovery characteristics
# ---------------------------------------------------------------------------


def test_clonos_recovers_faster_than_global_rollback():
    jm_clonos, _ = run_job(FaultToleranceMode.CLONOS, TagOperator, kill=["mid[0]"])
    jm_flink, _ = run_job(
        FaultToleranceMode.GLOBAL_ROLLBACK, TagOperator, kill=["mid[0]"]
    )

    def recovery_span(jm, done_kinds):
        start = jm.failures_injected[0][0]
        end = max(t for t, kind, _n in jm.recovery_events if kind in done_kinds)
        return end - start

    clonos_span = recovery_span(jm_clonos, {"recovered"})
    flink_span = recovery_span(jm_flink, {"global-restart-done"})
    assert clonos_span < flink_span / 3


def test_standby_activation_beats_fresh_deployment():
    jm_standby, _ = run_job(FaultToleranceMode.CLONOS, TagOperator, kill=["mid[0]"])

    env = Environment()
    log = DurableLog()
    log.create_generated_topic("in", 1, lambda p, off: off, 2000.0, 3000)
    log.create_topic("out", 1)
    config = make_config(FaultToleranceMode.CLONOS, checkpoint_interval=0.3)
    config.clonos.standby_tasks = False
    builder = JobGraphBuilder("no-standby")
    stream = builder.source("src", lambda: KafkaSource(log, "in"))
    mid = stream.key_by(lambda v: v % 7).process("mid", TagOperator)
    mid.key_by(lambda v: 0).sink("sink", lambda: KafkaSink(log, "out"))
    jm_fresh = JobManager(env, builder.build(), config)
    jm_fresh.deploy()
    env.schedule_callback(0.7, lambda: jm_fresh.kill_task("mid[0]"))
    jm_fresh.run_until_done(limit=600)
    assert Counter(sink_values(log)) == Counter(("tag", i) for i in range(3000))

    def first_recovered(jm):
        start = jm.failures_injected[0][0]
        return min(
            t for t, kind, _n in jm.recovery_events if kind == "recovered"
        ) - start

    assert first_recovered(jm_standby) < first_recovered(jm_fresh)


def test_clonos_unaffected_paths_keep_running():
    """Kill one of two parallel mid subtasks: the sibling keeps processing
    while recovery is in progress (local recovery, Section 2)."""
    env = Environment()
    log = DurableLog()
    log.create_generated_topic("in", 2, lambda p, off: (p, off), 1500.0, 3000)
    log.create_topic("out", 2)
    config = make_config(FaultToleranceMode.CLONOS, checkpoint_interval=0.3)
    builder = JobGraphBuilder("parallel")
    stream = builder.source("src", lambda: KafkaSource(log, "in"), parallelism=2)
    mid = stream.process("mid", lambda: MapOperator(lambda v: v))
    mid.sink("sink", lambda: KafkaSink(log, "out"))
    jm = JobManager(env, builder.build(), config)
    jm.deploy()
    env.schedule_callback(0.7, lambda: jm.kill_task("mid[0]"))

    progress = {}

    def probe():
        progress["before"] = jm.task_of("mid[1]").records_processed

    def probe_after():
        progress["after"] = jm.task_of("mid[1]").records_processed

    env.schedule_callback(0.71, probe)
    env.schedule_callback(0.9, probe_after)
    jm.run_until_done(limit=600)
    assert progress["after"] > progress["before"]
    assert len(sink_values(log)) == 6000
