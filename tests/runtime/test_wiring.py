"""Tests for physical-graph construction (deployment wiring)."""

import pytest

from repro.config import FaultToleranceMode
from repro.external.kafka import DurableLog
from repro.graph.logical import JobGraphBuilder
from repro.operators import (
    FullHistoryJoinOperator,
    KafkaSink,
    KafkaSource,
    MapOperator,
)
from repro.runtime.jobmanager import JobManager
from repro.sim.core import Environment

from tests.runtime.helpers import make_config


def deploy(parallelism=2, mode=FaultToleranceMode.CLONOS):
    env = Environment()
    log = DurableLog()
    log.create_generated_topic("in", parallelism, lambda p, off: off, 1000.0, 10)
    log.create_topic("out", parallelism)
    builder = JobGraphBuilder("wiring")
    left = builder.source("lsrc", lambda: KafkaSource(log, "in"),
                          parallelism=parallelism)
    mapped = left.process("map", lambda: MapOperator(lambda v: v))
    keyed = mapped.key_by(lambda v: v)
    right = keyed.process("agg", lambda: MapOperator(lambda v: v))
    right.key_by(lambda v: v).sink("sink", lambda: KafkaSink(log, "out"))
    jm = JobManager(env, builder.build(), make_config(mode))
    jm.deploy()
    return jm


def test_forward_edges_are_pointwise():
    jm = deploy(parallelism=3)
    # lsrc -> map is a forward edge: exactly one output channel per subtask.
    for i in range(3):
        vertex = jm.vertices[f"lsrc[{i}]"]
        (_edge, channels), = vertex.out_links
        assert len(channels) == 1
        assert channels[0][1] == f"map[{i}]"


def test_hash_edges_are_full_mesh():
    jm = deploy(parallelism=3)
    for i in range(3):
        vertex = jm.vertices[f"map[{i}]"]
        (_edge, channels), = vertex.out_links
        assert [down for (_f, down, _l) in channels] == [
            "agg[0]", "agg[1]", "agg[2]"
        ]


def test_flat_channel_indices_are_consistent_both_sides():
    jm = deploy(parallelism=2)
    for vertex in jm.vertices.values():
        for in_flat, _inp, up_name, link, up_flat in vertex.in_links:
            upstream = jm.vertices[up_name]
            found = [
                (f, down, l)
                for (_e, chans) in upstream.out_links
                for (f, down, l) in chans
                if l is link
            ]
            assert len(found) == 1
            flat, down, _l = found[0]
            assert flat == up_flat
            assert down == vertex.name
            # And the receiver's channel object is attached to this link.
            assert link.receiver is vertex.task.gate.channels[in_flat]


def test_input_infos_match_gate_channels():
    jm = deploy(parallelism=2)
    for vertex in jm.vertices.values():
        task = vertex.task
        assert len(task.input_infos) == len(task.gate.channels)
        for info, channel in zip(task.input_infos, task.gate.channels):
            assert info.flat_index == channel.index


def test_two_input_operator_gets_both_edges():
    env = Environment()
    log = DurableLog()
    log.create_generated_topic("a", 1, lambda p, off: off, 1000.0, 5)
    log.create_generated_topic("b", 1, lambda p, off: off, 1000.0, 5)
    log.create_topic("out", 1)
    builder = JobGraphBuilder("join-wiring")
    left = builder.source("la", lambda: KafkaSource(log, "a")).key_by(lambda v: v)
    right = builder.source("rb", lambda: KafkaSource(log, "b")).key_by(lambda v: v)
    joined = builder.connect(left, right, "join",
                             lambda: FullHistoryJoinOperator(lambda l, r: (l, r)))
    joined.sink("sink", lambda: KafkaSink(log, "out"))
    jm = JobManager(env, builder.build(), make_config(FaultToleranceMode.CLONOS))
    jm.deploy()
    join_task = jm.task_of("join[0]")
    assert [info.input_index for info in join_task.input_infos] == [0, 1]
    assert {info.upstream_task for info in join_task.input_infos} == {"la[0]", "rb[0]"}


def test_adjacency_reflects_physical_graph():
    jm = deploy(parallelism=2)
    assert set(jm.adjacency["map[0]"]) == {"agg[0]", "agg[1]"}
    assert jm.adjacency["sink[0]"] == []


def test_causal_managers_only_in_clonos_mode():
    clonos = deploy(mode=FaultToleranceMode.CLONOS)
    flink = deploy(mode=FaultToleranceMode.GLOBAL_ROLLBACK)
    assert clonos.task_of("map[0]").causal is not None
    assert flink.task_of("map[0]").causal is None
    # Sinks have no outputs, hence no in-flight log, but still causal state.
    assert clonos.task_of("sink[0]").inflight is None
    assert clonos.task_of("sink[0]").causal is not None
