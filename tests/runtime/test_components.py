"""Unit tests for cluster, control queue, and standby components."""

import pytest

from repro.config import CostModel
from repro.core.standby import StandbyState
from repro.errors import JobError
from repro.runtime.cluster import Cluster
from repro.runtime.rpc import ControlQueue
from repro.sim.core import Environment
from repro.state.snapshot import TaskSnapshot


class TestCluster:
    def test_allocate_spreads_load(self):
        cluster = Cluster(num_nodes=3, slots_per_node=2)
        nodes = [cluster.allocate(f"t{i}") for i in range(3)]
        assert sorted(nodes) == [0, 1, 2]

    def test_anti_affinity_avoids_named_nodes(self):
        cluster = Cluster(num_nodes=3, slots_per_node=4)
        primary = cluster.allocate("task")
        standby = cluster.allocate("standby:task", avoid_nodes={primary})
        assert standby != primary

    def test_anti_affinity_falls_back_when_full(self):
        cluster = Cluster(num_nodes=2, slots_per_node=1)
        n0 = cluster.allocate("a")
        n1 = cluster.allocate("b")
        cluster.release("b")
        # Only node n1 has space, even though we would like to avoid it.
        got = cluster.allocate("c", avoid_nodes={n1})
        assert got == n1

    def test_out_of_slots_raises(self):
        cluster = Cluster(num_nodes=1, slots_per_node=1)
        cluster.allocate("a")
        with pytest.raises(JobError):
            cluster.allocate("b")

    def test_release_and_occupants(self):
        cluster = Cluster(num_nodes=1, slots_per_node=2)
        node = cluster.allocate("a")
        cluster.allocate("b")
        assert cluster.occupants_of_node(node) == {"a", "b"}
        cluster.release("a")
        assert cluster.occupants_of_node(node) == {"b"}
        assert cluster.node_of("a") is None


class TestControlQueue:
    def test_messages_arrive_after_rpc_latency(self):
        env = Environment()
        queue = ControlQueue(env, CostModel(rpc_latency=0.5), "t")
        queue.send("ping", 123)
        assert queue.poll() is None
        env.run(until=0.6)
        message = queue.poll()
        assert message.kind == "ping" and message.payload == 123

    def test_immediate_bypasses_latency(self):
        env = Environment()
        queue = ControlQueue(env, CostModel(), "t")
        queue.send("now", immediate=True)
        assert queue.poll().kind == "now"

    def test_closed_queue_drops_messages(self):
        env = Environment()
        queue = ControlQueue(env, CostModel(rpc_latency=0.1), "t")
        queue.send("lost")
        queue.close()
        env.run(until=1.0)
        assert queue.poll() is None
        queue.reopen()
        queue.send("kept", immediate=True)
        assert queue.poll().kind == "kept"

    def test_signal_pulses_on_delivery(self):
        env = Environment()
        queue = ControlQueue(env, CostModel(rpc_latency=0.1), "t")
        woken = []

        def waiter():
            yield queue.signal.wait()
            woken.append(env.now)

        env.process(waiter())
        queue.send("x")
        env.run()
        assert len(woken) == 1


class TestStandby:
    def make_snapshot(self, cid=1, size=10000):
        snap = TaskSnapshot("t", cid, {}, None, {"edges": []}, {}, None)
        snap.size_bytes = size
        return snap

    def test_dispatch_transfers_after_network_time(self):
        env = Environment()
        cost = CostModel(network_bandwidth=1e6, network_latency=0.0)
        standby = StandbyState(env, cost, "t", node_id=1)
        env.process(standby.dispatch(self.make_snapshot(size=500000)))
        env.run(until=0.25)
        assert standby.snapshot is None  # 0.5s transfer still in flight
        env.run(until=0.6)
        assert standby.checkpoint_id == 1
        assert standby.transfers_received == 1

    def test_activation_waits_for_in_flight_transfer(self):
        env = Environment()
        cost = CostModel(network_bandwidth=1e6, network_latency=0.0)
        standby = StandbyState(env, cost, "t", node_id=1)
        env.process(standby.dispatch(self.make_snapshot(cid=2, size=500000)))
        got = []

        def activate():
            snapshot = yield from standby.wait_ready()
            got.append((env.now, snapshot.checkpoint_id))

        env.run(until=0.1)
        env.process(activate())
        env.run()
        when, cid = got[0]
        assert cid == 2
        assert when >= 0.5  # waited for the transfer (Section 6.4)

    def test_wait_ready_immediate_when_idle(self):
        env = Environment()
        standby = StandbyState(env, CostModel(), "t", node_id=0)
        got = []

        def activate():
            snapshot = yield from standby.wait_ready()
            got.append(snapshot)

        env.process(activate())
        env.run()
        assert got == [None]  # no snapshot dispatched yet
