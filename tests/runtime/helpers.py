"""Shared builders for runtime/integration tests."""

from typing import List, Optional

from repro.config import CostModel, FaultToleranceMode, JobConfig
from repro.external.http import ExternalService
from repro.external.kafka import DurableLog
from repro.graph.logical import JobGraphBuilder
from repro.operators import (
    KafkaSink,
    KafkaSource,
    KeyedCounterOperator,
    MapOperator,
)
from repro.runtime.jobmanager import JobManager
from repro.sim.core import Environment
from repro.sim.rng import RandomStreams


def fast_cost(**overrides) -> CostModel:
    """A cost model tuned for fast unit tests."""
    defaults = dict(
        record_cpu_cost=5e-6,
        buffer_size_bytes=512,
        flush_interval=5e-3,
        heartbeat_interval=0.3,
        heartbeat_timeout=0.5,
        task_deploy_time=0.2,
        task_cancel_time=0.05,
        standby_activation_time=0.02,
        connection_failure_detection=0.02,
    )
    defaults.update(overrides)
    return CostModel(**defaults)


def make_config(mode=FaultToleranceMode.CLONOS, **kwargs) -> JobConfig:
    cost = kwargs.pop("cost", fast_cost())
    config = JobConfig(mode=mode, cost=cost, checkpoint_interval=kwargs.pop("checkpoint_interval", 0.5), **kwargs)
    return config


def build_linear_job(
    env: Environment,
    config: JobConfig,
    log: DurableLog,
    n_records: int = 200,
    rate: float = 2000.0,
    parallelism: int = 1,
    external: Optional[ExternalService] = None,
    mid_operator_factory=None,
):
    """source -> map -> count(keyed) -> sink over a generated topic."""
    log.create_generated_topic(
        "in", parallelism, lambda p, off: (p, off), rate, total_per_partition=n_records
    )
    log.create_topic("out", parallelism)
    builder = JobGraphBuilder("linear")
    stream = builder.source(
        "src",
        lambda: KafkaSource(log, "in"),
        parallelism=parallelism,
    )
    factory = mid_operator_factory or (lambda: MapOperator(lambda v: v))
    mapped = stream.process("map", factory)
    counted = mapped.key_by(lambda v: v[1] % 10).process(
        "count", lambda: KeyedCounterOperator()
    )
    counted.sink("sink", lambda: KafkaSink(log, "out"))
    graph = builder.build()
    jm = JobManager(env, graph, config, external=external)
    jm.deploy()
    return jm


def sink_values(log: DurableLog, topic: str = "out") -> List:
    return [entry.value for entry in log.read_all(topic)]
