"""Node failures, standby placement (Section 6.3), and incremental
checkpoints (Section 6.4)."""

from collections import Counter

import pytest

from repro.config import FaultToleranceMode
from repro.external.kafka import DurableLog
from repro.graph.logical import JobGraphBuilder
from repro.operators import KafkaSink, KafkaSource, MapOperator
from repro.runtime.cluster import Cluster
from repro.runtime.jobmanager import JobManager
from repro.runtime.task import TaskStatus
from repro.sim.core import Environment
from repro.workloads.synthetic import synthetic_chain

from tests.runtime.helpers import make_config, sink_values


def deploy_chain(config, n_records=2000, cluster=None):
    env = Environment()
    log = DurableLog()
    graph = synthetic_chain(
        log,
        depth=4,
        parallelism=2,
        rate_per_partition=1500.0,
        total_per_partition=n_records,
        state_bytes_per_task=16384,
        out_topic="out",
    )
    jm = JobManager(env, graph, config, cluster=cluster)
    jm.deploy()
    return env, log, jm


def test_standby_anti_affinity_placement():
    config = make_config(FaultToleranceMode.CLONOS)
    _env, _log, jm = deploy_chain(config)
    for vertex in jm.vertices.values():
        assert vertex.standby is not None
        assert vertex.standby.node_id != vertex.node_id, (
            f"{vertex.name}: standby co-located with its task"
        )


def test_standby_co_location_allowed_when_disabled():
    config = make_config(FaultToleranceMode.CLONOS)
    config.clonos.standby_anti_affinity = False
    # A tiny cluster forces co-location once anti-affinity is off.
    cluster = Cluster(num_nodes=2, slots_per_node=32)
    _env, _log, jm = deploy_chain(config, cluster=cluster)
    assert any(
        vertex.standby.node_id == vertex.node_id for vertex in jm.vertices.values()
    )


def test_node_failure_kills_all_residents_and_recovers_exactly_once():
    config = make_config(FaultToleranceMode.CLONOS)
    env, log, jm = deploy_chain(config, n_records=2500)
    victim_node = jm.vertices["stage2[0]"].node_id
    expected_victims = {
        name
        for name in jm.cluster.occupants_of_node(victim_node)
        if name in jm.vertices
    }
    assert expected_victims

    env.schedule_callback(0.5, lambda: jm.kill_node(victim_node))
    jm.run_until_done(limit=600)
    killed = {name for (_t, name) in jm.failures_injected}
    assert killed == expected_victims
    origins = Counter((v[0], v[1]) for v in sink_values(log))
    assert len(origins) == 2 * 2500
    assert all(c == 1 for c in origins.values())


def test_node_failure_spares_standbys_on_other_nodes():
    config = make_config(FaultToleranceMode.CLONOS)
    env, log, jm = deploy_chain(config, n_records=2500)
    victim_node = jm.vertices["stage1[0]"].node_id
    survivors_standby = {
        vertex.name
        for vertex in jm.vertices.values()
        if vertex.node_id == victim_node and vertex.standby.node_id != victim_node
    }
    assert survivors_standby  # anti-affinity guarantees this
    env.schedule_callback(0.6, lambda: jm.kill_node(victim_node))
    jm.run_until_done(limit=600)
    # Standby-based recoveries happened (sub-second switches, not deploys).
    recovered = [name for (_t, kind, name) in jm.recovery_events if kind == "recovered"]
    assert set(recovered) >= survivors_standby


def test_failed_node_relocates_all_residents_and_recovers_exactly_once():
    # fail_node=True marks the node dead: every resident (and co-hosted
    # standby) dies with it, and every replacement must land elsewhere.
    config = make_config(FaultToleranceMode.CLONOS)
    env, log, jm = deploy_chain(config, n_records=2500)
    victim_node = jm.vertices["stage2[0]"].node_id
    residents = {
        name
        for name in jm.cluster.occupants_of_node(victim_node)
        if name in jm.vertices
    }
    assert residents
    env.schedule_callback(
        0.6, lambda: jm.kill_node(victim_node, force=True, fail_node=True)
    )
    jm.run_until_done(limit=600)
    killed = {name for (_t, name) in jm.failures_injected}
    assert killed == residents
    assert not jm.cluster.nodes[victim_node].alive
    for name in residents:
        placed = jm.cluster.node_of(name)
        assert placed is not None and placed != victim_node, (
            f"{name}: replacement placed on the dead node"
        )
        assert jm.vertices[name].node_id == placed
    origins = Counter((v[0], v[1]) for v in sink_values(log))
    assert len(origins) == 2 * 2500
    assert all(c == 1 for c in origins.values())


def test_standby_activation_when_standbys_node_has_failed():
    # The victim's standby dies with its node just before the victim is
    # killed: activation cannot take the fast path, recovery falls back to
    # the DFS checkpoint, and the ladder re-provisions a standby on a node
    # that is still alive.  Spare capacity so the reprovision is not
    # deferred for lack of a slot.
    config = make_config(FaultToleranceMode.CLONOS)
    env, log, jm = deploy_chain(
        config, n_records=2500, cluster=Cluster(num_nodes=12, slots_per_node=2)
    )
    victim = "stage2[0]"
    standby_node = jm.vertices[victim].standby.node_id
    assert standby_node != jm.vertices[victim].node_id  # anti-affinity
    env.schedule_callback(
        0.55, lambda: jm.kill_node(standby_node, force=True, fail_node=True)
    )
    env.schedule_callback(0.60, lambda: jm.kill_task(victim, force=True))
    jm.run_until_done(limit=600)
    assert any(
        kind == "standby-lost" and who == victim
        for (_t, kind, who) in jm.recovery_events
    )
    recovered = {
        who for (_t, kind, who) in jm.recovery_events if kind == "recovered"
    }
    assert victim in recovered
    standby = jm.vertices[victim].standby
    assert standby is not None and not standby.failed
    assert standby.node_id != standby_node, (
        "re-provisioned standby placed on the dead node"
    )
    origins = Counter((v[0], v[1]) for v in sink_values(log))
    assert len(origins) == 2 * 2500
    assert all(c == 1 for c in origins.values())


def test_incremental_checkpoints_write_less_dfs_data():
    def dfs_bytes(incremental):
        config = make_config(FaultToleranceMode.CLONOS, checkpoint_interval=0.25)
        config.incremental_checkpoints = incremental
        env, log, jm = deploy_chain(config, n_records=4000)
        jm.run_until_done(limit=600)
        assert len(jm.checkpoints_completed) >= 3
        return jm.dfs.bytes_written

    full = dfs_bytes(False)
    incremental = dfs_bytes(True)
    assert incremental < full * 0.8
