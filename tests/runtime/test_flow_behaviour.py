"""End-to-end behavioural tests: backpressure, watermark flow, checkpoint
lifecycle details."""

import pytest

from repro.config import FaultToleranceMode
from repro.external.kafka import DurableLog
from repro.graph.logical import JobGraphBuilder
from repro.operators import (
    CountAggregator,
    EventTimeWindowOperator,
    KafkaSink,
    KafkaSource,
    MapOperator,
    ProcessOperator,
)
from repro.runtime.jobmanager import JobManager
from repro.sim.core import Environment

from tests.runtime.helpers import fast_cost, make_config, sink_values


def test_backpressure_throttles_sources():
    """A slow operator must slow the sources down (bounded pipeline), not
    let queues grow without bound."""
    env = Environment()
    log = DurableLog()
    log.create_generated_topic("in", 1, lambda p, off: off, 1e9, None)  # firehose
    log.create_topic("out", 1)
    config = make_config(
        FaultToleranceMode.GLOBAL_ROLLBACK,
        cost=fast_cost(record_cpu_cost=5e-6, buffer_size_bytes=512),
        checkpoint_interval=10.0,
    )

    def slow(record, ctx):
        ctx.collect(record.value)

    builder = JobGraphBuilder("bp")
    stream = builder.source("src", lambda: KafkaSource(log, "in"))
    mid = stream.key_by(lambda v: 0).process("slow", lambda: ProcessOperator(slow))
    mid.key_by(lambda v: 0).sink("sink", lambda: KafkaSink(log, "out"))
    jm = JobManager(env, builder.build(), config)
    jm.deploy()
    # Make the middle operator artificially slow by inflating its cpu debt.
    slow_task = jm.task_of("slow[0]")
    original_charge = slow_task.charge
    slow_task.charge = lambda s: original_charge(s * 50)
    env.run(until=2.0)
    src_offset = jm.task_of("src[0]").operator.offset
    consumed = jm.task_of("slow[0]").records_processed
    # The source read only what the pipeline could absorb: its lead over the
    # slow stage is bounded by the pipeline's buffer capacity.
    assert src_offset - consumed < 2000
    assert src_offset < 100_000


def test_watermarks_take_min_across_parallel_sources():
    """A keyed window downstream of two sources fires only when BOTH
    sources' watermarks passed the window end."""
    env = Environment()
    log = DurableLog()
    # Partition 1 lags: its events arrive 10x slower.
    log.create_generated_topic("in", 2, lambda p, off: (p, off), 1000.0, 2000)
    slow_partition = log.partition("in", 1)
    fast_rate = slow_partition.rate

    class LaggyPartition(type(slow_partition)):
        pass

    slow_partition.rate = fast_rate / 4  # arrivals (and watermarks) lag
    log.create_topic("out", 2)
    config = make_config(FaultToleranceMode.CLONOS, checkpoint_interval=5.0)
    builder = JobGraphBuilder("wm")
    stream = builder.source("src", lambda: KafkaSource(log, "in"), parallelism=2)
    counted = stream.key_by(lambda v: v[1] % 5).process(
        "win",
        lambda: EventTimeWindowOperator(
            0.5, CountAggregator(), result_fn=lambda k, w, c: (w.start, k, c)
        ),
    )
    counted.key_by(lambda v: v[1]).sink("sink", lambda: KafkaSink(log, "out"))
    jm = JobManager(env, builder.build(), config)
    jm.deploy()
    env.run(until=1.5)
    # Fast source is ~1.5s of event time in; slow source only ~0.37s. The
    # combined watermark is held back by the slow source, so no window at or
    # past its frontier may have fired yet.
    fired_starts = [v[0] for v in sink_values(log)]
    slow_frontier = 0.375
    assert all(start < slow_frontier for start in fired_starts)
    jm.run_until_done(limit=300)
    assert len(sink_values(log)) > 0


class TestCheckpointLifecycle:
    def build(self, checkpoint_interval=0.3):
        env = Environment()
        log = DurableLog()
        log.create_generated_topic("in", 1, lambda p, off: off, 1000.0, 4000)
        log.create_topic("out", 1)
        config = make_config(
            FaultToleranceMode.CLONOS, checkpoint_interval=checkpoint_interval
        )
        builder = JobGraphBuilder("chk")
        stream = builder.source("src", lambda: KafkaSource(log, "in"))
        mid = stream.key_by(lambda v: v % 3).process(
            "mid", lambda: MapOperator(lambda v: v)
        )
        mid.key_by(lambda v: 0).sink("sink", lambda: KafkaSink(log, "out"))
        jm = JobManager(env, builder.build(), config)
        jm.deploy()
        return env, jm

    def test_no_concurrent_checkpoints(self):
        env, jm = self.build()
        jm.run_until_done(limit=300)
        times = [t for _cid, t in jm.checkpoints_completed]
        assert times == sorted(times)
        ids = [cid for cid, _t in jm.checkpoints_completed]
        assert len(set(ids)) == len(ids)

    def test_failure_aborts_pending_checkpoint(self):
        env, jm = self.build(checkpoint_interval=0.5)
        # Kill right when a checkpoint is likely in flight.
        env.schedule_callback(0.501, lambda: jm.kill_task("mid[0]"))
        jm.run_until_done(limit=300)
        assert jm._aborted_checkpoints or jm.completed_checkpoint >= 1
        # Whatever was aborted never shows up as completed.
        completed = {cid for cid, _t in jm.checkpoints_completed}
        assert not (completed & jm._aborted_checkpoints)

    def test_old_snapshots_discarded(self):
        env, jm = self.build()
        jm.run_until_done(limit=300)
        store = jm.snapshot_store
        latest = jm.completed_checkpoint
        assert latest >= 2
        assert store.get("mid[0]", latest) is not None
        # Retain-last-N: the newest N completed epochs survive (the
        # multi-epoch fallback's raw material); everything older is GC'd
        # from memory and its blob deleted from the DFS.
        kept = [cid for cid, _t in jm.checkpoints_completed][
            -jm.config.integrity.retain_checkpoints:
        ]
        for old in range(1, latest):
            if old in kept:
                assert store.get("mid[0]", old) is not None
            else:
                assert store.get("mid[0]", old) is None
                assert not jm.dfs.exists(f"chk/mid[0]/{old}")

    def test_checkpoints_pause_during_recovery(self):
        env, jm = self.build(checkpoint_interval=0.3)
        env.schedule_callback(0.7, lambda: jm.kill_task("mid[0]"))
        jm.run_until_done(limit=300)
        detected = next(t for t, k, _ in jm.recovery_events if k == "detected")
        recovered = next(t for t, k, _ in jm.recovery_events if k == "recovered")
        triggered_during = [
            t for cid, t in jm.checkpoints_completed if detected <= t <= recovered
        ]
        assert triggered_during == []
