"""End-to-end pipeline tests without failures."""

import pytest

from repro.config import FaultToleranceMode
from repro.external.kafka import DurableLog
from repro.sim.core import Environment

from tests.runtime.helpers import build_linear_job, make_config, sink_values


@pytest.mark.parametrize(
    "mode",
    [
        FaultToleranceMode.NONE,
        FaultToleranceMode.GLOBAL_ROLLBACK,
        FaultToleranceMode.CLONOS,
        FaultToleranceMode.DIVERGENT,
        FaultToleranceMode.SEEP,
    ],
)
def test_linear_job_produces_all_outputs(mode):
    env = Environment()
    log = DurableLog()
    jm = build_linear_job(env, make_config(mode), log, n_records=200)
    jm.run_until_done(limit=60)
    values = sink_values(log)
    # Each input record produces one (key, count) output.
    assert len(values) == 200
    counts = [v for v in values if v[1] == 20]
    assert len(counts) == 10  # 10 keys x final count 20


def test_parallel_job_produces_all_outputs():
    env = Environment()
    log = DurableLog()
    jm = build_linear_job(
        env, make_config(FaultToleranceMode.CLONOS), log, n_records=150, parallelism=3
    )
    jm.run_until_done(limit=60)
    assert len(sink_values(log)) == 450


def test_checkpoints_complete_periodically():
    env = Environment()
    log = DurableLog()
    config = make_config(FaultToleranceMode.CLONOS)
    jm = build_linear_job(env, config, log, n_records=4000, rate=1000.0)
    jm.run_until_done(limit=60)
    assert len(jm.checkpoints_completed) >= 3
    ids = [cid for cid, _t in jm.checkpoints_completed]
    assert ids == sorted(ids)


def test_checkpoint_truncates_inflight_and_causal_logs():
    env = Environment()
    log = DurableLog()
    config = make_config(FaultToleranceMode.CLONOS)
    jm = build_linear_job(env, config, log, n_records=4000, rate=1000.0)
    jm.run_until_done(limit=60)
    completed = jm.completed_checkpoint
    assert completed >= 1
    task = jm.task_of("map[0]")
    for epoch_log in task.causal.bundle.logs.values():
        for epoch in epoch_log.epochs():
            assert epoch >= completed
    assert all(e >= completed for e in task.inflight._entries)


def test_same_seed_same_output_across_runs():
    def run():
        env = Environment()
        log = DurableLog()
        jm = build_linear_job(env, make_config(FaultToleranceMode.CLONOS), log, 120)
        jm.run_until_done(limit=60)
        return sink_values(log)

    assert run() == run()


def test_clonos_piggybacks_determinants():
    env = Environment()
    log = DurableLog()
    jm = build_linear_job(env, make_config(FaultToleranceMode.CLONOS), log, 200)
    jm.run_until_done(limit=60)
    src_task = jm.task_of("src[0]")
    assert src_task.causal.delta_bytes_sent > 0
    # The downstream map task holds the source's determinant bundle.
    map_task = jm.task_of("map[0]")
    assert map_task.causal.stored_bundle_for("src[0]") is not None


def test_flink_mode_has_no_clonos_machinery():
    env = Environment()
    log = DurableLog()
    jm = build_linear_job(env, make_config(FaultToleranceMode.GLOBAL_ROLLBACK), log, 100)
    jm.run_until_done(limit=60)
    task = jm.task_of("map[0]")
    assert task.causal is None
    assert task.inflight is None
