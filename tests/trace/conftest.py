"""Shared fixtures for the trace subsystem tests.

``fig6_runs`` is the one expensive thing here — a scaled-down Figure 6
single-failure experiment (both arms) — so it is session-scoped and every
integration test reads from the same pair of results.
"""

import pytest

from repro.config import FaultToleranceMode
from repro.harness.experiment import run_experiment
from repro.harness.figures import (
    experiment_config,
    fig6_single_failure,
    nexmark_graph_fn,
)

#: Scaled-down Figure 6 parameters: same shape as the benchmark defaults
#: (Q3, kill join[0] mid-run, checkpoints at half the kill offset), a third
#: of the wall clock.
SMALL_FIG6 = dict(
    query="Q3",
    victim="join[0]",
    parallelism=2,
    events_per_partition=12000,
    rate=4000.0,
    kill_at=2.0,
    checkpoint_interval=1.0,
)


@pytest.fixture(scope="session")
def fig6_runs():
    return fig6_single_failure(**SMALL_FIG6)


@pytest.fixture(scope="session")
def clonos_run(fig6_runs):
    return fig6_runs["clonos"]


@pytest.fixture(scope="session")
def flink_run(fig6_runs):
    return fig6_runs["flink"]


def tiny_failure_run(mode=FaultToleranceMode.CLONOS):
    """A minimal single-kill run — enough to exercise every emit path while
    staying cheap to repeat (the passivity tests run it several times)."""
    config = experiment_config(mode, None, 0.5)
    return run_experiment(
        nexmark_graph_fn("Q3", 2, 6000, 3000.0),
        config,
        kills=[(1.2, "join[0]")],
    )
