"""SimProfiler: attribution, merge/report, and factory lifecycle."""

from repro.sim.core import Environment
from repro.trace import SimProfiler, merge_profiles, profiling


def test_profiling_attaches_and_restores_the_factory():
    assert Environment._profiler_factory is None
    with profiling() as profilers:
        env = Environment()
        assert env.profiler is profilers[0]
    assert Environment._profiler_factory is None
    assert Environment().profiler is None


def test_self_time_is_attributed_to_processes():
    with profiling() as profilers:
        env = Environment()

        def worker():
            for _ in range(3):
                yield env.timeout(1.0)

        env.process(worker(), name="worker-a")
        env.run()
    (profiler,) = profilers
    assert profiler.steps > 0
    rows = {row.name: row for row in profiler.rows()}
    assert "process:worker-a" in rows
    assert rows["process:worker-a"].calls >= 3
    assert profiler.total_ms() >= 0.0


def test_rows_sorted_by_total_and_top_limits():
    profiler = SimProfiler()
    profiler._calls.update({"process:a": 2, "process:b": 1})
    profiler._total_ns.update({"process:a": 5_000_000, "process:b": 9_000_000})
    rows = profiler.rows()
    assert [row.name for row in rows] == ["process:b", "process:a"]
    assert profiler.rows(top=1)[0].name == "process:b"
    assert rows[1].mean_us == 2500.0


def test_merge_profiles_sums_calls_and_time():
    one, two = SimProfiler(), SimProfiler()
    one._calls["process:a"] = 1
    one._total_ns["process:a"] = 1_000_000
    one.steps = 4
    two._calls["process:a"] = 2
    two._total_ns["process:a"] = 3_000_000
    two.steps = 6
    merged = merge_profiles([one, two])
    assert merged.steps == 10
    (row,) = merged.rows()
    assert row.calls == 3
    assert row.total_ms == 4.0
    assert "kernel steps" in merged.report()


def test_empty_report_is_harmless():
    assert SimProfiler().report() == "profiler: no callbacks recorded"
