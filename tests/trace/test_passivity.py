"""Passivity guarantee (DESIGN.md): observability must never perturb the sim.

The same seeded failure experiment runs with tracing on, tracing off, and the
profiler attached; the sink output, failure record, and recovery events must
be identical in every configuration.
"""

import hashlib

from repro.trace import profiling, tracing

from tests.trace.conftest import tiny_failure_run


def _digest(result):
    material = repr(
        (
            result.output_values(),
            result.failures,
            result.recovery_events,
            result.duration,
        )
    )
    return hashlib.sha256(material.encode()).hexdigest()


def test_tracing_off_leaves_sink_output_byte_identical():
    with tracing(True):
        traced = tiny_failure_run()
    with tracing(False):
        untraced = tiny_failure_run()
    assert len(traced.jm.trace) > 0
    assert len(untraced.jm.trace) == 0
    assert _digest(traced) == _digest(untraced)


def test_profiler_leaves_sink_output_byte_identical():
    baseline = tiny_failure_run()
    with profiling() as profilers:
        profiled = tiny_failure_run()
    assert profilers and any(p.steps > 0 for p in profilers)
    assert _digest(baseline) == _digest(profiled)
