"""TraceLog / TraceEvent unit behaviour."""

from repro.trace import TraceLog, tracing


def test_emit_appends_in_call_order():
    log = TraceLog()
    log.emit(1.0, "failure-injected", "join[0]")
    log.emit(0.5, "checkpoint-triggered", "*", checkpoint_id=3)
    kinds = [event.kind for event in log]
    assert kinds == ["failure-injected", "checkpoint-triggered"]
    assert len(log) == 2


def test_args_are_canonically_sorted_and_queryable():
    log = TraceLog()
    log.emit(0.25, "phase-end", "map[1]", status="ok", phase="inflight-replay")
    (event,) = list(log)
    assert event.args == (("phase", "inflight-replay"), ("status", "ok"))
    assert event.arg("phase") == "inflight-replay"
    assert event.arg("absent", "fallback") == "fallback"
    assert event.to_dict() == {
        "time": 0.25,
        "kind": "phase-end",
        "subject": "map[1]",
        "args": {"phase": "inflight-replay", "status": "ok"},
    }


def test_events_of_filters_by_kind():
    log = TraceLog()
    log.emit(0.0, "checkpoint-triggered", "*", checkpoint_id=1)
    log.emit(0.1, "snapshot-taken", "map[0]", checkpoint_id=1)
    log.emit(0.2, "checkpoint-complete", "*", checkpoint_id=1)
    got = log.events_of("checkpoint-triggered", "checkpoint-complete")
    assert [event.kind for event in got] == [
        "checkpoint-triggered",
        "checkpoint-complete",
    ]


def test_disabled_log_records_nothing():
    log = TraceLog(enabled=False)
    log.emit(0.0, "failure-injected", "join[0]")
    assert len(log) == 0


def test_tracing_context_flips_default_and_restores():
    assert TraceLog.default_enabled is True
    with tracing(False):
        assert TraceLog().enabled is False
        # An explicit flag still wins over the default.
        assert TraceLog(enabled=True).enabled is True
    assert TraceLog.default_enabled is True
    assert TraceLog().enabled is True


def test_clear_empties_the_log():
    log = TraceLog()
    log.emit(0.0, "chaos-fault", "net", fault="partition")
    log.clear()
    assert list(log) == []
