"""Timeline reconstruction: synthetic traces and the ISSUE acceptance
criteria against a real (scaled-down) Figure 6 run."""

import pytest

from repro.metrics.collectors import LatencyPoint, recovery_time
from repro.trace import build_timeline, breakdown_extra_info, timeline_of
from repro.trace.events import TraceLog
from repro.trace.timeline import PHASE_ORDER


def _synthetic_trace():
    log = TraceLog()
    log.emit(0.5, "checkpoint-triggered", "*", checkpoint_id=1)
    log.emit(0.9, "checkpoint-complete", "*", checkpoint_id=1)
    log.emit(2.0, "failure-injected", "join[0]")
    log.emit(2.3, "failure-detected", "join[0]", via="heartbeat")
    log.emit(2.3, "phase-begin", "join[0]", phase="standby-activation")
    log.emit(2.6, "phase-mark", "join[0]", phase="network-reconfigure")
    log.emit(2.6, "phase-begin", "join[0]", phase="determinant-fetch")
    log.emit(2.7, "phase-mark", "join[0]", phase="inflight-replay")
    log.emit(2.9, "phase-mark", "join[0]", phase="dedup-flush")
    log.emit(3.0, "task-recovered", "join[0]")
    return log


def _latencies(failure_time=2.0, end=4.5):
    # Flat 10ms baseline, a spike after the failure, last excursion at `end`.
    points = [LatencyPoint(0.1 * i, 0.010) for i in range(1, 20)]
    points += [LatencyPoint(2.5, 0.800), LatencyPoint(3.5, 0.200),
               LatencyPoint(end, 0.050), LatencyPoint(end + 0.5, 0.010)]
    assert recovery_time(points, failure_time) == pytest.approx(end - failure_time)
    return points


def test_synthetic_phases_partition_the_incident():
    timeline = build_timeline(_synthetic_trace(), latencies=_latencies())
    (incident,) = timeline.incidents
    assert incident.victim == "join[0]"
    assert incident.detected_time == 2.3
    assert incident.recovered_time == 3.0
    assert incident.end_source == "latency-envelope"
    assert incident.end_time == pytest.approx(4.5)
    # Contiguous partition: each phase starts where the previous ended.
    for prev, cur in zip(incident.phases, incident.phases[1:]):
        assert cur.start == pytest.approx(prev.end)
    assert incident.phases[0].start == incident.failure_time
    assert incident.phases[-1].end == incident.end_time
    assert incident.phase_sum() == pytest.approx(incident.end_to_end)
    names = [phase.name for phase in incident.phases]
    assert names[0] == "failure-detection"
    assert names[-1] == "catch-up"
    assert incident.named_phase_count() >= 5


def test_synthetic_without_latencies_falls_back_to_recovered_event():
    timeline = build_timeline(_synthetic_trace())
    (incident,) = timeline.incidents
    assert incident.end_source == "recovered-event"
    assert incident.end_time == 3.0
    assert incident.phase_sum() == pytest.approx(1.0)


def test_incomplete_incident_has_finite_end():
    log = TraceLog()
    log.emit(1.0, "failure-injected", "join[0]")
    log.emit(1.2, "phase-begin", "join[0]", phase="checkpoint-restore")
    timeline = build_timeline(log)
    (incident,) = timeline.incidents
    assert incident.end_source == "incomplete"
    assert incident.end_time == 1.2
    assert all(phase.end <= 1.2 for phase in incident.phases)


def test_checkpoint_spans_cover_trigger_complete_and_abort():
    log = TraceLog()
    log.emit(1.0, "checkpoint-triggered", "*", checkpoint_id=1)
    log.emit(1.4, "checkpoint-complete", "*", checkpoint_id=1)
    log.emit(2.0, "checkpoint-triggered", "*", checkpoint_id=2)
    log.emit(2.1, "checkpoint-aborted", "*", checkpoint_id=2)
    log.emit(3.0, "checkpoint-triggered", "*", checkpoint_id=3)
    spans = build_timeline(log).checkpoints
    assert [(s.checkpoint_id, s.status) for s in spans] == [
        (1, "complete"), (2, "aborted"), (3, "pending"),
    ]
    assert spans[0].triggered == 1.0 and spans[0].completed == 1.4


def test_repeated_failures_of_same_victim_bound_each_other():
    log = TraceLog()
    for t in (1.0, 5.0):
        log.emit(t, "failure-injected", "join[0]")
        log.emit(t + 0.2, "failure-detected", "join[0]")
        log.emit(t + 0.2, "phase-begin", "join[0]", phase="standby-activation")
        log.emit(t + 0.5, "task-recovered", "join[0]")
    timeline = build_timeline(log)
    assert len(timeline.incidents) == 2
    first, second = timeline.incidents
    assert first.end_time <= 5.0
    assert second.failure_time == 5.0
    assert second.recovered_time == pytest.approx(5.5)


# -- acceptance criteria against a real run ---------------------------------------


def test_clonos_incident_meets_acceptance_criteria(clonos_run):
    timeline = timeline_of(clonos_run.result)
    assert timeline.incidents, "the kill must surface as an incident"
    for incident in timeline.incidents:
        # ISSUE acceptance: at least five *named* phases per incident whose
        # durations sum to the end-to-end recovery time within 1% of the
        # metrics.collectors value.
        assert incident.named_phase_count() >= 5
        assert incident.phase_sum() == pytest.approx(incident.end_to_end)
        assert all(phase.name in PHASE_ORDER for phase in incident.phases)
    incident = timeline.incidents[0]
    measured = recovery_time(clonos_run.result.latencies, clonos_run.failure_time)
    assert measured is not None and measured > 0.0
    assert incident.end_source == "latency-envelope"
    assert incident.phase_sum() == pytest.approx(measured, rel=0.01)
    # Clonos recovers locally: standby activation, not checkpoint restore.
    names = {phase.name for phase in incident.phases}
    assert "standby-activation" in names
    assert "task-cancellation" not in names


def test_flink_incident_decomposes_into_rollback_phases(flink_run):
    timeline = timeline_of(flink_run.result)
    (incident,) = timeline.incidents
    assert incident.named_phase_count() >= 5
    assert incident.phase_sum() == pytest.approx(incident.end_to_end)
    names = {phase.name for phase in incident.phases}
    # Global rollback restarts everything from the checkpoint.
    assert {"task-cancellation", "checkpoint-restore", "task-restart"} <= names


def test_breakdown_extra_info_is_flat_and_consistent(clonos_run):
    info = breakdown_extra_info(clonos_run.result)
    assert info["incidents"] == 1
    assert info["retries"] >= 0
    assert info["end_sources"] == ["latency-envelope"]
    assert info["end_to_end_s"] == pytest.approx(
        sum(info["phases"].values()), abs=1e-5
    )
    assert set(info["phases"]) <= set(PHASE_ORDER)
    # JSON-serialisable scalars only.
    import json

    json.dumps(info)
