"""Exporters: JSONL roundtrip, Chrome-trace validity, span tree shape,
and byte-level determinism across same-seed runs."""

import json

import pytest

from repro.trace import (
    build_span_tree,
    chrome_trace,
    events_to_jsonl,
    timeline_of,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.trace.spans import span_summary

from tests.trace.conftest import SMALL_FIG6, tiny_failure_run


def test_jsonl_roundtrips_every_event(clonos_run, tmp_path):
    trace = clonos_run.result.jm.trace
    path = write_jsonl(tmp_path / "trace.jsonl", trace)
    lines = path.read_text().splitlines()
    assert len(lines) == len(trace)
    docs = [json.loads(line) for line in lines]
    for doc, event in zip(docs, trace):
        assert doc["time"] == event.time
        assert doc["kind"] == event.kind
        assert doc["subject"] == event.subject


def test_chrome_trace_is_schema_valid(clonos_run, tmp_path):
    result = clonos_run.result
    document = chrome_trace(
        result.jm.trace,
        timeline_of(result),
        job_name="fig6-Q3-clonos",
        extra_metadata={"seed": result.config.seed},
    )
    assert validate_chrome_trace(document) == []
    assert document["otherData"]["generator"] == "repro.trace"
    path = write_chrome_trace(tmp_path / "trace.chrome.json", document)
    assert validate_chrome_trace(json.loads(path.read_text())) == []


def test_validator_rejects_malformed_documents():
    assert validate_chrome_trace([]) == ["document is not a JSON object"]
    assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]
    bad = {
        "traceEvents": [
            {"ph": "Z", "name": "x", "pid": 1, "tid": 0},
            {"ph": "X", "name": "", "pid": 1, "tid": 0, "ts": -1.0, "dur": -2.0},
            {"ph": "i", "name": "y", "pid": "1", "tid": 0, "ts": 0.0, "s": "q"},
        ]
    }
    problems = validate_chrome_trace(bad)
    assert len(problems) >= 4


def test_span_tree_nests_incident_phases(clonos_run):
    result = clonos_run.result
    timeline = timeline_of(result)
    root = build_span_tree(result.jm.trace, timeline, job_name="fig6")
    counts = span_summary(root)
    assert counts["job"] == 1
    assert counts["recovery-incident"] == len(timeline.incidents)
    assert counts["recovery-phase"] == sum(
        len(incident.phases) for incident in timeline.incidents
    )
    assert counts["epoch"] >= 1 and counts["checkpoint"] >= 1
    incidents = [s for s in root.children if s.category == "recovery-incident"]
    for node in incidents:
        for phase in node.children:
            assert node.start <= phase.start <= phase.end <= node.end + 1e-9


def test_exports_are_deterministic_across_same_seed_runs():
    blobs = []
    for _ in range(2):
        result = tiny_failure_run()
        document = chrome_trace(
            result.jm.trace, timeline_of(result), job_name="tiny"
        )
        blobs.append(
            (
                events_to_jsonl(list(result.jm.trace)),
                json.dumps(document, sort_keys=True),
            )
        )
    assert blobs[0] == blobs[1]


def test_instants_cover_the_injected_failure(clonos_run):
    result = clonos_run.result
    document = chrome_trace(result.jm.trace, timeline_of(result))
    instants = [e for e in document["traceEvents"] if e["ph"] == "i"]
    names = {e["name"] for e in instants}
    assert {"failure-injected", "failure-detected", "task-recovered"} <= names
    kill_us = pytest.approx(SMALL_FIG6["kill_at"] * 1e6)
    assert any(
        e["name"] == "failure-injected" and e["ts"] == kill_us for e in instants
    )
