"""Unit tests for configuration and the guarantee mapping."""

import pytest

from repro.config import (
    CostModel,
    FaultToleranceMode,
    Guarantee,
    JobConfig,
    SpillPolicy,
)
from repro.errors import JobError


def test_defaults_validate():
    JobConfig().validate()


def test_invalid_checkpoint_interval():
    with pytest.raises(JobError):
        JobConfig(checkpoint_interval=0).validate()


def test_invalid_dsd():
    config = JobConfig()
    config.clonos.determinant_sharing_depth = -1
    with pytest.raises(JobError):
        config.validate()


def test_heartbeat_sanity():
    config = JobConfig(cost=CostModel(heartbeat_interval=10, heartbeat_timeout=5))
    with pytest.raises(JobError):
        config.validate()


def test_guarantee_mapping():
    assert JobConfig(mode=FaultToleranceMode.CLONOS).guarantee is Guarantee.EXACTLY_ONCE
    assert (
        JobConfig(mode=FaultToleranceMode.GLOBAL_ROLLBACK).guarantee
        is Guarantee.EXACTLY_ONCE
    )
    assert (
        JobConfig(mode=FaultToleranceMode.DIVERGENT).guarantee
        is Guarantee.AT_LEAST_ONCE
    )
    assert (
        JobConfig(mode=FaultToleranceMode.GAP_RECOVERY).guarantee
        is Guarantee.AT_MOST_ONCE
    )


def test_clonos_dsd0_degrades_to_at_least_once():
    config = JobConfig(mode=FaultToleranceMode.CLONOS)
    config.clonos.determinant_sharing_depth = 0
    assert config.guarantee is Guarantee.AT_LEAST_ONCE


def test_seep_guarantee_depends_on_determinism():
    assert Guarantee.of(FaultToleranceMode.SEEP, deterministic_job=True) \
        is Guarantee.EXACTLY_ONCE
    assert Guarantee.of(FaultToleranceMode.SEEP, deterministic_job=False) \
        is Guarantee.AT_LEAST_ONCE


def test_with_mode_copies_and_overrides():
    base = JobConfig(mode=FaultToleranceMode.CLONOS)
    derived = base.with_mode(
        FaultToleranceMode.CLONOS, determinant_sharing_depth=2, standby_tasks=False
    )
    assert derived.clonos.determinant_sharing_depth == 2
    assert not derived.clonos.standby_tasks
    # The original is untouched.
    assert base.clonos.determinant_sharing_depth is None
    assert base.clonos.standby_tasks


def test_cost_model_helpers():
    cost = CostModel(network_latency=0.001, network_bandwidth=1e6)
    assert cost.transmission_time(1000) == pytest.approx(0.002)
    assert cost.serialize_time(1000) == pytest.approx(1000 * cost.serialize_cost_per_byte)
    assert cost.dfs_write_time(0) == pytest.approx(cost.dfs_latency)


def test_spill_policy_values():
    assert {p.value for p in SpillPolicy} == {
        "in-memory", "spill-epoch", "spill-buffer", "spill-threshold"
    }
