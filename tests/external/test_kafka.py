"""Unit tests for the durable-log (Kafka) simulation."""

import pytest

from repro.errors import ExternalSystemError
from repro.external.kafka import DurableLog, GeneratedTopicPartition, TopicPartition


class TestTopicPartition:
    def test_append_and_read(self):
        tp = TopicPartition("t", 0)
        tp.append(1.0, "a")
        tp.append(2.0, "b")
        assert tp.read(0, 10) == [(0, 1.0, "a"), (1, 2.0, "b")]

    def test_read_respects_now(self):
        tp = TopicPartition("t", 0)
        tp.append(1.0, "a")
        tp.append(5.0, "b")
        assert tp.read(0, 10, now=2.0) == [(0, 1.0, "a")]

    def test_read_from_offset_with_limit(self):
        tp = TopicPartition("t", 0)
        for i in range(5):
            tp.append(float(i), i)
        assert [off for off, _w, _v in tp.read(2, 2)] == [2, 3]

    def test_next_arrival(self):
        tp = TopicPartition("t", 0)
        tp.append(3.0, "a")
        assert tp.next_arrival_after(0) == 3.0
        assert tp.next_arrival_after(1) is None


class TestGeneratedTopicPartition:
    def make(self, rate=10.0, total=100):
        return GeneratedTopicPartition("t", 0, lambda p, off: (p, off), rate, total)

    def test_entries_are_computed_not_stored(self):
        tp = self.make()
        assert tp.read(5, 2, now=100.0) == [(5, 0.5, (0, 5)), (6, 0.6, (0, 6))]
        assert tp.entries == []  # nothing materialized

    def test_availability_follows_rate(self):
        tp = self.make(rate=10.0)
        assert tp.end_offset(now=0.0) == 1  # offset 0 arrives at t=0
        assert tp.end_offset(now=0.95) == 10
        assert tp.end_offset(now=1e9) == 100  # capped at total

    def test_append_rejected(self):
        with pytest.raises(ExternalSystemError):
            self.make().append(0.0, "x")

    def test_unbounded_partition(self):
        tp = GeneratedTopicPartition("t", 0, lambda p, off: off, 10.0, None)
        assert tp.next_arrival_after(10**9) == 10**8
        assert tp.end_offset(now=5.0) == 51

    def test_zero_rate_rejected(self):
        with pytest.raises(ExternalSystemError):
            GeneratedTopicPartition("t", 0, lambda p, off: off, 0.0, 10)


class TestDurableLog:
    def test_topics_and_partitions(self):
        log = DurableLog()
        log.create_topic("t", 3)
        assert len(log.partitions_of("t")) == 3
        log.append("t", 1, 0.0, "x")
        assert log.topic_size("t") == 1

    def test_unknown_topic_rejected(self):
        log = DurableLog()
        with pytest.raises(ExternalSystemError):
            log.partitions_of("nope")
        with pytest.raises(ExternalSystemError):
            log.partition("nope", 0)

    def test_read_all_across_partitions(self):
        log = DurableLog()
        log.create_topic("t", 2)
        log.append("t", 0, 0.0, "a")
        log.append("t", 1, 0.0, "b")
        assert sorted(log.read_all("t")) == ["a", "b"]

    def test_zero_partitions_rejected(self):
        log = DurableLog()
        with pytest.raises(ExternalSystemError):
            log.create_topic("t", 0)
