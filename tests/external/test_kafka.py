"""Unit tests for the durable-log (Kafka) simulation, including the broker
fault windows (outage/brownout) and the client-side retry paths they drive:
source replay must stall-and-resume, transactional commits must stay
exactly-once."""

import pytest

from repro.errors import ExternalSystemError
from repro.external.kafka import DurableLog, GeneratedTopicPartition, TopicPartition
from repro.operators.sink import TransactionalKafkaSink
from repro.operators.source import KafkaSource

from tests.operators.helpers import OperatorHarness


class TestTopicPartition:
    def test_append_and_read(self):
        tp = TopicPartition("t", 0)
        tp.append(1.0, "a")
        tp.append(2.0, "b")
        assert tp.read(0, 10) == [(0, 1.0, "a"), (1, 2.0, "b")]

    def test_read_respects_now(self):
        tp = TopicPartition("t", 0)
        tp.append(1.0, "a")
        tp.append(5.0, "b")
        assert tp.read(0, 10, now=2.0) == [(0, 1.0, "a")]

    def test_read_from_offset_with_limit(self):
        tp = TopicPartition("t", 0)
        for i in range(5):
            tp.append(float(i), i)
        assert [off for off, _w, _v in tp.read(2, 2)] == [2, 3]

    def test_next_arrival(self):
        tp = TopicPartition("t", 0)
        tp.append(3.0, "a")
        assert tp.next_arrival_after(0) == 3.0
        assert tp.next_arrival_after(1) is None


class TestGeneratedTopicPartition:
    def make(self, rate=10.0, total=100):
        return GeneratedTopicPartition("t", 0, lambda p, off: (p, off), rate, total)

    def test_entries_are_computed_not_stored(self):
        tp = self.make()
        assert tp.read(5, 2, now=100.0) == [(5, 0.5, (0, 5)), (6, 0.6, (0, 6))]
        assert tp.entries == []  # nothing materialized

    def test_availability_follows_rate(self):
        tp = self.make(rate=10.0)
        assert tp.end_offset(now=0.0) == 1  # offset 0 arrives at t=0
        assert tp.end_offset(now=0.95) == 10
        assert tp.end_offset(now=1e9) == 100  # capped at total

    def test_append_rejected(self):
        with pytest.raises(ExternalSystemError):
            self.make().append(0.0, "x")

    def test_unbounded_partition(self):
        tp = GeneratedTopicPartition("t", 0, lambda p, off: off, 10.0, None)
        assert tp.next_arrival_after(10**9) == 10**8
        assert tp.end_offset(now=5.0) == 51

    def test_zero_rate_rejected(self):
        with pytest.raises(ExternalSystemError):
            GeneratedTopicPartition("t", 0, lambda p, off: off, 0.0, 10)


class TestDurableLog:
    def test_topics_and_partitions(self):
        log = DurableLog()
        log.create_topic("t", 3)
        assert len(log.partitions_of("t")) == 3
        log.append("t", 1, 0.0, "x")
        assert log.topic_size("t") == 1

    def test_unknown_topic_rejected(self):
        log = DurableLog()
        with pytest.raises(ExternalSystemError):
            log.partitions_of("nope")
        with pytest.raises(ExternalSystemError):
            log.partition("nope", 0)

    def test_read_all_across_partitions(self):
        log = DurableLog()
        log.create_topic("t", 2)
        log.append("t", 0, 0.0, "a")
        log.append("t", 1, 0.0, "b")
        assert sorted(log.read_all("t")) == ["a", "b"]

    def test_zero_partitions_rejected(self):
        log = DurableLog()
        with pytest.raises(ExternalSystemError):
            log.create_topic("t", 0)


class TestBrokerFaults:
    def test_outage_refuses_appends_until_window_ends(self):
        log = DurableLog()
        log.create_topic("t")
        log.set_outage(5.0)
        with pytest.raises(ExternalSystemError, match="broker outage"):
            log.append("t", 0, 1.0, "x")
        assert log.failed_ops == 1
        assert log.append("t", 0, 5.0, "x") == 0  # window over
        assert log.failed_ops == 1

    def test_brownout_failure_rate_extremes(self):
        flaky = DurableLog()
        flaky.create_topic("t")
        flaky.set_brownout(10.0, failure_rate=1.0)
        with pytest.raises(ExternalSystemError, match="broker brownout"):
            flaky.append("t", 0, 0.0, "x")
        healthy = DurableLog()
        healthy.create_topic("t")
        healthy.set_brownout(10.0, failure_rate=0.0)
        healthy.append("t", 0, 0.0, "x")
        assert healthy.failed_ops == 0

    def test_retry_at_waits_out_the_outage(self):
        log = DurableLog()
        log.set_outage(3.0)
        assert log.retry_at(1.0) == 3.0
        assert log.retry_at(5.0) == pytest.approx(5.05)


class TestSourceUnderBrokerFaults:
    def _job(self, n_records=5):
        log = DurableLog()
        log.create_topic("in", 1)
        for i in range(n_records):
            log.append("in", 0, 0.0, i)
        src = KafkaSource(log, "in")
        return log, src, OperatorHarness(src)

    def test_poll_stalls_during_outage_then_resumes_without_loss(self):
        log, src, h = self._job()
        log.set_outage(2.0)
        records, retry = src.poll(h.ctx, 10)
        assert records == [] and retry == 2.0
        assert src.stalled_polls == 1 and src.offset == 0
        h.env.run(until=2.0)
        records, _next = src.poll(h.ctx, 10)
        assert [r.value for r in records] == [0, 1, 2, 3, 4]

    def test_poll_backs_off_during_brownout(self):
        log, src, h = self._job(3)
        log.set_brownout(5.0, failure_rate=1.0, seed=3)
        records, retry = src.poll(h.ctx, 10)
        assert records == [] and retry == pytest.approx(0.05)
        h.env.run(until=5.0)
        records, _next = src.poll(h.ctx, 10)
        assert [r.value for r in records] == [0, 1, 2]

    def test_replay_through_outage_is_exactly_once(self):
        log, src, h = self._job(6)
        first, _next = src.poll(h.ctx, 10)
        assert len(first) == 6
        # Rewind to the checkpointed offset 0 and replay with an outage
        # landing mid-replay: the replayed stream must be identical.
        state = src.snapshot()
        src.restore({"offset": 0, "wm": state["wm"]})
        replayed = []
        records, _next = src.poll(h.ctx, 2)
        replayed += [r.value for r in records]
        log.set_outage(1.0)
        records, retry = src.poll(h.ctx, 2)
        assert records == []
        h.env.run(until=retry)
        while True:
            records, _next = src.poll(h.ctx, 2)
            if not records:
                break
            replayed += [r.value for r in records]
        assert replayed == [0, 1, 2, 3, 4, 5]


class TestTransactionalSinkUnderBrokerFaults:
    def _sink(self):
        log = DurableLog()
        log.create_topic("out", 1)
        sink = TransactionalKafkaSink(log, "out")
        return log, sink, OperatorHarness(sink)

    @staticmethod
    def _committed(log):
        return [entry.value for entry in log.read_all("out")]

    def test_commit_blocked_by_outage_retries_exactly_once(self):
        log, sink, h = self._sink()
        for value in "abc":
            h.send(value)
        sink.on_barrier(1, h.ctx)
        log.set_outage(3.0)
        sink.on_checkpoint_complete(1, h.ctx)
        assert self._committed(log) == []
        assert sink.commit_retries == 1
        assert len(sink._pending[0]) == 3  # nothing was dropped
        h.env.run(until=3.0)
        sink.on_checkpoint_complete(1, h.ctx)
        assert self._committed(log) == ["a", "b", "c"]
        assert sink._pending == {} and sink.appended == 3

    def test_brownout_mid_commit_never_duplicates(self):
        log, sink, h = self._sink()
        for value in range(10):
            h.send(value)
        sink.on_barrier(1, h.ctx)
        log.set_brownout(100.0, failure_rate=0.5, seed=7)
        for _round in range(200):
            sink.on_checkpoint_complete(1, h.ctx)
            if not sink._pending:
                break
        assert self._committed(log) == list(range(10))
        assert sink.commit_retries > 0 and sink.appended == 10

    def test_final_drain_survives_outage(self):
        log, sink, h = self._sink()
        for value in "xyz":
            h.send(value)
        log.set_outage(2.0)
        sink.close(h.ctx)
        assert self._committed(log) == [] and sink.commit_retries == 1
        h.env.run(until=2.0)
        sink.close(h.ctx)
        assert self._committed(log) == ["x", "y", "z"]
