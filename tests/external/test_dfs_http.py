"""Unit tests for the DFS and the drifting external service."""

import pytest

from repro.config import CostModel
from repro.errors import ExternalSystemError
from repro.external.dfs import DistributedFileSystem
from repro.external.http import ExternalService, TransactionalSinkService
from repro.sim.core import Environment
from repro.sim.rng import RandomStreams


def drive(env, gen):
    out = {}

    def proc():
        out["value"] = yield from gen

    env.process(proc())
    env.run()
    return out.get("value")


class TestDFS:
    def test_write_then_read_charges_time(self):
        env = Environment()
        cost = CostModel(dfs_write_bandwidth=1e6, dfs_read_bandwidth=1e6,
                         dfs_latency=0.0)
        dfs = DistributedFileSystem(env, cost)
        drive(env, dfs.write("p", 500000))
        assert env.now == pytest.approx(0.5)
        assert dfs.exists("p")
        nbytes = drive(env, dfs.read("p"))
        assert nbytes == 500000
        assert env.now == pytest.approx(1.0)

    def test_read_missing_blob_raises(self):
        env = Environment()
        dfs = DistributedFileSystem(env, CostModel())
        with pytest.raises(ExternalSystemError):
            list(dfs.read("missing"))

    def test_io_slots_serialize_concurrent_writers(self):
        env = Environment()
        cost = CostModel(dfs_write_bandwidth=1e6, dfs_latency=0.0)
        dfs = DistributedFileSystem(env, cost, write_slots=1)
        done = []

        def writer(name):
            yield from dfs.write(name, 1_000_000)
            done.append((name, env.now))

        env.process(writer("a"))
        env.process(writer("b"))
        env.run()
        # With one slot, the second write waits for the first (1s each).
        assert done[0][1] == pytest.approx(1.0)
        assert done[1][1] == pytest.approx(2.0)

    def test_delete(self):
        env = Environment()
        dfs = DistributedFileSystem(env, CostModel())
        drive(env, dfs.write("p", 10))
        dfs.delete("p")
        assert not dfs.exists("p")


class TestExternalService:
    def test_same_instant_same_answer(self):
        env = Environment()
        svc = ExternalService(env, RandomStreams(0))
        assert svc.get_now("k") == svc.get_now("k")

    def test_answers_drift_over_time(self):
        env = Environment()
        svc = ExternalService(env, RandomStreams(0), drift_period=0.05)
        first = svc.get_now("k")
        env.run(until=10.0)
        later = svc.get_now("k")
        assert first != later

    def test_get_charges_latency_and_counts_calls(self):
        env = Environment()
        svc = ExternalService(env, RandomStreams(0), latency=0.25)

        def caller():
            yield from svc.get("k")

        env.process(caller())
        env.run()
        assert env.now == pytest.approx(0.25)
        assert svc.calls == 1


class TestTransactionalSinkService:
    def test_stores_records_and_determinants(self):
        svc = TransactionalSinkService()
        svc.append(1, "a", determinant="d1")
        svc.append(1, "b", determinant="d2")
        svc.append(2, "c")
        assert svc.records == ["a", "b", "c"]
        assert svc.determinants_for(1) == ["d1", "d2"]
        svc.truncate_before(2)
        assert svc.determinants_for(1) == []
