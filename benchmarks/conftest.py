"""Benchmark-suite configuration.

Each benchmark regenerates one table/figure of the paper (see
EXPERIMENTS.md); they run single-shot (``rounds=1``) because every run is a
full simulated experiment, and they print the reproduced table/series so
``pytest benchmarks/ --benchmark-only`` output doubles as the results log.
"""

import sys
from pathlib import Path

import pytest

RESULTS_PATH = Path(__file__).parent / "latest_results.txt"


@pytest.fixture(autouse=True)
def surface_reproduced_tables(capsys, request):
    """Benchmarks print the reproduced paper tables; pytest would normally
    swallow them.  Re-emit them to the real stdout (so they land in the
    tee'd bench log) and append them to benchmarks/latest_results.txt."""
    yield
    captured = capsys.readouterr().out
    if not captured.strip():
        return
    banner = f"\n===== {request.node.nodeid} =====\n"
    with capsys.disabled():
        print(banner + captured, end="")
    with RESULTS_PATH.open("a") as fh:
        fh.write(banner + captured)


def run_once(benchmark, fn, *args, **kwargs):
    """Run a whole experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return runner
