"""Benchmark-suite configuration.

Each benchmark regenerates one table/figure of the paper (see
EXPERIMENTS.md); they run single-shot (``rounds=1``) because every run is a
full simulated experiment, and they print the reproduced table/series so
``pytest benchmarks/ --benchmark-only`` output doubles as the results log.
"""

import sys
from functools import lru_cache
from pathlib import Path

import pytest

RESULTS_PATH = Path(__file__).parent / "latest_results.txt"


@lru_cache(maxsize=1)
def _lint_status() -> str:
    """NDLint verdict over the Nexmark queries a benchmark run exercises
    (computed once per session; recorded in every benchmark's extra_info so
    a regression that sneaks nondeterminism into the workloads is visible
    next to the numbers it would corrupt)."""
    try:
        from repro.analysis import lint_graph
        from repro.external.kafka import DurableLog
        from repro.nexmark.queries import QUERIES

        class _Probe:
            def get_now(self, key):
                return key

        errors = 0
        for name in sorted(QUERIES):
            graph = QUERIES[name](
                DurableLog(), external=_Probe() if name == "Q13" else None
            )
            errors += len(lint_graph(graph).errors)
        return "clean" if errors == 0 else f"{errors} errors"
    except Exception as exc:  # pragma: no cover - keep benchmarks running
        return f"unavailable ({type(exc).__name__})"


@lru_cache(maxsize=1)
def _chaos_status() -> str:
    """Seeded chaos-soak verdict (computed once per session; recorded in
    every benchmark's extra_info next to the NDLint verdict, so a recovery
    regression that would corrupt the failure experiments is visible in the
    saved numbers).  A handful of fixed seeds keeps it cheap; each seed
    reproduces locally with ``python -m repro chaos --seed N``."""
    try:
        from repro.chaos import chaos_soak

        results = chaos_soak(range(4), max_faults=3, n_records=600)
        violations = [r.seed for r in results if r.verdict == "violation"]
        if violations:
            return f"violations at seeds {violations}"
        degraded = sum(r.verdict != "exactly-once" for r in results)
        return f"clean ({len(results)} seeds, {degraded} degraded)"
    except Exception as exc:  # pragma: no cover - keep benchmarks running
        return f"unavailable ({type(exc).__name__})"


@lru_cache(maxsize=1)
def _integrity_status() -> str:
    """Integrity verdict (computed once per session; recorded in every
    benchmark's extra_info).  Two cheap probes: the corruption-chaos soak
    over fixed seeds (validated recovery must end exactly-once or announced
    degraded) and the audit self-test (a seeded sweep must flag every
    injected corruption).  Each seed reproduces locally with
    ``python -m repro audit --soak --seed N``."""
    try:
        import random

        from repro.cli import _audit_matches, _audit_run
        from repro.integrity.audit import audit_job
        from repro.integrity.corruption import random_corruptions
        from repro.integrity.soak import integrity_soak
        from repro.sim.rng import derive_seed

        results = integrity_soak(range(3), n_records=600)
        violations = [r.seed for r in results if r.verdict == "violation"]
        if violations:
            return f"violations at seeds {violations}"
        flagged = sum(
            int(r.integrity_summary.get("total_failed", 0)) + len(r.audit.violations)
            for r in results
        )

        class _Args:
            seed = 0
            events = 600

        jm = _audit_run(_Args)
        injected = random_corruptions(
            jm, 4, random.Random(derive_seed(0, "audit-inject"))
        )
        report = audit_job(jm)
        missed = [
            (kind, detail)
            for kind, detail in injected
            if not _audit_matches(kind, detail, report.violations)
        ]
        if missed or not injected:
            return f"audit missed {len(missed)}/{len(injected)} injections"
        return (
            f"clean ({len(results)} soak seeds, {flagged} flagged; "
            f"audit {len(injected)}/{len(injected)} detected)"
        )
    except Exception as exc:  # pragma: no cover - keep benchmarks running
        return f"unavailable ({type(exc).__name__})"


@lru_cache(maxsize=1)
def _scenario_status() -> str:
    """Scenario-pack verdict (computed once per session; recorded in every
    benchmark's extra_info).  A reduced slice of the production incident
    pack — one strict and one announced-degradation scenario — so a recovery
    regression that would fail the CI scenario matrix is visible next to the
    numbers.  A red scenario reproduces locally with
    ``python -m repro scenarios --only <name>``."""
    try:
        from repro.metrics.collectors import scenario_summary
        from repro.scenarios import run_pack, SCENARIOS

        results = run_pack(
            SCENARIOS, only=["backpressure_storm", "poison_pill"]
        )
        summary = scenario_summary(results)
        if summary["failed"]:
            return f"failed: {', '.join(summary['failed'])}"
        return f"clean ({summary['passed']}/{summary['scenarios']} scenarios)"
    except Exception as exc:  # pragma: no cover - keep benchmarks running
        return f"unavailable ({type(exc).__name__})"


@pytest.fixture(autouse=True)
def surface_reproduced_tables(capsys, request):
    """Benchmarks print the reproduced paper tables; pytest would normally
    swallow them.  Re-emit them to the real stdout (so they land in the
    tee'd bench log) and append them to benchmarks/latest_results.txt."""
    yield
    captured = capsys.readouterr().out
    if not captured.strip():
        return
    banner = f"\n===== {request.node.nodeid} =====\n"
    with capsys.disabled():
        print(banner + captured, end="")
    with RESULTS_PATH.open("a") as fh:
        fh.write(banner + captured)


def run_once(benchmark, fn, *args, **kwargs):
    """Run a whole experiment exactly once under the benchmark timer.

    The run is traced by the determinism sanitizer: its combined schedule
    hash (and the session's NDLint verdict) land in ``extra_info``, so two
    benchmark runs of the same code can be checked for schedule divergence
    straight from the saved JSON."""
    from repro.analysis.sanitizer import combined_digest, traced_environments

    with traced_environments(keep_trace=False) as tracers:
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
    benchmark.extra_info["ndlint"] = _lint_status()
    benchmark.extra_info["chaos"] = _chaos_status()
    benchmark.extra_info["integrity"] = _integrity_status()
    benchmark.extra_info["scenarios"] = _scenario_status()
    benchmark.extra_info["schedule_hash"] = combined_digest(tracers)
    benchmark.extra_info["schedule_events"] = sum(t.steps for t in tracers)
    return result


def attach_recovery_phases(benchmark, runs):
    """Record each arm's per-phase recovery breakdown (from ``repro.trace``)
    in ``extra_info``, so the saved benchmark JSON carries the protocol-phase
    decomposition next to the end-to-end recovery time it sums to."""
    from repro.trace import breakdown_extra_info

    for label in sorted(runs):
        benchmark.extra_info[f"recovery_phases_{label}"] = breakdown_extra_info(
            runs[label].result
        )


@pytest.fixture
def once(benchmark):
    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return runner
