"""Section 5.4 ablation: trading correctness for performance.

Clonos' building blocks compose into the guarantee spectrum:

* DSD=0 (in-flight logs only)  -> at-least-once, minimal overhead;
* DSD=f                        -> exactly-once up to f consecutive failures,
                                  global-rollback fallback beyond (Figure 4);
* DSD=Full                     -> exactly-once always, highest overhead.

Plus the Section 5.5 extension: exactly-once *output* without transactional
commit latency, via determinants piggybacked on sink records.
"""

from collections import Counter

from repro.config import FaultToleranceMode
from repro.core.output import ExactlyOnceKafkaSink
from repro.external.kafka import DurableLog
from repro.graph.logical import JobGraphBuilder
from repro.harness.experiment import run_experiment
from repro.harness.figures import experiment_config
from repro.harness.reporters import render_table
from repro.operators import KafkaSink, KafkaSource, Operator, TransactionalKafkaSink


class TagOperator(Operator):
    def __init__(self):
        self._seen = 0

    def process(self, record, ctx):
        self._seen += 1
        ctx.collect(("tag", record.value))

    def snapshot(self):
        return self._seen

    def restore(self, state):
        self._seen = state or 0


def chain_graph(n_records=5000, rate=2000.0, sink_factory=None):
    def build(log, external):
        log.create_generated_topic("in", 1, lambda p, off: off, rate, n_records)
        log.create_topic("out", 1)
        builder = JobGraphBuilder("spectrum")
        stream = builder.source("src", lambda: KafkaSource(log, "in"))
        a = stream.key_by(lambda v: v % 5).process("a", TagOperator)
        b = a.key_by(lambda v: v[1] % 5).process(
            "b", lambda: TagOperator()
        )
        factory = sink_factory or (lambda log=log: KafkaSink(log, "out"))
        b.key_by(lambda v: 0).sink("sink", lambda: factory(log))
        return builder.build()

    return build


def fast_config(mode, dsd=None):
    return experiment_config(
        mode,
        dsd,
        checkpoint_interval=0.5,
        connection_failure_detection=0.05,
        standby_activation_time=0.05,
        task_deploy_time=0.5,
        heartbeat_interval=0.2,
        heartbeat_timeout=0.3,
    )


def counts_of(result):
    return Counter(v for _t, v in
                   ((tag, val[1]) for tag, val in result.output_values()))


def test_dsd0_is_at_least_once(once):
    config = fast_config(FaultToleranceMode.CLONOS, dsd=0)

    def run():
        return run_experiment(
            chain_graph(), config, kills=[(0.9, "a[0]")], limit=3600
        )

    result = once(run)
    counts = counts_of(result)
    assert set(counts) == set(range(5000))  # no loss
    assert any(c > 1 for c in counts.values())  # divergent replay duplicates
    assert config.guarantee.value == "at-least-once"


def test_dsd1_single_failure_exactly_once(once):
    config = fast_config(FaultToleranceMode.CLONOS, dsd=1)

    def run():
        return run_experiment(
            chain_graph(), config, kills=[(0.9, "a[0]")], limit=3600
        )

    result = once(run)
    counts = counts_of(result)
    assert set(counts) == set(range(5000))
    assert all(c == 1 for c in counts.values())


def test_dsd1_two_consecutive_failures_fall_back_to_global(once):
    """Two connected concurrent failures exceed DSD=1: the Figure 4 orphan
    case triggers the global-rollback fallback, preserving consistency at
    the cost of availability."""
    config = fast_config(FaultToleranceMode.CLONOS, dsd=1)

    def run():
        return run_experiment(
            chain_graph(), config, kills=[(0.9, "a[0]"), (0.9, "b[0]")], limit=3600
        )

    result = once(run)
    fallback_events = [e for e in result.recovery_events if e[1] == "orphan-fallback"]
    restart_events = [e for e in result.recovery_events if "global-restart" in e[1]]
    print()
    print("recovery events:", result.recovery_events)
    assert fallback_events, "expected the orphan case to trigger a fallback"
    assert restart_events
    counts = counts_of(result)
    assert set(counts) == set(range(5000))  # nothing lost (state path exact)


def test_full_dsd_survives_two_consecutive_failures_locally(once):
    config = fast_config(FaultToleranceMode.CLONOS, dsd=None)

    def run():
        return run_experiment(
            chain_graph(), config, kills=[(0.9, "a[0]"), (0.9, "b[0]")], limit=3600
        )

    result = once(run)
    assert not [e for e in result.recovery_events if e[1] == "orphan-fallback"]
    counts = counts_of(result)
    assert set(counts) == set(range(5000))
    assert all(c == 1 for c in counts.values())


def test_section55_exactly_once_output(once):
    """Sink-task failure: the Section 5.5 determinant-piggyback sink keeps
    the output topic exactly-once without transactional commit latency."""

    def run():
        out = {}
        for label, factory in (
            ("plain", lambda log: KafkaSink(log, "out")),
            ("exactly-once", lambda log: ExactlyOnceKafkaSink(log, "out")),
            ("transactional", lambda log: TransactionalKafkaSink(log, "out")),
        ):
            config = fast_config(FaultToleranceMode.CLONOS, dsd=None)
            out[label] = run_experiment(
                chain_graph(sink_factory=factory),
                config,
                kills=[(0.9, "sink[0]")],
                limit=3600,
            )
        return out

    results = once(run)
    rows = []
    for label, result in results.items():
        counts = counts_of(result)
        dup = sum(c - 1 for c in counts.values())
        lost = 5000 - len(counts)
        p50 = result.latency_percentile(50, end=0.9)
        rows.append((label, dup, lost, f"{p50 * 1e3:.1f}"))
    print()
    print("Section 5.5: exactly-once output options under a sink failure")
    print(render_table(["sink", "duplicates", "lost", "pre-fail p50 (ms)"], rows))
    by = {r[0]: r for r in rows}
    assert by["plain"][1] > 0  # plain sink re-appends the replayed epoch
    assert by["exactly-once"][1] == 0 and by["exactly-once"][2] == 0
    assert by["transactional"][1] == 0 and by["transactional"][2] == 0
    # The 2PC sink pays up to a checkpoint interval of output latency; the
    # determinant-piggyback sink stays at plain-sink latency.
    assert float(by["transactional"][3]) > float(by["exactly-once"][3]) * 3
