"""Figures 6a/6e (Q3) and 6b/6f (Q8): single-operator failures.

Paper findings to match in shape:

* Clonos switches to the standby sub-second and is fully caught up within
  seconds; only records on causally affected paths see elevated latency.
* Vanilla Flink loses availability on ALL tasks and needs tens of seconds
  (heartbeat detection + full restart + state restore + catch-up).
* Clonos recovers an order of magnitude faster.
"""

from repro.harness.figures import fig6_single_failure
from repro.harness.reporters import render_series, render_table

from benchmarks.conftest import attach_recovery_phases


def run_query_failure(once, query, victim, kill_at=4.0, benchmark=None):
    runs = once(
        fig6_single_failure,
        query=query,
        victim=victim,
        events_per_partition=36000,
        rate=6000.0,
        kill_at=kill_at,
        checkpoint_interval=2.0,
    )
    if benchmark is not None:
        attach_recovery_phases(benchmark, runs)
    return runs


def report(query, runs):
    print()
    print(f"Figure 6 ({query}): failure at t={runs['clonos'].failure_time:.0f}s")
    rows = []
    for label in ("clonos", "flink"):
        run = runs[label]
        baseline, worst = run.result.throughput_dip_after(0)
        rows.append(
            (
                label,
                f"{run.recovery_time:.2f}" if run.recovery_time is not None else "n/a",
                f"{baseline:.0f}",
                f"{worst:.0f}",
                len(run.result.output_values()),
            )
        )
    print(
        render_table(
            ["variant", "recovery time (s)", "pre-fail rate", "worst rate", "outputs"],
            rows,
        )
    )
    print(render_series(f"{query} clonos output rate", runs["clonos"].throughput_series()))
    print(render_series(f"{query} flink output rate", runs["flink"].throughput_series()))


def test_fig6a_e_q3_single_failure(once, benchmark):
    runs = run_query_failure(once, "Q3", "join[0]", benchmark=benchmark)
    report("Q3", runs)
    clonos, flink = runs["clonos"].recovery_time, runs["flink"].recovery_time
    assert clonos is not None and flink is not None
    # Clonos: a few seconds including catch-up; Flink: tens of seconds.
    assert clonos < 5.0
    assert flink > 10.0
    assert clonos < flink / 5.0
    # Flink's restart includes the 6s heartbeat detection alone.
    assert flink > 6.0


def test_fig6b_f_q8_single_failure(once, benchmark):
    runs = run_query_failure(once, "Q8", "join[0]", benchmark=benchmark)
    report("Q8", runs)
    clonos, flink = runs["clonos"].recovery_time, runs["flink"].recovery_time
    assert clonos is not None and flink is not None
    assert clonos < 5.0
    assert flink > 10.0
    assert clonos < flink / 5.0


def test_fig6e_throughput_barely_dips_for_clonos(once, benchmark):
    runs = run_query_failure(once, "Q3", "join[0]", benchmark=benchmark)
    # Clonos: records keep flowing through the surviving join subtask the
    # whole time; Flink: complete downtime while the graph restarts.
    _base_c, worst_clonos = runs["clonos"].result.throughput_dip_after(0)
    _base_f, worst_flink = runs["flink"].result.throughput_dip_after(0)
    assert worst_flink == 0.0
    fail_t = runs["clonos"].failure_time
    clonos_rates = [
        s.records_per_second
        for s in runs["clonos"].result.output_throughput
        if fail_t <= s.time <= fail_t + 3.0
    ]
    assert sum(clonos_rates) > 0.0  # output continued during recovery
