"""Figure 5 + Section 7.3: Clonos overhead under normal operation.

Reproduces the relative-throughput bars of Figure 5 (Clonos DSD=1 and
DSD=Full vs vanilla Flink, Nexmark Q1-Q9/Q11-Q14) and the latency-overhead
claim of Section 7.3.  Paper findings to match in shape:

* average throughput penalty ~6% (DSD=1) / ~7% (DSD=Full);
* deep queries (Q5, Q7; D=6) hit hardest by full sharing (up to 26%);
* shallow queries (Q1, Q2) essentially unaffected;
* latency: DSD=1 within ~10%, DSD=Full tail up to ~20%.
"""

from repro.harness.figures import fig5_overhead, latency_overhead
from repro.harness.reporters import render_table
from repro.nexmark.queries import QUERIES


def test_fig5_relative_throughput(once):
    rows = once(
        fig5_overhead,
        queries=tuple(sorted(QUERIES, key=lambda q: int(q[1:]))),
        events_per_partition=6000,
    )
    print()
    print("Figure 5: relative throughput vs vanilla Flink (1.00 = no overhead)")
    print(
        render_table(
            ["query", "flink rec/s", "clonos DSD=1", "clonos DSD=Full"],
            [
                (r.query, f"{r.flink_rate:.0f}", f"{r.rel_dsd1:.3f}", f"{r.rel_full:.3f}")
                for r in rows
            ],
        )
    )
    avg_dsd1 = sum(r.rel_dsd1 for r in rows) / len(rows)
    avg_full = sum(r.rel_full for r in rows) / len(rows)
    print(f"average: DSD=1 {avg_dsd1:.3f}  DSD=Full {avg_full:.3f}")

    by_query = {r.query: r for r in rows}
    # Clonos never beats Flink by more than noise, never costs more than ~35%.
    for r in rows:
        assert 0.65 <= r.rel_dsd1 <= 1.05, r
        assert 0.65 <= r.rel_full <= 1.05, r
    # Average penalty in the paper's single-digit band.
    assert avg_dsd1 >= 0.93
    assert avg_full >= 0.90
    # Shallow map/filter queries are essentially unaffected.
    assert by_query["Q1"].rel_dsd1 >= 0.96
    assert by_query["Q2"].rel_dsd1 >= 0.96
    # The deep aggregation-tree queries pay the most for full sharing...
    deep_full = min(by_query["Q5"].rel_full, by_query["Q7"].rel_full)
    shallow_full = min(by_query["Q1"].rel_full, by_query["Q2"].rel_full)
    assert deep_full < shallow_full - 0.02
    # ...and lowering the sharing depth buys that overhead back (Section 5.4).
    assert by_query["Q5"].rel_dsd1 > by_query["Q5"].rel_full + 0.02
    assert by_query["Q7"].rel_dsd1 > by_query["Q7"].rel_full + 0.02


def test_fusion_ablation(once):
    """Section 7.3 runs Nexmark with operator fusion on; this ablation shows
    why: fusing forward chains removes network hops — and with Clonos, those
    hops' in-flight logging and determinant traffic."""
    from repro.config import FaultToleranceMode
    from repro.graph.fusion import fuse
    from repro.harness.experiment import run_experiment
    from repro.harness.figures import experiment_config, nexmark_graph_fn

    def run_q5(fused: bool) -> float:
        graph_builder = nexmark_graph_fn("Q5", 2, 6000, 100000.0)

        def graph_fn(log, external):
            graph = graph_builder(log, external)
            return fuse(graph) if fused else graph

        config = experiment_config(
            FaultToleranceMode.CLONOS, None, checkpoint_interval=1.0
        )
        result = run_experiment(graph_fn, config, limit=3600)
        return 12000 / result.duration

    def both():
        return run_q5(True), run_q5(False)

    fused_rate, plain_rate = once(both)
    print()
    print(
        render_table(
            ["Q5 variant", "ingest rec/s"],
            [("fused", f"{fused_rate:.0f}"), ("unfused", f"{plain_rate:.0f}")],
        )
    )
    assert fused_rate >= plain_rate * 0.98  # fusion never hurts


def test_section73_latency_overhead(once):
    row = once(latency_overhead, query="Q1", events_per_partition=6000)
    print()
    print("Section 7.3: end-to-end latency overhead (unsaturated Q1)")
    print(
        render_table(
            ["variant", "p50 (ms)", "p99 (ms)"],
            [
                ("flink", f"{row.flink_p50 * 1e3:.2f}", f"{row.flink_p99 * 1e3:.2f}"),
                ("clonos DSD=1", f"{row.dsd1_p50 * 1e3:.2f}", f"{row.dsd1_p99 * 1e3:.2f}"),
                ("clonos DSD=Full", f"{row.full_p50 * 1e3:.2f}", f"{row.full_p99 * 1e3:.2f}"),
            ],
        )
    )
    # DSD=1 within ~10% of Flink's latency; full sharing tail within ~25%.
    assert row.dsd1_p50 <= row.flink_p50 * 1.10 + 1e-3
    assert row.dsd1_p99 <= row.flink_p99 * 1.15 + 1e-3
    assert row.full_p99 <= row.flink_p99 * 1.25 + 2e-3
