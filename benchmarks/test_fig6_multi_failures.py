"""Figures 6c/6g (staggered) and 6d/6h (concurrent) multiple failures.

Synthetic workload per the paper: parallelism 5, depth 5, checkpoint
interval 5 s, per-operator state (scaled).  Three failures on *connected*
dataflows (stage1[0] -> stage2[0] -> stage3[0]).

Findings to match in shape:

* Clonos behaves similarly whether the failures are staggered or
  concurrent; downstream recoveries wait on upstream replay.
* Only partial throughput is lost: causally unaffected paths keep flowing.
* Flink pays a full restart (or several).
"""

from repro.harness.figures import fig6_multi_failures
from repro.harness.reporters import render_series, render_table

from benchmarks.conftest import attach_recovery_phases

PARAMS = dict(
    depth=5,
    parallelism=5,
    rate=700.0,
    events_per_partition=14000,
    checkpoint_interval=5.0,
    first_kill_at=6.0,
    interval=5.0,
    state_bytes=100 * 1024,
)


def report(title, runs):
    print()
    print(title)
    rows = []
    for label in ("clonos", "flink"):
        run = runs[label]
        baseline, worst = run.result.throughput_dip_after(0)
        rows.append(
            (
                label,
                f"{run.recovery_time:.2f}" if run.recovery_time is not None else "n/a",
                f"{baseline:.0f}",
                f"{worst:.0f}",
                f"{run.result.duration:.1f}",
            )
        )
    print(
        render_table(
            ["variant", "recovery (s)", "pre-fail rate", "worst rate", "job time (s)"],
            rows,
        )
    )
    print(render_series("clonos output rate", runs["clonos"].throughput_series()))
    print(render_series("flink output rate", runs["flink"].throughput_series()))


def check_common(runs):
    clonos, flink = runs["clonos"], runs["flink"]
    # Clonos finishes the job well before Flink (several full restarts).
    assert clonos.result.duration < flink.result.duration
    # Partial progress: Clonos' output never fully stops for long — between
    # the first failure and +4s, some records still flow (unaffected paths).
    t0 = clonos.failure_time
    window = [
        s.records_per_second
        for s in clonos.result.output_throughput
        if t0 <= s.time <= t0 + 4.0
    ]
    assert sum(window) > 0.0
    # Every downstream recovery completes after its upstream's (replay order).
    recovered = {
        name: t
        for (t, kind, name) in clonos.result.recovery_events
        if kind == "recovered"
    }
    assert recovered["stage1[0]"] <= recovered["stage2[0]"] <= recovered["stage3[0]"]


def test_fig6c_g_staggered_failures(once, benchmark):
    runs = once(fig6_multi_failures, concurrent=False, **PARAMS)
    attach_recovery_phases(benchmark, runs)
    report("Figure 6c/6g: three staggered failures (5s apart)", runs)
    check_common(runs)


def test_fig6d_h_concurrent_failures(once, benchmark):
    runs = once(fig6_multi_failures, concurrent=True, **PARAMS)
    attach_recovery_phases(benchmark, runs)
    report("Figure 6d/6h: three concurrent failures", runs)
    check_common(runs)


def test_staggered_and_concurrent_behave_similarly(once):
    def both():
        return (
            fig6_multi_failures(concurrent=False, **PARAMS),
            fig6_multi_failures(concurrent=True, **PARAMS),
        )

    staggered, concurrent = once(both)
    rt_s = staggered["clonos"].recovery_time
    rt_c = concurrent["clonos"].recovery_time
    assert rt_s is not None and rt_c is not None
    # "Independently of the frequency of failures ... Clonos' recovery
    # behaves similarly": same order of magnitude. Staggered failures span
    # an extra 2x5s of injection time by construction.
    spread = PARAMS["interval"] * 2
    assert abs((rt_s - spread) - rt_c) < max(rt_c, 5.0) * 1.5
