"""Table 1, operationalised: what each scheme's assumptions buy you.

The paper's Table 1 lists the *assumptions* of related local-recovery
systems; this benchmark measures their *consequences*: each scheme recovers
the same failed operator, once deterministic and once nondeterministic, and
we count exactly-once violations in the output.

Expected matrix (matching Section 5.4 and Table 1):

* Clonos            — exactly-once, both columns.
* SEEP-style dedup  — exactly-once iff the operator is deterministic.
* Divergent replay  — at-least-once (duplicates), both columns.
* Gap recovery      — at-most-once (loss), both columns.
"""

from repro.harness.figures import table1_assumptions
from repro.harness.reporters import render_table


def test_table1_consistency_matrix(once):
    cells = once(table1_assumptions, n_records=4000)
    print()
    print("Table 1 (operationalised): exactly-once violations after recovery")
    print(
        render_table(
            ["scheme", "operator", "lost", "duplicated", "inconsistent", "exactly-once"],
            [
                (
                    c.mode,
                    "deterministic" if c.deterministic else "nondeterministic",
                    c.lost,
                    c.duplicated,
                    c.inconsistent,
                    "yes" if c.exactly_once else "NO",
                )
                for c in cells
            ],
        )
    )
    by = {(c.mode, c.deterministic): c for c in cells}
    # Clonos: exactly-once regardless of determinism (the paper's claim).
    assert by[("clonos", True)].exactly_once
    assert by[("clonos", False)].exactly_once
    # SEEP-style receiver dedup: sound only under its determinism assumption.
    assert by[("seep", True)].exactly_once
    assert not by[("seep", False)].exactly_once
    # Divergent replay duplicates; gap recovery loses.
    assert by[("divergent", True)].duplicated > 0
    assert by[("divergent", False)].duplicated > 0
    assert by[("divergent", True)].lost == 0
    assert by[("gap_recovery", True)].lost > 0
    assert by[("gap_recovery", True)].duplicated == 0
