"""Section 7.5: in-flight log memory usage and spill policies.

Paper findings to match in shape (sizes scaled ~1000x):

* in-memory / spill-epoch can block processing outright when an epoch
  outgrows the pool;
* spill-buffer is memory-frugal but does synchronous work per buffer;
* spill-threshold is the well-rounded default: it works at every pool size,
  deteriorates at tiny pools and has diminishing returns beyond ~80 (KB
  here, MB in the paper).
"""

from repro.config import SpillPolicy
from repro.harness.figures import memory_spill_study
from repro.harness.reporters import render_table


def test_spill_policy_study(once):
    rows = once(memory_spill_study, duration=12.0)
    print()
    print("Section 7.5: spill policies x in-flight pool size")
    print(
        render_table(
            ["policy", "pool (KB)", "ingest rec/s", "peak bufs", "spilled"],
            [
                (r.policy, r.pool_kbytes, f"{r.rate:.0f}", r.peak_memory_buffers,
                 r.spilled_buffers)
                for r in rows
            ],
        )
    )
    by = {(r.policy, r.pool_kbytes): r for r in rows}
    small, mid, large = sorted({r.pool_kbytes for r in rows})

    # in-memory / spill-epoch wedge when the epoch outgrows the pool...
    assert by[("in-memory", small)].rate == 0.0
    assert by[("spill-epoch", small)].rate == 0.0
    # ...but run fine once the pool fits an epoch.
    assert by[("in-memory", large)].rate > 0.0
    assert by[("spill-epoch", large)].rate > 0.0

    # spill-buffer and spill-threshold never block, at any pool size.
    for pool in (small, mid, large):
        assert by[("spill-buffer", pool)].rate > 0.0
        assert by[("spill-threshold", pool)].rate > 0.0

    # spill-buffer never holds log memory; threshold stays within its pool.
    assert all(
        by[("spill-buffer", p)].peak_memory_buffers == 0 for p in (small, mid, large)
    )
    # Diminishing returns: threshold at the large pool stops spilling at all.
    assert by[("spill-threshold", large)].spilled_buffers == 0
    assert by[("spill-threshold", small)].spilled_buffers > 0

    # The well-rounded default: at every pool size, spill-threshold is at
    # least as fast as every other policy (small tolerance for sampling).
    for pool in (small, mid, large):
        best_other = max(
            by[(p.value, pool)].rate
            for p in SpillPolicy
            if p is not SpillPolicy.SPILL_THRESHOLD
        )
        assert by[("spill-threshold", pool)].rate >= best_other * 0.95


def test_determinant_pool_grows_with_dsd(once):
    """Section 7.5: 'for DSD=1 a determinant buffer pool of 5MB is more than
    sufficient... When DSD=Full, this value must be increased as D grows, as
    more logs are replicated.'"""
    from repro.harness.figures import determinant_pool_study

    rows = once(determinant_pool_study, depths=(3, 5))
    print()
    print("Section 7.5: peak determinant bytes held per task")
    print(
        render_table(
            ["sharing", "graph depth", "peak determinant bytes"],
            [(r.dsd_label, r.depth, r.peak_determinant_bytes) for r in rows],
        )
    )
    by = {(r.dsd_label, r.depth): r.peak_determinant_bytes for r in rows}
    # Full sharing holds strictly more than DSD=1 at every depth...
    assert by[("full", 3)] > by[("dsd1", 3)]
    assert by[("full", 5)] > by[("dsd1", 5)]
    # ...and grows with depth much faster than DSD=1 does.
    full_growth = by[("full", 5)] / by[("full", 3)]
    dsd1_growth = by[("dsd1", 5)] / max(1, by[("dsd1", 3)])
    assert full_growth > dsd1_growth


def test_saturated_spill_buffer_pays_synchronous_work(once):
    """At saturation the synchronous spill-buffer writes cost throughput
    relative to the asynchronous threshold spiller."""
    rows = once(
        memory_spill_study,
        policies=(SpillPolicy.SPILL_BUFFER, SpillPolicy.SPILL_THRESHOLD),
        pool_bytes_options=(80 * 1024,),
        rate=200000.0,
        duration=10.0,
    )
    by = {r.policy: r for r in rows}
    print()
    print(
        render_table(
            ["policy", "saturated ingest rec/s"],
            [(r.policy, f"{r.rate:.0f}") for r in rows],
        )
    )
    assert by["spill-threshold"].rate > by["spill-buffer"].rate * 1.1
