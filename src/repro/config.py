"""Job and cluster configuration.

Two orthogonal knobs drive every experiment in the paper:

* the **fault-tolerance scheme** (:class:`FaultToleranceMode`), selecting
  vanilla-Flink global rollback, Clonos, or one of the weaker baselines, and
* the **cost model** (:class:`CostModel`), which turns logical actions
  (processing a record, shipping a buffer, restarting a process) into
  simulated time so that throughput/latency/recovery *shapes* emerge from the
  mechanisms rather than being hard-coded.

Defaults are calibrated so that a saturated single task processes on the
order of 10⁴ records/s of simulated time, roughly 1/100 of the per-core rates
in the paper's testbed.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import JobError


class FaultToleranceMode(enum.Enum):
    """Which recovery scheme the job runs under."""

    #: No fault tolerance at all (failures lose the job).
    NONE = "none"
    #: Flink-style global rollback: tear down the whole graph, restart from
    #: the last completed checkpoint (Section 3.2).
    GLOBAL_ROLLBACK = "global_rollback"
    #: Clonos: local recovery with in-flight logs + causal logging
    #: (+ optional standby tasks).
    CLONOS = "clonos"
    #: Gap recovery: restart the failed task from its checkpoint but replay
    #: nothing (at-most-once, Section 5.4).
    GAP_RECOVERY = "gap_recovery"
    #: Divergent local replay: in-flight logs without determinants
    #: (at-least-once, Clonos with DSD=0, Section 5.4).
    DIVERGENT = "divergent"
    #: SEEP/TimeStream-style local recovery with receiver-side deduplication
    #: keyed on monotonic logical timestamps; *assumes determinism* (Table 1).
    SEEP = "seep"


class Guarantee(enum.Enum):
    """Processing guarantee delivered by a scheme (Section 5.4)."""

    AT_MOST_ONCE = "at-most-once"
    AT_LEAST_ONCE = "at-least-once"
    EXACTLY_ONCE = "exactly-once"

    @staticmethod
    def of(mode: "FaultToleranceMode", deterministic_job: bool = False) -> "Guarantee":
        """The guarantee a mode provides (SEEP's depends on determinism)."""
        if mode in (FaultToleranceMode.NONE, FaultToleranceMode.GAP_RECOVERY):
            return Guarantee.AT_MOST_ONCE
        if mode is FaultToleranceMode.DIVERGENT:
            return Guarantee.AT_LEAST_ONCE
        if mode is FaultToleranceMode.SEEP:
            return Guarantee.EXACTLY_ONCE if deterministic_job else Guarantee.AT_LEAST_ONCE
        return Guarantee.EXACTLY_ONCE


class SpillPolicy(enum.Enum):
    """In-flight log spill policies (Section 6.1)."""

    IN_MEMORY = "in-memory"
    SPILL_EPOCH = "spill-epoch"
    SPILL_BUFFER = "spill-buffer"
    SPILL_THRESHOLD = "spill-threshold"


@dataclass
class RetryPolicy:
    """Jittered exponential backoff, shared by every hardened retry loop
    (recovery steps, control RPCs, DFS access, external calls)."""

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    #: Fractional jitter: each delay is scaled by 1 ± jitter (deterministic
    #: when the caller passes a seeded rng).
    jitter: float = 0.25

    def delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        delay = min(self.base_delay * self.multiplier ** attempt, self.max_delay)
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(delay, 0.0)


@dataclass
class CostModel:
    """Simulated-time costs of the physical actions in the system.

    All times are seconds of simulated time; all sizes are bytes.
    """

    # -- CPU ---------------------------------------------------------------
    #: Base cost of pushing one record through one operator.
    record_cpu_cost: float = 20e-6
    #: Cost per byte of (de)serialising record payloads.
    serialize_cost_per_byte: float = 4e-9
    #: Fixed per-buffer handling cost (syscalls, bookkeeping).
    buffer_overhead_cost: float = 15e-6

    # -- causal logging (Clonos overhead knobs) --------------------------------
    #: CPU cost of appending/serialising/merging one determinant log entry.
    #: The paper's closing remark ("reducing the overhead of causal logging
    #: through compressed data structures") is about exactly this constant.
    determinant_cpu_cost: float = 2.2e-6
    #: Per-dispatched-buffer bookkeeping of the in-flight log (the exchange).
    inflight_append_cost: float = 6e-6

    # -- network -------------------------------------------------------------
    #: One-way propagation latency of a network link.
    network_latency: float = 0.5e-3
    #: Link bandwidth in bytes/second.
    network_bandwidth: float = 120e6
    #: Latency of a control-plane RPC (job manager <-> task).
    rpc_latency: float = 2e-3
    #: How long a *reliable* control RPC waits for its ack before resending
    #: (must cover a round trip; see ``ControlQueue.send(reliable=True)``).
    rpc_ack_timeout: float = 10e-3

    # -- buffers -------------------------------------------------------------
    #: Serialised capacity of one network buffer.
    buffer_size_bytes: int = 4096
    #: Buffers in each output channel's pool (Flink keeps this small to
    #: preserve backpressure; Section 6.1).
    output_pool_buffers: int = 10
    #: Receiver-side queue depth per input channel (credits).
    input_queue_buffers: int = 8
    #: Periodic flush interval of the output flusher thread.
    flush_interval: float = 20e-3

    # -- durable storage -------------------------------------------------------
    #: DFS (HDFS-like) write and read bandwidth for checkpoints.
    dfs_write_bandwidth: float = 80e6
    dfs_read_bandwidth: float = 100e6
    #: Fixed latency of a DFS operation.
    dfs_latency: float = 5e-3
    #: Local disk bandwidth used by the spilling in-flight log.
    disk_bandwidth: float = 200e6
    disk_latency: float = 1e-3

    # -- failure detection & deployment ---------------------------------------
    #: Heartbeat period and timeout (paper Section 7.1: 4s / 6s).
    heartbeat_interval: float = 4.0
    heartbeat_timeout: float = 6.0
    #: Local-recovery modes detect failures by connection reset (TCP) on the
    #: neighbours, far faster than job-manager heartbeats.
    connection_failure_detection: float = 0.25
    #: Time to deploy a fresh task process (JVM/container start, code init).
    task_deploy_time: float = 8.0
    #: Time to cancel a running task during a global restart.
    task_cancel_time: float = 1.0
    #: Time for an idle standby task to start running (sub-second switch).
    standby_activation_time: float = 0.3
    #: How long a deferred ``kill_task`` injection waits for its victim to
    #: come back to RUNNING before giving up with a structured error.
    kill_deferral_deadline: float = 300.0
    #: Consecutive missed heartbeats before the failure detector *suspects* a
    #: task (false-positive suppression: a single delay spike is forgiven).
    suspicion_threshold: int = 3

    def transmission_time(self, size_bytes: int) -> float:
        """Wire time of one buffer."""
        return self.network_latency + size_bytes / self.network_bandwidth

    def serialize_time(self, size_bytes: int) -> float:
        return size_bytes * self.serialize_cost_per_byte

    def dfs_write_time(self, size_bytes: int) -> float:
        return self.dfs_latency + size_bytes / self.dfs_write_bandwidth

    def dfs_read_time(self, size_bytes: int) -> float:
        return self.dfs_latency + size_bytes / self.dfs_read_bandwidth

    def disk_write_time(self, size_bytes: int) -> float:
        return self.disk_latency + size_bytes / self.disk_bandwidth


@dataclass
class ClonosConfig:
    """Clonos-specific knobs (Sections 4-6)."""

    #: Determinant sharing depth; ``None`` means "full" (= graph depth).
    determinant_sharing_depth: Optional[int] = None
    #: Deploy passive standby tasks with state dispatch (high availability
    #: mode); without them, local recovery deploys a fresh task instead.
    standby_tasks: bool = True
    #: In-flight log spill policy.
    spill_policy: SpillPolicy = SpillPolicy.SPILL_THRESHOLD
    #: In-flight log buffer-pool budget per task, bytes (paper uses 80 MB;
    #: we scale with the rest of the simulation).
    inflight_pool_bytes: int = 512 * 1024
    #: Available-buffer fraction below which SPILL_THRESHOLD starts spilling.
    spill_threshold_fraction: float = 0.25
    #: Determinant buffer pool budget, bytes (paper: ~5 MB at DSD=1).
    determinant_pool_bytes: int = 64 * 1024
    #: Timestamp-service caching granularity (Section 4.2): timestamps are
    #: refreshed at most once per this many seconds, cutting determinant
    #: volume by ~100x.
    timestamp_granularity: float = 1e-3
    #: When more than DSD consecutive tasks fail: fall back to a global
    #: rollback (consistency) or skip dedup (availability, at-least-once).
    fallback_to_global: bool = True
    #: Standby placement anti-affinity: never co-locate a standby with the
    #: task it mirrors (Section 6.3).
    standby_anti_affinity: bool = True
    #: Per-step deadline of the 6-step recovery protocol: a step that does
    #: not finish within this window is killed and the attempt retried.
    recovery_step_deadline: float = 30.0
    #: Escalation ladder: how many local-recovery attempts (standby first,
    #: then fresh deployment from the DFS checkpoint) before degrading to
    #: global-rollback semantics.
    recovery_retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_attempts=3, base_delay=0.2, multiplier=2.0, max_delay=5.0
        )
    )
    #: Backoff for checkpoint restore / snapshot upload against a flaky DFS.
    dfs_retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_attempts=4, base_delay=0.1, multiplier=2.0, max_delay=2.0
        )
    )
    #: Backoff for external (HTTP-ish) service calls made through the causal
    #: services layer.
    external_retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_attempts=4, base_delay=0.02, multiplier=2.0, max_delay=0.5
        )
    )


@dataclass
class IntegrityConfig:
    """Artifact-integrity knobs (checksummed checkpoints & validated reads).

    Every persisted recovery artifact carries a content fingerprint
    (``repro.integrity``); these settings control whether fingerprints are
    *verified* on read/install and how many completed checkpoints the
    :class:`~repro.state.snapshot.SnapshotStore` retains for the multi-epoch
    fallback ladder.
    """

    #: Verify fingerprints on every read/install; ``False`` is the control
    #: configuration that demonstrates corruption would otherwise be silent.
    validate: bool = True
    #: Retain-last-N completed checkpoints.  N >= 2 gives global rollback an
    #: older known-good epoch to fall back to when the newest one is corrupt;
    #: everything older is subsumption-GCed from the DFS.
    retain_checkpoints: int = 2


@dataclass
class WatchdogConfig:
    """Recovery-liveness monitoring (:mod:`repro.recovery.watchdog`).

    The watchdog piggybacks its stall checks on the checkpoint
    coordinator's existing ticks — it schedules no simulation events of its
    own, so enabling it cannot perturb a schedule (the golden digests stay
    byte-identical).  It arms on the first detected failure and watches a
    job-wide progress fingerprint; a fingerprint frozen for a full stall
    window is announced as ``degraded:recovery_stalled`` and escalated,
    and a job that stays wedged despite escalation is killed with a
    structured :class:`~repro.errors.RecoveryStallError`.
    """

    enabled: bool = True
    #: Sim-seconds without any observed progress before the watchdog
    #: declares a stall.  ``None`` = auto-derive a window longer than every
    #: healthy quiet period the job can produce: max(3 s, 8x the checkpoint
    #: interval, 1.2x the effective checkpoint timeout, 2x the recovery
    #: step deadline + 1 s).
    stall_timeout: Optional[float] = None
    #: After the announced stage-1 escalation, how many additional stall
    #: windows (as a fraction of ``stall_timeout``) to allow the escalation
    #: before killing the job with :class:`RecoveryStallError`.
    escalation_grace: float = 1.0
    #: Announced escalations per job before the watchdog stops re-trying
    #: and goes terminal: a restart loop that wedges again each time is a
    #: stall, not progress.
    escalation_limit: int = 2


@dataclass
class JobConfig:
    """Everything needed to run one streaming job in the simulation."""

    mode: FaultToleranceMode = FaultToleranceMode.CLONOS
    checkpoint_interval: float = 5.0
    cost: CostModel = field(default_factory=CostModel)
    clonos: ClonosConfig = field(default_factory=ClonosConfig)
    #: Incremental checkpoints (Section 6.4): DFS writes are charged for the
    #: state *delta* only, cutting snapshot and standby-dispatch cost.
    incremental_checkpoints: bool = False
    #: Root seed for all randomness (workloads, the external world...).
    seed: int = 7
    #: Low-watermark emission period at sources.
    watermark_interval: float = 0.2
    #: Allowed out-of-orderness (lateness bound) for event-time watermarks.
    watermark_lateness: float = 0.5
    #: At-least-once control RPCs for the recovery-critical messages (replay
    #: requests): message ids, acks, timeout-driven resends.  Turning this
    #: off demonstrates how a lossy control plane wedges recovery.
    reliable_control_plane: bool = True
    #: Resend schedule of reliable control RPCs.
    rpc_retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_attempts=8, base_delay=0.02, multiplier=2.0, max_delay=0.5
        )
    )
    #: Abort a pending checkpoint whose barriers/acks never complete (e.g. an
    #: ``inject_barrier`` RPC was lost); ``None`` means 10x the interval.
    checkpoint_timeout: Optional[float] = None
    #: Artifact fingerprints, validated restores, checkpoint retention.
    integrity: IntegrityConfig = field(default_factory=IntegrityConfig)
    #: Recovery-liveness monitoring (stall detection + escalation).
    watchdog: WatchdogConfig = field(default_factory=WatchdogConfig)
    #: How many times a poisoned record (chaos ``poison_pill``) may crash
    #: its operator before the :class:`~repro.chaos.poison.PoisonRegistry`
    #: quarantines it — skipping the record with an announced
    #: ``degraded:poison_quarantined`` event instead of crash-looping.
    poison_quarantine_after: int = 2

    @property
    def effective_checkpoint_timeout(self) -> float:
        if self.checkpoint_timeout is not None:
            return self.checkpoint_timeout
        return 10.0 * self.checkpoint_interval

    def validate(self) -> None:
        if self.checkpoint_interval <= 0:
            raise JobError("checkpoint_interval must be positive")
        dsd = self.clonos.determinant_sharing_depth
        if dsd is not None and dsd < 0:
            raise JobError("determinant sharing depth must be >= 0 or None (full)")
        if self.cost.heartbeat_timeout < self.cost.heartbeat_interval:
            raise JobError("heartbeat timeout must be >= interval")
        if self.integrity.retain_checkpoints < 1:
            raise JobError("integrity.retain_checkpoints must be >= 1")
        if (
            self.watchdog.stall_timeout is not None
            and self.watchdog.stall_timeout <= 0
        ):
            raise JobError("watchdog.stall_timeout must be positive (or None)")
        if self.watchdog.escalation_limit < 0 or self.watchdog.escalation_grace < 0:
            raise JobError("watchdog escalation knobs must be >= 0")
        if self.poison_quarantine_after < 1:
            raise JobError("poison_quarantine_after must be >= 1")

    def with_mode(self, mode: FaultToleranceMode, **clonos_overrides) -> "JobConfig":
        """A copy of this config under a different fault-tolerance scheme."""
        clonos = replace(self.clonos, **clonos_overrides) if clonos_overrides else self.clonos
        return replace(self, mode=mode, clonos=clonos)

    @property
    def guarantee(self) -> Guarantee:
        if (
            self.mode is FaultToleranceMode.CLONOS
            and self.clonos.determinant_sharing_depth == 0
        ):
            return Guarantee.AT_LEAST_ONCE
        return Guarantee.of(self.mode)
