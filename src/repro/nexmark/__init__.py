"""Nexmark benchmark: data model, deterministic generator, queries."""

from repro.nexmark.generator import NexmarkGenerator, event_timestamp
from repro.nexmark.model import Auction, Bid, NexmarkEvent, Person
from repro.nexmark.queries import NONDETERMINISTIC_QUERIES, QUERIES

__all__ = [
    "Auction",
    "Bid",
    "NONDETERMINISTIC_QUERIES",
    "NexmarkEvent",
    "NexmarkGenerator",
    "Person",
    "QUERIES",
    "event_timestamp",
]
