"""Nexmark data model: persons, auctions, bids (Tucker et al., 2008).

Plain ``__slots__`` classes with registered wire sizes so the network cost
model sees realistic record sizes (~100-200 B, matching the benchmark's
average event size).
"""

from __future__ import annotations

from typing import Union

from repro.net.serialization import register_sizer

US_STATES = ("OR", "ID", "CA", "WA", "AZ", "NV", "UT", "CO", "NM", "TX")
CITIES = (
    "Portland", "Boise", "San Francisco", "Seattle", "Phoenix",
    "Las Vegas", "Salt Lake City", "Denver", "Santa Fe", "Austin",
)
CATEGORIES = tuple(range(10))
FIRST_NAMES = ("Walter", "Ava", "Noor", "Kai", "Maya", "Otto", "Lena", "Igor")
LAST_NAMES = ("Shultz", "Abrams", "Jones", "Wilson", "White", "Bartik", "Walton")


class Person:
    """A registered marketplace user."""

    __slots__ = ("person_id", "name", "state", "city", "event_time")

    kind = "person"

    def __init__(self, person_id: int, name: str, state: str, city: str, event_time: float):
        self.person_id = person_id
        self.name = name
        self.state = state
        self.city = city
        self.event_time = event_time

    def __repr__(self) -> str:
        return f"Person({self.person_id}, {self.name!r}, {self.state})"

    def __eq__(self, other):
        return isinstance(other, Person) and other.person_id == self.person_id

    def __hash__(self):
        return hash(("person", self.person_id))


class Auction:
    """An item listed for sale."""

    __slots__ = (
        "auction_id", "seller", "category", "initial_bid", "reserve",
        "expires", "event_time",
    )

    kind = "auction"

    def __init__(
        self,
        auction_id: int,
        seller: int,
        category: int,
        initial_bid: float,
        reserve: float,
        expires: float,
        event_time: float,
    ):
        self.auction_id = auction_id
        self.seller = seller
        self.category = category
        self.initial_bid = initial_bid
        self.reserve = reserve
        self.expires = expires
        self.event_time = event_time

    def __repr__(self) -> str:
        return f"Auction({self.auction_id}, seller={self.seller}, cat={self.category})"

    def __eq__(self, other):
        return isinstance(other, Auction) and other.auction_id == self.auction_id

    def __hash__(self):
        return hash(("auction", self.auction_id))


class Bid:
    """A bid on an auction."""

    __slots__ = ("auction", "bidder", "price", "event_time")

    kind = "bid"

    def __init__(self, auction: int, bidder: int, price: float, event_time: float):
        self.auction = auction
        self.bidder = bidder
        self.price = price
        self.event_time = event_time

    def __repr__(self) -> str:
        return f"Bid(auction={self.auction}, bidder={self.bidder}, price={self.price})"

    def __eq__(self, other):
        return (
            isinstance(other, Bid)
            and (other.auction, other.bidder, other.price, other.event_time)
            == (self.auction, self.bidder, self.price, self.event_time)
        )

    def __hash__(self):
        return hash(("bid", self.auction, self.bidder, self.price, self.event_time))


NexmarkEvent = Union[Person, Auction, Bid]

register_sizer(Person, lambda p: 8 + 4 + len(p.name) + 2 + len(p.city) + 8)
register_sizer(Auction, lambda a: 8 * 6 + 4)
register_sizer(Bid, lambda b: 8 * 4)
