"""Deterministic Nexmark event generator.

Events are a pure function of ``(seed, partition, offset)``, so a topic
backed by this generator is unbounded, O(1)-memory, and byte-identically
replayable from any offset — the property lineage-based replay needs from
its sources (Section 5.1).

The standard Nexmark mix is kept: out of every 50 events, 1 person,
3 auctions, and 46 bids.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.external.kafka import DurableLog
from repro.nexmark.model import (
    CATEGORIES,
    CITIES,
    FIRST_NAMES,
    LAST_NAMES,
    US_STATES,
    Auction,
    Bid,
    NexmarkEvent,
    Person,
)
from repro.sim.rng import derive_seed

PERSON_PROPORTION = 1
AUCTION_PROPORTION = 3
BID_PROPORTION = 46
PROPORTION_DENOMINATOR = PERSON_PROPORTION + AUCTION_PROPORTION + BID_PROPORTION

#: Auctions stay open for this many seconds of event time.
AUCTION_DURATION = 20.0
#: How far back bids/auctions reference existing entities.
ACTIVITY_WINDOW = 250

#: Process-wide event cache, shared by every generator with identical
#: parameters.  ``generate`` is a pure function of (seed, rate, hot ratio,
#: partition, offset), so memoising it is observationally invisible — it
#: matters because (a) recovery re-reads regenerate the same offsets and
#: (b) benchmark suites run several arms/queries over one topic space.
_EVENT_CACHE: Dict[Tuple[int, float, int], Dict[Tuple[int, int], "NexmarkEvent"]] = {}
#: Soft bound on cached events across all parameter sets (memory backstop).
_EVENT_CACHE_LIMIT = 1_000_000


class NexmarkGenerator:
    """Generates the event at a given (partition, offset)."""

    def __init__(self, seed: int = 42, rate_per_partition: float = 1000.0,
                 hot_auction_ratio: int = 2):
        self.seed = seed
        self.rate = rate_per_partition
        #: 1 in ``hot_auction_ratio`` bids goes to the current hottest
        #: auction (key skew, the reason for Q5/Q7's aggregation trees).
        self.hot_auction_ratio = hot_auction_ratio
        self._cache = _EVENT_CACHE.setdefault(
            (seed, rate_per_partition, hot_auction_ratio), {}
        )

    # -- id spaces -------------------------------------------------------------
    # Global ids interleave partitions so parallel generators never collide.

    def _rng_for(self, partition: int, offset: int):
        import random

        return random.Random(derive_seed(self.seed, f"{partition}:{offset}"))

    def _event_index(self, partition: int, offset: int) -> int:
        return offset * 131 + partition  # distinct per (partition, offset)

    def event_time_of(self, offset: int) -> float:
        return offset / self.rate

    def generate(self, partition: int, offset: int) -> NexmarkEvent:
        """The deterministic event at this position (memoised)."""
        cache = self._cache
        key = (partition, offset)
        event = cache.get(key)
        if event is not None:
            return event
        if len(cache) >= _EVENT_CACHE_LIMIT:
            cache.clear()
        event = self._generate(partition, offset)
        cache[key] = event
        return event

    def _generate(self, partition: int, offset: int) -> NexmarkEvent:
        rng = self._rng_for(partition, offset)
        slot = offset % PROPORTION_DENOMINATOR
        event_time = self.event_time_of(offset)
        index = self._event_index(partition, offset)
        if slot < PERSON_PROPORTION:
            return Person(
                person_id=index,
                name=f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}",
                state=rng.choice(US_STATES),
                city=rng.choice(CITIES),
                event_time=event_time,
            )
        if slot < PERSON_PROPORTION + AUCTION_PROPORTION:
            initial = 1.0 + rng.random() * 99.0
            return Auction(
                auction_id=index,
                seller=self._recent_person(partition, offset, rng),
                category=rng.choice(CATEGORIES),
                initial_bid=round(initial, 2),
                reserve=round(initial * (1.1 + rng.random()), 2),
                expires=event_time + AUCTION_DURATION,
                event_time=event_time,
            )
        return Bid(
            auction=self._target_auction(partition, offset, rng),
            bidder=self._recent_person(partition, offset, rng),
            price=round(1.0 + rng.random() * 999.0, 2),
            event_time=event_time,
        )

    def _recent_person(self, partition: int, offset: int, rng) -> int:
        base = max(0, offset - ACTIVITY_WINDOW)
        candidate = rng.randrange(base, offset + 1)
        person_offset = (candidate // PROPORTION_DENOMINATOR) * PROPORTION_DENOMINATOR
        return self._event_index(partition, person_offset)

    def _target_auction(self, partition: int, offset: int, rng) -> int:
        period = PROPORTION_DENOMINATOR
        if rng.randrange(self.hot_auction_ratio) == 0:
            # The hottest auction: the most recent one in this partition.
            base = (offset // period) * period + PERSON_PROPORTION
        else:
            start = max(0, offset - ACTIVITY_WINDOW)
            candidate = rng.randrange(start, offset + 1)
            base = (candidate // period) * period + PERSON_PROPORTION
            base += rng.randrange(AUCTION_PROPORTION)
        return self._event_index(partition, min(base, offset))

    def install_topic(
        self,
        log: DurableLog,
        topic: str,
        partitions: int,
        total_per_partition: Optional[int] = None,
    ) -> None:
        """Create a generated topic backed by this generator."""
        log.create_generated_topic(
            topic, partitions, self.generate, self.rate, total_per_partition
        )


def event_timestamp(event: NexmarkEvent, arrival: float) -> float:
    """Event-time extractor used by Nexmark sources."""
    return event.event_time
