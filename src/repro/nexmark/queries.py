"""Nexmark queries Q1-Q9 and the Beam extras Q11-Q14 on the dataflow API.

Q10 is excluded, as in the paper (it needs Google Cloud Storage).  Each
builder returns a :class:`~repro.graph.logical.JobGraph` reading the events
topic and writing results to the output topic.  The graph *shapes* follow
the paper's description: Q1/Q2 are shallow map/filter pipelines (D=2), the
joins sit at D=3, and Q5/Q7 use aggregation trees against key skew (D=6).

Q12 (processing-time windows), Q13 (external side-input lookup), and Q14
(user-defined nondeterministic logic) are the *nondeterministic* queries:
under the baselines their recovery diverges; under Clonos it does not.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import JobError
from repro.external.kafka import DurableLog
from repro.graph.logical import DataStream, JobGraph, JobGraphBuilder
from repro.nexmark.generator import event_timestamp
from repro.nexmark.model import Auction, Bid, Person
from repro.operators import (
    AvgAggregator,
    CountAggregator,
    EventTimeWindowOperator,
    FilterOperator,
    FlatMapOperator,
    FullHistoryJoinOperator,
    KafkaSink,
    KafkaSource,
    MapOperator,
    MaxAggregator,
    ProcessOperator,
    ProcessingTimeWindowOperator,
    SessionWindowOperator,
    SumAggregator,
    WindowJoinOperator,
)

#: USD -> EUR factor of the original query.
DOLLAR_TO_EURO = 0.908

#: Window sizes, scaled down ~10x from the original 10-60s windows so the
#: simulated experiments converge quickly.
WINDOW = 2.0
SLIDE = 0.5
SESSION_GAP = 1.0


def _source(builder: JobGraphBuilder, log: DurableLog, topic: str, parallelism: int
            ) -> DataStream:
    return builder.source(
        "src",
        lambda: KafkaSource(log, topic, timestamp_fn=event_timestamp),
        parallelism=parallelism,
    )


def _is_bid(e) -> bool:
    return isinstance(e, Bid)


def _is_auction(e) -> bool:
    return isinstance(e, Auction)


def _is_person(e) -> bool:
    return isinstance(e, Person)


def q1(log: DurableLog, parallelism: int = 2, in_topic: str = "nexmark",
       out_topic: str = "out", external=None) -> JobGraph:
    """Currency conversion: bid prices from USD to EUR (D=2)."""
    builder = JobGraphBuilder("nexmark-q1")
    src = _source(builder, log, in_topic, parallelism)
    converted = src.process(
        "convert",
        lambda: FlatMapOperator(
            lambda e: [
                Bid(e.auction, e.bidder, round(e.price * DOLLAR_TO_EURO, 2), e.event_time)
            ]
            if _is_bid(e)
            else []
        ),
    )
    converted.sink("sink", lambda: KafkaSink(log, out_topic))
    return builder.build()


def q2(log: DurableLog, parallelism: int = 2, in_topic: str = "nexmark",
       out_topic: str = "out", external=None) -> JobGraph:
    """Selection: bids on a fixed set of auctions (D=2)."""
    builder = JobGraphBuilder("nexmark-q2")
    src = _source(builder, log, in_topic, parallelism)
    selected = src.process(
        "filter",
        lambda: FlatMapOperator(
            lambda e: [(e.auction, e.price)]
            if _is_bid(e) and e.auction % 123 in (0, 1, 2)
            else []
        ),
    )
    selected.sink("sink", lambda: KafkaSink(log, out_topic))
    return builder.build()


def q3(log: DurableLog, parallelism: int = 2, in_topic: str = "nexmark",
       out_topic: str = "out", external=None) -> JobGraph:
    """Local item suggestion: full-history join of sellers in OR/ID/CA with
    their category-10-adjacent auctions (D=3). The paper's single-failure
    latency experiment (Figure 6a/6e) runs this query."""
    builder = JobGraphBuilder("nexmark-q3")
    src = _source(builder, log, in_topic, parallelism)
    persons = src.process(
        "persons",
        lambda: FlatMapOperator(
            lambda e: [e] if _is_person(e) and e.state in ("OR", "ID", "CA") else []
        ),
    ).key_by(lambda p: p.person_id)
    auctions = src.process(
        "auctions",
        lambda: FlatMapOperator(
            lambda e: [e] if _is_auction(e) and e.category < 4 else []
        ),
    ).key_by(lambda a: a.seller)
    joined = builder.connect(
        persons,
        auctions,
        "join",
        lambda: FullHistoryJoinOperator(
            lambda person, auction: (person.name, person.city, person.state, auction.auction_id)
        ),
    )
    joined.sink("sink", lambda: KafkaSink(log, out_topic))
    return builder.build()


def q4(log: DurableLog, parallelism: int = 2, in_topic: str = "nexmark",
       out_topic: str = "out", external=None) -> JobGraph:
    """Average closing price per category (D=4): window-join auctions with
    their bids, take the winning (max) bid, average per category."""
    builder = JobGraphBuilder("nexmark-q4")
    src = _source(builder, log, in_topic, parallelism)
    auctions = src.process(
        "auctions", lambda: FlatMapOperator(lambda e: [e] if _is_auction(e) else [])
    ).key_by(lambda a: a.auction_id)
    bids = src.process(
        "bids", lambda: FlatMapOperator(lambda e: [e] if _is_bid(e) else [])
    ).key_by(lambda b: b.auction)
    winning = builder.connect(
        auctions,
        bids,
        "winning",
        lambda: WindowJoinOperator(
            WINDOW,
            lambda auction, bid: (auction.category, max(bid.price, auction.initial_bid)),
        ),
    )
    averaged = winning.key_by(lambda pair: pair[0]).process(
        "avg",
        lambda: EventTimeWindowOperator(
            WINDOW,
            AvgAggregator(lambda pair: pair[1]),
            result_fn=lambda key, window, value: (key, round(value, 2)),
        ),
    )
    averaged.sink("sink", lambda: KafkaSink(log, out_topic))
    return builder.build()


def _hot_items_tree(builder: JobGraphBuilder, bids: DataStream, slide: bool) -> DataStream:
    """The skew-resistant aggregation tree shared by Q5 and Q7 (adds depth:
    partial aggregates per hash bucket, then a global winner)."""
    window_kwargs = {"slide": SLIDE} if slide else {}
    counted = bids.key_by(lambda b: b.auction).process(
        "count",
        lambda: EventTimeWindowOperator(
            WINDOW,
            CountAggregator(),
            result_fn=lambda key, window, count: (window.start, key, count),
            **window_kwargs,
        ),
    )
    # The max stages bucket per emitted count-window (keyed by its start),
    # so short tumbling windows suffice and results flow every SLIDE step.
    partial = counted.key_by(lambda t: (t[0], t[1] % 8)).process(
        "partial-max",
        lambda: EventTimeWindowOperator(
            SLIDE,
            MaxAggregator(lambda t: t[2]),
            result_fn=lambda key, window, best: best,
        ),
    )
    return partial.key_by(lambda t: t[0]).process(
        "global-max",
        lambda: EventTimeWindowOperator(
            SLIDE,
            MaxAggregator(lambda t: t[2]),
            result_fn=lambda key, window, best: best,
        ),
    )


def q5(log: DurableLog, parallelism: int = 2, in_topic: str = "nexmark",
       out_topic: str = "out", external=None) -> JobGraph:
    """Hot items: the auction with the most bids per sliding window, via an
    aggregation tree for skewed keys (D=6)."""
    builder = JobGraphBuilder("nexmark-q5")
    src = _source(builder, log, in_topic, parallelism)
    bids = src.process(
        "bids", lambda: FlatMapOperator(lambda e: [e] if _is_bid(e) else [])
    )
    hottest = _hot_items_tree(builder, bids, slide=True)
    enriched = hottest.process(
        "format", lambda: MapOperator(lambda t: {"window": t[0], "auction": t[1], "bids": t[2]})
    )
    enriched.sink("sink", lambda: KafkaSink(log, out_topic))
    return builder.build()


def q6(log: DurableLog, parallelism: int = 2, in_topic: str = "nexmark",
       out_topic: str = "out", external=None) -> JobGraph:
    """Average selling price by seller over recent closed auctions (D=4)."""
    builder = JobGraphBuilder("nexmark-q6")
    src = _source(builder, log, in_topic, parallelism)
    auctions = src.process(
        "auctions", lambda: FlatMapOperator(lambda e: [e] if _is_auction(e) else [])
    ).key_by(lambda a: a.auction_id)
    bids = src.process(
        "bids", lambda: FlatMapOperator(lambda e: [e] if _is_bid(e) else [])
    ).key_by(lambda b: b.auction)
    sold = builder.connect(
        auctions,
        bids,
        "closing",
        lambda: WindowJoinOperator(
            WINDOW,
            lambda auction, bid: (auction.seller, bid.price),
            emit_once_per_key=True,
        ),
    )
    per_seller = sold.key_by(lambda t: t[0]).process(
        "seller-avg",
        lambda: EventTimeWindowOperator(
            2 * WINDOW,
            AvgAggregator(lambda t: t[1]),
            result_fn=lambda key, window, value: (key, round(value, 2)),
        ),
    )
    per_seller.sink("sink", lambda: KafkaSink(log, out_topic))
    return builder.build()


def q7(log: DurableLog, parallelism: int = 2, in_topic: str = "nexmark",
       out_topic: str = "out", external=None) -> JobGraph:
    """Highest bid per period, computed with a local/global max tree (D=6)."""
    builder = JobGraphBuilder("nexmark-q7")
    src = _source(builder, log, in_topic, parallelism)
    bids = src.process(
        "bids", lambda: FlatMapOperator(lambda e: [e] if _is_bid(e) else [])
    )
    local = bids.key_by(lambda b: b.auction % 16).process(
        "local-max",
        lambda: EventTimeWindowOperator(
            WINDOW,
            MaxAggregator(lambda b: b.price),
            result_fn=lambda key, window, bid: (window.start, bid),
        ),
    )
    merged = local.key_by(lambda t: t[0]).process(
        "global-max",
        lambda: EventTimeWindowOperator(
            WINDOW,
            MaxAggregator(lambda t: t[1].price),
            result_fn=lambda key, window, t: t[1],
        ),
    )
    shaped = merged.process(
        "format",
        lambda: MapOperator(lambda bid: (bid.auction, bid.bidder, bid.price)),
    )
    deduped = shaped.key_by(lambda t: t[0]).process(
        "route", lambda: MapOperator(lambda t: t)
    )
    deduped.sink("sink", lambda: KafkaSink(log, out_topic))
    return builder.build()


def q8(log: DurableLog, parallelism: int = 2, in_topic: str = "nexmark",
       out_topic: str = "out", external=None) -> JobGraph:
    """Monitor new users: tumbling-window join of fresh persons with fresh
    auctions by seller (D=3).  The paper's Figure 6b/6f experiment."""
    builder = JobGraphBuilder("nexmark-q8")
    src = _source(builder, log, in_topic, parallelism)
    persons = src.process(
        "persons", lambda: FlatMapOperator(lambda e: [e] if _is_person(e) else [])
    ).key_by(lambda p: p.person_id)
    sellers = src.process(
        "auctions", lambda: FlatMapOperator(lambda e: [e] if _is_auction(e) else [])
    ).key_by(lambda a: a.seller)
    joined = builder.connect(
        persons,
        sellers,
        "join",
        lambda: WindowJoinOperator(
            WINDOW,
            lambda person, auction: (person.person_id, person.name, auction.auction_id),
            emit_once_per_key=False,
        ),
    )
    joined.sink("sink", lambda: KafkaSink(log, out_topic))
    return builder.build()


def q9(log: DurableLog, parallelism: int = 2, in_topic: str = "nexmark",
       out_topic: str = "out", external=None) -> JobGraph:
    """Winning bids (Beam extra): per auction, the highest bid in the
    auction's window (D=4)."""
    builder = JobGraphBuilder("nexmark-q9")
    src = _source(builder, log, in_topic, parallelism)
    auctions = src.process(
        "auctions", lambda: FlatMapOperator(lambda e: [e] if _is_auction(e) else [])
    ).key_by(lambda a: a.auction_id)
    bids = src.process(
        "bids", lambda: FlatMapOperator(lambda e: [e] if _is_bid(e) else [])
    ).key_by(lambda b: b.auction)
    paired = builder.connect(
        auctions,
        bids,
        "match",
        lambda: WindowJoinOperator(WINDOW, lambda auction, bid: (auction.auction_id, bid)),
    )
    winners = paired.key_by(lambda t: t[0]).process(
        "winner",
        lambda: EventTimeWindowOperator(
            WINDOW,
            MaxAggregator(lambda t: t[1].price),
            result_fn=lambda key, window, t: (key, t[1].bidder, t[1].price),
        ),
    )
    winners.sink("sink", lambda: KafkaSink(log, out_topic))
    return builder.build()


def q11(log: DurableLog, parallelism: int = 2, in_topic: str = "nexmark",
        out_topic: str = "out", external=None) -> JobGraph:
    """User sessions (Beam extra): bids per bidder per session window (D=3)."""
    builder = JobGraphBuilder("nexmark-q11")
    src = _source(builder, log, in_topic, parallelism)
    bids = src.process(
        "bids", lambda: FlatMapOperator(lambda e: [e] if _is_bid(e) else [])
    )
    sessions = bids.key_by(lambda b: b.bidder).process(
        "sessions",
        lambda: SessionWindowOperator(
            SESSION_GAP,
            CountAggregator(),
            result_fn=lambda key, window, count: (key, count, window.start),
        ),
    )
    sessions.sink("sink", lambda: KafkaSink(log, out_topic))
    return builder.build()


def q12(log: DurableLog, parallelism: int = 2, in_topic: str = "nexmark",
        out_topic: str = "out", external=None) -> JobGraph:
    """Processing-time windows (Beam extra): bids per bidder per wall-clock
    window — NONDETERMINISTIC (Section 4.1): both the window assignment and
    the trigger instants come from the local clock (D=3)."""
    builder = JobGraphBuilder("nexmark-q12")
    src = _source(builder, log, in_topic, parallelism)
    bids = src.process(
        "bids", lambda: FlatMapOperator(lambda e: [e] if _is_bid(e) else [])
    )
    counted = bids.key_by(lambda b: b.bidder).process(
        "pt-count",
        lambda: ProcessingTimeWindowOperator(
            WINDOW,
            CountAggregator(),
            result_fn=lambda key, window, count: (key, count),
        ),
    )
    counted.sink("sink", lambda: KafkaSink(log, out_topic))
    return builder.build()


def q13(log: DurableLog, parallelism: int = 2, in_topic: str = "nexmark",
        out_topic: str = "out", external=None) -> JobGraph:
    """Bounded side-input join (Beam extra): enrich each bid by querying an
    external service — NONDETERMINISTIC (the answer drifts; Section 4.1,
    UDFs & external calls) (D=3)."""
    if external is None:
        raise JobError("q13 needs the external side-input service")
    builder = JobGraphBuilder("nexmark-q13")
    src = _source(builder, log, in_topic, parallelism)

    def enrich(record, ctx):
        event = record.value
        if not _is_bid(event):
            return
        # The causal HTTP service makes this replayable under Clonos; the
        # runtime drains pending output, so we use the synchronous variant
        # via the custom-service hook.
        rate = ctx.services.custom(
            "side-input", lambda key: external.get_now(key), f"cat/{event.auction % 10}"
        )
        ctx.collect((event.auction, event.bidder, round(event.price * rate / 100.0, 3)))

    enriched = src.key_by(lambda e: getattr(e, "auction", 0)).process(
        "enrich", lambda: ProcessOperator(enrich)
    )
    enriched.sink("sink", lambda: KafkaSink(log, out_topic))
    return builder.build()


def q14(log: DurableLog, parallelism: int = 2, in_topic: str = "nexmark",
        out_topic: str = "out", external=None) -> JobGraph:
    """Calculation with user-defined nondeterministic logic (Beam extra):
    the `bounded load` UDF samples the RNG service (Listing 2 style) (D=3)."""
    builder = JobGraphBuilder("nexmark-q14")
    src = _source(builder, log, in_topic, parallelism)

    def calculate(record, ctx):
        event = record.value
        if not _is_bid(event):
            return
        charge = ctx.services.random() * 0.1  # nondeterministic surcharge
        bucket = "hot" if event.price > 500 else "warm"
        ctx.collect((event.auction, bucket, round(event.price * (1 + charge), 3)))

    shaped = src.key_by(lambda e: getattr(e, "auction", 0)).process(
        "calc", lambda: ProcessOperator(calculate)
    )
    shaped.sink("sink", lambda: KafkaSink(log, out_topic))
    return builder.build()


#: All queries, keyed as the paper's Figure 5 x-axis (Q10 excluded).
QUERIES: Dict[str, Callable[..., JobGraph]] = {
    "Q1": q1,
    "Q2": q2,
    "Q3": q3,
    "Q4": q4,
    "Q5": q5,
    "Q6": q6,
    "Q7": q7,
    "Q8": q8,
    "Q9": q9,
    "Q11": q11,
    "Q12": q12,
    "Q13": q13,
    "Q14": q14,
}

#: Queries whose computations are nondeterministic (Table 1's stress cases).
NONDETERMINISTIC_QUERIES = ("Q12", "Q13", "Q14")
