"""Keyed state backends and checkpoint snapshots."""

from repro.state.backend import (
    HashMapStateBackend,
    ListState,
    ListStateDescriptor,
    MapState,
    MapStateDescriptor,
    ReducingState,
    ReducingStateDescriptor,
    ValueState,
    ValueStateDescriptor,
)
from repro.state.snapshot import SnapshotStore, TaskSnapshot

__all__ = [
    "HashMapStateBackend",
    "ListState",
    "ListStateDescriptor",
    "MapState",
    "MapStateDescriptor",
    "ReducingState",
    "ReducingStateDescriptor",
    "SnapshotStore",
    "TaskSnapshot",
    "ValueState",
    "ValueStateDescriptor",
]
