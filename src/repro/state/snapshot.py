"""Task snapshots and the checkpoint store.

A :class:`TaskSnapshot` bundles everything a task needs to resume: keyed
state, operator state, network (writer) state, pending timers, and watermark
progress.  The :class:`SnapshotStore` persists snapshots on the simulated
distributed file system, charging write/read time proportional to size, and
supports the incremental mode of Section 6.4.

Every snapshot carries a content fingerprint computed at construction
(``repro.integrity``); the store verifies it — and the DFS blob's own
integrity metadata — on every load, and retains the last N completed
checkpoints so recovery can fall back to an older epoch when the newest
artifact is corrupt, garbage-collecting everything older from the DFS.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import CheckpointError, IntegrityError
from repro.external.dfs import DistributedFileSystem
from repro.integrity.fingerprint import fingerprint
from repro.integrity.monitor import IntegrityMonitor
from repro.net.serialization import payload_size


class TaskSnapshot:
    """Immutable state image of one task at one checkpoint."""

    def __init__(
        self,
        task_name: str,
        checkpoint_id: int,
        keyed_state: Dict[str, Dict[Any, Any]],
        operator_state: Any,
        network_state: Dict[str, Any],
        timer_state: Dict[str, Any],
        watermark_state: Dict[str, Any],
        extra: Optional[Dict[str, Any]] = None,
    ):
        self.task_name = task_name
        self.checkpoint_id = checkpoint_id
        self.keyed_state = keyed_state
        self.operator_state = operator_state
        self.network_state = network_state
        self.timer_state = timer_state
        self.watermark_state = watermark_state
        self.extra = extra or {}
        self.size_bytes = max(
            1024,
            payload_size(keyed_state)
            + payload_size(operator_state)
            + payload_size(network_state),
        )
        #: Content fingerprint sealed at construction.  API-mediated use
        #: never changes the payload (snapshots are immutable), so any later
        #: mismatch means out-of-band mutation — exactly what the chaos
        #: corruption faults simulate.
        self.crc = self.content_crc()

    def content_crc(self) -> int:
        """Recompute the fingerprint of the payload as it is *now*."""
        return fingerprint(
            (
                self.task_name,
                self.checkpoint_id,
                self.keyed_state,
                self.operator_state,
                self.network_state,
                self.timer_state,
                self.watermark_state,
                self.extra,
            )
        )

    def verify(self, artifact: str = "checkpoint") -> None:
        """Raise :class:`IntegrityError` if the payload no longer matches
        the fingerprint sealed at construction."""
        actual = self.content_crc()
        if actual != self.crc:
            raise IntegrityError(
                artifact,
                f"{self.task_name}@{self.checkpoint_id}",
                expected=self.crc,
                actual=actual,
            )

    @property
    def intact(self) -> bool:
        return self.content_crc() == self.crc

    def __repr__(self) -> str:
        return (
            f"TaskSnapshot({self.task_name!r}, chk={self.checkpoint_id}, "
            f"{self.size_bytes}B)"
        )


class SnapshotStore:
    """Durable checkpoint storage on the simulated DFS.

    ``retain`` bounds how many *completed* checkpoints survive subsumption
    GC (:meth:`retire`); older snapshots are dropped from memory and their
    blobs deleted from the DFS.  When a ``monitor`` with validation enabled
    is attached, every :meth:`load` verifies both the DFS blob metadata and
    the snapshot payload fingerprint.
    """

    def __init__(
        self,
        dfs: DistributedFileSystem,
        incremental: bool = False,
        retain: Optional[int] = None,
        monitor: Optional[IntegrityMonitor] = None,
    ):
        self.dfs = dfs
        self.incremental = incremental
        self.retain = retain
        self.monitor = monitor
        self._snapshots: Dict[Tuple[str, int], TaskSnapshot] = {}

    @staticmethod
    def blob_path(task_name: str, checkpoint_id: int) -> str:
        return f"chk/{task_name}/{checkpoint_id}"

    @property
    def _validating(self) -> bool:
        return self.monitor is not None and self.monitor.validate

    def save(self, snapshot: TaskSnapshot, delta_bytes: Optional[int] = None):
        """Generator: persist a snapshot, charging DFS write time.

        With incremental mode on, only ``delta_bytes`` are written (the
        caller computes the state delta), but the full image is retained.
        """
        cost_bytes = snapshot.size_bytes
        if self.incremental and delta_bytes is not None:
            cost_bytes = min(cost_bytes, delta_bytes)
        yield from self.dfs.write(
            self.blob_path(snapshot.task_name, snapshot.checkpoint_id),
            cost_bytes,
            crc=snapshot.crc,
        )
        self._snapshots[(snapshot.task_name, snapshot.checkpoint_id)] = snapshot

    def load(self, task_name: str, checkpoint_id: int):
        """Generator: read a snapshot back, charging DFS read time.

        Returns the snapshot (via generator return value).  With validation
        on, a torn blob, a blob whose content drifted from its declared
        fingerprint, or a payload failing its own fingerprint check raises
        :class:`IntegrityError` instead of silently restoring wrong state.
        """
        snapshot = self._snapshots.get((task_name, checkpoint_id))
        if snapshot is None:
            raise CheckpointError(
                f"no snapshot for task {task_name!r} at checkpoint {checkpoint_id}"
            )
        validating = self._validating
        path = self.blob_path(task_name, checkpoint_id)
        try:
            yield from self.dfs.read(path, snapshot.size_bytes, validate=validating)
            if validating:
                snapshot.verify()
        except IntegrityError as exc:
            if self.monitor is not None:
                self.monitor.record_failure(exc.artifact, exc.name, str(exc))
            raise
        if validating:
            self.monitor.record_ok("checkpoint")
        return snapshot

    def get(self, task_name: str, checkpoint_id: int) -> Optional[TaskSnapshot]:
        """Metadata peek without charging I/O time."""
        return self._snapshots.get((task_name, checkpoint_id))

    def peek_valid(self, task_name: str, checkpoint_id: int) -> bool:
        """Metadata-only validity probe (no I/O time): does this snapshot
        exist and would a validating load succeed?  Used by the global
        fallback to pick the newest epoch that passes validation before
        committing every task to restoring it."""
        snapshot = self._snapshots.get((task_name, checkpoint_id))
        if snapshot is None:
            return False
        record = self.dfs.blob_record(self.blob_path(task_name, checkpoint_id))
        if record is None or not record.intact:
            return False
        return snapshot.intact

    def latest_id(self, task_name: str) -> Optional[int]:
        ids = [cid for (name, cid) in self._snapshots if name == task_name]
        return max(ids) if ids else None

    def retained_ids(self, task_name: str) -> List[int]:
        return sorted(cid for (name, cid) in self._snapshots if name == task_name)

    def discard_older_than(self, checkpoint_id: int) -> int:
        """Drop snapshots of earlier checkpoints (memory *and* DFS blob);
        returns how many."""
        stale = [key for key in self._snapshots if key[1] < checkpoint_id]
        for key in stale:
            del self._snapshots[key]
            self.dfs.delete(self.blob_path(*key))
        return len(stale)

    def discard_newer_than(self, checkpoint_id: int) -> int:
        """Drop snapshots of *later* checkpoints (memory and DFS blob).

        Used when the global fallback commits to an older epoch: everything
        newer belongs to the abandoned timeline, and a later local recovery
        restoring from it would mix epochs across the job."""
        stale = [key for key in self._snapshots if key[1] > checkpoint_id]
        for key in stale:
            del self._snapshots[key]
            self.dfs.delete(self.blob_path(*key))
        return len(stale)

    def retire(self, completed_ids: Iterable[int]) -> int:
        """Subsumption GC after a checkpoint completes.

        Keeps the newest ``retain`` completed checkpoints (all of them when
        ``retain`` is None) plus anything newer than the last completed one
        (an upload in progress); everything else is dropped from memory and
        deleted from the DFS.  Returns how many snapshots were collected.
        """
        completed = sorted(completed_ids)
        if not completed:
            return 0
        keep = set(completed if self.retain is None else completed[-self.retain:])
        newest = completed[-1]
        stale = [
            key for key in self._snapshots if key[1] not in keep and key[1] <= newest
        ]
        for key in stale:
            del self._snapshots[key]
            self.dfs.delete(self.blob_path(*key))
        return len(stale)
