"""Task snapshots and the checkpoint store.

A :class:`TaskSnapshot` bundles everything a task needs to resume: keyed
state, operator state, network (writer) state, pending timers, and watermark
progress.  The :class:`SnapshotStore` persists snapshots on the simulated
distributed file system, charging write/read time proportional to size, and
supports the incremental mode of Section 6.4.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.errors import CheckpointError
from repro.external.dfs import DistributedFileSystem
from repro.net.serialization import payload_size


class TaskSnapshot:
    """Immutable state image of one task at one checkpoint."""

    def __init__(
        self,
        task_name: str,
        checkpoint_id: int,
        keyed_state: Dict[str, Dict[Any, Any]],
        operator_state: Any,
        network_state: Dict[str, Any],
        timer_state: Dict[str, Any],
        watermark_state: Dict[str, Any],
        extra: Optional[Dict[str, Any]] = None,
    ):
        self.task_name = task_name
        self.checkpoint_id = checkpoint_id
        self.keyed_state = keyed_state
        self.operator_state = operator_state
        self.network_state = network_state
        self.timer_state = timer_state
        self.watermark_state = watermark_state
        self.extra = extra or {}
        self.size_bytes = max(
            1024,
            payload_size(keyed_state)
            + payload_size(operator_state)
            + payload_size(network_state),
        )

    def __repr__(self) -> str:
        return (
            f"TaskSnapshot({self.task_name!r}, chk={self.checkpoint_id}, "
            f"{self.size_bytes}B)"
        )


class SnapshotStore:
    """Durable checkpoint storage on the simulated DFS."""

    def __init__(self, dfs: DistributedFileSystem, incremental: bool = False):
        self.dfs = dfs
        self.incremental = incremental
        self._snapshots: Dict[Tuple[str, int], TaskSnapshot] = {}

    def save(self, snapshot: TaskSnapshot, delta_bytes: Optional[int] = None):
        """Generator: persist a snapshot, charging DFS write time.

        With incremental mode on, only ``delta_bytes`` are written (the
        caller computes the state delta), but the full image is retained.
        """
        cost_bytes = snapshot.size_bytes
        if self.incremental and delta_bytes is not None:
            cost_bytes = min(cost_bytes, delta_bytes)
        yield from self.dfs.write(
            f"chk/{snapshot.task_name}/{snapshot.checkpoint_id}", cost_bytes
        )
        self._snapshots[(snapshot.task_name, snapshot.checkpoint_id)] = snapshot

    def load(self, task_name: str, checkpoint_id: int):
        """Generator: read a snapshot back, charging DFS read time.

        Returns the snapshot (via generator return value).
        """
        snapshot = self._snapshots.get((task_name, checkpoint_id))
        if snapshot is None:
            raise CheckpointError(
                f"no snapshot for task {task_name!r} at checkpoint {checkpoint_id}"
            )
        yield from self.dfs.read(
            f"chk/{task_name}/{checkpoint_id}", snapshot.size_bytes
        )
        return snapshot

    def get(self, task_name: str, checkpoint_id: int) -> Optional[TaskSnapshot]:
        """Metadata peek without charging I/O time."""
        return self._snapshots.get((task_name, checkpoint_id))

    def latest_id(self, task_name: str) -> Optional[int]:
        ids = [cid for (name, cid) in self._snapshots if name == task_name]
        return max(ids) if ids else None

    def discard_older_than(self, checkpoint_id: int) -> int:
        """Drop snapshots of earlier checkpoints; returns how many."""
        stale = [key for key in self._snapshots if key[1] < checkpoint_id]
        for key in stale:
            del self._snapshots[key]
        return len(stale)
