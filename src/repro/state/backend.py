"""Keyed state: descriptors, primitives, and the hash-map backend.

State is scoped by ``(state name, current key)`` exactly as in Flink's keyed
streams.  The backend tracks an approximate serialized size so checkpoint
and state-transfer costs scale with state volume (Sections 6.4, 7.4).
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import StateError
from repro.net.serialization import payload_size


class StateDescriptor:
    """Identifies one named piece of keyed state."""

    kind = "value"

    def __init__(self, name: str, default: Any = None):
        self.name = name
        self.default = default

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class ValueStateDescriptor(StateDescriptor):
    kind = "value"


class ListStateDescriptor(StateDescriptor):
    kind = "list"


class MapStateDescriptor(StateDescriptor):
    kind = "map"


class ReducingStateDescriptor(StateDescriptor):
    kind = "reducing"

    def __init__(self, name: str, reduce_fn: Callable[[Any, Any], Any], default: Any = None):
        super().__init__(name, default)
        self.reduce_fn = reduce_fn


class _KeyedView:
    """Base for per-key state handles; bound to the backend's current key."""

    def __init__(self, backend: "HashMapStateBackend", descriptor: StateDescriptor):
        self._backend = backend
        self._descriptor = descriptor

    @property
    def _table(self) -> Dict[Any, Any]:
        return self._backend._tables[self._descriptor.name]

    @property
    def _key(self) -> Any:
        key = self._backend.current_key
        if key is _NO_KEY:
            raise StateError(
                f"keyed state {self._descriptor.name!r} accessed without a key context"
            )
        return key


_NO_KEY = object()


class ValueState(_KeyedView):
    def value(self) -> Any:
        table = self._table
        if self._key in table:
            return table[self._key]
        return copy.copy(self._descriptor.default)

    def update(self, value: Any) -> None:
        self._table[self._key] = value

    def clear(self) -> None:
        self._table.pop(self._key, None)


class ListState(_KeyedView):
    def get(self) -> List[Any]:
        return self._table.get(self._key, [])

    def add(self, value: Any) -> None:
        self._table.setdefault(self._key, []).append(value)

    def update(self, values: Iterable[Any]) -> None:
        self._table[self._key] = list(values)

    def clear(self) -> None:
        self._table.pop(self._key, None)


class MapState(_KeyedView):
    def get(self, map_key: Any, default: Any = None) -> Any:
        return self._table.get(self._key, {}).get(map_key, default)

    def put(self, map_key: Any, value: Any) -> None:
        self._table.setdefault(self._key, {})[map_key] = value

    def remove(self, map_key: Any) -> None:
        self._table.get(self._key, {}).pop(map_key, None)

    def contains(self, map_key: Any) -> bool:
        return map_key in self._table.get(self._key, {})

    def items(self) -> List[Tuple[Any, Any]]:
        return list(self._table.get(self._key, {}).items())

    def is_empty(self) -> bool:
        return not self._table.get(self._key)

    def clear(self) -> None:
        self._table.pop(self._key, None)


class ReducingState(_KeyedView):
    def get(self) -> Any:
        return self._table.get(self._key, self._descriptor.default)

    def add(self, value: Any) -> None:
        table = self._table
        if self._key in table:
            table[self._key] = self._descriptor.reduce_fn(table[self._key], value)
        else:
            table[self._key] = value

    def clear(self) -> None:
        self._table.pop(self._key, None)


_VIEW_TYPES = {
    "value": ValueState,
    "list": ListState,
    "map": MapState,
    "reducing": ReducingState,
}


class HashMapStateBackend:
    """In-memory keyed state backend with snapshot/restore.

    Snapshots are deep copies; the previous snapshot's size is remembered so
    incremental checkpoints can charge only the delta (Section 6.4).
    """

    def __init__(self):
        self._tables: Dict[str, Dict[Any, Any]] = {}
        self._descriptors: Dict[str, StateDescriptor] = {}
        self.current_key: Any = _NO_KEY
        self._last_snapshot_size = 0

    def get_state(self, descriptor: StateDescriptor) -> _KeyedView:
        existing = self._descriptors.get(descriptor.name)
        if existing is not None and existing.kind != descriptor.kind:
            raise StateError(
                f"state {descriptor.name!r} registered twice with different kinds"
            )
        if existing is None:
            self._descriptors[descriptor.name] = descriptor
            # Keep any restored table contents for this name.
            self._tables.setdefault(descriptor.name, {})
        return _VIEW_TYPES[descriptor.kind](self, descriptor)

    def set_current_key(self, key: Any) -> None:
        self.current_key = key

    def clear_current_key(self) -> None:
        self.current_key = _NO_KEY

    def keys(self, state_name: str) -> List[Any]:
        return list(self._tables.get(state_name, {}).keys())

    # -- snapshots ------------------------------------------------------------

    def size_bytes(self) -> int:
        """Approximate serialized size of all keyed state."""
        return sum(
            payload_size(key) + payload_size(value)
            for table in self._tables.values()
            for key, value in table.items()
        )

    def snapshot(self) -> Dict[str, Dict[Any, Any]]:
        snap = copy.deepcopy(self._tables)
        self._last_snapshot_size = self.size_bytes()
        return snap

    def restore(self, snapshot: Dict[str, Dict[Any, Any]]) -> None:
        # Descriptors are re-registered by the operator on first access
        # (their kinds are code, not state).
        self._tables = copy.deepcopy(snapshot)

    def incremental_delta_bytes(self) -> int:
        """Rough size of changes since the previous snapshot (never
        negative; deletions still cost metadata)."""
        return max(4096, abs(self.size_bytes() - self._last_snapshot_size))
