"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly."""


class NetworkError(ReproError):
    """A network-layer invariant was violated (e.g. non-FIFO delivery)."""


class StateError(ReproError):
    """State backend misuse (unknown descriptor, missing key context)."""


class CheckpointError(ReproError):
    """Checkpoint could not be taken, acknowledged, or restored."""

class JobError(ReproError):
    """Invalid job graph or job-level runtime failure."""


class RecoveryError(ReproError):
    """The recovery protocol could not complete."""


class RecoveryStallError(JobError):
    """Recovery (or the post-recovery drain) stopped making progress,
    structured for tooling.

    Raised by the recovery-liveness watchdog
    (:class:`repro.recovery.watchdog.RecoveryWatchdog`) when escalation
    cannot unwedge the job, and by ``JobManager.run_until_done`` when its
    deadline expires — so a hung run surfaces *where* it was stuck instead
    of a bare timeout.  Carries the stuck protocol phase, the last sim-time
    any progress was observed, and every task's replay position at the
    moment of the stall.  Subclasses :class:`JobError` so existing
    deadline-handling callers keep working unchanged.
    """

    def __init__(
        self,
        where: str,
        phase: str,
        last_progress_at: float,
        replay_positions: dict,
        detail: str = None,
        incident: int = None,
    ):
        message = (
            f"recovery stalled at {where!r} in phase {phase!r} "
            f"(no progress since t={last_progress_at:g}s"
        )
        if incident is not None:
            message += f", incident #{incident}"
        message += ")"
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.where = where
        self.phase = phase
        self.last_progress_at = last_progress_at
        self.replay_positions = replay_positions
        self.detail = detail
        self.incident = incident


class ChaosError(ReproError):
    """A fault plan is invalid or targets something that does not exist."""


class ScenarioError(ChaosError):
    """A declarative scenario (``repro.scenarios``) is malformed.

    Raised at *load* time — ``Scenario.from_dict`` / ``Scenario.validate``
    — for unknown fault kinds, negative phase offsets, missing verdict
    specs, unknown keys, and inconsistent workload shaping, so a bad
    scenario file fails loudly before anything runs.  Subclasses
    :class:`ChaosError`: scenario loaders and plan validators share one
    catchable family.
    """


class PoisonPillError(ReproError):
    """A poisoned record reached its operator (chaos ``poison_pill``).

    Raised by the task's record path *before* the operator sees the record
    (no state mutation, no output), so every incarnation that encounters
    the pill crashes identically until the
    :class:`~repro.chaos.poison.PoisonRegistry` quarantines it.
    """

    def __init__(self, task_name: str, origin):
        super().__init__(f"{task_name}: poisoned record {origin!r}")
        self.task_name = task_name
        self.origin = origin


class FailureInjectionError(JobError):
    """A fault could not be injected, structured for tooling.

    Carries the victim and its *actual* status so chaos schedules can tell
    "victim already finished" apart from "victim never came back".
    """

    def __init__(self, victim: str, status, waited: float = None):
        status_name = getattr(status, "value", status)
        message = f"cannot kill {victim}: status is {status_name}"
        if waited is not None:
            message += f" after deferring {waited:g}s"
        super().__init__(message)
        self.victim = victim
        self.status = status
        self.waited = waited


class OrphanStateError(RecoveryError):
    """A surviving task depends on a nondeterministic event whose determinant
    was lost with the failed tasks; local recovery is impossible and the job
    must fall back to a global rollback (Figure 4, bottom-left leaf)."""


class DeterminantLogError(RecoveryError):
    """The determinant log is malformed or diverges from re-execution."""


class IntegrityError(RecoveryError):
    """A recovery artifact failed content validation, structured for tooling.

    Raised when a checkpoint blob, standby state image, spilled in-flight
    segment, or determinant log is readable but *wrong* — its recomputed
    content fingerprint no longer matches the fingerprint recorded when the
    artifact was produced.  Subclasses :class:`RecoveryError` so the
    escalation ladder treats "readable but corrupt" like any other failed
    recovery step (retry, fall back, degrade) instead of crashing the job.
    """

    def __init__(
        self,
        artifact: str,
        name: str,
        expected=None,
        actual=None,
        detail: str = None,
    ):
        message = f"integrity violation in {artifact} {name!r}"
        if detail:
            message += f": {detail}"
        if expected is not None or actual is not None:
            message += f" (expected crc={expected!r}, got crc={actual!r})"
        super().__init__(message)
        self.artifact = artifact
        self.name = name
        self.expected = expected
        self.actual = actual
        self.detail = detail


class ExternalSystemError(ReproError):
    """Simulated external system (Kafka/DFS/HTTP) rejected an operation."""


class LintError(ReproError):
    """A determinism-analysis failure, structured for tooling.

    Carries the violated rule, the source location, and the remediation hint
    so submission-path callers (``JobManager.submit``, the CLI) can render
    actionable diagnostics instead of ad-hoc messages.
    """

    def __init__(
        self,
        message: str,
        rule_id: str = None,
        location: str = None,
        hint: str = None,
    ):
        parts = [message]
        if rule_id:
            parts.insert(0, f"[{rule_id}]")
        if location:
            parts.append(f"at {location}")
        if hint:
            parts.append(f"(fix: {hint})")
        super().__init__(" ".join(parts))
        self.rule_id = rule_id
        self.location = location
        self.hint = hint


class DeterminismViolation(LintError):
    """A job is not causally loggable: an un-intercepted source of
    nondeterminism would produce no determinant, so causal recovery could not
    replay it (the Table 1 assumption violation).

    Raised by ``JobManager.submit(lint="strict")`` for static findings and
    available to the runtime sanitizer for protocol-invariant breaches.
    """

    @classmethod
    def from_findings(cls, findings) -> "DeterminismViolation":
        """Build from NDLint findings; the first one shapes the message."""
        first = findings[0]
        extra = f" (+{len(findings) - 1} more)" if len(findings) > 1 else ""
        exc = cls(
            f"graph is not causally loggable: {first.message}{extra}",
            rule_id=first.rule.rule_id,
            location=first.location,
            hint=first.rule.remediation,
        )
        exc.findings = list(findings)
        return exc
