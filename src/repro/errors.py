"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly."""


class NetworkError(ReproError):
    """A network-layer invariant was violated (e.g. non-FIFO delivery)."""


class StateError(ReproError):
    """State backend misuse (unknown descriptor, missing key context)."""


class CheckpointError(ReproError):
    """Checkpoint could not be taken, acknowledged, or restored."""

class JobError(ReproError):
    """Invalid job graph or job-level runtime failure."""


class RecoveryError(ReproError):
    """The recovery protocol could not complete."""


class OrphanStateError(RecoveryError):
    """A surviving task depends on a nondeterministic event whose determinant
    was lost with the failed tasks; local recovery is impossible and the job
    must fall back to a global rollback (Figure 4, bottom-left leaf)."""


class DeterminantLogError(RecoveryError):
    """The determinant log is malformed or diverges from re-execution."""


class ExternalSystemError(ReproError):
    """Simulated external system (Kafka/DFS/HTTP) rejected an operation."""
