"""Performance benchmarking for the simulator itself (``repro bench``).

Two halves, both consumed by CI's perf job:

* :mod:`repro.bench.golden` — the determinism gate.  A fixed seeded
  workload whose kernel schedule hash, sink output, and trace export are
  pinned byte-for-byte; any optimisation that changes them is a correctness
  regression, not a speedup.
* :mod:`repro.bench.perf` — the speed trajectory.  Named suites mirroring
  the paper's figure workloads, timed end-to-end and reported as
  simulated-records per wall-second (``BENCH_perf.json``).
"""

from repro.bench.golden import EXPECTED, GoldenDigests, check_goldens, run_golden
from repro.bench.perf import (
    BASELINE,
    SUITES,
    SuiteResult,
    perf_payload,
    run_suite,
)

__all__ = [
    "EXPECTED",
    "GoldenDigests",
    "check_goldens",
    "run_golden",
    "BASELINE",
    "SUITES",
    "SuiteResult",
    "perf_payload",
    "run_suite",
]
