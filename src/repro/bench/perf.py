"""Named perf suites: the paper's figure workloads, timed end-to-end.

Each suite runs a figure workload at fixed parameters and reports its wall
clock plus *simulated-records per wall-second* — total source records the
suite's runs ingest (a fixed property of the workload parameters) divided
by measured wall time.  Because the simulated work is frozen by the
determinism gate (:mod:`repro.bench.golden`), records/s is a pure measure
of simulator speed, comparable across commits.

``BASELINE`` pins the pre-optimisation measurements this PR started from so
``BENCH_perf.json`` always carries its own before/after comparison; CI
uploads the file as an artifact to build the speed trajectory over time.
"""

from __future__ import annotations

import platform
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional

from repro.harness.figures import (
    fig5_overhead,
    fig6_multi_failures,
    fig6_single_failure,
)


@dataclass(frozen=True)
class SuiteSpec:
    """One named benchmark suite."""

    name: str
    description: str
    #: Total source records ingested across all of the suite's runs —
    #: derived from the workload parameters, not measured.
    simulated_records: int
    runner: Callable[[], None]


@dataclass(frozen=True)
class SuiteResult:
    name: str
    wall_clock_s: float
    simulated_records: int

    @property
    def records_per_wall_second(self) -> float:
        return self.simulated_records / self.wall_clock_s if self.wall_clock_s else 0.0


def _run_fig5() -> None:
    # 4 queries x 3 modes (flink, DSD=1, DSD=Full) x 6000 events x 2 parts.
    fig5_overhead(queries=("Q1", "Q2", "Q3", "Q8"), events_per_partition=6000)


def _run_fig6_single() -> None:
    # 2 modes x 36000 events x 2 partitions, one mid-run kill each.
    fig6_single_failure(
        events_per_partition=36000, rate=6000.0, kill_at=4.0, checkpoint_interval=2.0
    )


def _run_fig6_multi() -> None:
    # 2 modes x 14000 events x 5 partitions, three staggered kills each —
    # the causal-log stress test (depth-5 chain under full DSD).
    fig6_multi_failures(concurrent=False, rate=700.0, first_kill_at=6.0)


SUITES: Dict[str, SuiteSpec] = {
    "fig5": SuiteSpec(
        name="fig5",
        description="overhead under normal operation (Q1,Q2,Q3,Q8 x 3 modes)",
        simulated_records=4 * 3 * 6000 * 2,
        runner=_run_fig5,
    ),
    "fig6-single": SuiteSpec(
        name="fig6-single",
        description="single failure, Q3, clonos vs flink",
        simulated_records=2 * 36000 * 2,
        runner=_run_fig6_single,
    ),
    "fig6-multi": SuiteSpec(
        name="fig6-multi",
        description="three staggered failures on the depth-5 synthetic chain",
        simulated_records=2 * 14000 * 5,
        runner=_run_fig6_multi,
    ),
}

#: Wall clocks of the same suites measured on the pre-optimisation tree
#: (commit 9c811c1), same host class as CI.  Kept so every BENCH_perf.json
#: is self-describing about where the trajectory started.
BASELINE: Mapping[str, float] = {
    "fig5": 4.02,
    "fig6-single": 16.75,
    "fig6-multi": 130.75,
}


def run_suite(name: str) -> SuiteResult:
    """Run one suite to completion and time it."""
    spec = SUITES[name]
    started = time.perf_counter()
    spec.runner()
    elapsed = time.perf_counter() - started
    return SuiteResult(
        name=name,
        wall_clock_s=elapsed,
        simulated_records=spec.simulated_records,
    )


def perf_payload(
    results: List[SuiteResult], golden_failures: Optional[List[str]] = None
) -> Dict[str, object]:
    """The ``BENCH_perf.json`` payload for a set of suite results."""
    suites: Dict[str, Dict[str, object]] = {}
    total = 0.0
    baseline_total = 0.0
    for result in results:
        baseline = BASELINE.get(result.name)
        entry: Dict[str, object] = {
            "description": SUITES[result.name].description,
            "wall_clock_s": round(result.wall_clock_s, 3),
            "simulated_records": result.simulated_records,
            "records_per_wall_second": round(result.records_per_wall_second, 1),
        }
        if baseline is not None:
            entry["baseline_wall_clock_s"] = baseline
            entry["speedup_vs_baseline"] = round(baseline / result.wall_clock_s, 2)
            baseline_total += baseline
        suites[result.name] = entry
        total += result.wall_clock_s
    payload: Dict[str, object] = {
        "bench": "perf",
        "python": platform.python_version(),
        "suites": suites,
        "total_wall_clock_s": round(total, 3),
    }
    if baseline_total:
        payload["baseline_total_wall_clock_s"] = round(baseline_total, 3)
        payload["speedup_vs_baseline"] = round(baseline_total / total, 2) if total else 0.0
    if golden_failures is not None:
        payload["golden_ok"] = not golden_failures
        payload["golden_failures"] = list(golden_failures)
    return payload
