"""Golden-digest determinism gate.

The perf work's hard constraint: optimisations may change how *fast* the
simulator runs, never *what* it computes.  This module pins one seeded
fig6-style failure workload — small enough to run in about a second, rich
enough to exercise sources, stateful operators, checkpoints, a kill, causal
deltas, and recovery — and records four digests per fault-tolerance mode:

* ``schedule_hash`` — the sanitizer's rolling hash over every popped kernel
  event ``(when, priority, type, name)``: the full event schedule.
* ``kernel_steps`` — total events popped across all environments.
* ``sink_sha256`` — SHA-256 over the reprs of the job's sink output values.
* ``trace_sha256`` — SHA-256 of the deterministic JSONL trace export.

``check_goldens`` re-runs the workload and compares byte-for-byte.  If an
optimisation changes any digest it reordered, added, or dropped events —
that is a semantics change and CI fails.  The expected values were recorded
on the pre-optimisation tree and survived the entire perf overhaul
unchanged.
"""

from __future__ import annotations

import hashlib
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.sanitizer import combined_digest, traced_environments
from repro.config import FaultToleranceMode, JobConfig
from repro.external.http import ExternalService
from repro.external.kafka import DurableLog
from repro.graph.logical import JobGraph
from repro.harness.experiment import run_experiment
from repro.harness.figures import experiment_config
from repro.trace.export import write_jsonl
from repro.workloads.synthetic import synthetic_chain


@dataclass(frozen=True)
class GoldenDigests:
    """The four byte-for-byte pins of one golden run."""

    schedule_hash: str
    kernel_steps: int
    sink_sha256: str
    trace_sha256: str


#: Recorded on the pre-optimisation tree; every later perf change must
#: reproduce them exactly.
EXPECTED: Dict[str, GoldenDigests] = {
    "clonos": GoldenDigests(
        schedule_hash="9e6337ed7f076b32",
        kernel_steps=16242,
        sink_sha256=(
            "27c90a993c1382918db0c6cab0c6c36af89240c240794a7b62e65ea4e9210a8e"
        ),
        trace_sha256=(
            "f41d57ee3e154a4dbba735a7fc621dc9407efc7cd4fb73201d9ea67c295fafb8"
        ),
    ),
    "flink": GoldenDigests(
        schedule_hash="5bcf8c2cf022b74f",
        kernel_steps=12195,
        sink_sha256=(
            "c991604fa261aa1d1b0d9135cd1ed958bf193d84a9f79ee5bfb4e8440f0c3eef"
        ),
        trace_sha256=(
            "3caa4a51dcbaeec1ffcf8280abc030cf8fe9748d3d650d20b64881deaeb8cd39"
        ),
    ),
}

_MODES: Dict[str, FaultToleranceMode] = {
    "clonos": FaultToleranceMode.CLONOS,
    "flink": FaultToleranceMode.GLOBAL_ROLLBACK,
}


def _golden_config(mode: FaultToleranceMode) -> JobConfig:
    # Tight detection/deploy constants keep the kill-and-recover cycle well
    # inside the short run.
    return experiment_config(
        mode,
        None,
        checkpoint_interval=0.5,
        connection_failure_detection=0.05,
        standby_activation_time=0.05,
        task_deploy_time=0.5,
        heartbeat_interval=0.2,
        heartbeat_timeout=0.3,
    )


def _golden_graph(log: DurableLog, external: Optional[ExternalService]) -> JobGraph:
    return synthetic_chain(
        log,
        depth=3,
        parallelism=2,
        rate_per_partition=2000.0,
        total_per_partition=1500,
        state_bytes_per_task=8192,
        num_keys=16,
        nondeterministic=True,
        out_topic="out",
    )


def run_golden(label: str) -> GoldenDigests:
    """Run the golden workload for one mode and return its digests."""
    config = _golden_config(_MODES[label])
    with traced_environments(keep_trace=False) as tracers:
        result = run_experiment(
            _golden_graph, config, kills=[(0.4, "stage1[0]")], limit=3600.0
        )
    sink = hashlib.sha256(
        "\n".join(repr(v) for v in result.output_values()).encode()
    ).hexdigest()
    with tempfile.TemporaryDirectory() as tmp:
        path = write_jsonl(Path(tmp) / "golden.jsonl", result.jm.trace)
        trace = hashlib.sha256(path.read_bytes()).hexdigest()
    return GoldenDigests(
        schedule_hash=combined_digest(tracers),
        kernel_steps=sum(t.steps for t in tracers),
        sink_sha256=sink,
        trace_sha256=trace,
    )


def check_goldens() -> List[str]:
    """Run every golden mode; return human-readable mismatch descriptions
    (empty list = all digests byte-identical)."""
    failures: List[str] = []
    for label, expected in EXPECTED.items():
        actual = run_golden(label)
        if actual == expected:
            continue
        for field_name in (
            "schedule_hash",
            "kernel_steps",
            "sink_sha256",
            "trace_sha256",
        ):
            want = getattr(expected, field_name)
            got = getattr(actual, field_name)
            if want != got:
                failures.append(
                    f"{label}: {field_name} drifted: expected {want}, got {got}"
                )
    return failures
