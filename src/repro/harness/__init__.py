"""Experiment harness: runners and per-figure reproductions."""

from repro.harness.experiment import (
    ExperimentResult,
    SourceProgressSampler,
    run_experiment,
)
from repro.harness.figures import (
    ConsistencyCell,
    FailureRunResult,
    LatencyOverheadRow,
    OverheadRow,
    SpillRow,
    default_cost,
    experiment_config,
    fig5_overhead,
    fig6_multi_failures,
    fig6_single_failure,
    latency_overhead,
    memory_spill_study,
    nexmark_graph_fn,
    table1_assumptions,
)
from repro.harness.reporters import render_series, render_table

__all__ = [
    "ConsistencyCell",
    "ExperimentResult",
    "FailureRunResult",
    "LatencyOverheadRow",
    "OverheadRow",
    "SourceProgressSampler",
    "SpillRow",
    "default_cost",
    "experiment_config",
    "fig5_overhead",
    "fig6_multi_failures",
    "fig6_single_failure",
    "latency_overhead",
    "memory_spill_study",
    "nexmark_graph_fn",
    "render_series",
    "render_table",
    "run_experiment",
    "table1_assumptions",
]
