"""Per-figure experiment runners: one function per table/figure of Section 7.

Each runner returns plain data (dicts/lists) that the benchmark suite prints
in the same shape the paper reports, and asserts the qualitative claims on
(who wins, by roughly what factor).  See EXPERIMENTS.md for the index.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import CostModel, FaultToleranceMode, JobConfig, SpillPolicy
from repro.harness.experiment import ExperimentResult, run_experiment
from repro.metrics.collectors import percentile
from repro.nexmark.generator import NexmarkGenerator
from repro.nexmark.queries import QUERIES
from repro.workloads.synthetic import synthetic_chain


def default_cost(**overrides) -> CostModel:
    """The experiment cost model: paper-like detection constants, scaled
    compute/network costs."""
    defaults = dict(
        heartbeat_interval=4.0,
        heartbeat_timeout=6.0,
        connection_failure_detection=0.25,
        task_deploy_time=8.0,
        task_cancel_time=1.0,
        standby_activation_time=0.3,
        buffer_size_bytes=4096,
        flush_interval=20e-3,
    )
    defaults.update(overrides)
    return CostModel(**defaults)


def experiment_config(mode: FaultToleranceMode, dsd: Optional[int] = None,
                      checkpoint_interval: float = 5.0, **cost_overrides) -> JobConfig:
    config = JobConfig(
        mode=mode,
        checkpoint_interval=checkpoint_interval,
        cost=default_cost(**cost_overrides),
    )
    config.clonos.determinant_sharing_depth = dsd
    return config


# ---------------------------------------------------------------------------
# Figure 5 + Section 7.3: overhead under normal operation
# ---------------------------------------------------------------------------


@dataclass
class OverheadRow:
    query: str
    flink_rate: float
    clonos_dsd1_rate: float
    clonos_full_rate: float

    @property
    def rel_dsd1(self) -> float:
        return self.clonos_dsd1_rate / self.flink_rate if self.flink_rate else 0.0

    @property
    def rel_full(self) -> float:
        return self.clonos_full_rate / self.flink_rate if self.flink_rate else 0.0


def nexmark_graph_fn(query: str, parallelism: int, events_per_partition: int,
                     rate: float, seed: int = 11):
    def build(log, external):
        generator = NexmarkGenerator(seed=seed, rate_per_partition=rate)
        generator.install_topic(log, "nexmark", parallelism, events_per_partition)
        log.create_topic("out", parallelism)
        return QUERIES[query](log, parallelism=parallelism, external=external)

    return build


def fig5_overhead(
    queries: Sequence[str] = tuple(sorted(QUERIES)),
    parallelism: int = 2,
    events_per_partition: int = 6000,
    rate: float = 100000.0,
    checkpoint_interval: float = 1.0,
) -> List[OverheadRow]:
    """Relative throughput of Clonos (DSD=1, DSD=Full) vs vanilla Flink under
    normal operation, Nexmark queries (Figure 5).

    Sources are saturated (``rate`` far above capacity), so the sustained
    ingest rate measures the engine's capacity under each scheme.
    """
    rows = []
    for query in queries:
        rates = {}
        for label, mode, dsd in (
            ("flink", FaultToleranceMode.GLOBAL_ROLLBACK, None),
            ("dsd1", FaultToleranceMode.CLONOS, 1),
            ("full", FaultToleranceMode.CLONOS, None),
        ):
            config = experiment_config(mode, dsd, checkpoint_interval)
            result = run_experiment(
                nexmark_graph_fn(query, parallelism, events_per_partition, rate),
                config,
                with_external=(query == "Q13"),
                limit=3600,
            )
            rates[label] = events_per_partition * parallelism / result.duration
        rows.append(OverheadRow(query, rates["flink"], rates["dsd1"], rates["full"]))
    return rows


@dataclass
class LatencyOverheadRow:
    query: str
    flink_p50: float
    flink_p99: float
    dsd1_p50: float
    dsd1_p99: float
    full_p50: float
    full_p99: float


def latency_overhead(
    query: str = "Q1",
    parallelism: int = 2,
    events_per_partition: int = 6000,
    rate: float = 2000.0,
) -> LatencyOverheadRow:
    """Section 7.3's latency claim: DSD=1 within ~10%, DSD=Full tail up to
    ~20% over Flink.  Run *unsaturated* so latency reflects overhead, not
    queueing."""
    stats = {}
    for label, mode, dsd in (
        ("flink", FaultToleranceMode.GLOBAL_ROLLBACK, None),
        ("dsd1", FaultToleranceMode.CLONOS, 1),
        ("full", FaultToleranceMode.CLONOS, None),
    ):
        config = experiment_config(mode, dsd, checkpoint_interval=1.0)
        result = run_experiment(
            nexmark_graph_fn(query, parallelism, events_per_partition, rate),
            config,
            with_external=(query == "Q13"),
            limit=3600,
        )
        lats = [p.latency for p in result.latencies]
        stats[label] = (percentile(lats, 50), percentile(lats, 99))
    return LatencyOverheadRow(
        query,
        *stats["flink"], *stats["dsd1"], *stats["full"],
    )


# ---------------------------------------------------------------------------
# Figure 6: failure experiments
# ---------------------------------------------------------------------------


@dataclass
class FailureRunResult:
    label: str
    result: ExperimentResult
    failure_time: float

    @property
    def recovery_time(self) -> Optional[float]:
        return self.result.recovery_time_after(0)

    def latency_series(self) -> List[Tuple[float, float]]:
        return [(p.time, p.latency) for p in self.result.latencies]

    def throughput_series(self) -> List[Tuple[float, float]]:
        return [(s.time, s.records_per_second) for s in self.result.output_throughput]


def fig6_single_failure(
    query: str = "Q3",
    victim: str = "join[0]",
    parallelism: int = 2,
    events_per_partition: int = 24000,
    rate: float = 2000.0,
    kill_at: float = 6.0,
    checkpoint_interval: float = 2.0,
) -> Dict[str, FailureRunResult]:
    """Figures 6a/6e (Q3) and 6b/6f (Q8): one failed task, Clonos vs Flink."""
    out = {}
    for label, mode, dsd in (
        ("clonos", FaultToleranceMode.CLONOS, None),
        ("flink", FaultToleranceMode.GLOBAL_ROLLBACK, None),
    ):
        config = experiment_config(mode, dsd, checkpoint_interval)
        result = run_experiment(
            nexmark_graph_fn(query, parallelism, events_per_partition, rate),
            config,
            kills=[(kill_at, victim)],
            limit=3600,
        )
        out[label] = FailureRunResult(label, result, kill_at)
    return out


def fig6_multi_failures(
    concurrent: bool = False,
    depth: int = 5,
    parallelism: int = 5,
    rate: float = 400.0,
    events_per_partition: int = 14000,
    checkpoint_interval: float = 5.0,
    first_kill_at: float = 8.0,
    interval: float = 5.0,
    state_bytes: int = 100 * 1024,
) -> Dict[str, FailureRunResult]:
    """Figures 6c/6g (three staggered failures) and 6d/6h (three concurrent
    failures) on the synthetic chain; failed operators have connected
    dataflows (stage1 -> stage2 -> stage3, subtask 0 of each)."""
    victims = [f"stage{i}[0]" for i in (1, 2, 3)]
    gap = 0.0 if concurrent else interval
    kills = [(first_kill_at + i * gap, v) for i, v in enumerate(victims)]

    def graph_fn(log, external):
        return synthetic_chain(
            log,
            depth=depth,
            parallelism=parallelism,
            rate_per_partition=rate,
            total_per_partition=events_per_partition,
            state_bytes_per_task=state_bytes,
            out_topic="out",
        )

    out = {}
    for label, mode in (
        ("clonos", FaultToleranceMode.CLONOS),
        ("flink", FaultToleranceMode.GLOBAL_ROLLBACK),
    ):
        config = experiment_config(mode, None, checkpoint_interval)
        result = run_experiment(graph_fn, config, kills=kills, limit=3600)
        out[label] = FailureRunResult(label, result, kills[0][0])
    return out


# ---------------------------------------------------------------------------
# Section 7.5: memory usage / spill policies
# ---------------------------------------------------------------------------


@dataclass
class SpillRow:
    policy: str
    pool_kbytes: int
    duration: float
    rate: float
    peak_memory_buffers: int
    spilled_buffers: int


def memory_spill_study(
    policies: Sequence[SpillPolicy] = tuple(SpillPolicy),
    pool_bytes_options: Sequence[int] = (16 * 1024, 80 * 1024, 1024 * 1024),
    parallelism: int = 2,
    depth: int = 3,
    rate: float = 10000.0,
    duration: float = 15.0,
    checkpoint_interval: float = 0.5,
) -> List[SpillRow]:
    """Throughput and memory across spill policies and in-flight pool sizes
    (Section 7.5's 50 MB / 80 MB findings, scaled ~1000x).

    Runs for a fixed duration and measures sustained ingest: a policy that
    blocks on an exhausted pool (in-memory with a too-small pool) shows up
    as collapsed throughput rather than a wedged experiment — the
    "deteriorating performance" of the paper.
    """
    rows = []
    for policy in policies:
        for pool_bytes in pool_bytes_options:
            config = experiment_config(
                FaultToleranceMode.CLONOS, None, checkpoint_interval
            )
            config.clonos.spill_policy = policy
            config.clonos.inflight_pool_bytes = pool_bytes

            def graph_fn(log, external):
                return synthetic_chain(
                    log,
                    depth=depth,
                    parallelism=parallelism,
                    rate_per_partition=rate,
                    total_per_partition=None,  # unbounded: run for `duration`
                    out_topic="out",
                )

            result = run_experiment(graph_fn, config, duration=duration, limit=3600)
            peak = 0
            spilled = 0
            for vertex in result.jm.vertices.values():
                task = vertex.task
                if task is not None and task.inflight is not None:
                    peak = max(peak, task.inflight.pool.peak_in_use)
                    spilled += task.inflight.buffers_spilled
            rows.append(
                SpillRow(
                    policy.value,
                    pool_bytes // 1024,
                    result.duration,
                    result.sustained_input_rate(warmup=1.0),
                    peak,
                    spilled,
                )
            )
    return rows


@dataclass
class DeterminantPoolRow:
    dsd_label: str
    depth: int
    peak_determinant_bytes: int


def determinant_pool_study(
    depths: Sequence[int] = (3, 5),
    parallelism: int = 2,
    rate: float = 8000.0,
    duration: float = 5.0,
    checkpoint_interval: float = 1.0,
) -> List[DeterminantPoolRow]:
    """Section 7.5's second finding: the determinant buffer pool is small at
    DSD=1, but must grow with graph depth when DSD=Full (more upstream logs
    are replicated at each hop)."""
    rows = []
    for depth in depths:
        for label, dsd in (("dsd1", 1), ("full", None)):
            config = experiment_config(
                FaultToleranceMode.CLONOS, dsd, checkpoint_interval
            )

            def graph_fn(log, external, depth=depth):
                return synthetic_chain(
                    log,
                    depth=depth,
                    parallelism=parallelism,
                    rate_per_partition=rate,
                    total_per_partition=None,
                    out_topic="out",
                )

            result = run_experiment(graph_fn, config, duration=duration, limit=3600)
            peak = 0
            for vertex in result.jm.vertices.values():
                task = vertex.task
                if task is not None and task.causal is not None:
                    task.causal.note_peak()
                    peak = max(peak, task.causal.peak_bytes_held)
            rows.append(DeterminantPoolRow(label, depth, peak))
    return rows


# ---------------------------------------------------------------------------
# Table 1 operationalised: consistency vs determinism assumptions
# ---------------------------------------------------------------------------


@dataclass
class ConsistencyCell:
    mode: str
    deterministic: bool
    lost: int
    duplicated: int
    inconsistent: int

    @property
    def exactly_once(self) -> bool:
        return self.lost == 0 and self.duplicated == 0 and self.inconsistent == 0


def _consistency_of(values: list, n_inputs: int) -> Tuple[int, int, int]:
    """(lost, duplicated, inconsistent) for NondetFanout-shaped outputs
    (input_id, copy_index, copies)."""
    by_input: Dict[int, List[Tuple[int, int]]] = {}
    for input_id, copy_index, copies in values:
        by_input.setdefault(input_id, []).append((copy_index, copies))
    lost = sum(1 for i in range(n_inputs) if i not in by_input)
    duplicated = 0
    inconsistent = 0
    for entries in by_input.values():
        copies = entries[0][1]
        indexes = sorted(e[0] for e in entries)
        if len(indexes) > len(set(indexes)):
            duplicated += 1
        elif indexes != list(range(copies)) or any(e[1] != copies for e in entries):
            inconsistent += 1
    return lost, duplicated, inconsistent


def table1_assumptions(
    n_records: int = 4000,
    rate: float = 2000.0,
    kill_at: float = 0.8,
    checkpoint_interval: float = 0.4,
) -> List[ConsistencyCell]:
    """Every local-recovery scheme against deterministic *and*
    nondeterministic operators: only Clonos stays exactly-once in both."""
    from repro.external.kafka import DurableLog
    from repro.graph.logical import JobGraphBuilder
    from repro.operators import KafkaSink, KafkaSource, Operator

    class DetFanout(Operator):
        def process(self, record, ctx):
            copies = 1 + (record.value % 2)
            for copy_index in range(copies):
                ctx.collect((record.value, copy_index, copies))

    class NondetFanout(Operator):
        deterministic = False

        def process(self, record, ctx):
            copies = 1 + int(ctx.services.random() * 2)
            for copy_index in range(copies):
                ctx.collect((record.value, copy_index, copies))

    cells = []
    for mode in (
        FaultToleranceMode.CLONOS,
        FaultToleranceMode.SEEP,
        FaultToleranceMode.DIVERGENT,
        FaultToleranceMode.GAP_RECOVERY,
    ):
        for deterministic, factory in ((True, DetFanout), (False, NondetFanout)):

            def graph_fn(log, external, factory=factory):
                log.create_generated_topic(
                    "in", 1, lambda p, off: off, rate, n_records
                )
                log.create_topic("out", 1)
                builder = JobGraphBuilder("table1")
                stream = builder.source("src", lambda: KafkaSource(log, "in"))
                mid = stream.key_by(lambda v: v % 7).process("mid", factory)
                mid.key_by(lambda v: 0).sink("sink", lambda: KafkaSink(log, "out"))
                return builder.build()

            config = experiment_config(
                mode,
                None,
                checkpoint_interval,
                connection_failure_detection=0.05,
                standby_activation_time=0.05,
                task_deploy_time=0.5,
                heartbeat_interval=0.2,
                heartbeat_timeout=0.3,
            )
            result = run_experiment(
                graph_fn, config, kills=[(kill_at, "mid[0]")], limit=3600
            )
            lost, dup, inconsistent = _consistency_of(
                result.output_values(), n_records
            )
            cells.append(
                ConsistencyCell(mode.value, deterministic, lost, dup, inconsistent)
            )
    return cells
