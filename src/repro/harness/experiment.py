"""Experiment runner: one simulated job, measured the paper's way.

Wraps the whole lifecycle: build the world (broker, DFS, external service),
deploy a job graph under a given config, attach throughput/latency sampling,
inject failures at scheduled instants, run, and return an
:class:`ExperimentResult` with the metrics every figure of Section 7 needs.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.config import JobConfig
from repro.external.http import ExternalService
from repro.external.kafka import DurableLog
from repro.graph.logical import JobGraph
from repro.metrics.collectors import (
    LatencyPoint,
    ThroughputSample,
    latency_points,
    percentile,
    recovery_time,
    throughput_dip,
)
from repro.runtime.jobmanager import JobManager
from repro.sim.core import Environment
from repro.sim.rng import RandomStreams


@contextmanager
def _gc_paused() -> Iterator[None]:
    """Pause cyclic GC for the duration of a simulation run.

    The event loop allocates tens of millions of short-lived objects whose
    refcounts go to zero immediately; generational collection buys nothing
    there but costs ~30% of wall time re-scanning the survivors (the event
    heap, logs, and stores).  Nothing in the simulator relies on collection
    *timing* — resources are released explicitly, never via finalizers — so
    pausing is schedule-neutral.  The previous GC state is restored on exit
    and one collection sweeps whatever cyclic garbage (mostly abandoned
    generator frames) accumulated.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
            gc.collect()


class SourceProgressSampler:
    """Samples total records ingested by the sources: the saturation-side
    throughput measure used for the overhead experiments (the output rate of
    windowed queries is too bursty to compare)."""

    def __init__(self, env: Environment, jm: JobManager, period: float = 1.0 / 3.0):
        self.env = env
        self.jm = jm
        self.period = period
        self.samples: List[ThroughputSample] = []
        self._last = 0
        self._proc = env.process(self._run(), name="source-progress")

    def _total_offset(self) -> int:
        total = 0
        for vertex in self.jm.vertices.values():
            if vertex.is_source and vertex.task is not None:
                total += getattr(vertex.task.operator, "offset", 0)
        return total

    def _run(self):
        while True:
            yield self.env.timeout(self.period)
            total = self._total_offset()
            self.samples.append(
                ThroughputSample(self.env.now, (total - self._last) / self.period)
            )
            self._last = total

    def mean_rate(self, start: float = 0.0, end: float = float("inf")) -> float:
        rates = [s.records_per_second for s in self.samples if start <= s.time <= end]
        return sum(rates) / len(rates) if rates else 0.0

    def stop(self) -> None:
        if self._proc.is_alive:
            self._proc.kill()


@dataclass
class ExperimentResult:
    """Everything a figure needs from one run."""

    config: JobConfig
    jm: JobManager
    log: DurableLog
    out_topic: str
    duration: float
    output_throughput: List[ThroughputSample]
    input_throughput: List[ThroughputSample]
    failures: List[Tuple[float, str]]
    recovery_events: List[Tuple[float, str, str]]
    #: Placements that had to break a (anti-)affinity constraint — non-zero
    #: means some recovery lost its fault-isolation guarantee.
    affinity_violations: int = 0
    #: The armed chaos engine, when the run had a fault plan.
    chaos: Optional[object] = None

    @property
    def latencies(self) -> List[LatencyPoint]:
        return latency_points(self.log, self.out_topic)

    def sustained_input_rate(self, warmup: float = 2.0) -> float:
        rates = [
            s.records_per_second
            for s in self.input_throughput
            if s.time >= warmup
        ]
        return sum(rates) / len(rates) if rates else 0.0

    def mean_output_rate(self, start: float = 0.0, end: float = float("inf")) -> float:
        rates = [
            s.records_per_second
            for s in self.output_throughput
            if start <= s.time <= end
        ]
        return sum(rates) / len(rates) if rates else 0.0

    def latency_percentile(self, q: float, start: float = 0.0,
                           end: float = float("inf")) -> float:
        values = [p.latency for p in self.latencies if start <= p.time <= end]
        return percentile(values, q)

    def recovery_time_after(self, failure_index: int = 0, **kwargs) -> Optional[float]:
        when = self.failures[failure_index][0]
        return recovery_time(self.latencies, when, **kwargs)

    def throughput_dip_after(self, failure_index: int = 0) -> Tuple[float, float]:
        when = self.failures[failure_index][0]
        return throughput_dip(self.output_throughput, when)

    def output_values(self) -> list:
        return [entry.value for entry in self.log.read_all(self.out_topic)]


def run_experiment(
    graph_fn: Callable[[DurableLog, Optional[ExternalService]], JobGraph],
    config: JobConfig,
    duration: Optional[float] = None,
    kills: Sequence[Tuple[float, str]] = (),
    out_topic: str = "out",
    with_external: bool = False,
    limit: float = 3600.0,
    sample_period: float = 1.0 / 3.0,
    fault_plan=None,
) -> ExperimentResult:
    """Run one experiment to completion (finite input) or for ``duration``.

    ``graph_fn(log, external)`` builds the job graph, creating its input
    topics on ``log``.  ``fault_plan`` (a :class:`repro.chaos.FaultPlan`)
    arms a chaos engine against the deployed job before it runs.
    """
    env = Environment()
    log = DurableLog()
    external = (
        ExternalService(env, RandomStreams(config.seed)) if with_external else None
    )
    graph = graph_fn(log, external)
    jm = JobManager(env, graph, config, external=external)
    jm.deploy()
    engine = None
    if fault_plan is not None:
        from repro.chaos.engine import ChaosEngine

        engine = ChaosEngine(jm, fault_plan)
        engine.arm()

    from repro.metrics.collectors import ThroughputSampler

    out_sampler = ThroughputSampler(env, log, out_topic, period=sample_period)
    in_sampler = SourceProgressSampler(env, jm, period=sample_period)
    for when, victim in kills:
        env.schedule_callback(when, lambda name=victim: jm.kill_task(name))

    with _gc_paused():
        if duration is not None:
            deadline = env.now + duration
            queue = env._queue
            step = env.step
            crashed = jm.crashed
            finished = jm._job_finished
            while queue and queue[0][0] <= deadline:
                if crashed:
                    name, exc = crashed[0]
                    from repro.errors import RecoveryStallError

                    if isinstance(exc, RecoveryStallError):
                        raise exc
                    raise RuntimeError(f"task {name} crashed: {exc!r}") from exc
                if finished():
                    break
                step()
        else:
            jm.run_until_done(limit=limit)
    out_sampler.stop()
    in_sampler.stop()
    return ExperimentResult(
        config=config,
        jm=jm,
        log=log,
        out_topic=out_topic,
        duration=env.now,
        output_throughput=out_sampler.samples,
        input_throughput=in_sampler.samples,
        failures=list(jm.failures_injected),
        recovery_events=list(jm.recovery_events),
        affinity_violations=jm.cluster.affinity_violations,
        chaos=engine,
    )
