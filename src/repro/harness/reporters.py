"""Plain-text table/series rendering for the benchmark harness output."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def render_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """A minimal fixed-width table."""
    materialized = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in materialized)
    return "\n".join(out)


def render_series(
    title: str, series: Sequence[Tuple[float, float]], bins: int = 24, width: int = 50
) -> str:
    """An ASCII sketch of a time series (for throughput/latency plots)."""
    if not series:
        return f"{title}: (empty)"
    t0, t1 = series[0][0], series[-1][0]
    span = max(t1 - t0, 1e-9)
    buckets: List[List[float]] = [[] for _ in range(bins)]
    for t, v in series:
        index = min(bins - 1, int((t - t0) / span * bins))
        buckets[index].append(v)
    values = [sum(b) / len(b) if b else 0.0 for b in buckets]
    peak = max(values) or 1.0
    lines = [f"{title} (t={t0:.1f}..{t1:.1f}s, peak={peak:.1f})"]
    for index, value in enumerate(values):
        bar = "#" * int(value / peak * width)
        stamp = t0 + (index + 0.5) / bins * span
        lines.append(f"{stamp:7.1f}s |{bar:<{width}}| {value:10.1f}")
    return "\n".join(lines)
