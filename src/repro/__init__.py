"""repro: a reproduction of Clonos (SIGMOD 2021) on a simulated stream processor.

Public API surface::

    from repro import (
        JobGraphBuilder, JobConfig, FaultToleranceMode, JobManager, ...
    )

See README.md for the quickstart and DESIGN.md for the system inventory.
"""

from repro.config import (
    ClonosConfig,
    CostModel,
    FaultToleranceMode,
    Guarantee,
    IntegrityConfig,
    JobConfig,
    SpillPolicy,
)
from repro.graph.logical import DataStream, JobGraph, JobGraphBuilder
from repro.runtime.jobmanager import JobManager
from repro.sim.core import Environment

__version__ = "1.0.0"

__all__ = [
    "ClonosConfig",
    "CostModel",
    "DataStream",
    "Environment",
    "FaultToleranceMode",
    "Guarantee",
    "IntegrityConfig",
    "JobConfig",
    "JobGraph",
    "JobGraphBuilder",
    "JobManager",
    "SpillPolicy",
    "__version__",
]
