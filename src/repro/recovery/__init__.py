"""Recovery-liveness monitoring.

A hang is the one recovery failure the rest of the fault-tolerance stack
cannot announce: every other outcome (retry, fallback, degradation) leaves
an event trail, but a wedged replay just stops producing events and dies on
the harness deadline.  :class:`RecoveryWatchdog` turns that silent death
into a first-class, announced condition — ``degraded:recovery_stalled`` —
with a structured :class:`~repro.errors.RecoveryStallError` naming the
stuck phase and every task's replay position.
"""

from repro.recovery.watchdog import (
    RecoveryWatchdog,
    current_phase,
    replay_positions,
    stall_diagnostics,
)

__all__ = [
    "RecoveryWatchdog",
    "current_phase",
    "replay_positions",
    "stall_diagnostics",
]
