"""The recovery-liveness watchdog: stuck recovery is announced, never silent.

Two design constraints shape everything here:

* **Event passivity.**  The golden determinism digests
  (:mod:`repro.bench.golden`) hash *every* popped kernel event of a
  kill-and-recover run, so the watchdog must not schedule a single
  simulation event of its own while the job is healthy.  It therefore
  piggybacks its stall checks on the checkpoint coordinator's existing
  ticks — a loop that keeps firing every checkpoint interval for the whole
  life of the job, including during a wedge (stuck checkpoints abort on
  their timeout and the loop continues).  A watchdog-enabled healthy run is
  byte-identical to a watchdog-disabled one.

* **A wedge produces events without producing progress.**  A hung recovery
  still generates checkpoint-abort events every timeout window, so "the
  event log grew" is *not* progress.  The watchdog instead fingerprints the
  state that only moves when real work happens: task statuses, processed
  record counts, source offsets, replay determinant counters, per-channel
  delivered/sent sequence numbers, completed checkpoints, and the
  dead/recovering/finished sets.  (Counters that recur during a hang —
  aborted checkpoints, event-list length — are deliberately excluded.)

The response is staged.  A fingerprint frozen for a full stall window is
**announced** (``recovery-stalled:<phase>`` + ``degraded:recovery_stalled``
in the recovery events, mirroring the escalation ladder's degradation
markers) and escalated through the existing PR 3 ladder — the coordinator's
global-rollback fallback regenerates whatever the wedged replay was waiting
for.  If the job wedges again after ``escalation_limit`` announced
escalations, or the escalation itself makes no progress for the grace
window, the watchdog goes terminal: it parks a structured
:class:`~repro.errors.RecoveryStallError` on ``jm.crashed`` (and pulses the
done signal) so ``run_until_done`` raises it immediately instead of
grinding to the harness deadline.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import RecoveryStallError, ReproError


def replay_positions(jm) -> Dict[str, Dict[str, Any]]:
    """Diagnostics-grade per-task progress positions: status, processed
    records, source offset, replayed determinant counts, and the
    delivered/sent sequence number of every channel."""
    positions: Dict[str, Dict[str, Any]] = {}
    for name in sorted(jm.vertices):
        task = jm.vertices[name].task
        if task is None:
            positions[name] = {"status": "absent"}
            continue
        entry: Dict[str, Any] = {
            "status": task.status.value,
            "records_processed": task.records_processed,
            "replay_active": task.recovery.active,
            "replayed_control": task.recovery.replayed_control,
            "replayed_values": task.recovery.replayed_values,
        }
        offset = getattr(task.operator, "offset", None)
        if offset is not None:
            entry["source_offset"] = offset
        if task.gate is not None:
            entry["delivered_seqs"] = [
                channel.delivered_seq for channel in task.gate.channels
            ]
        out_seqs = [channel.seq for channel in task.all_output_channels]
        if out_seqs:
            entry["out_seqs"] = out_seqs
        positions[name] = entry
    return positions


def current_phase(jm) -> str:
    """Best-effort name of the protocol phase the job is currently in,
    derived from the recovery bookkeeping (no extra instrumentation)."""
    if jm.recovering_tasks:
        recovering = set(jm.recovering_tasks)
        for _when, kind, who in reversed(jm.recovery_events):
            if who in recovering and not kind.startswith("chaos:"):
                return kind
        return "recovering"
    if jm.dead_tasks:
        return "failed:awaiting-recovery"
    if not jm._job_finished():
        return "post-recovery-drain"
    return "finished"


def stall_diagnostics(
    jm,
    last_progress_at: Optional[float] = None,
    where: Optional[str] = None,
    detail: Optional[str] = None,
    incident: Optional[int] = None,
) -> RecoveryStallError:
    """Build the structured stall error from the job's current state.

    Works with the watchdog disabled too — ``run_until_done`` uses this on
    deadline expiry so even an unmonitored hang dies with a diagnostic.
    """
    if where is None:
        for pool in (jm.recovering_tasks, jm.dead_tasks):
            if pool:
                where = sorted(pool)[0]
                break
        else:
            where = "job"
    if last_progress_at is None:
        last_progress_at = jm.env.now
    if incident is None and jm.failures_injected:
        incident = len(jm.failures_injected) - 1
    return RecoveryStallError(
        where,
        current_phase(jm),
        last_progress_at,
        replay_positions(jm),
        detail=detail,
        incident=incident,
    )


class RecoveryWatchdog:
    """Sim-time recovery-liveness monitor for one :class:`JobManager`.

    Armed by the first detected failure (``incident_opened``), ticked by the
    checkpoint coordinator's loop (``on_tick``), disarmed when the job
    finishes.  See the module docstring for the staging.
    """

    def __init__(self, jm):
        self.jm = jm
        self.config = jm.config.watchdog
        self.enabled = self.config.enabled
        #: (opened_at, victim) per detected failure — the incident ledger.
        self.incidents: List[Tuple[float, str]] = []
        #: Stall windows that actually expired (the "detected >= 1" count).
        self.stalls_detected = 0
        #: Announced stage-1 escalations issued.
        self.escalations = 0
        self._armed = False
        self._last_fingerprint: Optional[tuple] = None
        self._last_progress_at = 0.0
        #: 0 = watching; 1 = stage-1 escalation issued, grace running.
        self._stage = 0

    # -- configuration -----------------------------------------------------------

    @property
    def stall_timeout(self) -> float:
        """The configured stall window, or the auto-derived one: longer than
        every quiet period healthy machinery produces (checkpoint cadence,
        checkpoint abort timeout, a recovery step timing out + its backoff)."""
        if self.config.stall_timeout is not None:
            return self.config.stall_timeout
        config = self.jm.config
        return max(
            3.0,
            8.0 * config.checkpoint_interval,
            1.2 * config.effective_checkpoint_timeout,
            2.0 * config.clonos.recovery_step_deadline + 1.0,
        )

    @property
    def last_progress_at(self) -> Optional[float]:
        return self._last_progress_at if self._armed else None

    # -- hooks (called by the JobManager; never schedule sim events) -----------------

    def incident_opened(self, victim: str) -> None:
        """A failure was detected: open an incident and arm the monitor."""
        if not self.enabled:
            return
        self.incidents.append((self.jm.env.now, victim))
        if not self._armed:
            self._armed = True
            self._last_fingerprint = None
            self._last_progress_at = self.jm.env.now
            self._stage = 0

    def on_tick(self) -> None:
        """Piggybacked stall check — pure observation unless a stall fires."""
        if not self.enabled or not self._armed:
            return
        jm = self.jm
        if jm._job_finished() or jm.crashed:
            self._armed = False
            return
        fingerprint = self._fingerprint()
        now = jm.env.now
        if fingerprint != self._last_fingerprint:
            self._last_fingerprint = fingerprint
            self._last_progress_at = now
            self._stage = 0
            return
        stalled_for = now - self._last_progress_at
        if self._stage == 0:
            if stalled_for >= self.stall_timeout:
                self.stalls_detected += 1
                if self.escalations >= self.config.escalation_limit:
                    # Escalation already ran its course and the job wedged
                    # again: a restart loop is a stall, not progress.
                    self._give_up("re-stalled after escalation")
                else:
                    self._declare_stall()
        elif stalled_for >= (1.0 + self.config.escalation_grace) * self.stall_timeout:
            self._give_up("escalation made no progress")

    # -- internals ---------------------------------------------------------------

    def _fingerprint(self) -> tuple:
        """Everything that moves iff the job makes real progress.  Aborted
        checkpoints and event-log length recur during a wedge and are
        deliberately excluded."""
        jm = self.jm
        parts: List[Any] = [
            jm.completed_checkpoint,
            len(jm.checkpoints_completed),
            tuple(sorted(jm.dead_tasks)),
            tuple(sorted(jm.recovering_tasks)),
            len(jm._finished_tasks),
        ]
        for name in sorted(jm.vertices):
            task = jm.vertices[name].task
            if task is None:
                parts.append((name,))
                continue
            gate_seqs = (
                tuple(ch.delivered_seq for ch in task.gate.channels)
                if task.gate is not None
                else ()
            )
            parts.append(
                (
                    name,
                    task.status.value,
                    task.records_processed,
                    task.recovery.replayed_control,
                    task.recovery.replayed_values,
                    getattr(task.operator, "offset", None),
                    gate_seqs,
                    tuple(ch.seq for ch in task.all_output_channels),
                )
            )
        return tuple(parts)

    def _victim(self) -> str:
        jm = self.jm
        for pool in (jm.recovering_tasks, jm.dead_tasks):
            if pool:
                return sorted(pool)[0]
        if self.incidents:
            return self.incidents[-1][1]
        return sorted(jm.vertices)[0]

    def _declare_stall(self) -> None:
        """Stage 1: announce the stall and push it through the escalation
        ladder — the global-rollback fallback regenerates whatever the
        wedged replay was waiting for."""
        jm = self.jm
        victim = self._victim()
        phase = current_phase(jm)
        self._stage = 1
        self.escalations += 1
        jm.recovery_events.append(
            (jm.env.now, f"recovery-stalled:{phase}", victim)
        )
        jm.recovery_events.append(
            (jm.env.now, "degraded:recovery_stalled", victim)
        )
        jm.trace.emit(
            jm.env.now,
            "recovery-stalled",
            victim,
            phase=phase,
            last_progress_at=self._last_progress_at,
            stall_timeout=self.stall_timeout,
        )
        coordinator = jm.coordinator
        if hasattr(coordinator, "degradations"):
            coordinator.degradations += 1
        fallback = getattr(coordinator, "_fallback", None)
        target = fallback if fallback is not None else coordinator
        try:
            target.on_failure_detected(victim)
        except ReproError:
            # A mode that cannot escalate (NONE) or a restart that is itself
            # wedged: the grace window expires into the terminal stage.
            pass

    def _give_up(self, why: str) -> None:
        """Stage 2: the job is unrecoverably wedged — surface the structured
        stall error through the crash path so the harness raises it now
        instead of at its deadline."""
        jm = self.jm
        victim = self._victim()
        error = stall_diagnostics(
            jm,
            last_progress_at=self._last_progress_at,
            where=victim,
            detail=(
                f"{why} (stall window {self.stall_timeout:g}s, "
                f"{self.escalations} escalation(s) issued)"
            ),
            incident=len(self.incidents) - 1 if self.incidents else None,
        )
        jm.recovery_events.append(
            (jm.env.now, "recovery-stall-fatal", victim)
        )
        jm.trace.emit(jm.env.now, "recovery-stall-fatal", victim, why=why)
        self._armed = False
        jm.crashed.append(("recovery-watchdog", error))
        jm.done_signal.pulse()
