"""Exhaustive failure-point exploration on small topologies.

The explorer makes the paper's failure-transparency claim falsifiable on
graphs small enough to enumerate completely:

1.  Run the topology once with **no** faults.  Harvest the baseline output
    and, from the trace, every task's per-epoch snapshot instant and every
    checkpoint-completion instant.
2.  Enumerate failure points: for each task and each of the first
    ``boundaries`` completed epochs, kill the task just **before** and just
    **after** its local snapshot (the two sides of the epoch cut are the
    classic silent-loss / silent-duplication hazards), plus — with
    ``compound=True`` — every unordered task pair killed in overlapping
    recovery (failure-during-ongoing-recovery).
3.  Re-run the topology once per failure point and verdict the sink output
    against the baseline's origin projection:

    * ``transparent`` — output observationally equivalent to the
      failure-free run (origin projection identical: exactly-once).
    * ``announced-degradation`` — duplicates, but the run *recorded* a
      degradation marker and lost nothing: the divergence is announced,
      which the transparency contract permits (at-least-once fallback).
    * ``violation:*`` — silent loss, silent duplication, foreign records,
      a recovery stall, or a hang.  Any of these fails the suite.

Every run is fully deterministic (sim time, seeded services), so a
violating case replays identically from its printed label.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.chaos.soak import DEGRADATION_MARKERS, fast_chaos_config
from repro.config import JobConfig
from repro.core.output import ExactlyOnceKafkaSink
from repro.errors import FailureInjectionError, JobError, RecoveryStallError
from repro.external.kafka import DurableLog
from repro.graph.logical import JobGraph, JobGraphBuilder
from repro.operators import KafkaSource
from repro.runtime.jobmanager import JobManager
from repro.sim.core import Environment
from repro.workloads.synthetic import synthetic_chain

#: Kill this close to either side of a snapshot instant.  Half the failure
#: detector's resolution: close enough that the barrier is in flight,
#: far enough that float jitter cannot flip pre/post.
EPSILON = 0.02

#: Second kill of a compound pair lands this long after the first — inside
#: the first victim's recovery window (detection alone costs ~0.02-0.5s).
PAIR_STAGGER = 0.08


@dataclass(frozen=True)
class Topology:
    """One small graph the explorer enumerates exhaustively."""

    name: str
    build: Callable[[DurableLog], JobGraph] = field(compare=False)
    parallelism: int = 1
    n_records: int = 600
    out_topic: str = "transparency-out"
    operators: int = 2  # logical operator count, for reporting

    def config(self, limit_interval: float = 0.25) -> JobConfig:
        # One fixed seed per topology: the baseline and every failure case
        # must share the failure-free prefix, or snapshot instants harvested
        # from the baseline would not line up with the case being killed.
        return fast_chaos_config(seed=11, checkpoint_interval=limit_interval)


def _pair_graph(
    log: DurableLog,
    parallelism: int,
    n_records: int,
    rate: float,
    out_topic: str,
) -> JobGraph:
    """The minimal 2-operator topology: src -> (keyed) -> exactly-once sink."""
    in_topic = "transparency-in"
    if (in_topic, 0) not in log._partitions:
        log.create_generated_topic(
            in_topic, parallelism, lambda p, off: (p, off), rate, n_records
        )
    if (out_topic, 0) not in log._partitions:
        log.create_topic(out_topic, parallelism)
    builder = JobGraphBuilder(f"pair-p{parallelism}")
    stream = builder.source(
        "src", lambda: KafkaSource(log, in_topic), parallelism=parallelism
    )
    stream.key_by(lambda v: v[1] % parallelism).sink(
        "sink", lambda: ExactlyOnceKafkaSink(log, out_topic)
    )
    return builder.build()


def _chain_graph(
    log: DurableLog,
    depth: int,
    parallelism: int,
    n_records: int,
    rate: float,
    out_topic: str,
) -> JobGraph:
    return synthetic_chain(
        log,
        depth=depth,
        parallelism=parallelism,
        rate_per_partition=rate,
        total_per_partition=n_records,
        state_bytes_per_task=4096,
        num_keys=8,
        nondeterministic=True,
        in_topic="transparency-in",
        out_topic=out_topic,
        exactly_once_sink=True,
    )


def default_topologies(rate: float = 1000.0) -> List[Topology]:
    """The 2-, 3- and 4-operator graphs the suite explores by default."""

    def pair(log, n=600, p=1):
        return _pair_graph(log, p, n, rate, "transparency-out")

    def chain(depth, p):
        def build(log, n=600):
            return _chain_graph(log, depth, p, n, rate, "transparency-out")

        return build

    return [
        Topology("pair-p1", pair, parallelism=1, operators=2),
        Topology("chain3-p1", chain(2, 1), parallelism=1, operators=3),
        Topology("chain4-p1", chain(3, 1), parallelism=1, operators=4),
        Topology("chain3-p2", chain(2, 2), parallelism=2, operators=3),
    ]


@dataclass(frozen=True)
class FailurePoint:
    """One enumerated case: named kill schedule against one topology."""

    label: str
    kills: Tuple[Tuple[float, str], ...]  # ((sim_time, task_name), ...)


@dataclass
class CaseResult:
    """One failure point's verdict."""

    point: FailurePoint
    outcome: str  # "transparent" | "announced-degradation" | "skipped:*" | "violation:*"
    missing: int = 0
    duplicated: int = 0
    extra: int = 0
    duration: float = 0.0
    announced: bool = False
    detail: str = ""

    @property
    def ok(self) -> bool:
        return not self.outcome.startswith("violation")


@dataclass
class Baseline:
    """Failure-free run artifacts: the equivalence reference."""

    projection: Counter
    duration: float
    #: (task, checkpoint_id) -> local snapshot instant
    snapshot_times: Dict[Tuple[str, int], float]
    #: checkpoint_id -> completion instant, ascending ids
    completed: Dict[int, float]
    tasks: Tuple[str, ...]


@dataclass
class TransparencyReport:
    """All verdicts for one topology."""

    topology: str
    operators: int
    tasks: int
    expected: int
    baseline_duration: float
    cases: List[CaseResult] = field(default_factory=list)

    @property
    def violations(self) -> List[CaseResult]:
        return [c for c in self.cases if not c.ok]

    @property
    def transparent(self) -> int:
        return sum(c.outcome == "transparent" for c in self.cases)

    @property
    def announced(self) -> int:
        return sum(c.outcome == "announced-degradation" for c in self.cases)

    @property
    def skipped(self) -> int:
        return sum(c.outcome.startswith("skipped") for c in self.cases)


def _deploy(topo: Topology) -> Tuple[Environment, DurableLog, JobManager]:
    env = Environment()
    log = DurableLog()
    graph = topo.build(log)
    jm = JobManager(env, graph, topo.config())
    jm.deploy()
    return env, log, jm


def _projection(log: DurableLog, out_topic: str) -> Counter:
    return Counter((e.value[0], e.value[1]) for e in log.read_all(out_topic))


def _expected(topo: Topology) -> set:
    return {
        (p, off)
        for p in range(topo.parallelism)
        for off in range(topo.n_records)
    }


def run_baseline(topo: Topology, limit: float = 60.0) -> Baseline:
    """The failure-free reference run; raises on non-exactly-once output
    (that would be a workload bug, not a transparency violation)."""
    env, log, jm = _deploy(topo)
    jm.run_until_done(limit=limit)
    projection = _projection(log, topo.out_topic)
    expected = _expected(topo)
    if set(projection) != expected or any(c != 1 for c in projection.values()):
        raise JobError(
            f"transparency baseline for {topo.name!r} is not exactly-once: "
            f"{len(expected)} expected, {sum(projection.values())} delivered"
        )
    snapshot_times: Dict[Tuple[str, int], float] = {}
    completed: Dict[int, float] = {}
    for event in jm.trace:
        if event.kind == "snapshot-taken":
            cid = event.arg("checkpoint_id")
            if cid is not None:
                snapshot_times.setdefault((event.subject, cid), event.time)
        elif event.kind == "checkpoint-complete":
            cid = event.arg("checkpoint_id")
            if cid is not None:
                completed.setdefault(cid, event.time)
    return Baseline(
        projection=projection,
        duration=env.now,
        snapshot_times=snapshot_times,
        completed=dict(sorted(completed.items())),
        tasks=tuple(sorted(jm.vertices)),
    )


def enumerate_failure_points(
    baseline: Baseline,
    boundaries: int = 2,
    compound: bool = True,
) -> List[FailurePoint]:
    """Every case the suite runs for one topology.

    Singles: task x first ``boundaries`` completed epochs x {pre, post}
    snapshot.  Compounds: every unordered task pair, first victim killed
    just after its first-epoch snapshot, second victim ``PAIR_STAGGER``
    later — inside the first recovery.
    """
    points: List[FailurePoint] = []
    epoch_ids = list(baseline.completed)[:boundaries]
    for task in baseline.tasks:
        for cid in epoch_ids:
            snap = baseline.snapshot_times.get((task, cid))
            if snap is None:
                continue
            for side, offset in (("pre", -EPSILON), ("post", EPSILON)):
                at = max(0.01, snap + offset)
                points.append(
                    FailurePoint(
                        label=f"{task}@cp{cid}-{side}",
                        kills=((at, task),),
                    )
                )
    if compound and epoch_ids:
        first = epoch_ids[0]
        for i, a in enumerate(baseline.tasks):
            snap_a = baseline.snapshot_times.get((a, first))
            if snap_a is None:
                continue
            for b in baseline.tasks[i + 1 :]:
                t0 = max(0.01, snap_a + EPSILON)
                points.append(
                    FailurePoint(
                        label=f"pair:{a}+{b}@cp{first}",
                        kills=((t0, a), (t0 + PAIR_STAGGER, b)),
                    )
                )
    return points


def run_case(
    topo: Topology,
    point: FailurePoint,
    expected: set,
    limit: float = 60.0,
) -> CaseResult:
    """One kill schedule against a fresh deployment of the topology."""
    env, log, jm = _deploy(topo)
    for at, victim in point.kills:
        env.schedule_callback(
            at, lambda name=victim: jm.kill_task(name, force=True)
        )
    try:
        jm.run_until_done(limit=limit)
    except FailureInjectionError as exc:
        # The victim finished before the kill could land — nothing to
        # observe.  Not a pass, not a failure; reported so coverage holes
        # are visible.
        return CaseResult(point, "skipped:victim-finished", detail=str(exc))
    except RecoveryStallError as exc:
        return CaseResult(
            point,
            "violation:recovery-stalled",
            duration=env.now,
            detail=str(exc),
        )
    except JobError as exc:
        return CaseResult(
            point, "violation:hang", duration=env.now, detail=str(exc)
        )

    landed = len(jm.failures_injected)
    if landed < len(point.kills):
        # The victim finished (or the job ended) before every kill could
        # land, so this point probed nothing.  Reported as a coverage hole,
        # never silently counted as transparent.
        return CaseResult(
            point,
            "skipped:kill-not-landed",
            duration=env.now,
            detail=f"{landed}/{len(point.kills)} kills landed",
        )

    projection = _projection(log, topo.out_topic)
    missing = sum(1 for pair in expected if projection[pair] == 0)
    extra = sum(c for pair, c in projection.items() if pair not in expected)
    duplicated = sum(
        c - 1 for pair, c in projection.items() if pair in expected and c > 1
    )
    announced = any(
        kind in DEGRADATION_MARKERS for (_t, kind, _who) in jm.recovery_events
    )
    if missing:
        outcome = "violation:data-loss"
    elif extra:
        outcome = "violation:alien-output"
    elif duplicated and not announced:
        outcome = "violation:silent-duplication"
    elif duplicated:
        outcome = "announced-degradation"
    else:
        outcome = "transparent"
    return CaseResult(
        point,
        outcome,
        missing=missing,
        duplicated=duplicated,
        extra=extra,
        duration=env.now,
        announced=announced,
    )


def explore_topology(
    topo: Topology,
    boundaries: int = 2,
    compound: bool = True,
    limit: float = 60.0,
    on_case: Optional[Callable[[CaseResult], None]] = None,
) -> TransparencyReport:
    """Baseline + the full failure-point matrix for one topology."""
    baseline = run_baseline(topo, limit=limit)
    expected = _expected(topo)
    report = TransparencyReport(
        topology=topo.name,
        operators=topo.operators,
        tasks=len(baseline.tasks),
        expected=len(expected),
        baseline_duration=baseline.duration,
    )
    for point in enumerate_failure_points(
        baseline, boundaries=boundaries, compound=compound
    ):
        result = run_case(topo, point, expected, limit=limit)
        report.cases.append(result)
        if on_case is not None:
            on_case(result)
    return report


def run_transparency_suite(
    topologies: Optional[Sequence[Topology]] = None,
    boundaries: int = 2,
    compound: bool = True,
    limit: float = 60.0,
    on_case: Optional[Callable[[CaseResult], None]] = None,
) -> List[TransparencyReport]:
    """The whole suite: every topology's exhaustive matrix."""
    return [
        explore_topology(
            topo,
            boundaries=boundaries,
            compound=compound,
            limit=limit,
            on_case=on_case,
        )
        for topo in (topologies if topologies is not None else default_topologies())
    ]


def suite_payload(reports: Iterable[TransparencyReport]) -> dict:
    """JSON document for ``BENCH_transparency.json``: per-topology tallies
    plus every violating case spelled out (kill schedule included, so the
    case replays from the payload alone)."""
    reports = list(reports)
    payload = {
        "suite": "transparency",
        "topologies": [
            {
                "name": r.topology,
                "operators": r.operators,
                "tasks": r.tasks,
                "expected_records": r.expected,
                "baseline_duration_s": round(r.baseline_duration, 6),
                "cases": len(r.cases),
                "transparent": r.transparent,
                "announced_degradation": r.announced,
                "skipped": r.skipped,
                "violations": len(r.violations),
            }
            for r in reports
        ],
        "cases_total": sum(len(r.cases) for r in reports),
        "transparent": sum(r.transparent for r in reports),
        "announced_degradation": sum(r.announced for r in reports),
        "skipped": sum(r.skipped for r in reports),
        "violations": sum(len(r.violations) for r in reports),
        "violating_cases": [
            {
                "topology": r.topology,
                "case": c.point.label,
                "kills": [list(k) for k in c.point.kills],
                "outcome": c.outcome,
                "missing": c.missing,
                "duplicated": c.duplicated,
                "extra": c.extra,
                "detail": c.detail,
            }
            for r in reports
            for c in r.violations
        ],
    }
    return payload
