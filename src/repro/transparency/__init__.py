"""Failure transparency: exhaustive observational-equivalence checking.

Clonos' headline guarantee (Section 3) is *failure transparency*: a consumer
of the job's output cannot tell, from the output alone, whether a failure
happened.  This package turns that claim into an executable check — an
explorer that enumerates **every** interesting failure point on small
topologies (each task x each epoch boundary x just-before / just-after its
snapshot, plus compound kill pairs) and asserts that the recovered run's
sink output is observationally equivalent to the failure-free baseline.

Equivalence is judged on the **origin projection**: the multiset of input
identities ``(partition, offset)`` reaching the sink.  Wall-clock stamps and
per-key interleaving legitimately vary between legal executions, so full
value equality would reject failure-free reruns too; the origin projection
is exactly the identity exactly-once is defined over.  Divergence is
tolerated only when it is *announced* — the run recorded a degradation
marker — and even then only downward to at-least-once (duplicates allowed,
loss never).  See DESIGN.md, "Failure transparency as a checkable property".
"""

from repro.transparency.explorer import (
    CaseResult,
    FailurePoint,
    Topology,
    TransparencyReport,
    default_topologies,
    enumerate_failure_points,
    explore_topology,
    run_transparency_suite,
    suite_payload,
)

__all__ = [
    "CaseResult",
    "FailurePoint",
    "Topology",
    "TransparencyReport",
    "default_topologies",
    "enumerate_failure_points",
    "explore_topology",
    "run_transparency_suite",
    "suite_payload",
]
