"""Deterministic content fingerprints for recovery artifacts.

Every artifact the recovery protocol reads back — task snapshots, spilled
in-flight segments, determinant-log deltas, standby state images — carries a
CRC computed over a *canonical* digest of its payload.  "Canonical" is the
load-bearing word: the byte stream fed to the CRC is independent of dict
insertion order, set iteration order, and object identity, so the same
logical state always produces the same fingerprint, and any out-of-band
mutation (the silent corruptions ``repro.chaos`` injects) produces a
different one.

This is the simulation's stand-in for the per-chunk checksums a real
checkpoint stack stores next to its blobs; it is pure stdlib (``zlib.crc32``
over a deterministic value walk) and deliberately does *not* reuse
``repro.net.serialization.payload_size``, which models byte counts, not
content.
"""

from __future__ import annotations

import zlib
from collections import deque

__all__ = ["fingerprint", "combine"]


def _crc(data: bytes, crc: int = 0) -> int:
    return zlib.crc32(data, crc) & 0xFFFFFFFF


def combine(crc: int, part: int) -> int:
    """Fold one 32-bit part into a rolling fingerprint (order-sensitive)."""
    return _crc(part.to_bytes(4, "big"), crc)


def _scalar_bytes(value):
    # Exact-type dispatch first: scalars dominate artifact payloads, and the
    # fast checks produce byte-for-byte the same tags as the general chain
    # below (bool is excluded because True.__class__ is bool, not int).
    t = value.__class__
    if t is int:
        return b"i" + str(value).encode()
    if t is float:
        return b"f" + repr(value).encode()
    if t is str:
        return b"s" + value.encode("utf-8", "surrogatepass")
    if value is None:
        return b"N"
    if value is True:
        return b"T"
    if value is False:
        return b"F"
    if isinstance(value, int):
        return b"i" + str(value).encode()
    if isinstance(value, float):
        return b"f" + repr(value).encode()
    if isinstance(value, str):
        return b"s" + value.encode("utf-8", "surrogatepass")
    if isinstance(value, (bytes, bytearray)):
        return b"b" + bytes(value)
    return None


_slots_cache: dict = {}
_sorted_slots_cache: dict = {}

#: Slots that hold memoised digests, not content.  They are invisible to the
#: fingerprint walk (a fingerprint must not depend on whether it was already
#: computed) and to corruption injection (tampering a cache is not tampering
#: the artifact).
MEMO_SLOTS = frozenset({"_fp_memo"})


def _all_slots(cls) -> list:
    """Content slot names of ``cls`` in MRO declaration order (cached).

    Order matters to callers outside this module (corruption injection picks
    the *first* eligible slot), so this stays declaration-ordered; the
    fingerprint walk uses the separately cached sorted view below.
    """
    names = _slots_cache.get(cls)
    if names is not None:
        return names
    names = []
    for klass in cls.__mro__:
        slots = klass.__dict__.get("__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        names.extend(s for s in slots if s not in MEMO_SLOTS)
    _slots_cache[cls] = names
    return names


def _sorted_slots(cls) -> list:
    names = _sorted_slots_cache.get(cls)
    if names is None:
        names = sorted(set(_all_slots(cls)))
        _sorted_slots_cache[cls] = names
    return names


#: Per-class object-walk metadata: (crc of the type tag, [(slot name,
#: crc of the slot-name bytes), ...]).  Pure caching of values the walk
#: recomputed per object — the resulting fingerprints are unchanged.
_class_meta_cache: dict = {}


def _class_meta(cls):
    meta = _class_meta_cache.get(cls)
    if meta is None:
        tag_crc = _crc(b"O" + cls.__name__.encode())
        slot_meta = [(name, _crc(name.encode())) for name in _sorted_slots(cls)]
        meta = (tag_crc, slot_meta)
        _class_meta_cache[cls] = meta
    return meta


def fingerprint(value) -> int:
    """Deterministic 32-bit digest of an arbitrary artifact payload.

    Dicts are digested as their item set sorted by key digest and sets as
    their sorted element digests, so the fingerprint is invariant under
    insertion/iteration order; sequences are order-sensitive.  Objects are
    digested by type name plus their ``__dict__``/``__slots__`` state;
    state-less objects (functions, modules, pools) hash to their type name
    only, which keeps the walk from escaping into the simulation graph.
    """
    return _fp(value, ())


def _fp(value, stack) -> int:
    scalar = _scalar_bytes(value)
    if scalar is not None:
        return _crc(scalar)
    vid = id(value)
    if vid in stack:  # cycle guard: digest the back-edge, do not recurse
        return _crc(b"cycle")
    stack = stack + (vid,)
    if isinstance(value, (list, tuple, deque)):
        crc = _crc(b"L")
        for item in value:
            crc = combine(crc, _fp(item, stack))
        return crc
    if isinstance(value, (set, frozenset)):
        crc = _crc(b"S")
        for part in sorted(_fp(item, stack) for item in value):
            crc = combine(crc, part)
        return crc
    if isinstance(value, dict):
        crc = _crc(b"D")
        items = sorted(
            (_fp(key, stack), _fp(val, stack)) for key, val in value.items()
        )
        for key_fp, val_fp in items:
            crc = combine(combine(crc, key_fp), val_fp)
        return crc
    tag_crc, slot_meta = _class_meta(type(value))
    state = getattr(value, "__dict__", None)
    if state:
        return combine(tag_crc, _fp(state, stack))
    if slot_meta:
        crc = tag_crc
        for name, name_crc in slot_meta:
            if hasattr(value, name):
                crc = combine(crc, name_crc)
                crc = combine(crc, _fp(getattr(value, name), stack))
        return crc
    return tag_crc
