"""Deterministic content fingerprints for recovery artifacts.

Every artifact the recovery protocol reads back — task snapshots, spilled
in-flight segments, determinant-log deltas, standby state images — carries a
CRC computed over a *canonical* digest of its payload.  "Canonical" is the
load-bearing word: the byte stream fed to the CRC is independent of dict
insertion order, set iteration order, and object identity, so the same
logical state always produces the same fingerprint, and any out-of-band
mutation (the silent corruptions ``repro.chaos`` injects) produces a
different one.

This is the simulation's stand-in for the per-chunk checksums a real
checkpoint stack stores next to its blobs; it is pure stdlib (``zlib.crc32``
over a deterministic value walk) and deliberately does *not* reuse
``repro.net.serialization.payload_size``, which models byte counts, not
content.
"""

from __future__ import annotations

import zlib
from collections import deque

__all__ = ["fingerprint", "combine"]


def _crc(data: bytes, crc: int = 0) -> int:
    return zlib.crc32(data, crc) & 0xFFFFFFFF


def combine(crc: int, part: int) -> int:
    """Fold one 32-bit part into a rolling fingerprint (order-sensitive)."""
    return _crc(part.to_bytes(4, "big"), crc)


def _scalar_bytes(value):
    if value is None:
        return b"N"
    if value is True:
        return b"T"
    if value is False:
        return b"F"
    if isinstance(value, int):
        return b"i" + str(value).encode()
    if isinstance(value, float):
        return b"f" + repr(value).encode()
    if isinstance(value, str):
        return b"s" + value.encode("utf-8", "surrogatepass")
    if isinstance(value, (bytes, bytearray)):
        return b"b" + bytes(value)
    return None


def _all_slots(cls) -> list:
    names = []
    for klass in cls.__mro__:
        slots = klass.__dict__.get("__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        names.extend(slots)
    return names


def fingerprint(value) -> int:
    """Deterministic 32-bit digest of an arbitrary artifact payload.

    Dicts are digested as their item set sorted by key digest and sets as
    their sorted element digests, so the fingerprint is invariant under
    insertion/iteration order; sequences are order-sensitive.  Objects are
    digested by type name plus their ``__dict__``/``__slots__`` state;
    state-less objects (functions, modules, pools) hash to their type name
    only, which keeps the walk from escaping into the simulation graph.
    """
    return _fp(value, ())


def _fp(value, stack) -> int:
    scalar = _scalar_bytes(value)
    if scalar is not None:
        return _crc(scalar)
    vid = id(value)
    if vid in stack:  # cycle guard: digest the back-edge, do not recurse
        return _crc(b"cycle")
    stack = stack + (vid,)
    if isinstance(value, (list, tuple, deque)):
        crc = _crc(b"L")
        for item in value:
            crc = combine(crc, _fp(item, stack))
        return crc
    if isinstance(value, (set, frozenset)):
        crc = _crc(b"S")
        for part in sorted(_fp(item, stack) for item in value):
            crc = combine(crc, part)
        return crc
    if isinstance(value, dict):
        crc = _crc(b"D")
        items = sorted(
            (_fp(key, stack), _fp(val, stack)) for key, val in value.items()
        )
        for key_fp, val_fp in items:
            crc = combine(combine(crc, key_fp), val_fp)
        return crc
    tag = b"O" + type(value).__name__.encode()
    state = getattr(value, "__dict__", None)
    if state:
        return combine(_crc(tag), _fp(state, stack))
    slots = _all_slots(type(value))
    if slots:
        crc = _crc(tag)
        for name in sorted(set(slots)):
            if hasattr(value, name):
                crc = combine(crc, _crc(name.encode()))
                crc = combine(crc, _fp(getattr(value, name), stack))
        return crc
    return _crc(tag)
