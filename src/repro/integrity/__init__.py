"""repro.integrity: end-to-end artifact integrity for the recovery protocol.

Content fingerprints over every persisted/replayed recovery artifact
(checkpoints, DFS blobs, standby images, spilled in-flight segments,
determinant logs), verified on read/install with a structured
:class:`~repro.errors.IntegrityError`, plus the audit sweep behind the
``repro audit`` CLI verb.

This package ``__init__`` deliberately re-exports only the dependency-free
leaves (``fingerprint``, ``IntegrityMonitor``): the state/core/runtime
layers import them at module load, so anything heavier here would create an
import cycle.  The corruption helpers, the audit sweep, and the Hypothesis
soak live in :mod:`repro.integrity.corruption`, :mod:`repro.integrity.audit`
and :mod:`repro.integrity.soak` and are imported by full path.
"""

from repro.integrity.fingerprint import combine, fingerprint
from repro.integrity.monitor import ARTIFACT_KINDS, IntegrityMonitor

__all__ = ["ARTIFACT_KINDS", "IntegrityMonitor", "combine", "fingerprint"]
