"""Integrity soak: corruption fault plans vs. the validation layer.

Mirrors :mod:`repro.chaos.soak` but draws fault plans from the corruption
palette (:data:`~repro.chaos.plan.CORRUPTION_KINDS`) — silent blob
corruption, torn DFS writes, in-flight buffer bit-flips, truncated
determinant replicas — each paired by the plan generator with kills that
force a recovery to actually read the damaged artifact.

The property under test: **corruption is never silent**.  Every run must end

* ``"exactly-once"`` with no residual undetected corruption, or
* ``"degraded:global_rollback"`` — the validated fallback ladder announced
  an older-epoch (or source-replay) restore,

and the closing audit sweep must flag whatever corrupted artifacts were
never read.  The control experiment (``validate=False``) demonstrates the
layer is load-bearing: the same plans then produce silent violations the
verdict catches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.chaos.plan import CORRUPTION_KINDS, random_plan
from repro.chaos.soak import ChaosRunResult, fast_chaos_config, run_chaos_experiment
from repro.config import JobConfig
from repro.integrity.audit import AuditReport, audit_job

__all__ = ["IntegrityRunResult", "run_integrity_experiment", "integrity_soak"]


@dataclass
class IntegrityRunResult:
    """One integrity-soak run: the chaos verdict plus the validation ledger
    and the closing full-sweep audit."""

    chaos: ChaosRunResult
    integrity_summary: Dict[str, object]
    audit: AuditReport = field(repr=False)
    validate: bool = True

    @property
    def seed(self) -> int:
        return self.chaos.seed

    @property
    def verdict(self) -> str:
        return self.chaos.verdict

    @property
    def corruptions_injected(self) -> int:
        applied = self.chaos.engine.applied if self.chaos.engine else []
        return sum(1 for (_t, kind, _x) in applied if kind in CORRUPTION_KINDS)

    @property
    def detected(self) -> int:
        """Corruptions caught: failed validations during the run plus
        residual damage the closing audit swept up."""
        return int(self.integrity_summary.get("total_failed", 0)) + len(
            self.audit.violations
        )

    @property
    def ok(self) -> bool:
        """The never-silent property for one run: the output is exactly-once
        or the degradation was announced.  (Residual stored damage is by
        construction *detected* — the closing audit in ``self.audit`` swept
        every artifact.)"""
        return self.chaos.verdict != "violation"

    def __repr__(self) -> str:  # compact: the dataclass default drags the jm in
        return (
            f"IntegrityRunResult(seed={self.seed}, verdict={self.verdict!r}, "
            f"injected={self.corruptions_injected}, detected={self.detected}, "
            f"validate={self.validate})"
        )


def run_integrity_experiment(
    seed: int,
    validate: bool = True,
    config: Optional[JobConfig] = None,
    max_faults: int = 2,
    horizon: Optional[float] = None,
    **run_kwargs,
) -> IntegrityRunResult:
    """One corruption-chaos run.  ``validate=False`` is the control arm:
    checksums still exist but nothing checks them, so injected corruption
    flows into restores silently — the verdict then shows the violation the
    validation layer exists to prevent."""
    if config is None:
        # Quicker checkpoints and a slower source than the generic chaos
        # soak: corruption needs stored artifacts to damage and a run still
        # in progress when the paired kill forces the validated restore.
        config = fast_chaos_config(seed=seed, checkpoint_interval=0.25)
    config.integrity.validate = validate
    run_kwargs.setdefault("rate", 1000.0)
    n_records = run_kwargs.get("n_records", 1200)
    rate = run_kwargs.get("rate", 2000.0)
    window = horizon if horizon is not None else n_records / rate + 0.5

    def plan_factory(jm):
        return random_plan(
            seed,
            window,
            task_names=sorted(jm.vertices),
            max_faults=max_faults,
            kinds=sorted(CORRUPTION_KINDS),
        )

    chaos = run_chaos_experiment(plan_factory, config=config, **run_kwargs)
    jm = chaos.jm
    summary = jm.integrity.summary()
    report = audit_job(jm)
    return IntegrityRunResult(
        chaos=chaos,
        integrity_summary=summary,
        audit=report,
        validate=validate,
    )


def integrity_soak(
    seeds,
    validate: bool = True,
    config_factory: Optional[Callable[[int], JobConfig]] = None,
    **run_kwargs,
) -> List[IntegrityRunResult]:
    """One corruption experiment per seed (each seed fully determines the
    plan and the job, so any failure replays under the same seed)."""
    results = []
    for seed in seeds:
        config = config_factory(seed) if config_factory is not None else None
        results.append(
            run_integrity_experiment(
                seed, validate=validate, config=config, **run_kwargs
            )
        )
    return results
