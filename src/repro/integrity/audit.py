"""Artifact-integrity audit: sweep every stored artifact of a job and verify
its fingerprint, regardless of whether the job would have read it yet.

This is the offline complement to the read-path validation wired through
``SnapshotStore`` / ``InFlightLog`` / ``StandbyState`` / the recovery
coordinators: restores only validate what they touch; the audit touches
everything, which is what the ``repro audit`` CLI verb and CI's
integrity-soak job want.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import IntegrityError
from repro.integrity.monitor import ARTIFACT_KINDS

__all__ = ["AuditReport", "audit_job"]


@dataclass
class AuditReport:
    """Outcome of one sweep: per-kind counts plus the violation list."""

    checked: Dict[str, int] = field(
        default_factory=lambda: {kind: 0 for kind in ARTIFACT_KINDS}
    )
    violations: List[Tuple[str, str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def total_checked(self) -> int:
        return sum(self.checked.values())

    def _check(self, kind: str) -> None:
        self.checked[kind] = self.checked.get(kind, 0) + 1

    def _violation(self, kind: str, name: str, detail: str) -> None:
        self.violations.append((kind, name, detail))

    def render(self) -> str:
        lines = [f"audit: {self.total_checked} artifacts checked"]
        for kind in sorted(self.checked):
            lines.append(f"  {kind:18s} {self.checked[kind]:5d} checked")
        if self.ok:
            lines.append("audit: OK (no integrity violations)")
        else:
            lines.append(f"audit: {len(self.violations)} VIOLATION(S)")
            for kind, name, detail in self.violations:
                lines.append(f"  [{kind}] {name}: {detail}")
        return "\n".join(lines)


def audit_job(jm) -> AuditReport:
    """Verify every artifact the job currently retains.

    Covers: checkpoint snapshots + their DFS blobs, spilled in-flight log
    segments, determinant logs (each task's own bundle and every replica it
    stores for its upstreams), and standby state images.
    """
    report = AuditReport()
    _audit_checkpoints(jm, report)
    _audit_inflight(jm, report)
    _audit_determinants(jm, report)
    _audit_standbys(jm, report)
    return report


def _audit_checkpoints(jm, report: AuditReport) -> None:
    store = jm.snapshot_store
    for (task_name, cid), snapshot in sorted(store._snapshots.items()):
        name = f"{task_name}@{cid}"
        report._check("checkpoint")
        try:
            snapshot.verify()
        except IntegrityError as exc:
            report._violation("checkpoint", name, exc.detail or str(exc))
        path = store.blob_path(task_name, cid)
        record = jm.dfs.blob_record(path)
        if record is None:
            continue  # upload still in flight; nothing durable to audit yet
        report._check("blob")
        try:
            jm.dfs.verify_blob(path)
        except IntegrityError as exc:
            report._violation("blob", path, exc.detail or str(exc))


def _audit_inflight(jm, report: AuditReport) -> None:
    for vertex in jm.vertices.values():
        task = vertex.task
        log = getattr(task, "inflight", None)
        if log is None:
            continue
        for epoch in sorted(log._entries):
            for entry in log._entries[epoch]:
                report._check("inflight-segment")
                try:
                    entry.verify(log.name)
                except IntegrityError as exc:
                    report._violation(
                        "inflight-segment", exc.name, exc.detail or str(exc)
                    )


def _audit_determinants(jm, report: AuditReport) -> None:
    for vertex in jm.vertices.values():
        task = vertex.task
        causal = getattr(task, "causal", None)
        if causal is None:
            continue
        bundles = [(f"{vertex.name}:own", causal.bundle)]
        for origin, (_distance, bundle) in sorted(causal.store.items()):
            bundles.append((f"{vertex.name}:stored[{origin}]", bundle))
        for owner, bundle in bundles:
            report._check("determinant-log")
            try:
                bundle.verify(owner)
            except IntegrityError as exc:
                report._violation(
                    "determinant-log", exc.name, exc.detail or str(exc)
                )


def _audit_standbys(jm, report: AuditReport) -> None:
    for vertex in jm.vertices.values():
        standby = getattr(vertex, "standby", None)
        snapshot = getattr(standby, "snapshot", None)
        if snapshot is None:
            continue
        report._check("standby-image")
        try:
            snapshot.verify(artifact="standby-image")
        except IntegrityError as exc:
            report._violation(
                "standby-image",
                f"{vertex.name}@{snapshot.checkpoint_id}",
                exc.detail or str(exc),
            )
