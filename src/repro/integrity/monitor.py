"""Per-artifact validation accounting for one job.

A single :class:`IntegrityMonitor` hangs off the :class:`JobManager`; every
verification site (checkpoint load, standby activation, spilled-segment
read-back, determinant fetch, DFS blob read) reports its outcome here, so
the audit CLI, the metrics collectors, and the benchmark ``extra_info`` all
read one consistent ledger of what was checked and what failed.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Artifact kinds the ledger tracks (also the ``artifact`` field of
#: :class:`repro.errors.IntegrityError`).
ARTIFACT_KINDS = (
    "checkpoint",
    "blob",
    "standby-image",
    "inflight-segment",
    "determinant-log",
)


class IntegrityMonitor:
    """Counts validations and failures per artifact kind.

    ``validate=False`` turns the whole layer into a pass-through (the
    control configuration the integrity soak uses to prove corruption would
    otherwise be silent); fingerprints are still *computed* so a later
    ``repro audit`` sweep can find what the runtime let through.
    """

    def __init__(self, validate: bool = True):
        self.validate = validate
        self.verified: Dict[str, int] = {kind: 0 for kind in ARTIFACT_KINDS}
        self.failed: Dict[str, int] = {kind: 0 for kind in ARTIFACT_KINDS}
        #: (artifact kind, artifact name, detail) per detected violation.
        self.violations: List[Tuple[str, str, str]] = []
        #: Optional repro.trace event bus + sim clock (bound by JobManager);
        #: standalone monitors (audit sweeps, tests) stay trace-less.
        self.trace = None
        self.clock = None

    def bind_trace(self, trace, clock) -> None:
        """Attach an event bus and a ``() -> sim time`` clock for violation
        events (passive observability only)."""
        self.trace = trace
        self.clock = clock

    def record_ok(self, artifact: str) -> None:
        self.verified[artifact] = self.verified.get(artifact, 0) + 1

    def record_failure(self, artifact: str, name: str, detail: str = "") -> None:
        self.failed[artifact] = self.failed.get(artifact, 0) + 1
        self.violations.append((artifact, name, detail))
        if self.trace is not None and self.clock is not None:
            self.trace.emit(
                self.clock(), "integrity-violation", name, artifact=artifact
            )

    @property
    def total_verified(self) -> int:
        return sum(self.verified.values())

    @property
    def total_failed(self) -> int:
        return sum(self.failed.values())

    def summary(self) -> Dict[str, int]:
        """Flat counter dict for metrics / benchmark ``extra_info``."""
        out = {"validate": int(self.validate)}
        for kind in sorted(set(self.verified) | set(self.failed)):
            out[f"{kind}_verified"] = self.verified.get(kind, 0)
            out[f"{kind}_failed"] = self.failed.get(kind, 0)
        out["total_verified"] = self.total_verified
        out["total_failed"] = self.total_failed
        return out

    def __repr__(self) -> str:
        return (
            f"IntegrityMonitor(validate={self.validate}, "
            f"verified={self.total_verified}, failed={self.total_failed})"
        )
