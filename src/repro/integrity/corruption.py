"""Seeded artifact-corruption helpers.

Shared by the chaos engine's corruption fault kinds and the ``repro audit
--inject`` self-test sweep.  All helpers corrupt *real payloads* (not just
stored checksums): with validation disabled the corruption demonstrably
changes what a restore/replay produces — the silent-violation control the
integrity soak proves the layer prevents.

Corruption is copy-on-corrupt where artifacts are shared by reference: the
checkpoint store and a standby hold the *same* snapshot object (the
dispatch of ``_complete_checkpoint``), and a real blob corruption damages
one replica, not both — so helpers tamper a deep copy and swap it in at the
targeted location only.
"""

from __future__ import annotations

import copy
import random
from typing import Optional

__all__ = [
    "corrupt_checkpoint",
    "corrupt_standby_image",
    "corrupt_inflight_entry",
    "truncate_determinant_log",
    "tampered_copy",
    "random_corruptions",
]


def tampered_copy(snapshot):
    """A deep copy of ``snapshot`` with its payload mutated but the sealed
    fingerprint left as it was — a silently corrupted artifact."""
    clone = copy.deepcopy(snapshot)
    _mutate_payload(clone)
    return clone


def _mutate_payload(snapshot) -> str:
    op = snapshot.operator_state
    if isinstance(op, dict) and isinstance(op.get("offset"), int):
        # A source snapshot: skewing the restored offset makes the recovered
        # run skip records — silent loss, the classic stale-state corruption.
        op["offset"] = op["offset"] + 25
        return "offset-skew"
    for keyed in (snapshot.keyed_state or {}).values():
        if isinstance(keyed, dict):
            keyed["__corrupt__"] = 0xBAD
            return "keyed-state"
    snapshot.extra["__corrupt__"] = 0xBAD
    return "extra"


def corrupt_checkpoint(
    jm, task_name: str, checkpoint_id: Optional[int] = None, torn: bool = False
) -> Optional[int]:
    """Silently corrupt a task's stored checkpoint (newest by default).

    Swaps a tampered copy into the snapshot store and updates the DFS blob's
    *content* fingerprint (``torn=True`` marks the blob torn instead — a
    partial write).  The declared fingerprint — what the writer recorded —
    stays, which is exactly the mismatch a validating read detects.
    Returns the corrupted checkpoint id, or None if there was nothing to
    corrupt yet.
    """
    store = jm.snapshot_store
    cid = checkpoint_id if checkpoint_id is not None else store.latest_id(task_name)
    if cid is None:
        return None
    snapshot = store.get(task_name, cid)
    if snapshot is None:
        return None
    tampered = tampered_copy(snapshot)
    store._snapshots[(task_name, cid)] = tampered
    record = jm.dfs.blob_record(store.blob_path(task_name, cid))
    if record is not None:
        if torn:
            record.torn = True
        else:
            record.content_crc = tampered.content_crc()
    return cid


def corrupt_standby_image(jm, task_name: str) -> Optional[int]:
    """Tamper the snapshot a standby holds (the primary's copy is intact)."""
    vertex = jm.vertices.get(task_name)
    standby = getattr(vertex, "standby", None)
    if standby is None or standby.snapshot is None:
        return None
    standby.snapshot = tampered_copy(standby.snapshot)
    return standby.snapshot.checkpoint_id


def _swap_in_buffer_clone(entry):
    """Replace ``entry.buffer`` with a shallow clone that has its own element
    list, taking over the log's pool permit.  The original object — possibly
    still riding a link, or already consumed downstream — keeps its elements:
    a disk flip cannot retroactively change bytes that left on the wire."""
    from repro.net.buffer import NetworkBuffer

    buffer = entry.buffer
    clone = NetworkBuffer(buffer.channel_id, buffer.seq, buffer.epoch, buffer.pool)
    clone.elements = list(buffer.elements)
    clone.size_bytes = buffer.size_bytes
    clone.n_records = buffer.n_records
    clone.delta = buffer.delta
    clone.delta_bytes = buffer.delta_bytes
    clone.recycle_on_consume = buffer.recycle_on_consume
    buffer.pool = None  # accounting follows the stored artifact
    entry.buffer = clone
    return clone


def corrupt_inflight_entry(
    jm, task_name: str, rng: random.Random
) -> Optional[str]:
    """Bit-flip a logged in-flight buffer: drop or duplicate one element.

    The mutation hits what the log *stores* (what a future replay re-sends
    and what the audit sweeps), never the buffer object in motion: the log
    shares buffers by reference with the network layer (the §6.1 no-copy
    exchange), so — per this module's copy-on-corrupt rule — the damaged
    entry gets its own tampered clone.  Records already dispatched or
    delivered downstream are untouched, as with a real on-disk flip.
    """
    vertex = jm.vertices.get(task_name)
    task = vertex.task if vertex is not None else None
    log = getattr(task, "inflight", None)
    if log is None:
        return None
    entries = [
        entry
        for epoch in sorted(log._entries)
        for entry in log._entries[epoch]
        if entry.buffer.elements
    ]
    if not entries:
        return None
    entry = rng.choice(entries)
    elements = _swap_in_buffer_clone(entry).elements
    if len(elements) > 1 and rng.random() < 0.5:
        elements.pop(rng.randrange(len(elements)))
        kind = "dropped-element"
    else:
        elements.append(elements[rng.randrange(len(elements))])
        kind = "duplicated-element"
    return f"ch{entry.buffer.channel_id}:seq{entry.buffer.seq}:{kind}"


def truncate_determinant_log(
    jm, victim_name: str, rng: random.Random
) -> Optional[str]:
    """Damage the determinant-log replica some downstream holder keeps for
    ``victim_name``: truncate the tail of a *sealed* epoch, or — when every
    held epoch is still open — silently corrupt its last entry in place.

    Only sealed epochs (below the log's newest) are truncated: the open
    epoch still receives piggybacked deltas, and a contiguity gap there
    would crash the holder on the next merge rather than model silent
    at-rest damage.  Sealed epochs live only between an epoch barrier and
    the next checkpoint completion, so the open-epoch fallback swaps the
    last entry for a tampered copy — same length (merges stay contiguous),
    stale rolling CRC.
    """
    sealed = []
    open_epochs = []
    for holder in jm.vertices.values():
        task = holder.task
        causal = getattr(task, "causal", None)
        if causal is None:
            continue
        bundle = causal.stored_bundle_for(victim_name)
        if bundle is None:
            continue
        for log_name, log in bundle.logs.items():
            epochs = log.epochs()
            newest = max(epochs) if epochs else None
            for epoch in epochs:
                if log.length(epoch) > 0 and epoch in log._crcs:
                    bucket = sealed if epoch < newest else open_epochs
                    bucket.append((holder.name, log_name, log, epoch))
    if sealed:
        holder_name, log_name, log, epoch = rng.choice(sealed)
        drop = rng.randrange(1, log.length(epoch) + 1)
        del log._epochs[epoch][-drop:]
        return f"{holder_name}:{log_name}@epoch{epoch}:-{drop}"
    if open_epochs:
        holder_name, log_name, log, epoch = rng.choice(open_epochs)
        entries = log._epochs[epoch]
        entries[-1] = _tamper_determinant(entries[-1])
        return f"{holder_name}:{log_name}@epoch{epoch}:entry-corrupt"
    return None


def _tamper_determinant(det):
    """A tampered deep copy: the original object is shared with other
    replicas (deltas forward determinants by reference), so only the chosen
    holder's list slot is replaced."""
    from repro.integrity.fingerprint import _all_slots

    clone = copy.deepcopy(det)
    # The clone's content is about to change: drop any memoised fingerprint
    # (deepcopy carries it over) so every later digest reflects the tampered
    # content, exactly as if the determinant had been built this way.
    try:
        del clone._fp_memo
    except AttributeError:
        pass
    for slot in _all_slots(type(clone)):
        value = getattr(clone, slot, None)
        if isinstance(value, int) and not isinstance(value, bool):
            setattr(clone, slot, value + 1)
            return clone
    for slot in _all_slots(type(clone)):
        try:
            setattr(clone, slot, ("corrupt", getattr(clone, slot, None)))
            return clone
        except (AttributeError, TypeError):
            continue
    return clone


def random_corruptions(jm, count: int, rng: random.Random):
    """Inject up to ``count`` corruptions across *distinct* artifacts, seeded.

    Returns ``[(kind, detail), ...]`` for what actually landed (a young job
    may not yet hold ``count`` distinct corruptible artifacts).  Distinctness
    is tracked at the granularity the audit reports violations at — one per
    checkpoint/blob, per standby image, per logged buffer, per determinant
    bundle — so a sweep detecting everything yields at least one violation
    per returned injection.
    """
    results = []
    seen = set()
    ops = ("blob_corruption", "torn_write", "standby_image",
           "buffer_bitflip", "determinant_truncation")
    tasks = sorted(jm.vertices)
    attempts = 0
    while len(results) < count and attempts < 50 * max(1, count):
        attempts += 1
        op = rng.choice(ops)
        task = rng.choice(tasks)
        key = None
        detail = None
        if op in ("blob_corruption", "torn_write"):
            cid = corrupt_checkpoint(jm, task, torn=(op == "torn_write"))
            if cid is not None:
                key = ("checkpoint", task, cid)
                detail = f"{task}@{cid}"
        elif op == "standby_image":
            cid = corrupt_standby_image(jm, task)
            if cid is not None:
                key = ("standby", task)
                detail = f"{task}@{cid}"
        elif op == "buffer_bitflip":
            flipped = corrupt_inflight_entry(jm, task, rng)
            if flipped is not None:
                key = ("inflight", task, flipped.rsplit(":", 1)[0])
                detail = f"{task}:{flipped}"
        else:
            truncated = truncate_determinant_log(jm, task, rng)
            if truncated is not None:
                # One bundle yields at most one audit violation, so dedup at
                # holder level regardless of which log/epoch was hit.
                key = ("determinant", truncated.split(":", 1)[0])
                detail = truncated
        if key is not None and key not in seen:
            seen.add(key)
            results.append((op, detail))
    return results
