"""Command-line interface: run the paper's experiments from a shell.

    python -m repro fig5 [--queries Q1,Q5] [--events 6000]
    python -m repro fig6-single [--query Q3] [--victim 'join[0]']
    python -m repro fig6-multi [--concurrent]
    python -m repro memory
    python -m repro table1
    python -m repro spectrum

Every subcommand prints the reproduced table/series of the corresponding
figure; see EXPERIMENTS.md for the mapping to the paper.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.harness.figures import (
    fig5_overhead,
    fig6_multi_failures,
    fig6_single_failure,
    latency_overhead,
    memory_spill_study,
    table1_assumptions,
)
from repro.harness.reporters import render_series, render_table
from repro.nexmark.queries import QUERIES


def _cmd_fig5(args) -> int:
    queries = (
        tuple(q.strip().upper() for q in args.queries.split(","))
        if args.queries
        else tuple(sorted(QUERIES, key=lambda q: int(q[1:])))
    )
    unknown = [q for q in queries if q not in QUERIES]
    if unknown:
        print(f"unknown queries: {', '.join(unknown)}", file=sys.stderr)
        return 2
    rows = fig5_overhead(queries=queries, events_per_partition=args.events)
    print("Figure 5: relative throughput vs vanilla Flink")
    print(
        render_table(
            ["query", "flink rec/s", "clonos DSD=1", "clonos DSD=Full"],
            [
                (r.query, f"{r.flink_rate:.0f}", f"{r.rel_dsd1:.3f}", f"{r.rel_full:.3f}")
                for r in rows
            ],
        )
    )
    lat = latency_overhead(query=queries[0], events_per_partition=args.events)
    print()
    print(
        render_table(
            ["latency (" + queries[0] + ")", "p50 ms", "p99 ms"],
            [
                ("flink", f"{lat.flink_p50 * 1e3:.2f}", f"{lat.flink_p99 * 1e3:.2f}"),
                ("clonos DSD=1", f"{lat.dsd1_p50 * 1e3:.2f}", f"{lat.dsd1_p99 * 1e3:.2f}"),
                ("clonos Full", f"{lat.full_p50 * 1e3:.2f}", f"{lat.full_p99 * 1e3:.2f}"),
            ],
        )
    )
    return 0


def _cmd_fig6_single(args) -> int:
    runs = fig6_single_failure(
        query=args.query,
        victim=args.victim,
        events_per_partition=args.events,
        rate=args.rate,
        kill_at=args.kill_at,
    )
    for label, run in runs.items():
        recovery = run.recovery_time
        print(f"\n=== {label} ===")
        print(
            "recovery time:",
            f"{recovery:.2f}s" if recovery is not None else "n/a",
        )
        print(render_series("output rate", run.throughput_series()))
    return 0


def _cmd_fig6_multi(args) -> int:
    runs = fig6_multi_failures(concurrent=args.concurrent)
    flavour = "concurrent" if args.concurrent else "staggered"
    print(f"three {flavour} failures on the synthetic chain")
    for label, run in runs.items():
        recovery = run.recovery_time
        print(f"\n=== {label} ===")
        print(
            "recovery time:",
            f"{recovery:.2f}s" if recovery is not None else "n/a",
        )
        print(render_series("output rate", run.throughput_series()))
    return 0


def _cmd_memory(args) -> int:
    rows = memory_spill_study(duration=args.duration)
    print("Section 7.5: spill policies x pool sizes")
    print(
        render_table(
            ["policy", "pool KB", "ingest rec/s", "peak bufs", "spilled"],
            [
                (r.policy, r.pool_kbytes, f"{r.rate:.0f}", r.peak_memory_buffers,
                 r.spilled_buffers)
                for r in rows
            ],
        )
    )
    return 0


def _cmd_table1(args) -> int:
    cells = table1_assumptions(n_records=args.events)
    print("Table 1 (operationalised): consistency after recovering a failure")
    print(
        render_table(
            ["scheme", "operator", "lost", "dup", "inconsistent", "exactly-once"],
            [
                (
                    c.mode,
                    "deterministic" if c.deterministic else "nondeterministic",
                    c.lost, c.duplicated, c.inconsistent,
                    "yes" if c.exactly_once else "NO",
                )
                for c in cells
            ],
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Clonos reproduction: run the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p5 = sub.add_parser("fig5", help="overhead under normal operation")
    p5.add_argument("--queries", help="comma-separated subset, e.g. Q1,Q5,Q7")
    p5.add_argument("--events", type=int, default=6000,
                    help="events per source partition")
    p5.set_defaults(fn=_cmd_fig5)

    p6 = sub.add_parser("fig6-single", help="single-operator failure")
    p6.add_argument("--query", default="Q3", choices=("Q3", "Q8"))
    p6.add_argument("--victim", default="join[0]")
    p6.add_argument("--events", type=int, default=36000)
    p6.add_argument("--rate", type=float, default=6000.0)
    p6.add_argument("--kill-at", type=float, default=4.0, dest="kill_at")
    p6.set_defaults(fn=_cmd_fig6_single)

    p6m = sub.add_parser("fig6-multi", help="multiple/concurrent failures")
    p6m.add_argument("--concurrent", action="store_true")
    p6m.set_defaults(fn=_cmd_fig6_multi)

    pm = sub.add_parser("memory", help="spill-policy/memory study")
    pm.add_argument("--duration", type=float, default=12.0)
    pm.set_defaults(fn=_cmd_memory)

    pt = sub.add_parser("table1", help="consistency vs determinism matrix")
    pt.add_argument("--events", type=int, default=4000)
    pt.set_defaults(fn=_cmd_table1)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
