"""Command-line interface: run the paper's experiments from a shell.

    python -m repro fig5 [--queries Q1,Q5] [--events 6000]
    python -m repro fig6-single [--query Q3] [--victim 'join[0]']
    python -m repro fig6-multi [--concurrent]
    python -m repro trace [--mode clonos|flink|both] [--out DIR] [--check]
    python -m repro memory
    python -m repro table1
    python -m repro bench [--suite NAME ...] [--json BENCH_perf.json] [--golden-only]
    python -m repro profile [SUITE] [--top N] [--json]
    python -m repro lint [all | q5 | examples | path/to/file.py ...] [--strict]
    python -m repro verify-static [--json] [--bench BENCH_static.json] [DIR ...]
    python -m repro sanitize [all | quickstart | q3 ...]
    python -m repro chaos [--seeds 0:20 | --seed 9] [--max-faults 4]
    python -m repro audit [--inject K] [--soak | --seeds 0:8]
    python -m repro transparency [--topologies pair-p1,...] [--json PATH]
    python -m repro scenarios [--list | --only NAMES] [--json PATH]

Every experiment subcommand prints the reproduced table/series of the
corresponding figure; see EXPERIMENTS.md for the mapping to the paper.
``lint`` runs the NDLint static pass, ``verify-static`` the interprocedural
causal-coverage analyzer (ND201–ND210), and ``sanitize`` the double-run
determinism sanitizer (see README, "Verifying your pipeline is causally
loggable").  Determinism-tooling verbs share one exit-code convention:
0 clean, 1 findings, 2 internal/usage error.  ``chaos`` soaks randomised fault plans against the recovery
protocol and verdicts each run (see README, "Chaos testing the recovery
protocol").  ``audit`` sweeps every stored artifact and verifies its
content fingerprint — clean sweep exits 0; ``--inject K`` self-tests the
sweep against seeded corruption; ``--soak`` runs corruption fault plans
against the validated recovery ladder (see README, "Artifact integrity").
``transparency`` enumerates every failure point on small topologies and
asserts the recovered output is observationally equivalent to the
failure-free baseline — any silent divergence exits 1 (see README,
"Failure transparency as a checkable property").  ``scenarios`` runs the
production incident pack: named, declarative fault schedules with
per-scenario machine-checked verdicts — any failed verdict exits 1 (see
README, "The production incident scenario pack").
``trace`` records a fig6-style failure run on the causal event bus, exports
JSONL + Chrome-trace/Perfetto JSON, and prints each recovery incident's
per-phase breakdown plus the sim profiler's wall-clock hot spots (see
README, "Observability").  ``bench`` times the named perf suites and checks
the golden determinism digests (see ``repro.bench``); ``profile`` runs one
suite under the sim-aware profiler and prints its wall-clock hot spots.
"""

from __future__ import annotations

import argparse
import importlib.util
import sys
from pathlib import Path
from typing import List, Optional

from repro.harness.figures import (
    fig5_overhead,
    fig6_multi_failures,
    fig6_single_failure,
    latency_overhead,
    memory_spill_study,
    table1_assumptions,
)
from repro.harness.reporters import render_series, render_table
from repro.nexmark.queries import QUERIES


def _cmd_fig5(args) -> int:
    queries = (
        tuple(q.strip().upper() for q in args.queries.split(","))
        if args.queries
        else tuple(sorted(QUERIES, key=lambda q: int(q[1:])))
    )
    unknown = [q for q in queries if q not in QUERIES]
    if unknown:
        print(f"unknown queries: {', '.join(unknown)}", file=sys.stderr)
        return 2
    rows = fig5_overhead(queries=queries, events_per_partition=args.events)
    print("Figure 5: relative throughput vs vanilla Flink")
    print(
        render_table(
            ["query", "flink rec/s", "clonos DSD=1", "clonos DSD=Full"],
            [
                (r.query, f"{r.flink_rate:.0f}", f"{r.rel_dsd1:.3f}", f"{r.rel_full:.3f}")
                for r in rows
            ],
        )
    )
    lat = latency_overhead(query=queries[0], events_per_partition=args.events)
    print()
    print(
        render_table(
            ["latency (" + queries[0] + ")", "p50 ms", "p99 ms"],
            [
                ("flink", f"{lat.flink_p50 * 1e3:.2f}", f"{lat.flink_p99 * 1e3:.2f}"),
                ("clonos DSD=1", f"{lat.dsd1_p50 * 1e3:.2f}", f"{lat.dsd1_p99 * 1e3:.2f}"),
                ("clonos Full", f"{lat.full_p50 * 1e3:.2f}", f"{lat.full_p99 * 1e3:.2f}"),
            ],
        )
    )
    return 0


def _cmd_fig6_single(args) -> int:
    runs = fig6_single_failure(
        query=args.query,
        victim=args.victim,
        events_per_partition=args.events,
        rate=args.rate,
        kill_at=args.kill_at,
    )
    for label, run in runs.items():
        recovery = run.recovery_time
        print(f"\n=== {label} ===")
        print(
            "recovery time:",
            f"{recovery:.2f}s" if recovery is not None else "n/a",
        )
        print(render_series("output rate", run.throughput_series()))
    return 0


def _cmd_fig6_multi(args) -> int:
    runs = fig6_multi_failures(concurrent=args.concurrent)
    flavour = "concurrent" if args.concurrent else "staggered"
    print(f"three {flavour} failures on the synthetic chain")
    for label, run in runs.items():
        recovery = run.recovery_time
        print(f"\n=== {label} ===")
        print(
            "recovery time:",
            f"{recovery:.2f}s" if recovery is not None else "n/a",
        )
        print(render_series("output rate", run.throughput_series()))
    return 0


def _cmd_trace(args) -> int:
    """Record a fig6-style failure run with tracing, export, summarize."""
    from repro.metrics.collectors import recovery_time
    from repro.trace import (
        merge_profiles,
        profiling,
        timeline_of,
        validate_chrome_trace,
        write_chrome_trace,
        write_jsonl,
    )
    from repro.trace.export import chrome_trace

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)

    wanted = ("clonos", "flink") if args.mode == "both" else (args.mode,)
    if args.profile:
        with profiling() as profilers:
            runs = fig6_single_failure(
                query=args.query,
                victim=args.victim,
                events_per_partition=args.events,
                rate=args.rate,
                kill_at=args.kill_at,
                checkpoint_interval=args.checkpoint_interval,
            )
    else:
        profilers = []
        runs = fig6_single_failure(
            query=args.query,
            victim=args.victim,
            events_per_partition=args.events,
            rate=args.rate,
            kill_at=args.kill_at,
            checkpoint_interval=args.checkpoint_interval,
        )

    failures = []
    for label in wanted:
        run = runs[label]
        timeline = timeline_of(run.result)
        trace = run.result.jm.trace
        document = chrome_trace(
            trace,
            timeline,
            job_name=f"fig6-{args.query}-{label}",
            extra_metadata={
                "query": args.query,
                "mode": label,
                "victim": args.victim,
                "kill_at": args.kill_at,
            },
        )
        stem = f"fig6-{args.query}-{label}"
        jsonl_path = write_jsonl(out_dir / f"{stem}.jsonl", trace)
        chrome_path = write_chrome_trace(out_dir / f"{stem}.chrome.json", document)
        problems = validate_chrome_trace(document)
        if problems:
            failures.append(f"{label}: invalid Chrome trace: {problems[:3]}")

        measured = recovery_time(run.result.latencies, run.failure_time)
        print(f"\n=== {label} ===")
        print(f"events: {len(trace)}  exported: {jsonl_path}, {chrome_path}")
        print(
            "metrics.collectors recovery time:",
            f"{measured:.3f}s" if measured is not None else "n/a",
        )
        for incident in timeline.incidents:
            totals = incident.phase_totals()
            print(
                f"incident {incident.index}: victim={incident.victim} "
                f"failed at {incident.failure_time:.2f}s, end-to-end "
                f"{incident.end_to_end:.3f}s ({incident.end_source}), "
                f"{incident.named_phase_count()} named phases, "
                f"retries={incident.retries}"
            )
            print(
                render_table(
                    ["phase", "seconds", "share"],
                    [
                        (
                            name,
                            f"{dur:.4f}",
                            f"{dur / incident.end_to_end * 100.0:.1f}%"
                            if incident.end_to_end > 0
                            else "-",
                        )
                        for name, dur in totals.items()
                    ],
                )
            )
            if args.check:
                if incident.named_phase_count() < 5:
                    failures.append(
                        f"{label}: incident {incident.index} has only "
                        f"{incident.named_phase_count()} named phases"
                    )
                if (
                    incident.end_source == "latency-envelope"
                    and measured is not None
                    and measured > 0
                    and abs(incident.phase_sum() - measured) > 0.01 * measured
                ):
                    failures.append(
                        f"{label}: incident {incident.index} phase sum "
                        f"{incident.phase_sum():.4f}s deviates >1% from "
                        f"measured recovery {measured:.4f}s"
                    )
        if args.check and not timeline.incidents:
            failures.append(f"{label}: no recovery incidents reconstructed")

    if profilers:
        print()
        print(merge_profiles(profilers).report(top=args.top))

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if args.check:
        print("\ntrace check: OK")
    return 0


def _cmd_memory(args) -> int:
    rows = memory_spill_study(duration=args.duration)
    print("Section 7.5: spill policies x pool sizes")
    print(
        render_table(
            ["policy", "pool KB", "ingest rec/s", "peak bufs", "spilled"],
            [
                (r.policy, r.pool_kbytes, f"{r.rate:.0f}", r.peak_memory_buffers,
                 r.spilled_buffers)
                for r in rows
            ],
        )
    )
    return 0


def _cmd_table1(args) -> int:
    cells = table1_assumptions(n_records=args.events)
    print("Table 1 (operationalised): consistency after recovering a failure")
    print(
        render_table(
            ["scheme", "operator", "lost", "dup", "inconsistent", "exactly-once"],
            [
                (
                    c.mode,
                    "deterministic" if c.deterministic else "nondeterministic",
                    c.lost, c.duplicated, c.inconsistent,
                    "yes" if c.exactly_once else "NO",
                )
                for c in cells
            ],
        )
    )
    return 0


# -- determinism tooling ------------------------------------------------------

#: Examples shipped at the repository root; linted as whole files and
#: double-run (entry point per name) by ``sanitize``.
_EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
_EXAMPLE_NAMES = ("quickstart", "fraud_detection", "exactly_once_output",
                  "nexmark_hot_items")


class _LintProbeService:
    """Stand-in for Q13's external side-input service during graph lint."""

    def get_now(self, key):
        return key


def _load_example(name: str):
    path = _EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples.{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _query_graph(name: str):
    """Build query ``name``'s graph against a fresh log (for linting)."""
    from repro.external.kafka import DurableLog
    from repro.nexmark.queries import QUERIES

    log = DurableLog()
    external = _LintProbeService() if name == "Q13" else None
    return QUERIES[name](log, external=external)


def _cmd_bench(args) -> int:
    """Time the perf suites and check the golden determinism digests.

    Exit codes: 0 all suites ran and goldens match; 1 golden drift (a
    determinism regression — the hard failure CI gates on).
    """
    import json as json_module

    from repro.bench import SUITES, check_goldens, perf_payload, run_suite

    print("golden determinism check...", flush=True)
    golden_failures = check_goldens()
    for failure in golden_failures:
        print(f"GOLDEN DRIFT: {failure}", file=sys.stderr)
    if not golden_failures:
        print("golden digests: OK (schedule, sink, trace byte-identical)")
    if args.golden_only:
        return 1 if golden_failures else 0

    names = args.suites or list(SUITES)
    results = []
    for name in names:
        print(f"suite {name}: running...", flush=True)
        result = run_suite(name)
        print(
            f"suite {name}: {result.wall_clock_s:.2f}s wall, "
            f"{result.records_per_wall_second:,.0f} simulated records/s"
        )
        results.append(result)
    payload = perf_payload(results, golden_failures)
    total = payload["total_wall_clock_s"]
    speedup = payload.get("speedup_vs_baseline")
    line = f"total: {total}s"
    if speedup is not None:
        line += f" ({speedup}x vs pre-optimisation baseline)"
    print(line)
    if args.json:
        Path(args.json).write_text(
            json_module.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"bench written: {args.json}", file=sys.stderr)
    return 1 if golden_failures else 0


def _cmd_profile(args) -> int:
    """Run one perf suite under the sim-aware profiler; print hot spots."""
    import json as json_module
    import time as time_module

    from repro.bench import SUITES
    from repro.trace import merge_profiles, profiling

    spec = SUITES[args.suite]
    started = time_module.perf_counter()
    with profiling() as profilers:
        spec.runner()
    wall = time_module.perf_counter() - started
    merged = merge_profiles(profilers)
    if args.json:
        payload = {
            "bench": "profile",
            "suite": spec.name,
            "wall_clock_s": round(wall, 3),
            "kernel_steps": merged.steps,
            "attributed_ms": round(merged.total_ms(), 1),
            "rows": [
                {
                    "where": row.name,
                    "calls": row.calls,
                    "total_ms": round(row.total_ms, 2),
                    "mean_us": round(row.mean_us, 1),
                }
                for row in merged.rows(args.top)
            ],
        }
        print(json_module.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"suite {spec.name}: {wall:.2f}s wall ({spec.description})")
        print(merged.report(top=args.top))
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis import dedupe_reports, lint_file, lint_graph
    from repro.nexmark.queries import QUERIES

    targets = [t for t in (args.targets or ["all"])]
    reports = []
    try:
        for raw in targets:
            target = raw.strip()
            upper = target.upper()
            if target == "all":
                reports.extend(
                    lint_file(_EXAMPLES_DIR / f"{name}.py") for name in _EXAMPLE_NAMES
                )
                reports.extend(lint_graph(_query_graph(q)) for q in sorted(QUERIES))
            elif target == "examples":
                reports.extend(
                    lint_file(_EXAMPLES_DIR / f"{name}.py") for name in _EXAMPLE_NAMES
                )
            elif upper in QUERIES:
                reports.append(lint_graph(_query_graph(upper)))
            elif target.endswith(".py"):
                reports.append(lint_file(target))
            else:
                print(f"unknown lint target {target!r} "
                      f"(all | examples | Q1..Q14 | path/to/file.py)", file=sys.stderr)
                return 2
    except Exception as exc:  # internal error, not a finding: exit 2
        print(f"ndlint: internal error: {exc!r}", file=sys.stderr)
        return 2
    dedupe_reports(reports)
    failed = False
    for report in reports:
        print(report.summary())
        if report.findings:
            print(report.render())
        for target in report.unresolved:
            print(f"ndlint: cannot read source for {target!r}", file=sys.stderr)
        failed = failed or not report.ok(strict=args.strict) or bool(report.unresolved)
    n_err = sum(len(r.errors) for r in reports)
    n_warn = sum(len(r.warnings) for r in reports)
    print(f"\nndlint: {len(reports)} targets, {n_err} errors, {n_warn} warnings")
    return 1 if failed else 0


def _cmd_verify_static(args) -> int:
    """Interprocedural causal-coverage analysis (ND201–ND210) over a tree.

    Exit codes follow the determinism-tooling convention: 0 clean, 1
    findings (or parse errors in the scanned tree), 2 internal error.
    """
    import json as json_module

    from repro.analysis.causal import analyze_tree

    try:
        roots = [Path(p) if p is not None else None
                 for p in (args.roots or [None])]
        reports = []
        for root in roots:
            if root is not None and not root.is_dir():
                print(f"verify-static: not a directory: {root}", file=sys.stderr)
                return 2
            package = root.name if root is not None else "repro"
            reports.append(analyze_tree(root, package=package))
    except Exception as exc:
        print(f"verify-static: internal error: {exc!r}", file=sys.stderr)
        return 2
    for report in reports:
        print(report.to_json() if args.json else report.render())
    if args.bench:
        totals = {"findings": 0, "exempted": 0, "wall_clock_s": 0.0,
                  "modules": 0, "functions": 0}
        counts: dict = {}
        for report in reports:
            totals["findings"] += len(report.findings)
            totals["exempted"] += len(report.exempted)
            totals["wall_clock_s"] += report.stats.get("wall_clock_s", 0.0)
            totals["modules"] += int(report.stats.get("modules", 0))
            totals["functions"] += int(report.stats.get("functions", 0))
            for rule_id, n in report.counts().items():
                counts[rule_id] = counts.get(rule_id, 0) + n
        payload = {
            "bench": "verify-static",
            "roots": [r.root for r in reports],
            "ok": all(r.ok for r in reports),
            "counts_by_rule": dict(sorted(counts.items())),
            **totals,
            "wall_clock_s": round(totals["wall_clock_s"], 4),
        }
        Path(args.bench).write_text(
            json_module.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"bench written: {args.bench}", file=sys.stderr)
    return 0 if all(r.ok for r in reports) else 1


def _sanitize_thunk(target: str):
    """Resolve a sanitize target to ``(label, zero-arg runnable)``."""
    if target == "quickstart":
        module = _load_example("quickstart")
        return "quickstart (with failure)", lambda: module.run(kill_the_counter=True)
    if target == "fraud_detection":
        from repro.config import FaultToleranceMode

        module = _load_example("fraud_detection")
        return "fraud_detection (CLONOS)", lambda: module.run(FaultToleranceMode.CLONOS)
    if target == "exactly_once_output":
        from repro.core.output import ExactlyOnceKafkaSink

        module = _load_example("exactly_once_output")
        return (
            "exactly_once_output (§5.5 sink)",
            lambda: module.run(lambda log: ExactlyOnceKafkaSink(log, "alerts")),
        )
    if target == "nexmark_hot_items":
        return _sanitize_thunk("Q5")
    upper = target.upper()
    from repro.nexmark.queries import QUERIES

    if upper in QUERIES:
        from repro.config import FaultToleranceMode
        from repro.harness.experiment import run_experiment
        from repro.harness.figures import experiment_config, nexmark_graph_fn

        config = experiment_config(FaultToleranceMode.CLONOS, None)
        graph_fn = nexmark_graph_fn(upper, 2, 2000, 2000.0)
        return (
            f"nexmark {upper} (CLONOS)",
            lambda: run_experiment(graph_fn, config, limit=3600),
        )
    return None


def _cmd_sanitize(args) -> int:
    from repro.analysis import double_run

    targets = list(args.targets or ["all"])
    if "all" in targets:
        targets = list(_EXAMPLE_NAMES[:-1]) + ["Q1", "Q3", "Q5", "Q8"]
    ok = True
    for target in targets:
        resolved = _sanitize_thunk(target)
        if resolved is None:
            print(f"unknown sanitize target {target!r} "
                  f"(all | {' | '.join(_EXAMPLE_NAMES)} | Q1..Q14)", file=sys.stderr)
            return 2
        label, thunk = resolved
        report = double_run(thunk, label=label, keep_trace=args.trace)
        print(report.render())
        ok = ok and report.ok
    return 0 if ok else 1


def _parse_seeds(args) -> List[int]:
    if args.seed is not None:
        return [args.seed]
    raw = args.seeds
    if ":" in raw:
        lo, hi = raw.split(":", 1)
        return list(range(int(lo), int(hi)))
    return [int(s) for s in raw.split(",")]


def _cmd_chaos(args) -> int:
    from repro.chaos import chaos_soak
    from repro.metrics.collectors import recovery_summary

    seeds = _parse_seeds(args)
    results = chaos_soak(
        seeds,
        max_faults=args.max_faults,
        n_records=args.events,
        limit=args.limit,
    )
    rows = []
    violations = 0
    for r in results:
        rows.append(
            (
                r.seed,
                r.verdict,
                f"{r.duration:.2f}s",
                ",".join(r.chaos_summary["kinds"]) or "-",
                r.missing,
                r.duplicated,
                r.chaos_summary["control_plane_drops"],
            )
        )
        violations += r.verdict == "violation"
        if args.verbose or r.verdict == "violation":
            print(f"--- seed {r.seed}: {r.verdict}")
            for when, kind, who in r.recovery_events:
                if not kind.startswith("suspected"):
                    print(f"    t={when:.4f} {kind} {who}")
            print("   ", recovery_summary(r.recovery_events))
    print("chaos soak: randomised fault plans vs the recovery protocol")
    print(
        render_table(
            ["seed", "verdict", "dur", "faults", "lost", "dup", "rpc drops"],
            rows,
        )
    )
    n_eo = sum(r.verdict == "exactly-once" for r in results)
    n_deg = sum(r.verdict == "degraded:global_rollback" for r in results)
    print(
        f"\n{len(results)} runs: {n_eo} exactly-once, {n_deg} degraded, "
        f"{violations} violations"
    )
    return 1 if violations else 0


def _cmd_scenarios(args) -> int:
    import json

    from repro.errors import ScenarioError
    from repro.metrics.collectors import scenario_summary
    from repro.scenarios import SCENARIOS, run_pack

    if args.list:
        for scenario in SCENARIOS:
            print(f"{scenario.name:28s} {scenario.description}")
        return 0

    only = None
    if args.only:
        only = [name.strip() for name in args.only.split(",") if name.strip()]
    try:
        results = run_pack(SCENARIOS, only=only, seed=args.seed)
    except ScenarioError as exc:
        print(f"scenarios: {exc}", file=sys.stderr)
        return 2

    print("scenario pack: named production incidents vs their verdicts")
    rows = []
    for r in results:
        failed_checks = ",".join(
            name for name, status in r.checks.items() if status != "ok"
        )
        rows.append(
            (
                r.name,
                r.verdict,
                f"{r.duration:.2f}s",
                f"{r.duration_overhead:.2f}x",
                r.missing,
                r.duplicated,
                r.degradations,
                "-" if r.recovery_time is None else f"{r.recovery_time:.3f}s",
                failed_checks or "-",
            )
        )
        if args.verbose or not r.ok:
            print(f"--- {r.name}: {r.verdict}")
            for name, status in r.checks.items():
                print(f"    {name}: {status}")
            if args.verbose:
                for when, kind, who in r.recovery_events:
                    if not kind.startswith("suspected"):
                        print(f"    t={when:.4f} {kind} {who}")
    print(
        render_table(
            ["scenario", "verdict", "dur", "overhead", "lost", "dup",
             "degr", "recovery", "failed checks"],
            rows,
        )
    )
    summary = scenario_summary(results)
    print(
        f"\n{summary['scenarios']} scenarios: {summary['passed']} passed, "
        f"{len(summary['failed'])} failed"
        + (f" ({', '.join(summary['failed'])})" if summary["failed"] else "")
    )
    if args.json:
        payload = {
            "summary": summary,
            "scenarios": [r.to_dict() for r in results],
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 1 if summary["failed"] else 0


def _audit_matches(kind: str, detail: str, violations) -> bool:
    """Did the sweep flag the artifact this injection damaged?"""
    names = [name for (_kind, name, _detail) in violations]
    if kind in ("blob_corruption", "torn_write"):
        task, cid = detail.rsplit("@", 1)
        return any(detail in n or f"chk/{task}/{cid}" in n for n in names)
    if kind == "standby_image":
        return any(
            vkind == "standby-image" and name == detail
            for (vkind, name, _d) in violations
        )
    if kind == "buffer_bitflip":
        artifact = detail.rsplit(":", 1)[0]  # strip the mutation suffix
        return any(artifact in n for n in names)
    # determinant_truncation: "holder:log@epochN:-k" vs
    # "holder:stored[victim]:log@epochN"
    holder, rest = detail.split(":", 1)
    log_at_epoch = rest.rsplit(":", 1)[0]
    return any(n.startswith(holder) and log_at_epoch in n for n in names)


def _audit_run(args):
    """Deploy the synthetic chain and run it to mid-flight, so every artifact
    class is populated: retained checkpoints, standby images, logged
    in-flight buffers, determinant replicas."""
    from repro.chaos.soak import fast_chaos_config
    from repro.external.kafka import DurableLog
    from repro.runtime.jobmanager import JobManager
    from repro.sim.core import Environment
    from repro.workloads.synthetic import synthetic_chain

    config = fast_chaos_config(seed=args.seed or 0, checkpoint_interval=0.25)
    env = Environment()
    log = DurableLog()
    graph = synthetic_chain(
        log,
        depth=3,
        parallelism=2,
        rate_per_partition=1000.0,
        total_per_partition=args.events,
        state_bytes_per_task=8192,
        num_keys=16,
        nondeterministic=True,
        in_topic="audit-in",
        out_topic="audit-out",
        exactly_once_sink=True,
    )
    jm = JobManager(env, graph, config)
    jm.deploy()
    env.run(until=args.events / 1000.0 * 0.6)
    return jm


def _cmd_audit(args) -> int:
    import random as random_module

    from repro.integrity.audit import audit_job
    from repro.integrity.corruption import random_corruptions
    from repro.sim.rng import derive_seed

    if args.soak or args.seeds is not None:
        return _cmd_audit_soak(args)
    jm = _audit_run(args)
    injected = []
    if args.inject:
        rng = random_module.Random(derive_seed(args.seed or 0, "audit-inject"))
        injected = random_corruptions(jm, args.inject, rng)
        for kind, detail in injected:
            print(f"injected: {kind} {detail}")
    report = audit_job(jm)
    print(report.render())
    if args.inject:
        missed = [
            (kind, detail)
            for kind, detail in injected
            if not _audit_matches(kind, detail, report.violations)
        ]
        for kind, detail in missed:
            print(f"MISSED: {kind} {detail}", file=sys.stderr)
        print(
            f"audit self-test: injected={len(injected)} "
            f"detected={len(injected) - len(missed)}"
        )
        return 0 if injected and not missed else 1
    return 0 if report.ok else 1


def _cmd_audit_soak(args) -> int:
    from repro.integrity.soak import integrity_soak

    seeds = _parse_seeds(args) if (args.seeds or args.seed is not None) else list(range(8))
    results = integrity_soak(seeds, n_records=args.events)
    rows = []
    violations = 0
    for r in results:
        rows.append(
            (
                r.seed,
                r.verdict,
                r.corruptions_injected,
                r.integrity_summary.get("total_failed", 0),
                len(r.audit.violations),
            )
        )
        violations += r.verdict == "violation"
        if r.verdict == "violation":
            print(f"--- seed {r.seed}: {r.verdict}")
            for when, kind, who in r.chaos.recovery_events:
                if not kind.startswith("suspected"):
                    print(f"    t={when:.4f} {kind} {who}")
    print("integrity soak: corruption fault plans vs the validation layer")
    print(
        render_table(
            ["seed", "verdict", "injected", "flagged in run", "flagged by audit"],
            rows,
        )
    )
    n_eo = sum(r.verdict == "exactly-once" for r in results)
    n_deg = sum(r.verdict == "degraded:global_rollback" for r in results)
    print(
        f"\n{len(results)} runs: {n_eo} exactly-once, {n_deg} degraded, "
        f"{violations} violations"
    )
    return 1 if violations else 0


def _cmd_transparency(args) -> int:
    import json

    from repro.transparency import (
        default_topologies,
        run_transparency_suite,
        suite_payload,
    )

    topologies = default_topologies()
    if args.topologies:
        wanted = {name.strip() for name in args.topologies.split(",")}
        known = {t.name for t in topologies}
        unknown = wanted - known
        if unknown:
            print(
                f"unknown topologies: {', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(known))})",
                file=sys.stderr,
            )
            return 2
        topologies = [t for t in topologies if t.name in wanted]

    def on_case(case):
        if args.verbose or not case.ok:
            print(
                f"    {case.point.label:32s} {case.outcome:24s} "
                f"miss={case.missing} dup={case.duplicated} "
                f"dur={case.duration:.2f}s"
            )

    from repro.errors import JobError

    try:
        reports = run_transparency_suite(
            topologies,
            boundaries=args.boundaries,
            compound=not args.no_compound,
            limit=args.limit,
            on_case=on_case,
        )
    except JobError as exc:
        print(f"transparency: internal error: {exc}", file=sys.stderr)
        return 2

    print("failure transparency: exhaustive failure-point exploration")
    rows = [
        (
            r.topology,
            r.operators,
            r.tasks,
            len(r.cases),
            r.transparent,
            r.announced,
            r.skipped,
            len(r.violations),
        )
        for r in reports
    ]
    print(
        render_table(
            ["topology", "ops", "tasks", "cases", "transparent",
             "announced", "skipped", "violations"],
            rows,
        )
    )
    payload = suite_payload(reports)
    for case in payload["violating_cases"]:
        print(
            f"VIOLATION {case['topology']} {case['case']}: {case['outcome']} "
            f"(missing={case['missing']} dup={case['duplicated']})",
            file=sys.stderr,
        )
    if args.json:
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    total = payload["cases_total"]
    print(
        f"\n{total} cases: {payload['transparent']} transparent, "
        f"{payload['announced_degradation']} announced degradations, "
        f"{payload['skipped']} skipped, {payload['violations']} violations"
    )
    return 1 if payload["violations"] else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Clonos reproduction: run the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p5 = sub.add_parser("fig5", help="overhead under normal operation")
    p5.add_argument("--queries", help="comma-separated subset, e.g. Q1,Q5,Q7")
    p5.add_argument("--events", type=int, default=6000,
                    help="events per source partition")
    p5.set_defaults(fn=_cmd_fig5)

    p6 = sub.add_parser("fig6-single", help="single-operator failure")
    p6.add_argument("--query", default="Q3", choices=("Q3", "Q8"))
    p6.add_argument("--victim", default="join[0]")
    p6.add_argument("--events", type=int, default=36000)
    p6.add_argument("--rate", type=float, default=6000.0)
    p6.add_argument("--kill-at", type=float, default=4.0, dest="kill_at")
    p6.set_defaults(fn=_cmd_fig6_single)

    p6m = sub.add_parser("fig6-multi", help="multiple/concurrent failures")
    p6m.add_argument("--concurrent", action="store_true")
    p6m.set_defaults(fn=_cmd_fig6_multi)

    ptr = sub.add_parser(
        "trace",
        help="record a fig6-style failure run with causal tracing; export "
             "JSONL + Chrome-trace JSON and print the per-phase breakdown",
    )
    ptr.add_argument("--query", default="Q3", choices=("Q3", "Q8"))
    ptr.add_argument("--victim", default="join[0]")
    ptr.add_argument("--events", type=int, default=36000)
    ptr.add_argument("--rate", type=float, default=6000.0)
    ptr.add_argument("--kill-at", type=float, default=4.0, dest="kill_at")
    ptr.add_argument("--checkpoint-interval", type=float, default=2.0,
                     dest="checkpoint_interval")
    ptr.add_argument("--mode", default="clonos",
                     choices=("clonos", "flink", "both"),
                     help="which arm(s) to export (default clonos)")
    ptr.add_argument("--out", default="trace_out",
                     help="output directory for exported traces")
    ptr.add_argument("--no-profile", dest="profile", action="store_false",
                     help="skip the wall-clock sim profiler")
    ptr.add_argument("--top", type=int, default=10,
                     help="profiler rows to print (default 10)")
    ptr.add_argument("--check", action="store_true",
                     help="exit 1 unless every incident has >=5 named phases "
                          "whose durations sum to within 1%% of the measured "
                          "recovery time")
    ptr.set_defaults(fn=_cmd_trace)

    pm = sub.add_parser("memory", help="spill-policy/memory study")
    pm.add_argument("--duration", type=float, default=12.0)
    pm.set_defaults(fn=_cmd_memory)

    pt = sub.add_parser("table1", help="consistency vs determinism matrix")
    pt.add_argument("--events", type=int, default=4000)
    pt.set_defaults(fn=_cmd_table1)

    pb = sub.add_parser(
        "bench", help="perf suites + golden determinism digests"
    )
    pb.add_argument(
        "--suite",
        dest="suites",
        action="append",
        choices=["fig5", "fig6-single", "fig6-multi"],
        help="suite to run (repeatable; default: all)",
    )
    pb.add_argument(
        "--json", metavar="PATH", help="write results as JSON (e.g. BENCH_perf.json)"
    )
    pb.add_argument(
        "--golden-only",
        action="store_true",
        help="only check the golden digests (the fast CI determinism gate)",
    )
    pb.set_defaults(fn=_cmd_bench)

    pp = sub.add_parser(
        "profile", help="run one perf suite under the sim-aware profiler"
    )
    pp.add_argument(
        "suite",
        nargs="?",
        default="fig5",
        choices=["fig5", "fig6-single", "fig6-multi"],
        help="suite to profile (default: fig5)",
    )
    pp.add_argument("--top", type=int, default=15, help="rows to show")
    pp.add_argument("--json", action="store_true", help="emit JSON instead of a table")
    pp.set_defaults(fn=_cmd_profile)

    pl = sub.add_parser("lint", help="NDLint: static nondeterminism check")
    pl.add_argument("targets", nargs="*",
                    help="all | examples | Q1..Q14 | path/to/file.py (default: all)")
    pl.add_argument("--strict", action="store_true",
                    help="treat warnings as failures too")
    pl.set_defaults(fn=_cmd_lint)

    pv = sub.add_parser(
        "verify-static",
        help="interprocedural causal-coverage analysis: ND201 (ND->state), "
             "ND202 (ND->output), ND203 (dead determinant), ND210 (phase "
             "protocol)",
    )
    pv.add_argument("roots", nargs="*", metavar="DIR",
                    help="source tree(s) to scan (default: the installed "
                         "src/repro tree)")
    pv.add_argument("--json", action="store_true",
                    help="emit the machine-readable JSON report")
    pv.add_argument("--bench", metavar="PATH", default=None,
                    help="also write analyzer wall-clock + finding counts "
                         "as JSON (e.g. BENCH_static.json)")
    pv.set_defaults(fn=_cmd_verify_static)

    ps = sub.add_parser(
        "sanitize", help="double-run determinism sanitizer + protocol invariants"
    )
    ps.add_argument("targets", nargs="*",
                    help="all | quickstart | fraud_detection | exactly_once_output "
                         "| nexmark_hot_items | Q1..Q14 (default: all)")
    ps.add_argument("--no-trace", dest="trace", action="store_false",
                    help="skip the per-event trace (hash comparison only)")
    ps.set_defaults(fn=_cmd_sanitize)

    pc = sub.add_parser(
        "chaos", help="seeded chaos soak: random fault plans vs recovery"
    )
    pc.add_argument("--seeds", default="0:10",
                    help="range lo:hi or comma list (default 0:10)")
    pc.add_argument("--seed", type=int, default=None,
                    help="run exactly one seed (overrides --seeds)")
    pc.add_argument("--max-faults", type=int, default=4, dest="max_faults")
    pc.add_argument("--events", type=int, default=1200,
                    help="records per source partition")
    pc.add_argument("--limit", type=float, default=120.0,
                    help="simulated-seconds deadline per run")
    pc.add_argument("--verbose", action="store_true",
                    help="print every run's recovery events")
    pc.set_defaults(fn=_cmd_chaos)

    pa = sub.add_parser(
        "audit",
        help="sweep every stored artifact (checkpoints, logs, standby "
             "images) and verify its fingerprint",
    )
    pa.add_argument("--seed", type=int, default=None,
                    help="workload/injection seed (default 0); with --soak, "
                         "run exactly one soak seed")
    pa.add_argument("--inject", type=int, default=0, metavar="K",
                    help="self-test: corrupt K artifacts mid-flight and "
                         "require the sweep to flag every one")
    pa.add_argument("--soak", action="store_true",
                    help="run the corruption-chaos soak instead of a single "
                         "sweep (validated recovery + closing audit per seed)")
    pa.add_argument("--seeds", default=None,
                    help="soak seed range lo:hi or comma list (implies --soak; "
                         "default 0:8)")
    pa.add_argument("--events", type=int, default=1200,
                    help="records per source partition")
    pa.set_defaults(fn=_cmd_audit)

    pf = sub.add_parser(
        "transparency",
        help="exhaustive failure-point exploration: assert observational "
             "equivalence of recovered output on small topologies",
    )
    pf.add_argument("--topologies", default=None,
                    help="comma list restricting the default topology set "
                         "(pair-p1, chain3-p1, chain4-p1, chain3-p2)")
    pf.add_argument("--boundaries", type=int, default=2,
                    help="epoch boundaries probed per task (default 2)")
    pf.add_argument("--no-compound", action="store_true", dest="no_compound",
                    help="skip the compound (overlapping-recovery) kill pairs")
    pf.add_argument("--limit", type=float, default=60.0,
                    help="simulated-seconds deadline per case")
    pf.add_argument("--json", default=None, metavar="PATH",
                    help="write the suite payload (BENCH_transparency.json)")
    pf.add_argument("--verbose", action="store_true",
                    help="print every case, not just violations")
    pf.set_defaults(fn=_cmd_transparency)

    psc = sub.add_parser(
        "scenarios",
        help="production incident scenario pack: named fault schedules "
             "with per-scenario machine-checked verdicts",
    )
    psc.add_argument("--list", action="store_true",
                     help="list the named scenarios and exit")
    psc.add_argument("--only", default=None, metavar="NAMES",
                     help="comma list of scenario names to run")
    psc.add_argument("--seed", type=int, default=None,
                     help="override every scenario's seed (default: "
                          "each scenario's own)")
    psc.add_argument("--json", default=None, metavar="PATH",
                     help="write the pack payload (BENCH_scenarios.json)")
    psc.add_argument("--verbose", action="store_true",
                     help="print per-check status and recovery events")
    psc.set_defaults(fn=_cmd_scenarios)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
