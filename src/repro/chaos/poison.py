"""Poison-pill record bookkeeping (chaos ``poison_pill``).

A poison pill is a *record* fault, not a component fault: some input record
deterministically crashes the operator that processes it, on every
incarnation, until an operator-level policy gives up and skips it.  The
registry lives on the :class:`~repro.runtime.jobmanager.JobManager` (one
per job, shared by every task incarnation) so pill identity and crash
counts survive task restarts — that is what makes the crash loop converge.

Replay-consistency contract: the task's record path consults the registry
*before* the operator sees a record, and a "crash" verdict raises before
any state mutation or output.  An incarnation therefore either dies **at**
the pill (leaving no artifact that includes it) or — once the pill is
quarantined — skips it without side effects.  Every incarnation that gets
past the pill observes the identical skip, so checkpoints, determinant
logs, and sink output stay consistent across recoveries.

Records are identified by their origin pair ``(value[0], value[1])`` —
the ``(partition, offset)`` stamp every synthetic-workload record carries
end-to-end — falling back to the raw value for non-tuple payloads.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple


def record_ident(value) -> Tuple:
    """Stable identity of a record payload: its origin ``(partition, offset)``."""
    if isinstance(value, tuple) and len(value) >= 2:
        return (value[0], value[1])
    return (value,)


class PoisonRegistry:
    """Tracks armed, active, and quarantined poison pills for one job.

    ``arm(task_name, count)`` marks the next ``count`` distinct records the
    task processes as permanent pills.  ``on_record`` is the per-record
    verdict used by the task's data path:

    * ``"pass"`` — not a pill, process normally (the overwhelmingly common
      case; callers guard the call itself behind ``task._poison_active``).
    * ``"crash"`` — a live pill: raise before the operator runs.
    * ``"quarantine"`` — this encounter crossed ``quarantine_after``
      crashes: skip the record *and announce* the degradation (the caller
      reports it once, via ``JobManager.note_poison_quarantine``).
    * ``"skip"`` — an already-quarantined pill: silently skip.
    """

    def __init__(self, quarantine_after: int = 2):
        if quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")
        self.quarantine_after = quarantine_after
        #: task name -> number of not-yet-designated pills.
        self._pending: Dict[str, int] = {}
        #: task name -> {pill ident -> crash count so far}.
        self._pills: Dict[str, Dict[Tuple, int]] = {}
        #: task name -> idents that have been quarantined (skip forever).
        self._quarantined: Dict[str, Set[Tuple]] = {}
        #: Announced quarantine transitions, in order: (task, ident).
        self.quarantine_log: List[Tuple[str, Tuple]] = []

    # -- arming ------------------------------------------------------------------------

    def arm(self, task_name: str, count: int = 1) -> None:
        self._pending[task_name] = self._pending.get(task_name, 0) + max(1, count)

    def is_armed(self, task_name: str) -> bool:
        """Whether the task must consult the registry per record at all."""
        return (
            self._pending.get(task_name, 0) > 0
            or bool(self._pills.get(task_name))
            or bool(self._quarantined.get(task_name))
        )

    # -- per-record verdict ------------------------------------------------------------

    def on_record(self, task_name: str, value) -> str:
        ident = record_ident(value)
        quarantined = self._quarantined.get(task_name)
        if quarantined is not None and ident in quarantined:
            return "skip"
        pills = self._pills.get(task_name)
        if pills is not None and ident in pills:
            crashes = pills[ident]
            if crashes >= self.quarantine_after:
                del pills[ident]
                self._quarantined.setdefault(task_name, set()).add(ident)
                self.quarantine_log.append((task_name, ident))
                return "quarantine"
            pills[ident] = crashes + 1
            return "crash"
        pending = self._pending.get(task_name, 0)
        if pending > 0:
            # Designate this record a pill.  Record identity makes this
            # idempotent across replays: the same (partition, offset) pair
            # re-encountered by a recovering incarnation hits the pill
            # branch above, not a second designation.
            self._pending[task_name] = pending - 1
            self._pills.setdefault(task_name, {})[ident] = 1
            return "crash"
        return "pass"

    def origin_of(self, value) -> Tuple:
        return record_ident(value)

    # -- reporting ---------------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        return {
            "armed_pending": dict(sorted(self._pending.items())),
            "live_pills": {
                task: sorted(pills) for task, pills in sorted(self._pills.items()) if pills
            },
            "quarantined": {
                task: sorted(idents)
                for task, idents in sorted(self._quarantined.items())
                if idents
            },
            "quarantine_events": list(self.quarantine_log),
        }

    def quarantined_count(self) -> int:
        return sum(len(s) for s in self._quarantined.values())
