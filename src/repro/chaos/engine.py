"""The chaos engine: schedules a :class:`FaultPlan` against a deployed job.

All randomness derives from the plan's seed (named substreams), so a run is
exactly reproducible.  Every applied or skipped fault is recorded on the
engine for post-run accounting.
"""

from __future__ import annotations

import random
from fnmatch import fnmatch
from typing import Dict, List, Optional, Tuple

from repro.chaos.plan import LINK_KINDS, FaultPlan, FaultSpec
from repro.config import FaultToleranceMode
from repro.errors import ChaosError
from repro.integrity.corruption import (
    corrupt_checkpoint,
    corrupt_inflight_entry,
    truncate_determinant_log,
)
from repro.net.link import LinkChaos, NetworkLink
from repro.runtime.task import TaskStatus
from repro.sim.rng import derive_seed

#: Modes whose upstreams keep in-flight logs — the prerequisite for
#: sender-driven repair of lossy links.
_INFLIGHT_MODES = (
    FaultToleranceMode.CLONOS,
    FaultToleranceMode.DIVERGENT,
    FaultToleranceMode.SEEP,
)


class ControlPlaneChaos:
    """A windowed lossy/duplicating control plane, consulted by every
    :class:`~repro.runtime.rpc.ControlQueue` delivery while installed.

    ``target`` restricts the faults to traffic involving matching parties
    (sender or receiver, exact name or glob): a *partial* control-plane
    partition, isolating one task or node while the rest of the job's
    control traffic flows normally."""

    def __init__(
        self,
        env,
        rng: random.Random,
        drop_rate: float = 0.0,
        dup_rate: float = 0.0,
        start: float = 0.0,
        until: float = float("inf"),
        target: Optional[str] = None,
    ):
        self.env = env
        self.rng = rng
        self.drop_rate = drop_rate
        self.dup_rate = dup_rate
        self.start = start
        self.until = until
        self.target = None if target in (None, "*") else target

    def _active(self, now: float) -> bool:
        return self.start <= now < self.until

    def _matches(self, parties) -> bool:
        if self.target is None:
            return True
        for party in parties:
            if party is None:
                continue
            if party == self.target or fnmatch(party, self.target):
                return True
        return False

    def should_drop(self, now: float, *parties: Optional[str]) -> bool:
        return (
            self._active(now)
            and self._matches(parties)
            and self.rng.random() < self.drop_rate
        )

    def should_duplicate(self, now: float, *parties: Optional[str]) -> bool:
        return (
            self._active(now)
            and self._matches(parties)
            and self.rng.random() < self.dup_rate
        )


class ChaosEngine:
    """Arms a plan against a deployed :class:`JobManager`."""

    def __init__(self, jm, plan: FaultPlan):
        plan.validate()
        self.jm = jm
        self.env = jm.env
        self.plan = plan
        self.rng = random.Random(derive_seed(plan.seed, "chaos-engine"))
        #: (time, kind, target) of faults actually injected.
        self.applied: List[Tuple[float, str, str]] = []
        #: (time, kind, target, reason) of faults that could not apply.
        self.skipped: List[Tuple[float, str, str, str]] = []
        #: link -> (upstream task name, flat channel index, downstream name).
        self._links: Dict[NetworkLink, Tuple[str, int, str]] = {}
        for vertex in jm.vertices.values():
            for _edge, channels in vertex.out_links:
                for flat_idx, down_name, link in channels:
                    self._links[link] = (vertex.name, flat_idx, down_name)
        self._armed = False

    # -- arming -----------------------------------------------------------------

    def arm(self) -> None:
        """Schedule every spec.  Raises :class:`ChaosError` up front for
        faults the job's mode cannot absorb (``link_loss`` needs upstream
        in-flight logs to repair from)."""
        if self._armed:
            raise ChaosError("chaos engine already armed")
        self._armed = True
        mode = self.jm.config.mode
        for spec in self.plan.specs:
            if spec.kind == "link_loss" and mode not in _INFLIGHT_MODES:
                raise ChaosError(
                    f"link_loss requires an in-flight-log mode "
                    f"(CLONOS/DIVERGENT/SEEP), job runs {mode.name}"
                )
            self.env.schedule_callback(
                max(0.0, spec.at - self.env.now), lambda s=spec: self._apply(s)
            )

    # -- helpers ----------------------------------------------------------------

    def _note(self, spec: FaultSpec, target: str) -> None:
        self.applied.append((self.env.now, spec.kind, target))
        self.jm.recovery_events.append(
            (self.env.now, f"chaos:{spec.kind}", target)
        )
        self.jm.trace.emit(self.env.now, "chaos-fault", target, fault=spec.kind)

    def _skip(self, spec: FaultSpec, reason: str) -> None:
        self.skipped.append((self.env.now, spec.kind, spec.target, reason))

    def _pick_task(self, pattern: str) -> Optional[str]:
        # Exact names first: task names contain "[0]" which fnmatch would
        # read as a character class.
        if pattern in self.jm.vertices:
            return pattern
        names = sorted(n for n in self.jm.vertices if fnmatch(n, pattern))
        if not names:
            return None
        return self.rng.choice(names)

    def _matched_links(self, pattern: str) -> List[NetworkLink]:
        exact = [link for link in self._links if link.name == pattern]
        if exact:
            return exact
        return [link for link in self._links if fnmatch(link.name, pattern)]

    def _chaos_for(self, link: NetworkLink) -> LinkChaos:
        if link.chaos is None:
            link.chaos = LinkChaos(self.env)
        if link.chaos.on_loss is None:
            link.chaos.on_loss = self._on_link_loss
        return link.chaos

    def _on_link_loss(self, link: NetworkLink) -> None:
        """First drop of a loss episode: schedule the sender-driven repair
        after the connection-level detection delay."""
        up_name, flat_idx, down_name = self._links[link]
        self.env.schedule_callback(
            self.jm.cost.connection_failure_detection,
            lambda: self.jm.repair_channel(up_name, flat_idx, down_name),
        )

    # -- application ------------------------------------------------------------

    def _apply(self, spec: FaultSpec) -> None:
        handler = getattr(self, f"_apply_{spec.kind}")
        handler(spec)

    def _apply_task_kill(self, spec: FaultSpec) -> None:
        name = self._pick_task(spec.target)
        if name is None:
            self._skip(spec, "no matching task")
            return
        task = self.jm.vertices[name].task
        if task is None or task.status not in (
            TaskStatus.RUNNING,
            TaskStatus.RECOVERING,
        ):
            self._skip(spec, f"status {task.status.value if task else 'absent'}")
            return
        self._note(spec, name)
        self.jm.kill_task(name, force=True)

    def _resolve_node(self, target: str) -> Optional[int]:
        """Node-targeting kinds accept a node id *or* a task name/glob (the
        node currently hosting it), per the :class:`FaultSpec` docstring.  A
        digit target outside the cluster resolves to None (skip) instead of
        blowing up placement bookkeeping."""
        if target.isdigit():
            node_id = int(target)
            return node_id if self.jm.cluster.has_node(node_id) else None
        name = self._pick_task(target)
        return self.jm.cluster.node_of(name) if name is not None else None

    def _apply_node_crash(self, spec: FaultSpec) -> None:
        node_id = self._resolve_node(spec.target)
        if node_id is None:
            self._skip(spec, "no such node")
            return
        self._note(spec, f"node:{node_id}")
        self.jm.kill_node(node_id, force=True, fail_node=spec.fail_node)

    def _apply_standby_loss(self, spec: FaultSpec) -> None:
        name = self._pick_task(spec.target)
        vertex = self.jm.vertices.get(name) if name is not None else None
        if vertex is None or vertex.standby is None or vertex.standby.failed:
            self._skip(spec, "no live standby")
            return
        self._note(spec, name)
        vertex.standby.fail()
        self.jm.recovery_events.append((self.env.now, "standby-lost", name))

    def _apply_link_partition(self, spec: FaultSpec) -> None:
        links = self._matched_links(spec.target)
        if not links:
            self._skip(spec, "no matching link")
            return
        for link in links:
            chaos = self._chaos_for(link)
            chaos.partitioned = True
            self._note(spec, link.name)
            self.env.schedule_callback(spec.duration, chaos.heal)

    def _apply_link_delay(self, spec: FaultSpec) -> None:
        links = self._matched_links(spec.target)
        if not links:
            self._skip(spec, "no matching link")
            return
        for link in links:
            chaos = self._chaos_for(link)
            chaos.delay_factor = spec.factor
            self._note(spec, link.name)

            def restore(c=chaos) -> None:
                c.delay_factor = 1.0

            self.env.schedule_callback(spec.duration, restore)

    def _apply_link_loss(self, spec: FaultSpec) -> None:
        links = self._matched_links(spec.target)
        if not links:
            self._skip(spec, "no matching link")
            return
        link = self.rng.choice(sorted(links, key=lambda l: l.name))
        chaos = self._chaos_for(link)
        chaos.drop_next += spec.count
        self._note(spec, link.name)

    def _apply_recovery_freeze(self, spec: FaultSpec) -> None:
        """Kill the victim *and* partition every one of its input links, so
        the replacement's in-flight replay can never receive a buffer: the
        injected recovery-stall scenario the liveness watchdog exists for.
        ``duration`` bounds the partition (0 = frozen forever — the job can
        then only end via the watchdog's announced stall verdict)."""
        name = self._pick_task(spec.target)
        if name is None:
            self._skip(spec, "no matching task")
            return
        vertex = self.jm.vertices[name]
        task = vertex.task
        if task is None or task.status not in (
            TaskStatus.RUNNING,
            TaskStatus.RECOVERING,
        ):
            self._skip(spec, f"status {task.status.value if task else 'absent'}")
            return
        if not vertex.in_links:
            self._skip(spec, "victim has no input links to freeze")
            return
        for _in_flat, _inp, _up, link, _up_flat in vertex.in_links:
            chaos = self._chaos_for(link)
            chaos.partitioned = True
            if spec.duration:
                self.env.schedule_callback(spec.duration, chaos.heal)
        self._note(spec, name)
        self.jm.kill_task(name, force=True)

    def _apply_rpc_chaos(self, spec: FaultSpec) -> None:
        rng = random.Random(
            derive_seed(self.plan.seed, f"rpc-chaos@{spec.at:g}")
        )
        self.jm.control_chaos = ControlPlaneChaos(
            self.env,
            rng,
            drop_rate=spec.rate,
            dup_rate=spec.dup_rate,
            start=self.env.now,
            until=self.env.now + spec.duration
            if spec.duration
            else float("inf"),
            target=spec.target,
        )
        self._note(spec, f"drop={spec.rate:g},dup={spec.dup_rate:g}")

    def _apply_dfs_outage(self, spec: FaultSpec) -> None:
        self.jm.dfs.set_outage(self.env.now + spec.duration)
        self._note(spec, f"{spec.duration:g}s")

    def _apply_dfs_brownout(self, spec: FaultSpec) -> None:
        self.jm.dfs.set_brownout(self.env.now + spec.duration, spec.factor)
        self._note(spec, f"{spec.duration:g}s x{spec.factor:g}")

    def _apply_external_faults(self, spec: FaultSpec) -> None:
        external = self.jm.external
        if external is None:
            self._skip(spec, "no external service")
            return
        rng = random.Random(
            derive_seed(self.plan.seed, f"external-faults@{spec.at:g}")
        )
        external.set_faults(
            self.env.now + spec.duration,
            error_rate=spec.rate,
            timeout_factor=spec.factor,
            rng=rng,
        )
        self._note(spec, external.name)

    # -- production-incident primitives ------------------------------------------

    def _apply_compute_slowdown(self, spec: FaultSpec) -> None:
        """Straggler node: every record processed on the node costs
        ``factor`` times more CPU for ``duration`` seconds (0 = until the
        run ends).  Replacement incarnations landing on the node inherit
        the slowdown via ``JobManager._build_task``."""
        node_id = self._resolve_node(spec.target)
        if node_id is None:
            self._skip(spec, "no such node")
            return
        jm = self.jm
        jm.node_slowdowns[node_id] = spec.factor
        self._set_node_slowdown(node_id, spec.factor)
        self._note(spec, f"node:{node_id} x{spec.factor:g}")
        if spec.duration:

            def restore(node_id=node_id) -> None:
                jm.node_slowdowns.pop(node_id, None)
                self._set_node_slowdown(node_id, 1.0)

            self.env.schedule_callback(spec.duration, restore)

    def _set_node_slowdown(self, node_id: int, factor: float) -> None:
        for occupant in sorted(self.jm.cluster.occupants_of_node(node_id)):
            if occupant.startswith("standby:"):
                continue
            vertex = self.jm.vertices.get(occupant)
            if vertex is not None and vertex.task is not None:
                vertex.task.compute_slowdown = factor

    def _apply_poison_pill(self, spec: FaultSpec) -> None:
        """Arm the next ``count`` distinct records at the victim as
        permanent pills (see :mod:`repro.chaos.poison`).  Sources poll
        rather than process records, so only non-source tasks qualify."""
        if spec.target in self.jm.vertices:
            name = spec.target
        else:
            names = sorted(
                n
                for n, v in self.jm.vertices.items()
                if not v.is_source and fnmatch(n, spec.target)
            )
            name = self.rng.choice(names) if names else None
        if name is None:
            self._skip(spec, "no matching task")
            return
        if self.jm.vertices[name].is_source:
            self._skip(spec, "cannot poison a source task")
            return
        self.jm.poison.arm(name, spec.count)
        vertex = self.jm.vertices[name]
        if vertex.task is not None:
            vertex.task._poison_active = True
        self._note(spec, f"{name} x{spec.count}")

    def _apply_zone_outage(self, spec: FaultSpec) -> None:
        """Fail every live node in one availability zone at once; with a
        ``duration``, the zone's nodes come back (empty) afterwards."""
        cluster = self.jm.cluster
        if spec.target == "*":
            zones = cluster.live_zones()
            if not zones:
                self._skip(spec, "no live zones")
                return
            zone = self.rng.choice(zones)
        else:
            zone = int(spec.target)
        victims = [n for n in cluster.nodes_in_zone(zone) if n.alive]
        if not victims:
            self._skip(spec, f"zone {zone} has no live nodes")
            return
        self._note(spec, f"zone:{zone}")
        for node in sorted(victims, key=lambda n: n.node_id):
            self.jm.kill_node(node.node_id, force=True, fail_node=True)
        if spec.duration:
            self.env.schedule_callback(
                spec.duration, lambda z=zone: cluster.revive_zone(z)
            )

    def _broker_logs(self) -> List:
        """Every distinct durable log (message broker) the job's sources and
        sinks talk to, in deterministic order."""
        from repro.external.kafka import DurableLog

        logs: List = []
        for name in sorted(self.jm.vertices):
            task = self.jm.vertices[name].task
            operator = task.operator if task is not None else None
            log = getattr(operator, "log", None)
            if isinstance(log, DurableLog) and not any(log is l for l in logs):
                logs.append(log)
        return logs

    def _apply_broker_outage(self, spec: FaultSpec) -> None:
        logs = self._broker_logs()
        if not logs:
            self._skip(spec, "no broker in the job")
            return
        until = self.env.now + spec.duration
        for log in logs:
            log.set_outage(until)
        self._note(spec, f"{spec.duration:g}s")

    def _apply_broker_brownout(self, spec: FaultSpec) -> None:
        logs = self._broker_logs()
        if not logs:
            self._skip(spec, "no broker in the job")
            return
        until = self.env.now + spec.duration
        seed = derive_seed(self.plan.seed, f"broker@{spec.at:g}")
        for log in logs:
            log.set_brownout(until, spec.rate, seed=seed)
        self._note(spec, f"{spec.duration:g}s p={spec.rate:g}")

    # -- artifact corruption -----------------------------------------------------

    #: Corruption needs a live artifact to damage; if none exists yet (first
    #: checkpoint still uploading, log empty) the fault defers and retries.
    _CORRUPTION_RETRY_DELAY = 0.06
    _CORRUPTION_RETRIES = 25

    def _candidates(self, pattern: str) -> List[str]:
        if pattern in self.jm.vertices:
            return [pattern]
        return sorted(n for n in self.jm.vertices if fnmatch(n, pattern))

    def _try_corrupt(self, spec: FaultSpec, attempt, miss: str, attempts=None) -> None:
        """Run ``attempt()`` (returns a detail string or None); defer and
        retry while it misses, then record a skip."""
        attempts = self._CORRUPTION_RETRIES if attempts is None else attempts
        detail = attempt()
        if detail is not None:
            self._note(spec, detail)
            return
        if attempts <= 0:
            self._skip(spec, miss)
            return
        self.env.schedule_callback(
            self._CORRUPTION_RETRY_DELAY,
            lambda: self._try_corrupt(spec, attempt, miss, attempts - 1),
        )

    def _apply_blob_corruption(self, spec: FaultSpec) -> None:
        self._corrupt_checkpoint(spec, torn=False)

    def _apply_torn_write(self, spec: FaultSpec) -> None:
        self._corrupt_checkpoint(spec, torn=True)

    def _corrupt_checkpoint(self, spec: FaultSpec, torn: bool) -> None:
        rng = random.Random(derive_seed(self.plan.seed, f"{spec.kind}@{spec.at:g}"))

        def attempt():
            names = self._candidates(spec.target)
            rng.shuffle(names)
            for name in names:
                cid = corrupt_checkpoint(self.jm, name, torn=torn)
                if cid is not None:
                    return f"{name}@{cid}"
            return None

        self._try_corrupt(spec, attempt, "no stored checkpoint")

    def _apply_buffer_bitflip(self, spec: FaultSpec) -> None:
        rng = random.Random(derive_seed(self.plan.seed, f"bitflip@{spec.at:g}"))

        def attempt():
            names = self._candidates(spec.target)
            rng.shuffle(names)
            for name in names:
                detail = corrupt_inflight_entry(self.jm, name, rng)
                if detail is not None:
                    return f"{name}:{detail}"
            return None

        self._try_corrupt(spec, attempt, "no logged in-flight buffers")

    def _apply_determinant_truncation(self, spec: FaultSpec) -> None:
        rng = random.Random(derive_seed(self.plan.seed, f"det-trunc@{spec.at:g}"))

        def attempt():
            names = self._candidates(spec.target)
            rng.shuffle(names)
            # The targeted victim may have no downstream holders at all (a
            # sink's determinants are never replicated): widen to any task
            # rather than deferring forever.
            names += [n for n in sorted(self.jm.vertices) if n not in names]
            for name in names:
                detail = truncate_determinant_log(self.jm, name, rng)
                if detail is not None:
                    return f"{name}:{detail}"
            return None

        self._try_corrupt(spec, attempt, "no held determinant replicas")

    # -- accounting --------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        return {
            "applied": len(self.applied),
            "skipped": len(self.skipped),
            "kinds": sorted({k for (_t, k, _x) in self.applied}),
            "control_plane_drops": sum(self.jm.control_plane_drops.values()),
            "link_buffers_dropped": sum(
                link.chaos.dropped for link in self._links if link.chaos is not None
            ),
        }
