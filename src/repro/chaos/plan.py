"""Declarative fault plans.

A plan is data, not code: a seed plus a list of :class:`FaultSpec`s, each
naming an injection time, a fault kind, and a target.  The same plan against
the same job config replays the exact same havoc — chaos runs are
reproducible by construction, which is what makes a failing soak seed
debuggable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import ChaosError

#: Every fault shape the engine knows how to inject.
FAULT_KINDS = frozenset(
    {
        "task_kill",        # crash one task (force: also mid-recovery)
        "node_crash",       # crash every occupant of one cluster node
        "standby_loss",     # a standby replica dies (its snapshot with it)
        "link_partition",   # hold one link's deliveries for `duration`
        "link_delay",       # scale one link's transmission time by `factor`
        "link_loss",        # drop the next `count` buffers on one link
        "rpc_chaos",        # control-plane loss/duplication window
        "dfs_outage",       # DFS fails every operation for `duration`
        "dfs_brownout",     # DFS `factor` times slower for `duration`
        "external_faults",  # external service error/slow window
        # -- liveness (watchdog stress; not in the random default palette) ---
        "recovery_freeze",  # kill + partition the victim's inputs: replay
                            # can never make progress (for `duration`; 0 =
                            # forever) — the recovery-stall scenario
        # -- artifact corruption (silent until a validating read) ------------
        "blob_corruption",          # silently corrupt a stored checkpoint
        "torn_write",               # mark a checkpoint blob torn (partial write)
        "buffer_bitflip",          # flip an element in a logged in-flight buffer
        "determinant_truncation",   # truncate a held determinant-log replica
        # -- production-incident primitives (scenario pack; not in the -------
        # -- random default palette) -----------------------------------------
        "compute_slowdown",  # straggler: scale a node's CPU cost by `factor`
        "poison_pill",       # next `count` records at a task become permanent
                             # pills: crash the operator until quarantined
        "zone_outage",       # crash every node in one availability zone
        "broker_outage",     # message broker down for `duration`
        "broker_brownout",   # broker flaky (`rate` failures) for `duration`
    }
)

#: Kinds that silently damage a stored artifact instead of failing a
#: component.  They are *not* in :func:`random_plan`'s default palette —
#: existing seeds keep producing the exact same plans — and are requested
#: explicitly via ``kinds=`` (the integrity soak does).  Each corruption is
#: paired with kills so a recovery actually reads the damaged artifact.
CORRUPTION_KINDS = frozenset(
    {"blob_corruption", "torn_write", "buffer_bitflip", "determinant_truncation"}
)

#: Kinds that interpret ``target`` as a link-name glob (fnmatch against
#: names like ``"src[0]->stage1[1]"``).
LINK_KINDS = frozenset({"link_partition", "link_delay", "link_loss"})

#: Kinds whose ``target`` is meaningless and therefore *must* stay ``"*"``.
#: (``rpc_chaos`` is global too but its target restricts the affected
#: parties, so it is deliberately not in this set.)
TARGETLESS_KINDS = frozenset(
    {"dfs_outage", "dfs_brownout", "external_faults", "broker_outage", "broker_brownout"}
)

#: Kinds that need no target at all.
GLOBAL_KINDS = TARGETLESS_KINDS | frozenset({"rpc_chaos"})


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Field use per kind:

    * ``task_kill`` / ``standby_loss`` — ``target`` is a task name
      (``"stage1[0]"``) or ``"*"`` (engine picks one, seeded).
    * ``node_crash`` — ``target`` is a node id (``"3"``) or a task name
      (crash the node hosting it); ``fail_node`` marks the node dead.
    * link kinds — ``target`` is a link glob; ``duration`` bounds
      partitions/delays, ``factor`` scales delay, ``count`` buffers are lost.
    * ``rpc_chaos`` — ``rate`` = drop probability, ``dup_rate`` = duplicate
      probability, for ``duration`` seconds.  ``target`` (default ``"*"``)
      restricts the faults to control traffic involving matching parties —
      a partial partition isolating one task's control plane.
    * ``dfs_outage`` / ``dfs_brownout`` — ``duration`` (+ ``factor``).
    * ``external_faults`` — ``rate`` = error probability, ``factor`` =
      latency multiplier, for ``duration``.
    * ``compute_slowdown`` — ``target`` is a node id (``"3"``) or a task
      name (slow the node hosting it) or ``"*"``; every record processed
      on that node costs ``factor`` times more CPU for ``duration``
      seconds (0 = until the run ends).
    * ``poison_pill`` — ``target`` is a task name or ``"*"``; the next
      ``count`` distinct records that task processes become permanent
      pills that crash the operator on every incarnation until the
      registry quarantines them (announced degradation).
    * ``zone_outage`` — ``target`` is a zone id (``"1"``) or ``"*"``
      (engine picks a zone with live nodes, seeded); every node in the
      zone fails; ``duration`` > 0 revives the zone afterwards.
    * ``broker_outage`` / ``broker_brownout`` — message-broker (durable
      log) unavailability / flakiness (``rate`` = failure probability)
      for ``duration`` seconds.
    """

    at: float
    kind: str
    target: str = "*"
    duration: float = 0.0
    count: int = 1
    rate: float = 0.0
    dup_rate: float = 0.0
    factor: float = 1.0
    fail_node: bool = False

    def validate(self) -> None:
        # Range checks are uniform across kinds: every ``factor`` in the
        # palette is a slowdown/cost *multiplier* and every ``count`` a
        # number of occurrences, so a sub-1 factor (which would silently
        # speed the service up) or a non-positive count is malformed no
        # matter which kind carries it.  Scenario files rely on this to
        # fail loudly at load time.
        if self.kind not in FAULT_KINDS:
            raise ChaosError(f"unknown fault kind {self.kind!r}")
        if self.at < 0:
            raise ChaosError(f"{self.kind}: injection time must be >= 0")
        if self.duration < 0:
            raise ChaosError(f"{self.kind}: duration must be >= 0")
        if not 0.0 <= self.rate <= 1.0 or not 0.0 <= self.dup_rate <= 1.0:
            raise ChaosError(f"{self.kind}: rates must be in [0, 1]")
        if self.count < 1:
            raise ChaosError(f"{self.kind}: count must be >= 1")
        if self.factor < 1.0:
            raise ChaosError(f"{self.kind}: factor must be >= 1")
        if not isinstance(self.target, str) or not self.target:
            raise ChaosError(f"{self.kind}: target must be a non-empty string")
        if self.kind in TARGETLESS_KINDS and self.target != "*":
            raise ChaosError(
                f"{self.kind}: takes no target (got {self.target!r}); "
                "use the default '*'"
            )
        if self.kind == "zone_outage" and self.target != "*" and not self.target.isdigit():
            raise ChaosError(
                f"zone_outage: target must be a zone id or '*' (got {self.target!r})"
            )


@dataclass
class FaultPlan:
    """A seed plus an ordered list of faults."""

    seed: int = 0
    specs: List[FaultSpec] = field(default_factory=list)

    def add(self, at: float, kind: str, target: str = "*", **kwargs) -> "FaultPlan":
        spec = FaultSpec(at=at, kind=kind, target=target, **kwargs)
        spec.validate()
        self.specs.append(spec)
        return self

    def validate(self) -> None:
        for spec in self.specs:
            spec.validate()

    def kinds(self) -> List[str]:
        return sorted({s.kind for s in self.specs})

    def __len__(self) -> int:
        return len(self.specs)


def random_plan(
    seed: int,
    horizon: float,
    task_names: Sequence[str] = (),
    link_names: Sequence[str] = (),
    max_faults: int = 5,
    kinds: Optional[Sequence[str]] = None,
    allow_rpc_chaos: bool = True,
) -> FaultPlan:
    """A deterministic random plan: same ``seed`` -> same plan.

    Faults land in the middle 80% of ``horizon`` so both the failure-free
    prefix and the post-chaos drain exist.  ``kinds`` restricts the palette
    (defaults to everything applicable given the provided targets).
    """
    rng = random.Random(seed)
    palette = list(kinds) if kinds is not None else [
        "task_kill",
        "standby_loss",
        "link_partition",
        "link_delay",
        "link_loss",
        "dfs_outage",
        "dfs_brownout",
        "external_faults",
    ]
    if allow_rpc_chaos and (kinds is None):
        palette.append("rpc_chaos")
    if not task_names:
        palette = [k for k in palette if k not in ("task_kill", "standby_loss", "node_crash")]
        palette = [k for k in palette if k not in ("poison_pill", "compute_slowdown")]
        palette = [k for k in palette if k not in CORRUPTION_KINDS]
    if not link_names:
        palette = [k for k in palette if k not in LINK_KINDS]
    if not palette:
        raise ChaosError("random_plan: no applicable fault kinds")
    plan = FaultPlan(seed=seed)
    for _ in range(rng.randint(1, max(1, max_faults))):
        kind = rng.choice(palette)
        at = round(horizon * (0.1 + 0.8 * rng.random()), 4)
        window = round(horizon * (0.02 + 0.1 * rng.random()), 4)
        if kind in ("task_kill", "standby_loss"):
            plan.add(at, kind, target=rng.choice(list(task_names)))
        elif kind == "node_crash":
            plan.add(at, kind, target=rng.choice(list(task_names)))
        elif kind == "link_partition":
            plan.add(at, kind, target=rng.choice(list(link_names)), duration=window)
        elif kind == "link_delay":
            plan.add(
                at, kind, target=rng.choice(list(link_names)),
                duration=window, factor=1.0 + 9.0 * rng.random(),
            )
        elif kind == "link_loss":
            plan.add(at, kind, target=rng.choice(list(link_names)),
                     count=rng.randint(1, 4))
        elif kind == "rpc_chaos":
            plan.add(
                at, kind, duration=window,
                rate=0.05 + 0.25 * rng.random(),
                dup_rate=0.1 * rng.random(),
            )
        elif kind == "dfs_outage":
            plan.add(at, kind, duration=window)
        elif kind == "dfs_brownout":
            plan.add(at, kind, duration=window, factor=2.0 + 8.0 * rng.random())
        elif kind == "external_faults":
            plan.add(
                at, kind, duration=window,
                rate=0.1 + 0.4 * rng.random(),
                factor=1.0 + 4.0 * rng.random(),
            )
        elif kind in ("blob_corruption", "torn_write"):
            # Corruptible artifacts only exist once checkpoints/logs filled
            # up, so corruption lands late in the horizon (the engine also
            # defers if the artifact is not there yet).
            at = round(horizon * (0.3 + 0.45 * rng.random()), 4)
            victim = rng.choice(list(task_names))
            plan.add(at, kind, target=victim)
            # Force the restore through the damaged durable artifact: take
            # the (pristine) standby image out first, then kill the primary.
            plan.add(round(at + 0.25 * window, 4), "standby_loss", target=victim)
            plan.add(round(at + 0.5 * window, 4), "task_kill", target=victim)
        elif kind == "buffer_bitflip":
            at = round(horizon * (0.3 + 0.45 * rng.random()), 4)
            plan.add(at, kind, target="*")  # engine finds a non-empty log
            # A kill somewhere downstream makes replay read the flipped log.
            plan.add(round(at + 0.5 * window, 4), "task_kill",
                     target=rng.choice(list(task_names)))
        elif kind == "determinant_truncation":
            at = round(horizon * (0.3 + 0.45 * rng.random()), 4)
            victim = rng.choice(list(task_names))
            plan.add(at, kind, target=victim)
            # Killing the victim makes recovery fetch its determinants from
            # the (truncated) downstream replicas.
            plan.add(round(at + 0.5 * window, 4), "task_kill", target=victim)
        elif kind == "compute_slowdown":
            plan.add(
                at, kind, target=rng.choice(list(task_names)),
                duration=window, factor=2.0 + 8.0 * rng.random(),
            )
        elif kind == "poison_pill":
            plan.add(at, kind, target=rng.choice(list(task_names)),
                     count=rng.randint(1, 2))
        elif kind == "zone_outage":
            plan.add(at, kind, duration=window)
        elif kind == "broker_outage":
            plan.add(at, kind, duration=window)
        elif kind == "broker_brownout":
            plan.add(at, kind, duration=window, rate=0.2 + 0.5 * rng.random())
    plan.specs.sort(key=lambda s: s.at)
    return plan
