"""Chaos soak: randomised fault schedules vs. the recovery protocol.

Runs the synthetic *nondeterministic* pipeline (wall-clock-stamping stages)
under a :class:`FaultPlan` and verdicts the output against the failure-free
expectation:

* ``"exactly-once"`` — every input record's origin ``(partition, offset)``
  appears in the sink output exactly once (what failure-free execution
  produces: the chain maps each input to exactly one output).
* ``"degraded:global_rollback"`` — the run *explicitly recorded* a
  degradation (escalation-ladder exhaustion, orphan fallback, or a global
  restart) and the output is at-least-once: duplicates allowed, loss not.
* ``"violation"`` — anything else: silent loss, silent duplication, or
  duplication without a recorded degradation.

A run that exceeds the simulation deadline raises
:class:`~repro.errors.JobError` from ``run_until_done`` — a hang is a test
failure, never a verdict.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.chaos.engine import ChaosEngine
from repro.chaos.plan import FaultPlan, random_plan
from repro.config import CostModel, FaultToleranceMode, JobConfig
from repro.external.kafka import DurableLog
from repro.runtime.jobmanager import JobManager
from repro.sim.core import Environment
from repro.workloads.synthetic import synthetic_chain

#: Recovery-event kinds that announce degraded (at-least-once) semantics.
DEGRADATION_MARKERS = (
    "degraded:global_rollback",
    "degraded:recovery_stalled",
    "degraded:poison_quarantined",
    "orphan-fallback",
    "global-restart-begin",
    "replay-diverged",
)


def fast_chaos_config(
    mode: FaultToleranceMode = FaultToleranceMode.CLONOS,
    checkpoint_interval: float = 0.5,
    seed: int = 7,
    **kwargs,
) -> JobConfig:
    """A soak-friendly config: sub-second detection/deploy/activation so a
    whole chaotic run fits in a few simulated seconds."""
    cost = CostModel(
        heartbeat_interval=0.3,
        heartbeat_timeout=0.5,
        task_deploy_time=0.2,
        task_cancel_time=0.05,
        standby_activation_time=0.02,
        connection_failure_detection=0.02,
        kill_deferral_deadline=60.0,
    )
    config = JobConfig(
        mode=mode,
        checkpoint_interval=checkpoint_interval,
        cost=cost,
        seed=seed,
        **kwargs,
    )
    config.clonos.recovery_step_deadline = 5.0
    return config


@dataclass
class ChaosRunResult:
    """One soak run's outcome."""

    seed: int
    verdict: str
    duration: float
    expected: int
    delivered: int
    missing: int
    duplicated: int
    degradations: List[Tuple[float, str, str]]
    recovery_events: List[Tuple[float, str, str]] = field(repr=False)
    chaos_summary: Dict[str, object] = field(default_factory=dict)
    jm: Optional[JobManager] = field(default=None, repr=False)
    engine: Optional[ChaosEngine] = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return self.verdict != "violation"


def output_projection(values) -> Counter:
    """Project sink records to their input origin ``(partition, offset)`` —
    the identity that exactly-once is judged on (wall-clock stamps shift
    legitimately when recovery delays the non-replayed suffix)."""
    return Counter((v[0], v[1]) for v in values)


def run_chaos_experiment(
    plan: Union[FaultPlan, Callable[[JobManager], FaultPlan]],
    config: Optional[JobConfig] = None,
    depth: int = 3,
    parallelism: int = 2,
    n_records: int = 1200,
    rate: float = 2000.0,
    limit: float = 120.0,
    out_topic: str = "chaos-out",
) -> ChaosRunResult:
    """One chaotic run of the synthetic nondeterministic chain.

    ``plan`` may be a :class:`FaultPlan` or a factory called with the
    deployed job manager (so random plans can target real task/link names).
    """
    config = config or fast_chaos_config()
    env = Environment()
    log = DurableLog()
    graph = synthetic_chain(
        log,
        depth=depth,
        parallelism=parallelism,
        rate_per_partition=rate,
        total_per_partition=n_records,
        state_bytes_per_task=8192,
        num_keys=16,
        nondeterministic=True,
        in_topic="chaos-in",
        out_topic=out_topic,
        exactly_once_sink=True,
    )
    jm = JobManager(env, graph, config)
    jm.deploy()
    if callable(plan):
        plan = plan(jm)
    engine = ChaosEngine(jm, plan)
    engine.arm()
    jm.run_until_done(limit=limit)  # raises JobError on a hang

    projection = output_projection(
        entry.value for entry in log.read_all(out_topic)
    )
    expected = {
        (p, off) for p in range(parallelism) for off in range(n_records)
    }
    missing = [pair for pair in expected if projection[pair] == 0]
    extra = [pair for pair in projection if pair not in expected]
    duplicated = {pair: c for pair, c in projection.items() if c > 1}
    degradations = [
        (t, kind, who)
        for (t, kind, who) in jm.recovery_events
        if kind in DEGRADATION_MARKERS
    ]
    if not missing and not extra and not duplicated:
        verdict = "exactly-once"
    elif degradations and not missing and not extra:
        verdict = "degraded:global_rollback"
    else:
        verdict = "violation"
    return ChaosRunResult(
        seed=plan.seed,
        verdict=verdict,
        duration=env.now,
        expected=len(expected),
        delivered=sum(projection.values()),
        missing=len(missing),
        duplicated=sum(c - 1 for c in duplicated.values()),
        degradations=degradations,
        recovery_events=list(jm.recovery_events),
        chaos_summary=engine.summary(),
        jm=jm,
        engine=engine,
    )


def chaos_soak(
    seeds,
    config_factory: Optional[Callable[[int], JobConfig]] = None,
    max_faults: int = 4,
    horizon: Optional[float] = None,
    **run_kwargs,
) -> List[ChaosRunResult]:
    """Run one chaotic experiment per seed; returns the per-run results.

    Each seed fully determines both the fault plan and the job, so a
    violating seed reruns identically under ``repro chaos --seed N``.
    """
    n_records = run_kwargs.get("n_records", 1200)
    rate = run_kwargs.get("rate", 2000.0)
    window = horizon if horizon is not None else n_records / rate + 0.5

    results = []
    for seed in seeds:
        config = (
            config_factory(seed) if config_factory is not None
            else fast_chaos_config(seed=seed)
        )

        def plan_factory(jm, seed=seed):
            links = sorted(
                link.name
                for vertex in jm.vertices.values()
                for _edge, channels in vertex.out_links
                for _f, _d, link in channels
            )
            return random_plan(
                seed,
                window,
                task_names=sorted(jm.vertices),
                link_names=links,
                max_faults=max_faults,
            )

        results.append(
            run_chaos_experiment(plan_factory, config=config, **run_kwargs)
        )
    return results
