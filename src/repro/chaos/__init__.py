"""repro.chaos: declarative fault injection for the simulated dataflow.

A :class:`~repro.chaos.plan.FaultPlan` declares *what goes wrong when*
(task/node crashes, standby loss, link partitions/delay/buffer loss,
control-RPC loss/duplication, DFS outages, external-service fault windows);
the :class:`~repro.chaos.engine.ChaosEngine` schedules it against a running
job, deterministically from the plan's seed.  :mod:`repro.chaos.soak`
runs randomised plans against the synthetic nondeterministic pipeline and
verdicts each run: output exactly-once, explicitly degraded, or violation.
"""

from repro.chaos.engine import ChaosEngine, ControlPlaneChaos
from repro.chaos.plan import FAULT_KINDS, FaultPlan, FaultSpec, random_plan
from repro.chaos.soak import ChaosRunResult, chaos_soak, run_chaos_experiment

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "random_plan",
    "ChaosEngine",
    "ControlPlaneChaos",
    "ChaosRunResult",
    "run_chaos_experiment",
    "chaos_soak",
]
