"""repro.chaos: declarative fault injection for the simulated dataflow.

A :class:`~repro.chaos.plan.FaultPlan` declares *what goes wrong when*
(task/node/zone crashes, standby loss, link partitions/delay/buffer loss,
control-RPC loss/duplication, compute slowdown, poison pills, DFS and
output-broker outages/brownouts, external-service fault windows);
the :class:`~repro.chaos.engine.ChaosEngine` schedules it against a running
job, deterministically from the plan's seed.  :mod:`repro.chaos.soak`
runs randomised plans against the synthetic nondeterministic pipeline and
verdicts each run: output exactly-once, explicitly degraded, or violation.
:mod:`repro.chaos.poison` quarantines records that deterministically crash
their operator on every incarnation.  The named production incidents built
from these primitives live in :mod:`repro.scenarios`.
"""

from repro.chaos.engine import ChaosEngine, ControlPlaneChaos
from repro.chaos.plan import (
    FAULT_KINDS,
    TARGETLESS_KINDS,
    FaultPlan,
    FaultSpec,
    random_plan,
)
from repro.chaos.poison import PoisonRegistry
from repro.chaos.soak import ChaosRunResult, chaos_soak, run_chaos_experiment

__all__ = [
    "FAULT_KINDS",
    "TARGETLESS_KINDS",
    "FaultPlan",
    "FaultSpec",
    "random_plan",
    "ChaosEngine",
    "ControlPlaneChaos",
    "PoisonRegistry",
    "ChaosRunResult",
    "run_chaos_experiment",
    "chaos_soak",
]
