"""Waitable queues and resources for the simulation kernel.

These are the synchronisation primitives the stream-processor model is built
from: bounded FIFO stores (network queues, mailboxes) and counted resources
(buffer pools).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generic, List, Optional, TypeVar

from repro.errors import SimulationError
from repro.sim.core import Environment, Event, has_live_callbacks

T = TypeVar("T")


class Store(Generic[T]):
    """A FIFO queue whose ``get``/``put`` return waitable events.

    ``capacity`` bounds the number of stored items; a ``put`` on a full store
    blocks (its event stays pending) until a slot frees up.  FIFO fairness is
    preserved for both putters and getters.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError("store capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: Deque[T] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()  # (event, item)

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return len(self.items) >= self.capacity

    def put(self, item: T) -> Event:
        """Queue ``item``; the returned event triggers once it is accepted."""
        ev = Event(self.env)
        if self._getters and not self.items:
            # Hand the item directly to the longest-waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            ev.succeed()
        elif len(self.items) < self.capacity:
            self.items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def try_put(self, item: T) -> bool:
        """Non-blocking put; returns False if the store is full."""
        if self._getters and not self.items:
            self._getters.popleft().succeed(item)
            return True
        if len(self.items) < self.capacity:
            self.items.append(item)
            return True
        return False

    def get(self) -> Event:
        """Returned event triggers with the next item."""
        ev = Event(self.env)
        if self.items:
            ev.succeed(self.items.popleft())
            self._admit_putter()
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[T]:
        """Non-blocking get; returns None when empty."""
        if not self.items:
            return None
        item = self.items.popleft()
        self._admit_putter()
        return item

    def peek(self) -> Optional[T]:
        return self.items[0] if self.items else None

    def clear(self) -> List[T]:
        """Drop all stored items (used when a task dies)."""
        dropped = list(self.items)
        self.items.clear()
        while self._putters and len(self.items) < self.capacity:
            ev, item = self._putters.popleft()
            self.items.append(item)
            ev.succeed()
        return dropped

    def drop_waiting_puts(self) -> List[T]:
        """Silently discard queued puts (their events never trigger).  Only
        valid when the putters' processes are dead (failure teardown)."""
        items = [item for (_ev, item) in self._putters]
        self._putters.clear()
        return items

    def cancel_waiters(self, exc: Exception) -> None:
        """Fail every pending get/put (used on channel teardown).

        Waits whose process has since been killed have no *live* callbacks
        left (a detached process leaves an inert tombstone); failing those
        would surface the exception to nobody (the kernel raises unwaited
        failures), so they are discarded instead."""
        while self._getters:
            ev = self._getters.popleft()
            if has_live_callbacks(ev):
                ev.fail(exc)
        while self._putters:
            ev, _item = self._putters.popleft()
            if has_live_callbacks(ev):
                ev.fail(exc)

    def _admit_putter(self) -> None:
        if self._putters and len(self.items) < self.capacity:
            ev, item = self._putters.popleft()
            self.items.append(item)
            ev.succeed()


class Signal:
    """A pulse-able condition: waiters get woken, then re-check state.

    Used in the check-then-wait pattern: a consumer polls its queues, and if
    empty waits on the signal; producers pulse after enqueueing.  Because the
    kernel is cooperative (no preemption between the poll and the wait),
    wakeups cannot be lost.
    """

    def __init__(self, env: Environment):
        self.env = env
        self._waiters: List[Event] = []

    def wait(self) -> Event:
        ev = Event(self.env)
        self._waiters.append(ev)
        return ev

    def pulse(self) -> None:
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            if not ev.triggered:
                ev.succeed()


class Resource:
    """A counted resource (semaphore), e.g. a pool of network buffers."""

    def __init__(self, env: Environment, capacity: int):
        if capacity <= 0:
            raise SimulationError("resource capacity must be positive")
        self.env = env
        self.capacity = capacity
        self._available = capacity
        self._waiters: Deque[tuple] = deque()  # (event, amount)

    @property
    def available(self) -> int:
        return self._available

    @property
    def in_use(self) -> int:
        return self.capacity - self._available

    def acquire(self, amount: int = 1) -> Event:
        if amount > self.capacity:
            raise SimulationError("acquire exceeds resource capacity")
        ev = Event(self.env)
        if self._available >= amount and not self._waiters:
            self._available -= amount
            ev.succeed()
        else:
            self._waiters.append((ev, amount))
        return ev

    def try_acquire(self, amount: int = 1) -> bool:
        if self._available >= amount and not self._waiters:
            self._available -= amount
            return True
        return False

    def release(self, amount: int = 1) -> None:
        self._available += amount
        if self._available > self.capacity:
            raise SimulationError("resource over-released")
        while self._waiters and self._available >= self._waiters[0][1]:
            ev, amt = self._waiters.popleft()
            self._available -= amt
            ev.succeed()

    def resize(self, capacity: int) -> None:
        """Grow or shrink the pool; shrinking below in-use is deferred."""
        if capacity <= 0:
            raise SimulationError("resource capacity must be positive")
        delta = capacity - self.capacity
        self.capacity = capacity
        if delta > 0:
            self.release(delta)
        else:
            self._available = max(0, self._available + delta)
