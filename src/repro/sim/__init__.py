"""Discrete-event simulation kernel (SimPy-style, deterministic)."""

from repro.sim.core import (
    NORMAL,
    URGENT,
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    Timeout,
)
from repro.sim.queues import Resource, Signal, Store
from repro.sim.rng import RandomStreams, derive_seed

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "NORMAL",
    "Process",
    "RandomStreams",
    "Resource",
    "Signal",
    "Store",
    "Timeout",
    "URGENT",
    "derive_seed",
]
