"""Deterministic random streams for the simulation.

Every component that needs randomness (workload generators, failure
injectors, the *external world*) draws from a named substream derived from a
single root seed, so that a whole experiment is reproducible while streams
stay independent of each other and of call ordering elsewhere.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit seed for substream ``name``."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A registry of independent named :class:`random.Random` streams."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = root_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the substream called ``name``."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.root_seed, name))
        return self._streams[name]

    def fork(self, name: str) -> "RandomStreams":
        """A child registry whose streams are independent of this one's."""
        return RandomStreams(derive_seed(self.root_seed, f"fork:{name}"))
