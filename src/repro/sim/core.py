"""Discrete-event simulation kernel.

A minimal, deterministic, generator-coroutine engine in the style of SimPy.
Processes are Python generators that ``yield`` :class:`Event` objects; the
:class:`Environment` resumes them when those events trigger.  All scheduling
is totally ordered by ``(time, priority, sequence)``, so a simulation run is
exactly reproducible for a given program.

The rest of the library models a distributed stream processor on top of this
kernel: tasks, network channels, checkpoints, and failures are all processes
and events in one :class:`Environment`.

Hot-path notes (see DESIGN.md, "Kernel fast paths"):

* Heap entries are 3-tuples ``(time, key, event)`` where ``key`` packs
  ``(priority, sequence)`` into one integer (``priority << 64 | seq``).
  Comparing one int is cheaper than comparing two, and the entry is one
  element smaller.  Times stay floats: the schedule hash and trace exports
  round and print them, so changing the time representation would change
  observable bytes.
* Detaching a process from the event it was waiting on (interrupt / kill)
  replaces its callback with a no-op tombstone at a remembered index — O(1)
  instead of ``list.remove``.  Dispatching a tombstone has no simulation
  effect, so the schedule is unchanged; code that used "has callbacks" as a
  liveness test must use :func:`has_live_callbacks` instead.
* ``run()`` dispatches events in a loop that skips the tracer/profiler
  branches entirely when neither is installed.  The per-event *schedule* is
  identical either way; only the Python overhead differs.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.errors import SimulationError

#: Priority used for ordinary events.
NORMAL = 1
#: Priority used for urgent (control-plane) events; fires before NORMAL
#: events scheduled at the same instant.
URGENT = 0

#: Bit position of the priority inside a packed heap key.  Sequence numbers
#: are monotonically increasing ints that stay far below 2**64 in any
#: feasible run, so ``(priority << _PRIO_SHIFT) | seq`` orders exactly like
#: the tuple ``(priority, seq)``.
_PRIO_SHIFT = 64


def _tombstone(_event: "Event") -> None:
    """No-op left in a callback list by an O(1) detach (see Process)."""


def has_live_callbacks(event: "Event") -> bool:
    """True if ``event`` still has a waiter that would react to it.

    Replaces truthiness checks on ``event.callbacks`` as a liveness test:
    a detached process leaves an inert tombstone behind instead of shrinking
    the list.
    """
    cbs = event.callbacks
    if not cbs:
        return False
    return any(cb is not _tombstone for cb in cbs)


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The ``cause`` attribute carries the object passed to ``interrupt()``;
    tasks use it to distinguish failure injection from cancellation.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A happening that processes can wait for.

    An event starts *pending*, becomes *triggered* once scheduled with a value
    (or an exception), and is *processed* after its callbacks ran.  Multiple
    processes may wait on the same event.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        return self._value

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        env = self.env
        env._seq = seq = env._seq + 1
        heappush(env._queue, (env._now, (priority << _PRIO_SHIFT) | seq, self))
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception; waiters will see it raised."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        env = self.env
        env._seq = seq = env._seq + 1
        heappush(env._queue, (env._now, (priority << _PRIO_SHIFT) | seq, self))
        return self


def _make_resume_event(
    env: "Environment", resume: Callable[["Event"], None], ok: bool, value: Any
) -> Event:
    """A pre-triggered plain Event carrying ``resume`` as its only callback.

    Used for the bootstrap / interrupt-wakeup / passthrough events a Process
    schedules on itself.  Built with ``__new__`` + direct slot stores: these
    are the most-allocated objects in a run, and skipping ``__init__`` (and
    its pending-state defaults that are immediately overwritten) measurably
    cuts per-resume cost.  They remain real :class:`Event` instances, so the
    schedule hash sees the same ``("Event", "")`` entry as before.
    """
    ev = Event.__new__(Event)
    ev.env = env
    ev.callbacks = [resume]
    ev._value = value
    ev._ok = ok
    ev._triggered = True
    ev._processed = False
    return ev


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    __slots__ = ()

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._triggered = True
        self._processed = False
        env._seq = seq = env._seq + 1
        heappush(
            env._queue,
            (env._now + delay, (NORMAL << _PRIO_SHIFT) | seq, self),
        )


class Process(Event):
    """A running generator coroutine.

    As an :class:`Event`, a process triggers when the generator returns
    (value = the ``return`` value) or raises (the event fails).
    """

    __slots__ = ("_generator", "_target", "name", "_interrupts", "_target_index")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise SimulationError("Process requires a generator")
        self._generator = generator
        self._target: Optional[Event] = None
        self._target_index = 0
        self.name = name or getattr(generator, "__name__", "process")
        self._interrupts: List[Interrupt] = []
        # Bootstrap: resume the generator at the current instant.
        env._schedule(_make_resume_event(env, self._resume, True, None), URGENT)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        Interrupting a finished process is an error; interrupting twice
        before the process runs queues both interrupts.
        """
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        self._interrupts.append(Interrupt(cause))
        env = self.env
        env._schedule(_make_resume_event(env, self._resume, True, None), URGENT)

    def _detach(self) -> None:
        """O(1) removal of our callback from the event we were waiting on.

        Overwrites the remembered slot with a tombstone instead of scanning
        with ``list.remove``.  The tombstone dispatches as a no-op, so the
        event's schedule entry (already fixed at trigger time) is unchanged.
        """
        target = self._target
        if target is None:
            return
        cbs = target.callbacks
        if cbs is not None:
            i = self._target_index
            if i < len(cbs) and cbs[i] is self._resume:
                cbs[i] = _tombstone
            else:  # pragma: no cover - defensive: index moved, fall back
                try:
                    cbs.remove(self._resume)
                except ValueError:
                    pass
        self._target = None

    def _resume(self, event: Event) -> None:
        if self._triggered:
            return  # process already finished (e.g. interrupted earlier)
        if self._target is not None:
            self._detach()
        env = self.env
        env._active_process = self
        try:
            if self._interrupts:
                interrupt = self._interrupts.pop(0)
                next_event = self._generator.throw(interrupt)
            elif event._ok:
                next_event = self._generator.send(event._value)
            else:
                next_event = self._generator.throw(event._value)
        except StopIteration as stop:
            env._active_process = None
            self._finish(True, stop.value)
            return
        except Interrupt:
            # Process chose not to handle the interrupt: treat as clean exit.
            env._active_process = None
            self._finish(True, None)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into event
            env._active_process = None
            self._finish(False, exc)
            return
        env._active_process = None
        if not isinstance(next_event, Event):
            self._generator.close()
            self._finish(
                False,
                SimulationError(
                    f"process {self.name} yielded non-event {next_event!r}"
                ),
            )
            return
        cbs = next_event.callbacks
        if cbs is None:
            # Already processed: resume immediately at the current instant.
            env._schedule(
                _make_resume_event(env, self._resume, next_event._ok, next_event._value),
                URGENT,
            )
            self._target = None
        else:
            self._target = next_event
            self._target_index = len(cbs)
            cbs.append(self._resume)

    def _finish(self, ok: bool, value: Any) -> None:
        self._triggered = True
        self._ok = ok
        self._value = value
        self.env._schedule(self, URGENT)

    def kill(self) -> None:
        """Terminate the process without running any more of its code.

        Used by failure injection: the process simply never resumes again,
        modelling a crashed thread.  Waiters of the process event are *not*
        notified (a crash is silent); use :meth:`interrupt` for a noisy stop.
        """
        if self._triggered:
            return
        self._detach()
        self._generator.close()
        self._triggered = True  # prevents any future _resume from acting


class Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("_events", "_pending")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        # Inlined Event.__init__: conditions are built once per wait in the
        # hottest polling loops, so the extra super() frame is measurable.
        self.env = env
        self.callbacks = []
        self._value = None
        self._ok = True
        self._triggered = False
        self._processed = False
        self._events = list(events)
        pending = 0
        on_child = self._on_child
        for ev in self._events:
            if ev.callbacks is None:
                # Already processed (fired in the past): count immediately.
                # NOTE: a *scheduled* Timeout has triggered=True from birth;
                # only `callbacks is None` means it actually fired.
                on_child(ev)
            else:
                pending += 1
                ev.callbacks.append(on_child)
        self._pending = pending
        self._check_bootstrap()

    def _check_bootstrap(self) -> None:
        raise NotImplementedError

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(Condition):
    """Triggers once every child event has triggered successfully."""

    __slots__ = ("_done",)

    def __init__(self, env: "Environment", events: Iterable[Event]):
        self._done = 0
        super().__init__(env, events)

    def _check_bootstrap(self) -> None:
        if not self._triggered and self._done == len(self._events):
            self.succeed([ev.value for ev in self._events])

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._done += 1
        if self._done == len(self._events):
            self.succeed([ev.value for ev in self._events])


class AnyOf(Condition):
    """Triggers as soon as any child event triggers."""

    __slots__ = ()

    def _check_bootstrap(self) -> None:
        # Children processed before construction were counted in __init__;
        # nothing more to do here (AnyOf fires from _on_child directly).
        return None

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed(event)


class Environment:
    """The simulation world: clock plus event queue.

    All model components share one environment.  Time is a float in seconds.
    """

    #: Optional factory installed by :mod:`repro.analysis.sanitizer`: every
    #: new environment attaches the tracer it returns, and :meth:`step` feeds
    #: it each popped event — the schedule hash of the determinism sanitizer.
    _tracer_factory: Optional[Callable[[], Any]] = None

    #: Optional factory installed by :func:`repro.trace.profiler.profiling`:
    #: every new environment attaches the profiler it returns, and
    #: :meth:`step` times each callback it dispatches.  The profiler observes
    #: wall-clock time only — it never feeds anything back into the sim.
    _profiler_factory: Optional[Callable[[], Any]] = None

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        factory = Environment._tracer_factory
        self.tracer = factory() if factory is not None else None
        profiler_factory = Environment._profiler_factory
        self.profiler = profiler_factory() if profiler_factory is not None else None

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- scheduling ---------------------------------------------------------

    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        self._seq = seq = self._seq + 1
        heappush(
            self._queue, (self._now + delay, (priority << _PRIO_SHIFT) | seq, event)
        )

    def schedule_callback(
        self, delay: float, callback: Callable[[], None], priority: int = NORMAL
    ) -> Event:
        """Run ``callback()`` after ``delay`` simulated seconds."""
        ev = Event(self)
        ev.callbacks.append(lambda _ev: callback())
        ev._triggered = True
        self._schedule(ev, priority, delay)
        return ev

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- execution ----------------------------------------------------------

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._queue:
            raise SimulationError("step() on empty schedule")
        when, key, event = heappop(self._queue)
        now = self._now
        if when > now:
            self._now = when
        elif when < now - 1e-12:
            raise SimulationError(
                f"time went backwards: popped event at t={when!r} "
                f"with clock at t={now!r}"
            )
        if self.tracer is not None:
            self.tracer.on_step(when, key >> _PRIO_SHIFT, event)
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        profiler = self.profiler
        if callbacks:
            if profiler is None:
                for callback in callbacks:
                    callback(event)
            else:
                profiler.on_step(when, key >> _PRIO_SHIFT, event)
                for callback in callbacks:
                    started = profiler.begin()
                    callback(event)
                    profiler.record(event, callback, started)
        elif not event._ok and not isinstance(event, Process):
            # A failed event nobody waited for would silently swallow the
            # exception; surface it instead.
            raise event._value

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue empties or the clock reaches ``until``."""
        if until is not None and until < self._now:
            raise SimulationError(f"run until {until} is in the past (now={self._now})")
        queue = self._queue
        if self.tracer is None and self.profiler is None:
            # Fast dispatch loop: step() inlined, instrumentation branches
            # gone.  The event schedule is byte-identical to the slow path.
            pop = heappop
            while queue:
                if until is not None and queue[0][0] > until:
                    break
                when, _key, event = pop(queue)
                now = self._now
                if when > now:
                    self._now = when
                elif when < now - 1e-12:
                    raise SimulationError(
                        f"time went backwards: popped event at t={when!r} "
                        f"with clock at t={now!r}"
                    )
                callbacks = event.callbacks
                event.callbacks = None
                event._processed = True
                if callbacks:
                    for callback in callbacks:
                        callback(event)
                elif not event._ok and not isinstance(event, Process):
                    raise event._value
        else:
            step = self.step
            while queue:
                # Single peek per iteration, reused by the inline dispatch.
                if until is not None and queue[0][0] > until:
                    break
                step()
        if until is not None:
            self._now = until
        return self._now

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._queue[0][0] if self._queue else float("inf")
