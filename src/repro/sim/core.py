"""Discrete-event simulation kernel.

A minimal, deterministic, generator-coroutine engine in the style of SimPy.
Processes are Python generators that ``yield`` :class:`Event` objects; the
:class:`Environment` resumes them when those events trigger.  All scheduling
is totally ordered by ``(time, priority, sequence)``, so a simulation run is
exactly reproducible for a given program.

The rest of the library models a distributed stream processor on top of this
kernel: tasks, network channels, checkpoints, and failures are all processes
and events in one :class:`Environment`.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.errors import SimulationError

#: Priority used for ordinary events.
NORMAL = 1
#: Priority used for urgent (control-plane) events; fires before NORMAL
#: events scheduled at the same instant.
URGENT = 0


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The ``cause`` attribute carries the object passed to ``interrupt()``;
    tasks use it to distinguish failure injection from cancellation.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A happening that processes can wait for.

    An event starts *pending*, becomes *triggered* once scheduled with a value
    (or an exception), and is *processed* after its callbacks ran.  Multiple
    processes may wait on the same event.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        return self._value

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.env._schedule(self, priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception; waiters will see it raised."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.env._schedule(self, priority)
        return self


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    __slots__ = ()

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self._triggered = True
        self._ok = True
        self._value = value
        env._schedule(self, NORMAL, delay)


class Process(Event):
    """A running generator coroutine.

    As an :class:`Event`, a process triggers when the generator returns
    (value = the ``return`` value) or raises (the event fails).
    """

    __slots__ = ("_generator", "_target", "name", "_interrupts")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise SimulationError("Process requires a generator")
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        self._interrupts: List[Interrupt] = []
        # Bootstrap: resume the generator at the current instant.
        init = Event(env)
        init.callbacks.append(self._resume)
        init._triggered = True
        env._schedule(init, URGENT)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        Interrupting a finished process is an error; interrupting twice
        before the process runs queues both interrupts.
        """
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        self._interrupts.append(Interrupt(cause))
        wakeup = Event(self.env)
        wakeup.callbacks.append(self._resume)
        wakeup._triggered = True
        self.env._schedule(wakeup, URGENT)

    def _resume(self, event: Event) -> None:
        if self._triggered:
            return  # process already finished (e.g. interrupted earlier)
        # Detach from the event we were waiting on, if any.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        self.env._active_process = self
        try:
            if self._interrupts:
                interrupt = self._interrupts.pop(0)
                next_event = self._generator.throw(interrupt)
            elif event.ok:
                next_event = self._generator.send(event.value)
            else:
                next_event = self._generator.throw(event.value)
        except StopIteration as stop:
            self._finish(True, stop.value)
            return
        except Interrupt:
            # Process chose not to handle the interrupt: treat as clean exit.
            self._finish(True, None)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into event
            self._finish(False, exc)
            return
        finally:
            self.env._active_process = None
        if not isinstance(next_event, Event):
            self._generator.close()
            self._finish(
                False,
                SimulationError(
                    f"process {self.name} yielded non-event {next_event!r}"
                ),
            )
            return
        if next_event.callbacks is None:
            # Already processed: resume immediately at the current instant.
            passthrough = Event(self.env)
            passthrough._triggered = True
            passthrough._ok = next_event._ok
            passthrough._value = next_event._value
            passthrough.callbacks.append(self._resume)
            self.env._schedule(passthrough, URGENT)
            self._target = None
        else:
            next_event.callbacks.append(self._resume)
            self._target = next_event

    def _finish(self, ok: bool, value: Any) -> None:
        self._triggered = True
        self._ok = ok
        self._value = value
        self.env._schedule(self, URGENT)

    def kill(self) -> None:
        """Terminate the process without running any more of its code.

        Used by failure injection: the process simply never resumes again,
        modelling a crashed thread.  Waiters of the process event are *not*
        notified (a crash is silent); use :meth:`interrupt` for a noisy stop.
        """
        if self._triggered:
            return
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        self._generator.close()
        self._triggered = True  # prevents any future _resume from acting


class Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("_events", "_pending")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._pending = 0
        for ev in self._events:
            if ev.callbacks is None:
                # Already processed (fired in the past): count immediately.
                # NOTE: a *scheduled* Timeout has triggered=True from birth;
                # only `callbacks is None` means it actually fired.
                self._on_child(ev)
            else:
                self._pending += 1
                ev.callbacks.append(self._on_child)
        self._check_bootstrap()

    def _check_bootstrap(self) -> None:
        raise NotImplementedError

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(Condition):
    """Triggers once every child event has triggered successfully."""

    __slots__ = ("_done",)

    def __init__(self, env: "Environment", events: Iterable[Event]):
        self._done = 0
        super().__init__(env, events)

    def _check_bootstrap(self) -> None:
        if not self._triggered and self._done == len(self._events):
            self.succeed([ev.value for ev in self._events])

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._done += 1
        if self._done == len(self._events):
            self.succeed([ev.value for ev in self._events])


class AnyOf(Condition):
    """Triggers as soon as any child event triggers."""

    __slots__ = ()

    def _check_bootstrap(self) -> None:
        # Children processed before construction were counted in __init__;
        # nothing more to do here (AnyOf fires from _on_child directly).
        return None

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self.succeed(event)


class Environment:
    """The simulation world: clock plus event queue.

    All model components share one environment.  Time is a float in seconds.
    """

    #: Optional factory installed by :mod:`repro.analysis.sanitizer`: every
    #: new environment attaches the tracer it returns, and :meth:`step` feeds
    #: it each popped event — the schedule hash of the determinism sanitizer.
    _tracer_factory: Optional[Callable[[], Any]] = None

    #: Optional factory installed by :func:`repro.trace.profiler.profiling`:
    #: every new environment attaches the profiler it returns, and
    #: :meth:`step` times each callback it dispatches.  The profiler observes
    #: wall-clock time only — it never feeds anything back into the sim.
    _profiler_factory: Optional[Callable[[], Any]] = None

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        factory = Environment._tracer_factory
        self.tracer = factory() if factory is not None else None
        profiler_factory = Environment._profiler_factory
        self.profiler = profiler_factory() if profiler_factory is not None else None

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- scheduling ---------------------------------------------------------

    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def schedule_callback(
        self, delay: float, callback: Callable[[], None], priority: int = NORMAL
    ) -> Event:
        """Run ``callback()`` after ``delay`` simulated seconds."""
        ev = Event(self)
        ev.callbacks.append(lambda _ev: callback())
        ev._triggered = True
        self._schedule(ev, priority, delay)
        return ev

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- execution ----------------------------------------------------------

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._queue:
            raise SimulationError("step() on empty schedule")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        if when < self._now - 1e-12:
            raise SimulationError("time went backwards")
        self._now = max(self._now, when)
        if self.tracer is not None:
            self.tracer.on_step(when, _prio, event)
        callbacks, event.callbacks = event.callbacks, None
        event._processed = True
        profiler = self.profiler
        if callbacks:
            if profiler is None:
                for callback in callbacks:
                    callback(event)
            else:
                profiler.on_step(when, _prio, event)
                for callback in callbacks:
                    started = profiler.begin()
                    callback(event)
                    profiler.record(event, callback, started)
        elif not event.ok and not isinstance(event, Process):
            # A failed event nobody waited for would silently swallow the
            # exception; surface it instead.
            raise event.value

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue empties or the clock reaches ``until``."""
        if until is not None and until < self._now:
            raise SimulationError(f"run until {until} is in the past (now={self._now})")
        while self._queue:
            when = self._queue[0][0]
            if until is not None and when > until:
                self._now = until
                return self._now
            self.step()
        if until is not None:
            self._now = until
        return self._now

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._queue[0][0] if self._queue else float("inf")
