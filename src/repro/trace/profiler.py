"""Sim-aware profiler: wall-clock self-time per sim process/handler.

The discrete-event kernel spends its wall-clock time inside event callbacks
— almost always a bound :meth:`Process._resume`, i.e. one step of a sim
process generator.  :class:`SimProfiler` hooks the kernel's callback loop
(via :attr:`Environment._profiler_factory`, mirroring the sanitizer's tracer
hook) and attributes elapsed ``time.perf_counter_ns`` to the process (or
handler) that ran, so later perf PRs know where the hot paths are.

Wall-clock readings are host-dependent and therefore **nondeterministic**;
they never enter the sim, the trace event bus, or the deterministic
exporters — the profiler's only output is its own report.  (This is the one
framework-sanctioned use of ``time.perf_counter``; see the NDLint
framework allowlist in :mod:`repro.analysis.rules`.)
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.sim.core import Environment, Process


@dataclass(frozen=True)
class ProfileRow:
    name: str
    calls: int
    total_ms: float

    @property
    def mean_us(self) -> float:
        return (self.total_ms * 1000.0 / self.calls) if self.calls else 0.0


def _attribution_key(callback: Callable[..., Any], event: Any) -> str:
    owner = getattr(callback, "__self__", None)
    if isinstance(owner, Process):
        return f"process:{owner.name}"
    qualname = getattr(callback, "__qualname__", None)
    if qualname:
        return f"handler:{qualname}"
    return f"event:{type(event).__name__}"


class SimProfiler:
    """Accumulates wall-clock self-time keyed by sim process/handler name."""

    __slots__ = ("_calls", "_total_ns", "steps")

    def __init__(self) -> None:
        self._calls: Dict[str, int] = {}
        self._total_ns: Dict[str, int] = {}
        self.steps = 0

    def on_step(self, when: float, priority: int, event: Any) -> None:
        self.steps += 1

    def begin(self) -> int:
        return time.perf_counter_ns()

    def record(self, event: Any, callback: Callable[..., Any], started_ns: int) -> None:
        elapsed = time.perf_counter_ns() - started_ns
        key = _attribution_key(callback, event)
        self._calls[key] = self._calls.get(key, 0) + 1
        self._total_ns[key] = self._total_ns.get(key, 0) + elapsed

    def rows(self, top: Optional[int] = None) -> List[ProfileRow]:
        rows = [
            ProfileRow(name, self._calls[name], self._total_ns[name] / 1e6)
            for name in self._calls
        ]
        rows.sort(key=lambda row: (-row.total_ms, row.name))
        return rows[:top] if top is not None else rows

    def total_ms(self) -> float:
        return sum(self._total_ns.values()) / 1e6

    def merge(self, other: "SimProfiler") -> None:
        for name, calls in other._calls.items():
            self._calls[name] = self._calls.get(name, 0) + calls
            self._total_ns[name] = self._total_ns.get(name, 0) + other._total_ns[name]
        self.steps += other.steps

    def report(self, top: int = 10) -> str:
        rows = self.rows(top)
        if not rows:
            return "profiler: no callbacks recorded"
        width = max(len(row.name) for row in rows)
        lines = [
            f"profiler: {self.steps} kernel steps, "
            f"{self.total_ms():.1f} ms attributed self-time",
            f"  {'where':<{width}}  {'calls':>8}  {'total ms':>9}  {'mean µs':>8}",
        ]
        for row in rows:
            lines.append(
                f"  {row.name:<{width}}  {row.calls:>8}  "
                f"{row.total_ms:>9.2f}  {row.mean_us:>8.1f}"
            )
        return "\n".join(lines)


def merge_profiles(profilers: List[SimProfiler]) -> SimProfiler:
    merged = SimProfiler()
    for profiler in profilers:
        merged.merge(profiler)
    return merged


@contextmanager
def profiling() -> Iterator[List[SimProfiler]]:
    """Attach a :class:`SimProfiler` to every Environment built in scope.

    Mirrors ``repro.analysis.sanitizer.traced_environments``: swaps the
    class-level factory and restores it on exit.  Yields the (mutable) list
    of profilers, one per environment constructed inside the block.
    """

    profilers: List[SimProfiler] = []

    def factory() -> SimProfiler:
        profiler = SimProfiler()
        profilers.append(profiler)
        return profiler

    previous = Environment._profiler_factory
    Environment._profiler_factory = staticmethod(factory)
    try:
        yield profilers
    finally:
        Environment._profiler_factory = previous
