"""Reconstruct per-incident recovery-phase timelines from raw trace events.

The paper reports recovery only end-to-end ("from the failure instant until
latency returns to within 10% of pre-failure", Section 7.4).  This module
decomposes that scalar into the protocol phases of Section 6.  For every
``failure-injected`` event it builds a :class:`RecoveryIncident` whose
:class:`Phase` list is a **contiguous partition** of
``[failure_time, end_time]`` — so phase durations sum to the end-to-end
recovery time by construction, and when the incident's ``end_source`` is
``"latency-envelope"`` that end-to-end time is exactly the value
:func:`repro.metrics.collectors.recovery_time` reports.

Phase taxonomy (paper protocol steps in parentheses):

1.  ``failure-detection``      — kill instant → failure detector fires
2.  ``standby-activation``     — (step 1, fast path) hot standby promotion
    / ``checkpoint-restore``   — (step 1, slow path) redeploy + DFS restore
3.  ``network-reconfigure``    — (step 2) channel rewiring; instantaneous in
    the sim, kept as a named zero-width phase
4.  ``determinant-fetch``      — (step 3) collect logged determinants from
    downstream causal logs
5.  ``inflight-replay``        — (step 4) replay logged in-flight records
    under order determinants
6.  ``nondeterminism-replay``  — (step 5) first replayed nondeterministic
    value onward (absent for deterministic UDFs)
7.  ``dedup-flush``            — (step 6) downstream dedup horizon flush
8.  ``catch-up``               — recovered instant → latency back inside the
    10% envelope

Global-rollback (flink-mode) incidents use ``task-cancellation`` /
``checkpoint-restore`` / ``task-restart`` marks between detection and
catch-up instead of steps 1–6.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.trace.events import TraceEvent, TraceLog

#: Canonical display/sort order for protocol phases.
PHASE_ORDER: Tuple[str, ...] = (
    "failure-detection",
    "standby-activation",
    "checkpoint-restore",
    "network-reconfigure",
    "determinant-fetch",
    "inflight-replay",
    "nondeterminism-replay",
    "dedup-flush",
    "task-cancellation",
    "task-restart",
    "catch-up",
)


def _phase_rank(name: str) -> int:
    try:
        return PHASE_ORDER.index(name)
    except ValueError:
        return len(PHASE_ORDER)


@dataclass(frozen=True)
class Phase:
    """One contiguous segment of a recovery incident."""

    name: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class CheckpointSpan:
    """Lifetime of one epoch cut: trigger → completion (or abort)."""

    checkpoint_id: int
    triggered: float
    completed: Optional[float]
    status: str  # "complete" | "aborted" | "pending"


@dataclass
class RecoveryIncident:
    """One failure → recovery episode, decomposed into named phases."""

    index: int
    victim: str
    failure_time: float
    detected_time: Optional[float]
    recovered_time: Optional[float]
    end_time: float
    #: "latency-envelope" when the end comes from metrics.collectors
    #: recovery_time; "recovered-event" when the latency signal is absent,
    #: degenerate, or earlier than the recovered event; "incomplete" when the
    #: run ended mid-recovery.
    end_source: str
    phases: List[Phase] = field(default_factory=list)
    retries: int = 0
    degraded: bool = False

    @property
    def end_to_end(self) -> float:
        return self.end_time - self.failure_time

    def phase_totals(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for phase in self.phases:
            totals[phase.name] = totals.get(phase.name, 0.0) + phase.duration
        return dict(
            sorted(totals.items(), key=lambda item: (_phase_rank(item[0]), item[0]))
        )

    def phase_sum(self) -> float:
        return sum(phase.duration for phase in self.phases)

    def named_phase_count(self) -> int:
        return len({phase.name for phase in self.phases})


@dataclass
class JobTimeline:
    """Full run reconstruction: epochs, checkpoints, recovery incidents."""

    duration: Optional[float]
    checkpoints: List[CheckpointSpan] = field(default_factory=list)
    incidents: List[RecoveryIncident] = field(default_factory=list)


def _checkpoint_spans(events: Sequence[TraceEvent]) -> List[CheckpointSpan]:
    triggered: Dict[int, float] = {}
    spans: List[CheckpointSpan] = []
    for event in events:
        cid = event.arg("checkpoint_id")
        if event.kind == "checkpoint-triggered" and cid is not None:
            triggered[cid] = event.time
        elif event.kind == "checkpoint-complete" and cid is not None:
            spans.append(
                CheckpointSpan(cid, triggered.pop(cid, event.time), event.time, "complete")
            )
        elif event.kind == "checkpoint-aborted" and cid is not None:
            spans.append(
                CheckpointSpan(cid, triggered.pop(cid, event.time), event.time, "aborted")
            )
    for cid, start in sorted(triggered.items()):
        spans.append(CheckpointSpan(cid, start, None, "pending"))
    spans.sort(key=lambda span: (span.triggered, span.checkpoint_id))
    return spans


def _first(
    events: Sequence[TraceEvent],
    kind: str,
    subjects: Tuple[str, ...],
    start: float,
    limit: float,
) -> Optional[TraceEvent]:
    for event in events:
        if (
            event.kind == kind
            and event.subject in subjects
            and start <= event.time < limit
        ):
            return event
    return None


def _build_incident(
    index: int,
    fail: TraceEvent,
    events: Sequence[TraceEvent],
    limit: float,
    recovery_end: Optional[float],
) -> RecoveryIncident:
    victim = fail.subject
    t_fail = fail.time

    detected = _first(events, "failure-detected", (victim,), t_fail, limit)
    recovered = _first(events, "task-recovered", (victim,), t_fail, limit)
    if recovered is None:
        # Global rollback never emits per-task recovered events; the barrier
        # restart completing is the victim's recovery instant.
        recovered = _first(events, "global-restart-done", ("*",), t_fail, limit)

    retries = sum(
        1
        for event in events
        if event.kind in ("recovery-retry", "orphan-fallback")
        and event.subject == victim
        and t_fail <= event.time < limit
    )
    degraded = (
        _first(events, "degraded", (victim, "*"), t_fail, limit) is not None
    )

    # Phase boundaries: the kill instant opens failure-detection; every
    # phase-begin/phase-mark for the victim (or job-wide "*") opens the next
    # segment.  Escalation retries naturally re-open earlier phases.
    markers: List[Tuple[float, int, str]] = [(t_fail, -1, "failure-detection")]
    recovered_time = recovered.time if recovered is not None else None
    marker_limit = recovered_time if recovered_time is not None else limit
    for position, event in enumerate(events):
        if event.kind not in ("phase-begin", "phase-mark"):
            continue
        if event.subject not in (victim, "*"):
            continue
        if not (t_fail <= event.time <= marker_limit):
            continue
        phase = event.arg("phase")
        if phase:
            markers.append((event.time, position, str(phase)))
    markers.sort(key=lambda item: (item[0], item[1]))

    if recovered_time is None:
        end_time = markers[-1][0]
        end_source = "incomplete"
    elif (
        recovery_end is not None
        and math.isfinite(recovery_end)
        and recovery_end >= recovered_time
        and recovery_end < limit
    ):
        end_time = recovery_end
        end_source = "latency-envelope"
    else:
        end_time = recovered_time
        end_source = "recovered-event"

    replay_end = recovered_time if recovered_time is not None else end_time
    phases: List[Phase] = []
    for pos, (start, _seq, name) in enumerate(markers):
        seg_end = markers[pos + 1][0] if pos + 1 < len(markers) else replay_end
        seg_start = min(start, replay_end)
        seg_end = min(max(seg_end, seg_start), replay_end)
        phases.append(Phase(name, seg_start, seg_end))
    if recovered_time is not None:
        phases.append(Phase("catch-up", min(recovered_time, end_time), end_time))

    return RecoveryIncident(
        index=index,
        victim=victim,
        failure_time=t_fail,
        detected_time=detected.time if detected is not None else None,
        recovered_time=recovered_time,
        end_time=end_time,
        end_source=end_source,
        phases=phases,
        retries=retries,
        degraded=degraded,
    )


def build_timeline(
    trace: TraceLog,
    latencies: Optional[Sequence[Any]] = None,
    duration: Optional[float] = None,
) -> JobTimeline:
    """Turn a raw :class:`TraceLog` into a structured :class:`JobTimeline`.

    ``latencies`` are the sink :class:`~repro.metrics.collectors.LatencyPoint`
    samples; when present, each incident's end is the last sample above the
    10% envelope (exactly what ``metrics.collectors.recovery_time`` reports),
    falling back to the recovered event when the latency signal is missing,
    zero, or earlier than the recovered instant.
    """

    events = list(trace)
    timeline = JobTimeline(duration=duration, checkpoints=_checkpoint_spans(events))

    fails = [event for event in events if event.kind == "failure-injected"]
    for index, fail in enumerate(fails):
        limit = math.inf
        for later in fails[index + 1 :]:
            if later.subject == fail.subject and later.time > fail.time:
                limit = later.time
                break

        recovery_end: Optional[float] = None
        if latencies:
            from repro.metrics.collectors import recovery_time

            measured = recovery_time(latencies, fail.time)
            if measured is not None and measured > 0.0:
                recovery_end = fail.time + measured

        timeline.incidents.append(
            _build_incident(index, fail, events, limit, recovery_end)
        )
    return timeline


def timeline_of(result: Any) -> JobTimeline:
    """Convenience: build the timeline for a harness ``ExperimentResult``."""

    trace = getattr(result.jm, "trace", None) or TraceLog(enabled=False)
    try:
        latencies = result.latencies
    except Exception:
        latencies = None
    return build_timeline(trace, latencies=latencies, duration=result.duration)


def breakdown_extra_info(result: Any, round_to: int = 6) -> Dict[str, Any]:
    """Flat, JSON-serialisable per-phase stats for benchmark ``extra_info``."""

    timeline = timeline_of(result)
    totals: Dict[str, float] = {}
    end_to_end = 0.0
    retries = 0
    for incident in timeline.incidents:
        end_to_end += incident.end_to_end
        retries += incident.retries
        for name, value in incident.phase_totals().items():
            totals[name] = totals.get(name, 0.0) + value
    info: Dict[str, Any] = {
        "incidents": len(timeline.incidents),
        "end_to_end_s": round(end_to_end, round_to),
        "retries": retries,
        "phases": {
            name: round(value, round_to)
            for name, value in sorted(
                totals.items(), key=lambda item: (_phase_rank(item[0]), item[0])
            )
        },
    }
    if timeline.incidents:
        info["end_sources"] = sorted(
            {incident.end_source for incident in timeline.incidents}
        )
    jm = getattr(result, "jm", None)
    if jm is not None:
        from repro.metrics.collectors import stall_summary

        stall = stall_summary(jm)
        # The liveness verdict rides along so a stalled benchmark run is
        # visible in extra_info, not just in the raised exception.
        info["verdict"] = stall.pop("verdict")
        info.update(stall)
    return info
