"""Structured, sim-time-stamped event bus for Clonos dataflows.

Every :class:`~repro.runtime.jobmanager.JobManager` owns one
:class:`TraceLog` (``jm.trace``) and the instrumented layers — checkpoint
coordinator, tasks, fault-tolerance coordinators, recovery/standby state,
chaos engine, integrity monitor — append :class:`TraceEvent` records to it.

Design constraints:

* **Passive.** ``emit`` only appends a tuple of already-computed sim values
  to a Python list.  It never schedules sim events, never reads wall clocks,
  and never touches RNG state, so enabling/disabling tracing cannot change
  sim-time behaviour (asserted by ``tests/trace/test_passivity.py``).
* **Cheap.** The hot-path guard is a single attribute check; recording a
  disabled log is a no-op.
* **Self-contained.** Events carry plain scalars (str/int/float/bool) so the
  exporters can serialise them deterministically.

Event-kind taxonomy (``TraceEvent.kind``):

==========================  ====================================================
kind                        meaning (``subject`` / notable ``args``)
==========================  ====================================================
``checkpoint-triggered``    coordinator starts epoch cut (``checkpoint_id``)
``snapshot-taken``          one task sealed its snapshot (task / ``checkpoint_id``)
``checkpoint-complete``     all acks in; epoch boundary (``checkpoint_id``)
``checkpoint-aborted``      pending cut abandoned (``checkpoint_id``)
``failure-injected``        harness/chaos killed a task (victim task)
``failure-detected``        failure detector fired (victim task, ``via``)
``task-recovered``          victim finished replay + dedup flush (victim task)
``phase-begin``             supervised protocol step started (task, ``phase``)
``phase-end``               supervised step finished (task, ``phase``/``status``)
``phase-mark``              instantaneous phase transition (task, ``phase``)
``recovery-retry``          escalation-ladder retry (task, ``label``/``attempt``)
``orphan-fallback``         determinants lost; rung 2 (task)
``degraded``                ladder exhausted; rung 3 announced (task, ``reason``)
``global-restart-begin``    full-rollback restart begins (``*``)
``global-restart-done``     all tasks restarted from epoch (``*``, ``epoch``)
``standby-transfer-begin``  snapshot dispatch to hot standby (task)
``standby-transfer-done``   standby image installed (task, ``checkpoint_id``)
``standby-lost``            standby node died (task)
``replay-loaded``           determinant bundle loaded (task, counts)
``replay-exhausted``        all determinants consumed (task, counts)
``chaos-fault``             chaos engine applied a fault (target, ``fault``)
``integrity-violation``     artifact validation failed (artifact, ``check``)
==========================  ====================================================

Phase names used with ``phase-begin``/``phase-end``/``phase-mark`` follow the
paper's six-step recovery protocol plus the detection/catch-up bookends; see
:data:`repro.trace.timeline.PHASE_ORDER`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, NamedTuple, Optional, Tuple


class TraceEvent(NamedTuple):
    """One structured trace record stamped with the sim time it occurred."""

    time: float
    kind: str
    subject: str
    args: Tuple[Tuple[str, Any], ...]

    def arg(self, name: str, default: Any = None) -> Any:
        for key, value in self.args:
            if key == name:
                return value
        return default

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "time": self.time,
            "kind": self.kind,
            "subject": self.subject,
        }
        if self.args:
            doc["args"] = dict(self.args)
        return doc


class TraceLog:
    """Append-only, sim-time-ordered event log.

    ``default_enabled`` is the class-wide switch consulted when a log is
    constructed without an explicit ``enabled`` flag; the :func:`tracing`
    context manager flips it for passivity experiments.
    """

    default_enabled: bool = True

    __slots__ = ("enabled", "events")

    def __init__(self, enabled: Optional[bool] = None) -> None:
        self.enabled = TraceLog.default_enabled if enabled is None else enabled
        self.events: List[TraceEvent] = []

    def emit(self, time: float, kind: str, subject: str = "", **args: Any) -> None:
        if not self.enabled:
            return
        self.events.append(
            TraceEvent(time, kind, subject, tuple(sorted(args.items())))
        )

    def events_of(self, *kinds: str) -> List[TraceEvent]:
        wanted = frozenset(kinds)
        return [event for event in self.events if event.kind in wanted]

    def clear(self) -> None:
        del self.events[:]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)


@contextmanager
def tracing(enabled: bool) -> Iterator[None]:
    """Force the default enabled-state of newly created :class:`TraceLog`\\ s.

    Used by the passivity test to run the same experiment with recording
    on and off and compare sink digests.
    """

    previous = TraceLog.default_enabled
    TraceLog.default_enabled = enabled
    try:
        yield
    finally:
        TraceLog.default_enabled = previous
