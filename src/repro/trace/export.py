"""Exporters: JSONL event streams and Chrome-trace/Perfetto JSON.

Both exporters are **deterministic for a fixed seed**: they serialise only
sim-time values (never wall clocks), walk pre-sorted structures, and emit
JSON with ``sort_keys=True`` and fixed separators, so two same-seed runs
produce byte-identical files (asserted by the ``trace-smoke`` CI job).

The Chrome-trace document follows the Trace Event Format: complete spans
(``"ph": "X"``) for job/epoch/checkpoint/incident/phase spans, instant
events (``"ph": "i"``) for faults/detections/violations, and metadata
records (``"ph": "M"``) naming the process and per-task threads.  Sim
seconds map to microsecond timestamps (``ts = time * 1e6``), the unit the
format expects, so a Perfetto/``chrome://tracing`` load shows real sim time.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.trace.events import TraceEvent, TraceLog
from repro.trace.spans import Span, build_span_tree
from repro.trace.timeline import JobTimeline

_JSON_KW = {"sort_keys": True, "separators": (",", ":")}

#: Instant-event kinds surfaced in the Chrome trace (everything else is
#: either span-structured or replay bookkeeping).
_INSTANT_KINDS = (
    "failure-injected",
    "failure-detected",
    "task-recovered",
    "recovery-retry",
    "orphan-fallback",
    "degraded",
    "standby-lost",
    "chaos-fault",
    "integrity-violation",
)

_PID = 1
_JOB_TID = 0


def events_to_jsonl(events: Sequence[TraceEvent]) -> str:
    """Serialise raw events, one JSON object per line."""

    lines = [json.dumps(event.to_dict(), **_JSON_KW) for event in events]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(path: Union[str, Path], trace: TraceLog) -> Path:
    path = Path(path)
    path.write_text(events_to_jsonl(list(trace)), encoding="utf-8")
    return path


def _us(time: float) -> float:
    # Round to whole nanoseconds to keep the JSON textual form stable.
    return round(time * 1_000_000.0, 3)


def _tid_map(trace: TraceLog, timeline: JobTimeline) -> Dict[str, int]:
    subjects = set()
    for event in trace:
        if event.subject and event.subject != "*":
            subjects.add(event.subject)
    for incident in timeline.incidents:
        subjects.add(incident.victim)
    return {name: tid for tid, name in enumerate(sorted(subjects), start=_JOB_TID + 1)}


def _span_events(root: Span, tids: Dict[str, int]) -> List[Dict[str, Any]]:
    records = []
    for span in root.walk():
        subject = span.args.get("victim", "")
        tid = tids.get(subject, _JOB_TID)
        record: Dict[str, Any] = {
            "ph": "X",
            "pid": _PID,
            "tid": tid,
            "name": span.name,
            "cat": span.category,
            "ts": _us(span.start),
            "dur": max(0.0, _us(span.end) - _us(span.start)),
        }
        if span.args:
            record["args"] = dict(span.args)
        records.append(record)
    return records


def _instant_events(trace: TraceLog, tids: Dict[str, int]) -> List[Dict[str, Any]]:
    records = []
    for event in trace:
        if event.kind not in _INSTANT_KINDS:
            continue
        records.append(
            {
                "ph": "i",
                "s": "g" if event.subject in ("", "*") else "t",
                "pid": _PID,
                "tid": tids.get(event.subject, _JOB_TID),
                "name": event.kind,
                "cat": "trace-event",
                "ts": _us(event.time),
                "args": dict(event.args) or {"subject": event.subject},
            }
        )
    return records


def chrome_trace(
    trace: TraceLog,
    timeline: JobTimeline,
    job_name: str = "job",
    extra_metadata: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build the Chrome-trace/Perfetto document for one run."""

    root = build_span_tree(trace, timeline, job_name=job_name)
    tids = _tid_map(trace, timeline)

    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "pid": _PID,
            "tid": _JOB_TID,
            "name": "process_name",
            "args": {"name": job_name},
        },
        {
            "ph": "M",
            "pid": _PID,
            "tid": _JOB_TID,
            "name": "thread_name",
            "args": {"name": "job"},
        },
    ]
    for subject, tid in tids.items():
        events.append(
            {
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": subject},
            }
        )
    events.extend(_span_events(root, tids))
    events.extend(_instant_events(trace, tids))

    other: Dict[str, Any] = {"generator": "repro.trace", "time_unit": "sim-seconds"}
    if extra_metadata:
        other.update(extra_metadata)
    return {
        "displayTimeUnit": "ms",
        "otherData": other,
        "traceEvents": events,
    }


def write_chrome_trace(path: Union[str, Path], document: Dict[str, Any]) -> Path:
    path = Path(path)
    path.write_text(json.dumps(document, **_JSON_KW) + "\n", encoding="utf-8")
    return path


def validate_chrome_trace(document: Any) -> List[str]:
    """Schema-check a Chrome-trace document; returns a list of problems.

    An empty list means the document is structurally valid: required keys
    per phase type, non-negative durations, numeric timestamps, and complete
    pid/tid/name metadata.
    """

    problems: List[str] = []
    if not isinstance(document, dict):
        return ["document is not a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for position, event in enumerate(events):
        where = f"traceEvents[{position}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "i", "M"):
            problems.append(f"{where}: unsupported ph {ph!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing name")
        if not isinstance(event.get("pid"), int) or not isinstance(
            event.get("tid"), int
        ):
            problems.append(f"{where}: pid/tid must be integers")
        if ph in ("X", "i"):
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: ts must be a non-negative number")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: dur must be a non-negative number")
            if not isinstance(event.get("cat"), str):
                problems.append(f"{where}: X events need a cat")
        if ph == "i" and event.get("s") not in ("g", "p", "t"):
            problems.append(f"{where}: instant scope must be g/p/t")
        if ph == "M" and not isinstance(event.get("args"), dict):
            problems.append(f"{where}: metadata events need args")
    return problems
