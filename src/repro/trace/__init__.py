"""repro.trace — causal tracing, recovery-phase timelines, sim-aware profiling.

The paper evaluates recovery end-to-end (Section 7.4); its protocol is a
six-phase sequence (Section 6).  This package makes the phases visible:

* :mod:`repro.trace.events` — structured, sim-time-stamped event bus; every
  :class:`~repro.runtime.jobmanager.JobManager` carries one
  (:attr:`JobManager.trace`) and the instrumented layers append to it.
* :mod:`repro.trace.spans` — span tree modelling
  job → epoch → recovery-incident → protocol-phase.
* :mod:`repro.trace.timeline` — reconstructs per-incident phase breakdowns
  from raw events; phase durations sum to the end-to-end recovery time
  :func:`repro.metrics.collectors.recovery_time` reports.
* :mod:`repro.trace.export` — JSONL and Chrome-trace/Perfetto JSON exporters
  (deterministic for a fixed seed).
* :mod:`repro.trace.profiler` — wall-clock self-time per sim process/handler
  (opt-in, never visible to dataflow logic).

Tracing is **passive**: recording appends sim-time-stamped tuples to Python
lists and never schedules events, reads clocks visible to operators, or
perturbs RNG streams — enabling it leaves sink output byte-identical (see
``tests/trace/test_passivity.py``).
"""

from repro.trace.events import TraceEvent, TraceLog, tracing
from repro.trace.export import (
    chrome_trace,
    events_to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.trace.profiler import SimProfiler, merge_profiles, profiling
from repro.trace.spans import Span, build_span_tree
from repro.trace.timeline import (
    JobTimeline,
    Phase,
    RecoveryIncident,
    breakdown_extra_info,
    build_timeline,
    timeline_of,
)

__all__ = [
    "TraceEvent",
    "TraceLog",
    "tracing",
    "Span",
    "build_span_tree",
    "JobTimeline",
    "Phase",
    "RecoveryIncident",
    "build_timeline",
    "timeline_of",
    "breakdown_extra_info",
    "chrome_trace",
    "events_to_jsonl",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "SimProfiler",
    "merge_profiles",
    "profiling",
]
