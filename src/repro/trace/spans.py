"""Span tree: job → epoch → recovery-incident → protocol-phase.

Spans are derived *post hoc* from a :class:`~repro.trace.events.TraceLog`
and a :class:`~repro.trace.timeline.JobTimeline` — nothing in the sim ever
holds a span open, which keeps recording passive and crash-safe (a run that
dies mid-recovery still yields a well-formed tree for the part that ran).

Lifecycle:

* the **job** span covers ``[0, duration]`` (or the last event seen);
* **epoch** spans tile the job span between consecutive
  ``checkpoint-complete`` boundaries;
* **checkpoint** spans cover trigger → completion/abort of each cut;
* **incident** spans cover ``[failure_time, end_time]`` of each
  :class:`~repro.trace.timeline.RecoveryIncident`, with one child span per
  protocol :class:`~repro.trace.timeline.Phase`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.trace.events import TraceLog
from repro.trace.timeline import JobTimeline


@dataclass
class Span:
    name: str
    category: str
    start: float
    end: float
    args: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def walk(self) -> List["Span"]:
        spans = [self]
        for child in self.children:
            spans.extend(child.walk())
        return spans


def _job_extent(trace: TraceLog, timeline: JobTimeline) -> Tuple[float, float]:
    end = timeline.duration if timeline.duration is not None else 0.0
    for event in trace:
        end = max(end, event.time)
    for incident in timeline.incidents:
        end = max(end, incident.end_time)
    return 0.0, end


def build_span_tree(
    trace: TraceLog,
    timeline: JobTimeline,
    job_name: str = "job",
) -> Span:
    """Assemble the job → epoch → incident → phase span tree."""

    start, end = _job_extent(trace, timeline)
    job = Span(job_name, "job", start, end)

    boundaries = [start]
    for checkpoint in timeline.checkpoints:
        if checkpoint.status == "complete" and checkpoint.completed is not None:
            boundaries.append(checkpoint.completed)
    boundaries.append(end)
    epoch_id = 0
    for left, right in zip(boundaries, boundaries[1:]):
        if right <= left:
            continue
        job.children.append(
            Span(f"epoch {epoch_id}", "epoch", left, right, {"epoch": epoch_id})
        )
        epoch_id += 1

    for checkpoint in timeline.checkpoints:
        completed = checkpoint.completed if checkpoint.completed is not None else end
        job.children.append(
            Span(
                f"checkpoint {checkpoint.checkpoint_id}",
                "checkpoint",
                checkpoint.triggered,
                completed,
                {
                    "checkpoint_id": checkpoint.checkpoint_id,
                    "status": checkpoint.status,
                },
            )
        )

    for incident in timeline.incidents:
        node = Span(
            f"recover {incident.victim}",
            "recovery-incident",
            incident.failure_time,
            incident.end_time,
            {
                "incident": incident.index,
                "victim": incident.victim,
                "end_source": incident.end_source,
                "retries": incident.retries,
                "degraded": incident.degraded,
            },
        )
        for phase in incident.phases:
            node.children.append(
                Span(
                    phase.name,
                    "recovery-phase",
                    phase.start,
                    phase.end,
                    {"incident": incident.index, "victim": incident.victim},
                )
            )
        job.children.append(node)

    return job


def span_summary(root: Span) -> Dict[str, int]:
    """Count spans per category (handy for tests and CLI summaries)."""

    counts: Dict[str, int] = {}
    for span in root.walk():
        counts[span.category] = counts.get(span.category, 0) + 1
    return dict(sorted(counts.items()))
