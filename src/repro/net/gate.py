"""Receiver-side networking: input channels and the input gate.

The gate consumes buffers *in arrival order across channels* — the record
arrival order of Section 4.1, one of the sources of nondeterminism Clonos
must log.  Barrier alignment blocks individual channels; blocked channels
keep queueing until their credits run out, which backpressures the sender,
exactly as in Flink.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.errors import NetworkError
from repro.net.buffer import NetworkBuffer
from repro.sim.core import Environment, Event
from repro.sim.queues import Signal, Store


class InputChannel:
    """Receiver endpoint of one channel: a bounded (credit) buffer queue."""

    def __init__(self, env: Environment, index: int, capacity: int, upstream_name: str = ""):
        self.env = env
        self.index = index
        self.upstream_name = upstream_name
        self.queue: Store[NetworkBuffer] = Store(env, capacity=capacity)
        #: Sequence number of the last buffer *consumed* by the task; the
        #: reconnect handshake reports it for sender-side deduplication.
        self.last_seq = -1
        #: Alignment: a blocked channel is not consumed from.
        self.blocked = False
        #: Arrival notifications consumed while blocked (buffers still queued).
        self.deferred = 0
        #: Highest sequence number *delivered* into the queue (reported in
        #: the reconnect handshake for sender-side deduplication; consumption
        #: may lag behind).
        self.delivered_seq = -1
        #: Notifications made stale by a direct take_from (ordered replay).
        self.owed_notifications = 0
        self._closed = False
        self._gate: Optional["InputGate"] = None

    def deliver(self, buffer: NetworkBuffer) -> Event:
        """Called by the link pump; blocks the pump when out of credits."""
        if self._closed:
            failed = Event(self.env)
            failed.fail(NetworkError(f"input channel {self.index} closed"))
            return failed
        done = self.queue.put(buffer)
        seq = buffer.seq

        def note(_ev=None, s=seq):
            if s > self.delivered_seq:
                self.delivered_seq = s
            self._on_queued()

        # Notify the gate only once the buffer is actually queued.
        if done.triggered:
            note()
        else:
            done.callbacks.append(note)
        return done

    def _on_queued(self) -> None:
        if self._gate is not None and not self._closed:
            self._gate._notify_arrival(self.index)

    def close(self) -> None:
        """Tear down (task died): fail blocked senders, drop queued data."""
        self._closed = True
        self.queue.cancel_waiters(NetworkError("input channel torn down"))
        for buffer in self.queue.clear():
            if buffer.recycle_on_consume:
                buffer.recycle()

    def __repr__(self) -> str:
        return (
            f"InputChannel({self.index}, queued={len(self.queue)}, "
            f"blocked={self.blocked}, last_seq={self.last_seq})"
        )


class InputGate:
    """Multiplexes a task's input channels in arrival order."""

    def __init__(self, env: Environment, channels: List[InputChannel]):
        self.env = env
        self.channels = channels
        self._order: Deque[int] = deque()
        self._ready: Deque[int] = deque()
        #: Pulsed whenever a new buffer becomes consumable; tasks wait on it
        #: together with their timer/control signals.
        self.arrival_signal = Signal(env)
        for channel in channels:
            channel._gate = self

    @property
    def num_channels(self) -> int:
        return len(self.channels)

    def _notify_arrival(self, index: int) -> None:
        self._order.append(index)
        self.arrival_signal.pulse()

    def poll_buffer(self) -> Optional[Tuple[int, NetworkBuffer]]:
        """Next (channel, buffer) from an unblocked channel, or None."""
        while True:
            index = self._take_ready()
            if index is None:
                if not self._order:
                    return None
                index = self._order.popleft()
            channel = self.channels[index]
            if channel.owed_notifications:
                channel.owed_notifications -= 1
                continue
            if channel.blocked:
                channel.deferred += 1
                continue
            buffer = channel.queue.try_get()
            if buffer is None:
                raise NetworkError("arrival notification without queued buffer")
            channel.last_seq = buffer.seq
            return index, buffer

    def next_buffer(self):
        """Generator: block until a buffer is consumable, then return
        ``(channel_index, buffer)``."""
        while True:
            item = self.poll_buffer()
            if item is not None:
                return item
            yield self.arrival_signal.wait()

    def take_from(self, index: int):
        """Generator: consume the next buffer of a *specific* channel,
        bypassing arrival order — used by determinant-driven replay, where
        Order determinants dictate the interleaving (Section 5.2)."""
        channel = self.channels[index]
        buffer = yield channel.queue.get()
        channel.last_seq = buffer.seq
        channel.owed_notifications += 1
        return buffer

    def _take_ready(self) -> Optional[int]:
        while self._ready:
            index = self._ready.popleft()
            if self.channels[index].blocked:
                self.channels[index].deferred += 1
                continue
            return index
        return None

    def block_channel(self, index: int) -> None:
        """Barrier alignment: stop consuming from this channel."""
        self.channels[index].blocked = True

    def unblock_all(self) -> None:
        """End of alignment: release all channels, replaying deferred
        arrival notifications in channel order."""
        woke_any = False
        for channel in self.channels:
            channel.blocked = False
            if channel.deferred:
                self._ready.extend([channel.index] * channel.deferred)
                channel.deferred = 0
                woke_any = True
        if woke_any:
            self.arrival_signal.pulse()

    @property
    def blocked_channels(self) -> List[int]:
        return [ch.index for ch in self.channels if ch.blocked]

    def close(self) -> None:
        for channel in self.channels:
            channel.close()
