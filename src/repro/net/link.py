"""Network links: reliable FIFO wires between task endpoints.

A :class:`NetworkLink` is the physical connection behind one logical channel.
It survives the failure of either endpoint; recovery *re-attaches* a new
sender or receiver (Section 6.2, dynamic network reconfiguration) and the
link reports the hand-shake information both sides need (the receiver's last
received sequence number, used for sender-side deduplication).
"""

from __future__ import annotations

from typing import Optional

from repro.config import CostModel
from repro.errors import NetworkError
from repro.net.buffer import NetworkBuffer
from repro.sim.core import Environment
from repro.sim.queues import Signal, Store


class LinkChaos:
    """Fault state injected into one :class:`NetworkLink` by ``repro.chaos``.

    Three fault shapes, all FIFO-preserving:

    * **delay spike** — ``delay_factor`` scales transmission time;
    * **partition** — delivery holds (senders back up on the in-transit
      window) until :meth:`heal`;
    * **buffer loss** — the next ``drop_next`` deliveries are discarded and
      the link goes *broken* (every later delivery is dropped too, because
      delivering a successor of a lost buffer would violate FIFO); repair is
      sender-driven: the chaos engine notices the loss via ``on_loss`` and
      has the upstream's in-flight log retransmit from the receiver's last
      delivered sequence number.
    """

    def __init__(self, env: Environment):
        self.env = env
        self.delay_factor = 1.0
        self.partitioned = False
        self._heal_signal = Signal(env)
        #: Pending injected drops; the first one breaks the link.
        self.drop_next = 0
        self.broken = False
        self.dropped = 0
        #: Called once per loss episode with the link, from the pump.
        self.on_loss = None

    def heal(self) -> None:
        if self.partitioned:
            self.partitioned = False
            self._heal_signal.pulse()

    def wait_heal(self):
        return self._heal_signal.wait()


class ReceiverEndpoint:
    """What a link needs from the receiving side (implemented by
    :class:`repro.net.gate.InputChannel`)."""

    def deliver(self, buffer: NetworkBuffer):
        """Return a waitable event; blocking models exhausted credits."""
        raise NotImplementedError


class NetworkLink:
    """One FIFO wire with latency, bandwidth, and a small in-transit window.

    While no receiver is attached (the downstream task is dead and not yet
    replaced), delivered buffers are *dropped*: this is precisely the data
    that upstream in-flight logs exist to regenerate.
    """

    def __init__(self, env: Environment, cost: CostModel, name: str = "", capacity: int = 4):
        self.env = env
        self.cost = cost
        self.name = name
        self._wire: Store[NetworkBuffer] = Store(env, capacity=capacity)
        self._receiver: Optional[ReceiverEndpoint] = None
        #: Bumped on reset(): the pump drops any buffer it picked up before
        #: the reset (data in the TCP stack dies with the connection).
        self._generation = 0
        #: Buffers dropped because the receiver was dead; for assertions.
        self.dropped_buffers = 0
        #: Total payload + determinant bytes carried, for overhead metrics.
        self.bytes_carried = 0
        self.buffers_carried = 0
        #: Installed by the chaos engine; None on healthy links (zero cost).
        self.chaos: Optional[LinkChaos] = None
        self._pump_proc = env.process(self._pump(), name=f"link-pump:{name}")

    @property
    def receiver(self) -> Optional[ReceiverEndpoint]:
        return self._receiver

    def attach_receiver(self, receiver: ReceiverEndpoint) -> None:
        """Connect (or re-connect after recovery) the receiving endpoint."""
        self._receiver = receiver

    def detach_receiver(self) -> None:
        """Called when the downstream task dies: in-transit data is lost."""
        self._receiver = None

    def send(self, buffer: NetworkBuffer):
        """Hand a buffer to the wire; blocks when the transmit window is full."""
        return self._wire.put(buffer)

    def reset(self) -> int:
        """Connection reset (the sender died): in-transit data is lost and
        the dead sender's queued puts are purged.  Returns dropped count."""
        self._generation += 1
        dropped = self._wire.clear()
        for buffer in dropped:
            self._drop(buffer)
        for buffer in self._wire.drop_waiting_puts():
            self._drop(buffer)
        return len(dropped)

    def try_send(self, buffer: NetworkBuffer) -> bool:
        return self._wire.try_put(buffer)

    @property
    def in_transit(self) -> int:
        return len(self._wire)

    def purge(self) -> int:
        """Chaos repair: drop everything currently on the wire — queued
        buffers, the one mid-transmission (via the generation bump), and
        blocked puts (admitted, then dropped).  After a loss the in-flight
        log regenerates all of it; delivering any of it would break FIFO.
        Returns the number of buffers purged."""
        self._generation += 1
        count = 0
        while True:
            dropped = self._wire.clear()
            if not dropped:
                break
            for buffer in dropped:
                self._drop(buffer)
                count += 1
        return count

    def _pump(self):
        while True:
            buffer = yield self._wire.get()
            generation = self._generation
            transmission = self.cost.transmission_time(buffer.total_bytes)
            chaos = self.chaos
            if chaos is not None and chaos.delay_factor != 1.0:
                transmission *= chaos.delay_factor
            yield self.env.timeout(transmission)
            self.bytes_carried += buffer.total_bytes
            self.buffers_carried += 1
            chaos = self.chaos
            while chaos is not None and chaos.partitioned:
                # Partition: hold delivery (FIFO preserved); the bounded
                # in-transit window backpressures the sender meanwhile.
                yield chaos.wait_heal()
                chaos = self.chaos
            receiver = self._receiver
            if receiver is None or generation != self._generation:
                self._drop(buffer)
                continue
            if chaos is not None and (chaos.broken or chaos.drop_next > 0):
                # Injected loss.  After the first dropped buffer the link is
                # *broken* — delivering any successor would break FIFO — so
                # everything drains to the floor until the sender-side
                # repair (in-flight log retransmission) clears ``broken``.
                first = not chaos.broken
                if chaos.drop_next > 0:
                    chaos.drop_next -= 1
                chaos.broken = True
                chaos.dropped += 1
                self._drop(buffer)
                if first and chaos.on_loss is not None:
                    chaos.on_loss(self)
                continue
            try:
                yield receiver.deliver(buffer)
            except NetworkError:
                # Receiver torn down while we were blocked on its credits.
                self._drop(buffer)

    def _drop(self, buffer: NetworkBuffer) -> None:
        self.dropped_buffers += 1
        if buffer.recycle_on_consume:
            buffer.recycle()
