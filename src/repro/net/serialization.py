"""Serialized-size model.

The simulator never produces real byte strings; it only needs to know *how
big* an element would be on the wire, because sizes drive buffer boundaries,
network time, and the determinant overhead that Figure 5 measures.  This
module estimates wire sizes for arbitrary Python values with a small,
predictable recursive model, and lets domain types register exact sizes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Type

from repro.graph.elements import (
    CheckpointBarrier,
    EndOfStream,
    StreamRecord,
    Watermark,
)

#: Fixed framing overhead per element inside a buffer (type tag + length).
ELEMENT_FRAME_BYTES = 4
#: Per-record header: timestamp (8) + key hash (4) + created_at (8).
RECORD_HEADER_BYTES = 20

_custom_sizers: Dict[Type, Callable[[Any], int]] = {}


def register_sizer(cls: Type, fn: Callable[[Any], int]) -> None:
    """Register an exact wire-size function for a domain type."""
    _custom_sizers[cls] = fn


def payload_size(value: Any) -> int:
    """Estimated wire size of a plain Python value.

    Dispatches on the exact type first (one dict probe covers both the
    registered domain sizers and the primitive cases), falling back to the
    original isinstance chain for subclasses and structural cases.  The
    returned sizes are identical to the pre-optimisation model — sizes feed
    buffer cut points and therefore the deterministic schedule.
    """
    t = value.__class__
    sizer = _custom_sizers.get(t)
    if sizer is not None:
        return sizer(value)
    if t is int or t is float:
        return 8
    if t is str or t is bytes:
        return 4 + len(value)
    if t is tuple or t is list:
        # Explicit loop with inlined scalar cases: record payloads are small
        # tuples of ints/floats/strings, and the genexpr + recursive-call
        # overhead dominated this function's cost in profiles.
        total = 4
        for v in value:
            vt = v.__class__
            if vt is int or vt is float:
                total += 8
            elif vt is str or vt is bytes:
                total += 4 + len(v)
            else:
                total += payload_size(v)
        return total
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return 4 + len(value)
    if isinstance(value, bytes):
        return 4 + len(value)
    if isinstance(value, (tuple, list)):
        return 4 + sum(payload_size(v) for v in value)
    if isinstance(value, dict):
        return 4 + sum(payload_size(k) + payload_size(v) for k, v in value.items())
    if hasattr(value, "wire_size"):
        return int(value.wire_size())
    if hasattr(value, "__dict__"):
        return 4 + sum(payload_size(v) for v in vars(value).values())
    if hasattr(value, "__slots__"):
        return 4 + sum(
            payload_size(getattr(value, slot))
            for slot in value.__slots__
            if hasattr(value, slot)
        )
    return 16  # opaque fallback


_RECORD_OVERHEAD = ELEMENT_FRAME_BYTES + RECORD_HEADER_BYTES


def element_size(element: Any) -> int:
    """Wire size of a stream element (record, watermark, barrier)."""
    if element.__class__ is StreamRecord:
        return _RECORD_OVERHEAD + payload_size(element.value)
    if isinstance(element, StreamRecord):
        return _RECORD_OVERHEAD + payload_size(element.value)
    if isinstance(element, (Watermark, CheckpointBarrier)):
        return ELEMENT_FRAME_BYTES + 8
    if isinstance(element, EndOfStream):
        return ELEMENT_FRAME_BYTES
    return ELEMENT_FRAME_BYTES + payload_size(element)
