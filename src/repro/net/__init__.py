"""Network substrate: buffers, FIFO links, gates, writers, partitioners."""

from repro.net.buffer import BufferPool, NetworkBuffer
from repro.net.gate import InputChannel, InputGate
from repro.net.link import NetworkLink
from repro.net.partitioner import (
    BroadcastPartitioner,
    ForwardPartitioner,
    HashPartitioner,
    Partitioner,
    RebalancePartitioner,
    stable_hash,
)
from repro.net.serialization import element_size, payload_size, register_sizer
from repro.net.writer import (
    CausalOutputContext,
    InFlightLogSink,
    OutputChannel,
    RecordWriter,
)

__all__ = [
    "BroadcastPartitioner",
    "BufferPool",
    "CausalOutputContext",
    "ForwardPartitioner",
    "HashPartitioner",
    "InFlightLogSink",
    "InputChannel",
    "InputGate",
    "NetworkBuffer",
    "NetworkLink",
    "OutputChannel",
    "Partitioner",
    "RebalancePartitioner",
    "RecordWriter",
    "element_size",
    "payload_size",
    "register_sizer",
    "stable_hash",
]
