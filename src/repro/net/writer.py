"""Sender-side networking: output channels and the record writer.

This is where three of the paper's mechanisms live:

* **Nondeterministic buffer sizes** (Section 4.1): buffers are cut either
  when full or when the periodic output flusher fires; the cut points are
  reported to the causal context so the per-channel output-queue log can
  record them.
* **Determinant piggybacking** (Section 4.3): at dispatch, the causal
  context hands back the delta of log entries since the last dispatch on
  this channel; its serialised size inflates the buffer on the wire — the
  measurable overhead of Figure 5.
* **The no-copy buffer exchange with the in-flight log** (Section 6.1):
  dispatched buffers transfer to the log pool and an output-pool permit is
  returned immediately, so the sender never blocks on downstream delivery;
  during a downstream replay, fresh buffers are parked *unsent* at the back
  of the log so processing keeps making progress.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from repro.config import CostModel
from repro.errors import NetworkError
from repro.graph.elements import CheckpointBarrier, StreamElement, StreamRecord
from repro.net.buffer import BufferPool, NetworkBuffer
from repro.net.link import NetworkLink
from repro.net.partitioner import Partitioner
from repro.net.serialization import element_size
from repro.sim.core import Environment


class CausalOutputContext:
    """Hooks the Clonos causal-log manager implements (no-ops otherwise)."""

    def on_buffer_cut(
        self,
        channel_index: int,
        seq: int,
        num_elements: int,
        size_bytes: int,
        reason: str,
        epoch: int,
    ) -> None:
        """Record a buffer-size determinant in this channel's output log,
        under the *buffer's* epoch (a barrier-carrying buffer belongs to the
        epoch it closes, even though the main thread already advanced)."""

    def delta_for_dispatch(self, channel_index: int):
        """Return ``(delta, delta_bytes)`` to piggyback on the next buffer."""
        return None, 0


class InFlightLogSink:
    """Interface of the in-flight log as seen by an output channel."""

    def append(self, channel_index: int, buffer: NetworkBuffer, sent: bool):
        """Generator: take ownership of ``buffer`` (pool exchange) and log it."""
        raise NotImplementedError

    def mark_sent(self, channel_index: int, seq: int) -> None:
        raise NotImplementedError


class OutputChannel:
    """Sender endpoint of one channel."""

    def __init__(
        self,
        env: Environment,
        cost: CostModel,
        index: int,
        link: NetworkLink,
        pool: BufferPool,
        charge: Callable[[float], None],
        causal_ctx: Optional[CausalOutputContext] = None,
        inflight_log: Optional[InFlightLogSink] = None,
    ):
        self.env = env
        self.cost = cost
        self.index = index
        self.link = link
        self.pool = pool
        self.charge = charge
        self.causal_ctx = causal_ctx
        self.inflight_log = inflight_log
        #: Next buffer sequence number; checkpointed so a recovering task
        #: regenerates identical numbering.
        self.seq = 0
        #: Current checkpoint epoch of this channel (== last barrier id sent).
        self.epoch = 0
        self.current: Optional[NetworkBuffer] = None
        #: Replay of the in-flight log to a recovering downstream is active;
        #: fresh buffers are logged unsent instead of hitting the wire.
        self.replaying = False
        #: During causal recovery of *this* task: element counts at which the
        #: original execution cut buffers (from the output-queue log).
        self.forced_cuts: Deque[int] = deque()
        #: Sender-side deduplication (Section 5.2): regenerated buffers with
        #: seq <= this were already received downstream — log, don't send.
        self.suppress_until_seq = -1
        self._busy = False
        self.buffers_sent = 0
        self.records_sent = 0

    # -- normal path ---------------------------------------------------------

    def append_element(self, element: StreamElement, size: int):
        """Generator: serialise ``element`` into the channel, flushing as
        needed.  May block on buffer-pool availability (backpressure)."""
        self._busy = True
        try:
            if self.forced_cuts:
                yield from self._append_with_forced_cuts(element, size)
                return
            if self.current is not None and not self.current.fits(
                size, self.cost.buffer_size_bytes
            ):
                yield from self._dispatch("full")
            if self.current is None:
                yield from self._new_buffer()
            self.current.append(element, size)
        finally:
            self._busy = False

    def _append_with_forced_cuts(self, element: StreamElement, size: int):
        # Causal recovery: reproduce the original buffer boundaries exactly,
        # ignoring size/timer triggers.
        if self.current is None:
            yield from self._new_buffer()
        self.current.append(element, size)
        if len(self.current.elements) >= self.forced_cuts[0]:
            self.forced_cuts.popleft()
            yield from self._dispatch("replayed-cut")

    def flush(self, reason: str = "flush"):
        """Generator: dispatch the current (possibly partial) buffer."""
        self._busy = True
        try:
            if self.current is not None and self.current.elements:
                yield from self._dispatch(reason)
        finally:
            self._busy = False

    def try_flush_from_timer(self):
        """The output flusher thread's entry point; skips busy channels and
        returns a generator to run, or None."""
        if self._busy or self.current is None or not self.current.elements:
            return None
        if self.forced_cuts:
            return None  # causal recovery controls cuts exclusively
        return self.flush("timer")

    def _new_buffer(self):
        yield self.pool.acquire()
        self.current = NetworkBuffer(self.index, self.seq, self.epoch, self.pool)
        self.seq += 1

    def _dispatch(self, reason: str):
        buffer, self.current = self.current, None
        self.charge(self.cost.buffer_overhead_cost)
        suppressed = buffer.seq <= self.suppress_until_seq
        parked = self.inflight_log is not None and self.replaying and not suppressed
        if self.causal_ctx is not None:
            self.causal_ctx.on_buffer_cut(
                self.index,
                buffer.seq,
                len(buffer.elements),
                buffer.size_bytes,
                reason,
                buffer.epoch,
            )
            # Capture a delta only for buffers that hit the wire *now*.
            # Parked buffers (downstream replay in progress) get a fresh
            # delta at actual send time, and suppressed buffers (sender-side
            # dedup) are never sent: advancing the delta cursor for either
            # would open a gap in the receiver's causal store.
            if not parked and not suppressed:
                delta, delta_bytes = self.causal_ctx.delta_for_dispatch(self.index)
                buffer.delta = delta
                buffer.delta_bytes = delta_bytes
                entries = 0
                for s in delta:
                    entries += len(s[4])
                self.charge(
                    self.cost.serialize_time(delta_bytes)
                    + entries * self.cost.determinant_cpu_cost
                    + self.cost.determinant_cpu_cost  # the buffer-cut append
                )
        if self.inflight_log is not None:
            self.charge(self.cost.inflight_append_cost)
        self.buffers_sent += 1
        self.records_sent += buffer.n_records
        if self.inflight_log is not None:
            buffer.recycle_on_consume = False
            yield from self.inflight_log.append(self.index, buffer, sent=not parked)
            if not parked and not suppressed:
                yield self.link.send(buffer)
        elif not suppressed:
            yield self.link.send(buffer)
        else:
            buffer.recycle()  # deduplicated and unlogged: return the memory

    # -- checkpoint & recovery support ---------------------------------------

    def snapshot_state(self) -> dict:
        """Network state included in the task's checkpoint."""
        return {"seq": self.seq, "epoch": self.epoch}

    def restore_state(self, state: dict) -> None:
        self.seq = state["seq"]
        self.epoch = state["epoch"]
        self.current = None

    def __repr__(self) -> str:
        return f"OutputChannel({self.index}, seq={self.seq}, epoch={self.epoch})"


class RecordWriter:
    """Routes a task's output records to its output channels."""

    def __init__(
        self,
        env: Environment,
        cost: CostModel,
        channels: List[OutputChannel],
        partitioner: Partitioner,
        charge: Callable[[float], None],
    ):
        self.env = env
        self.cost = cost
        self.channels = channels
        self.partitioner = partitioner
        self.charge = charge

    @property
    def num_channels(self) -> int:
        return len(self.channels)

    def emit(self, record: StreamRecord):
        """Generator: serialise and route one record."""
        size = element_size(record)
        self.charge(self.cost.serialize_time(size))
        selected = self.partitioner.select(record, len(self.channels))
        yield from self._append_to(selected, record, size)

    def emit_or_gen(self, record: StreamRecord):
        """Non-blocking fast path for :meth:`emit`.

        Appends ``record`` into every selected channel's current buffer when
        that cannot block (buffer exists, element fits, no forced cuts) and
        returns None.  If some channel needs a dispatch/new buffer — work
        that may wait on pool credits — returns a generator the caller must
        drive to finish the remaining channels.  Identical observable
        behaviour to ``emit``; the fast path just skips the generator
        machinery that dominates per-record cost.
        """
        size = element_size(record)
        self.charge(self.cost.serialize_time(size))
        channels = self.channels
        selected = self.partitioner.select(record, len(channels))
        capacity = self.cost.buffer_size_bytes
        done = 0
        for index in selected:
            channel = channels[index]
            current = channel.current
            if (
                current is None
                or channel.forced_cuts
                or current.size_bytes + size > capacity
            ):
                break
            current.elements.append(record)
            current.size_bytes += size
            current.n_records += 1
            done += 1
        else:
            return None
        return self._append_to(selected[done:], record, size)

    def _append_to(self, selected, record: StreamRecord, size: int):
        for index in selected:
            yield from self.channels[index].append_element(record, size)

    def broadcast(self, element: StreamElement):
        """Generator: send one element (watermark/EOS) on every channel."""
        size = element_size(element)
        for channel in self.channels:
            yield from channel.append_element(element, size)

    def broadcast_barrier(self, barrier: CheckpointBarrier):
        """Generator: inject a barrier on every channel and flush it out
        immediately (barriers never wait for the flusher)."""
        size = element_size(barrier)
        for channel in self.channels:
            yield from channel.append_element(barrier, size)
            yield from channel.flush("barrier")
            channel.epoch = barrier.checkpoint_id

    def flush_all(self, reason: str = "flush"):
        for channel in self.channels:
            yield from channel.flush(reason)

    def snapshot_state(self) -> dict:
        state = {"channels": [ch.snapshot_state() for ch in self.channels]}
        if hasattr(self.partitioner, "snapshot"):
            state["partitioner"] = self.partitioner.snapshot()
        return state

    def restore_state(self, state: dict) -> None:
        if len(state["channels"]) != len(self.channels):
            raise NetworkError("channel count changed across recovery")
        for channel, ch_state in zip(self.channels, state["channels"]):
            channel.restore_state(ch_state)
        if "partitioner" in state and hasattr(self.partitioner, "restore"):
            self.partitioner.restore(state["partitioner"])
