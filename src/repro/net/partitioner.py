"""Stream partitioners: how records pick an output channel.

Hash partitioning must be *stable across executions* (a recovering task must
route replayed records identically), so we avoid Python's randomised
``hash()`` for strings and use a deterministic FNV-1a instead.
"""

from __future__ import annotations

from typing import Any, Callable, List

from repro.errors import NetworkError
from repro.graph.elements import StreamRecord


def stable_hash(value: Any) -> int:
    """Deterministic, execution-stable hash of a partitioning key."""
    data = repr(value).encode("utf-8")
    acc = 0xCBF29CE484222325
    for byte in data:
        acc ^= byte
        acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc


class Partitioner:
    """Chooses target channel indices for an outgoing record."""

    def select(self, record: StreamRecord, num_channels: int) -> List[int]:
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__


class ForwardPartitioner(Partitioner):
    """One-to-one: parallel instance i sends to downstream instance i."""

    def __init__(self, subtask_index: int = 0):
        self.subtask_index = subtask_index

    def select(self, record: StreamRecord, num_channels: int) -> List[int]:
        if num_channels == 1:
            return [0]
        return [self.subtask_index % num_channels]


class HashPartitioner(Partitioner):
    """Keyed (shuffle) partitioning on ``record.key`` (or a key selector)."""

    def __init__(self, key_selector: Callable[[Any], Any] = None):
        self._key_selector = key_selector

    def select(self, record: StreamRecord, num_channels: int) -> List[int]:
        key = record.key if self._key_selector is None else self._key_selector(record.value)
        if key is None:
            raise NetworkError("hash partitioning requires a record key")
        return [stable_hash(key) % num_channels]


class RebalancePartitioner(Partitioner):
    """Round-robin across channels (stateful; the counter is part of the
    task's checkpointed network state so replay routes identically)."""

    def __init__(self):
        self.counter = 0

    def select(self, record: StreamRecord, num_channels: int) -> List[int]:
        target = self.counter % num_channels
        self.counter += 1
        return [target]

    def snapshot(self) -> int:
        return self.counter

    def restore(self, counter: int) -> None:
        self.counter = counter


class BroadcastPartitioner(Partitioner):
    """Every record goes to every channel."""

    def select(self, record: StreamRecord, num_channels: int) -> List[int]:
        return list(range(num_channels))
