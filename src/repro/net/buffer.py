"""Network buffers and buffer pools.

A :class:`NetworkBuffer` models one Flink network buffer: a bounded byte
container of serialised stream elements, plus the causal-log *delta* that
Clonos piggybacks on it (Section 4.3).  A :class:`BufferPool` is a byte
budget; the in-flight log's no-copy buffer exchange (Section 6.1) moves
ownership of whole buffers between the output pool and the log pool.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.errors import NetworkError
from repro.sim.core import Environment, Event
from repro.sim.queues import Resource


class NetworkBuffer:
    """One network buffer: elements + wire size + piggybacked determinants."""

    __slots__ = (
        "channel_id",
        "seq",
        "epoch",
        "elements",
        "size_bytes",
        "n_records",
        "delta",
        "delta_bytes",
        "pool",
        "recycle_on_consume",
    )

    def __init__(self, channel_id: int, seq: int, epoch: int, pool: "BufferPool"):
        self.channel_id = channel_id
        self.seq = seq
        self.epoch = epoch
        self.elements: List[Any] = []
        self.size_bytes = 0
        #: Records appended so far — kept incrementally (writers bump it on
        #: their direct-append fast path too) so dispatch stays O(1).
        self.n_records = 0
        #: Causal-log delta piggybacked on this buffer (list of
        #: (task_id, epoch, determinants) tuples); None outside Clonos mode.
        self.delta: Optional[list] = None
        self.delta_bytes = 0
        self.pool = pool
        #: True when the consuming task should return the buffer to its pool
        #: (vanilla pipeline); False when the in-flight log owns it (§6.1).
        self.recycle_on_consume = True

    @property
    def record_count(self) -> int:
        return self.n_records

    @property
    def total_bytes(self) -> int:
        """Payload plus piggybacked determinant bytes: what the wire carries."""
        return self.size_bytes + self.delta_bytes

    def append(self, element: Any, size: int) -> None:
        self.elements.append(element)
        self.size_bytes += size
        if getattr(element, "is_record", False):
            self.n_records += 1

    def fits(self, size: int, capacity: int) -> bool:
        return self.size_bytes + size <= capacity

    def recycle(self) -> None:
        """Return this buffer's bytes to its owning pool."""
        if self.pool is not None:
            self.pool.release_bytes(self._owned_bytes())
            self.pool = None

    def transfer_to(self, pool: "BufferPool") -> None:
        """Move ownership to another pool (the §6.1 exchange); the caller
        must have already reserved the bytes in ``pool``."""
        if self.pool is not None:
            self.pool.release_bytes(self._owned_bytes())
        self.pool = pool

    def _owned_bytes(self) -> int:
        # Pools account whole fixed-size buffers, not the fill level.
        return self.pool.buffer_bytes

    def __repr__(self) -> str:
        return (
            f"NetworkBuffer(ch={self.channel_id}, seq={self.seq}, "
            f"epoch={self.epoch}, n={len(self.elements)}, bytes={self.size_bytes})"
        )


class BufferPool:
    """A byte budget from which fixed-size buffers are allocated.

    Capacity is expressed in bytes but acquired in whole-buffer units of
    ``buffer_bytes``, mirroring Flink's memory-segment pools.
    """

    def __init__(self, env: Environment, total_bytes: int, buffer_bytes: int, name: str = ""):
        if total_bytes < buffer_bytes:
            raise NetworkError(
                f"pool '{name}' of {total_bytes}B cannot hold one {buffer_bytes}B buffer"
            )
        self.env = env
        self.buffer_bytes = buffer_bytes
        self.name = name
        self._units = Resource(env, max(1, total_bytes // buffer_bytes))
        #: High-water mark of buffers in use, for the memory experiments.
        self.peak_in_use = 0

    @property
    def total_buffers(self) -> int:
        return self._units.capacity

    @property
    def available_buffers(self) -> int:
        return self._units.available

    @property
    def in_use_buffers(self) -> int:
        return self._units.in_use

    @property
    def available_fraction(self) -> float:
        return self._units.available / self._units.capacity

    def acquire(self) -> Event:
        """Reserve one buffer's worth of bytes (waitable)."""
        ev = self._units.acquire()
        self._note_usage()
        return ev

    def try_acquire(self) -> bool:
        ok = self._units.try_acquire()
        if ok:
            self._note_usage()
        return ok

    def release_bytes(self, nbytes: int) -> None:
        if nbytes != self.buffer_bytes:
            raise NetworkError("pools account whole buffers")
        self._units.release()

    def release(self) -> None:
        self._units.release()

    def _note_usage(self) -> None:
        if self._units.in_use > self.peak_in_use:
            self.peak_in_use = self._units.in_use

    def __repr__(self) -> str:
        return (
            f"BufferPool({self.name!r}, {self._units.in_use}/{self._units.capacity} in use)"
        )
