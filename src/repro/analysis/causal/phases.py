"""ND210: the phase protocol checker.

PR 5's timeline reconstruction (:mod:`repro.trace.timeline`) assumes phase
emissions partition each recovery incident.  Two emission styles are legal:

* **Marker style** — ``phase-begin``/``phase-mark`` events open contiguous
  segments; the next marker closes the previous one.  Functions that only
  open phases (e.g. ``LocalReplayCoordinator._recover``) have nothing to
  pair and are not checked.
* **Paired style** — a function that emits *any* ``phase-end`` (e.g.
  ``BaseCoordinator._step``) has opted into begin/end bracketing, and every
  exit — fall-through, early ``return``, escaping ``raise`` — must leave no
  phase open, or the soaks record a phase that never closes on exactly the
  code path chaos never hit.

The checker abstractly interprets each paired-style function over *phase
stacks*: a state is the set of possible stacks of open phase tokens.
``phase-begin`` pushes the token (the ``phase=`` argument: a string literal,
or the unparsed expression text for dynamic phases, so ``phase=label`` in
the begin matches ``phase=label`` in the end); ``phase-end`` pops and must
match the top of the stack; ``phase-mark`` has no stack effect.  Branches
union their exit states; ``try`` handlers start from the union of every
state reachable in the body; ``finally`` blocks run before propagated
exits.  Explicit ``raise`` statements are exception edges — a ``raise``
inside a ``try`` that has handlers is assumed caught (the in-tree handlers
are broad); implicit exceptions from arbitrary calls are out of scope.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Set, Tuple

from repro.analysis.causal.graph import FunctionInfo, ModuleIndex
from repro.analysis.causal.model import CausalFinding, FlowStep, ND_PHASE
from repro.analysis.rules import dotted_name

_PHASE_EVENTS = ("phase-begin", "phase-end", "phase-mark")

#: A stack of open phase tokens: ((token, opened_at_line), ...).
Stack = Tuple[Tuple[str, int], ...]
#: The abstract state: every possible stack at a program point.
States = FrozenSet[Stack]

_EMPTY: States = frozenset({()})


@dataclass
class _Emission:
    kind: str  # phase-begin | phase-end | phase-mark
    token: str
    lineno: int


def _phase_emission(node: ast.Call) -> Optional[_Emission]:
    """Recognise ``trace.emit(..., "phase-begin", ..., phase=X)`` shapes."""
    name = dotted_name(node.func) or ""
    if not (name == "_emit" or name.endswith(".emit") or name.endswith("._emit")):
        return None
    kind = None
    for arg in node.args:
        if isinstance(arg, ast.Constant) and arg.value in _PHASE_EVENTS:
            kind = arg.value
            break
    if kind is None:
        return None
    token = "?"
    for kw in node.keywords:
        if kw.arg == "phase":
            if isinstance(kw.value, ast.Constant):
                token = str(kw.value.value)
            else:
                token = ast.unparse(kw.value)
            break
    return _Emission(kind, token, getattr(node, "lineno", 0))


@dataclass
class _Exit:
    """A propagated return/raise carrying its possible stacks."""

    kind: str  # "return" | "raise"
    lineno: int
    states: States


@dataclass
class _BlockResult:
    normal: States
    exits: List[_Exit] = field(default_factory=list)
    #: Union of every state reachable at a statement boundary in the block
    #: (the entry set for exception handlers).
    seen: Set[Stack] = field(default_factory=set)


class _PhaseChecker:
    def __init__(self, fn: FunctionInfo, findings: List[CausalFinding]):
        self.fn = fn
        self.findings = findings
        self._seen: Set[Tuple[int, str]] = set()

    # -- reporting ---------------------------------------------------------------

    def _flag(self, lineno: int, message: str, opened_at: int = 0) -> None:
        if (lineno, message) in self._seen:
            return
        self._seen.add((lineno, message))
        path = []
        if opened_at:
            path.append(FlowStep(self.fn.file, opened_at, "phase opened here"))
        path.append(FlowStep(self.fn.file, lineno, message))
        self.findings.append(
            CausalFinding(
                rule=ND_PHASE,
                file=self.fn.file,
                line=lineno,
                message=f"{message} (in {self.fn.qualname})",
                path=tuple(path),
                symbol=self.fn.fid,
            )
        )

    def _check_closed(self, states: States, lineno: int, where: str) -> None:
        for stack in states:
            if stack:
                token, opened = stack[-1]
                self._flag(
                    lineno,
                    f"phase {token!r} (opened line {opened}) still open at {where}",
                    opened_at=opened,
                )

    # -- interpretation ----------------------------------------------------------

    def check(self) -> None:
        result = self._block(self.fn.node.body, _EMPTY, in_try_with_handlers=False)
        end_line = getattr(self.fn.node, "end_lineno", self.fn.lineno)
        self._check_closed(result.normal, end_line, "end of function")
        for exit_ in result.exits:
            where = "return" if exit_.kind == "return" else "escaping raise"
            self._check_closed(exit_.states, exit_.lineno, where)

    def _block(
        self, stmts, states: States, in_try_with_handlers: bool
    ) -> _BlockResult:
        result = _BlockResult(normal=states)
        result.seen |= states
        for stmt in stmts:
            if not result.normal:
                break  # unreachable after return/raise on all paths
            step = self._stmt(stmt, result.normal, in_try_with_handlers)
            result.exits.extend(step.exits)
            result.normal = step.normal
            result.seen |= step.seen
        return result

    def _stmt(
        self, s: ast.stmt, states: States, in_try: bool
    ) -> _BlockResult:
        if isinstance(s, ast.Return):
            return _BlockResult(
                normal=frozenset(),
                exits=[_Exit("return", s.lineno, states)],
                seen=set(states),
            )
        if isinstance(s, ast.Raise):
            if in_try:
                # Assumed caught by an enclosing handler in this function.
                return _BlockResult(normal=frozenset(), seen=set(states))
            return _BlockResult(
                normal=frozenset(),
                exits=[_Exit("raise", s.lineno, states)],
                seen=set(states),
            )
        if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return _BlockResult(normal=states, seen=set(states))
        if isinstance(s, ast.If):
            body = self._block(s.body, states, in_try)
            orelse = self._block(s.orelse, states, in_try)
            return _BlockResult(
                normal=body.normal | orelse.normal,
                exits=body.exits + orelse.exits,
                seen=body.seen | orelse.seen,
            )
        if isinstance(s, (ast.For, ast.AsyncFor, ast.While)):
            once = self._block(s.body, states, in_try)
            merged = states | once.normal
            twice = self._block(s.body, merged, in_try)
            orelse = self._block(s.orelse, states | twice.normal, in_try)
            return _BlockResult(
                normal=orelse.normal,
                exits=once.exits + twice.exits + orelse.exits,
                seen=once.seen | twice.seen | orelse.seen,
            )
        if isinstance(s, (ast.With, ast.AsyncWith)):
            entry = states
            for item in s.items:
                entry = self._exprs_in(item.context_expr, states=entry)
            return self._block(s.body, entry, in_try)
        if isinstance(s, ast.Try):
            return self._try(s, states, in_try)
        # Plain statement: apply any phase emissions in source order.
        return _BlockResult(
            normal=self._exprs_in(s, states), seen=set(states)
        )

    def _try(self, s: ast.Try, states: States, in_try: bool) -> _BlockResult:
        has_handlers = bool(s.handlers)
        body = self._block(s.body, states, in_try or has_handlers)
        # Handlers can enter from any point inside the body.
        handler_entry: States = frozenset(body.seen) | states
        normal = body.normal
        exits = list(body.exits)
        seen = set(body.seen)
        for handler in s.handlers:
            hres = self._block(handler.body, handler_entry, in_try)
            normal = normal | hres.normal
            exits.extend(hres.exits)
            seen |= hres.seen
        if s.orelse:
            ores = self._block(s.orelse, body.normal, in_try)
            normal = (normal - body.normal) | ores.normal
            exits.extend(ores.exits)
            seen |= ores.seen
        if s.finalbody:
            fres = self._block(s.finalbody, normal, in_try)
            seen |= fres.seen
            # finally runs before every propagated exit too.
            routed: List[_Exit] = []
            for exit_ in exits:
                fexit = self._block(s.finalbody, exit_.states, in_try)
                routed.append(_Exit(exit_.kind, exit_.lineno, fexit.normal))
                routed.extend(fexit.exits)
            exits = routed + fres.exits
            normal = fres.normal
        return _BlockResult(normal=normal, exits=exits, seen=seen)

    def _exprs_in(self, stmt: ast.AST, states: States) -> States:
        emissions = [
            em
            for node in ast.walk(stmt)
            if isinstance(node, ast.Call)
            for em in [_phase_emission(node)]
            if em is not None
        ]
        emissions.sort(key=lambda e: e.lineno)
        for emission in emissions:
            states = self._apply(emission, states)
        return states

    def _apply(self, em: _Emission, states: States) -> States:
        if em.kind == "phase-mark":
            return states
        out: Set[Stack] = set()
        if em.kind == "phase-begin":
            for stack in states:
                out.add(stack + ((em.token, em.lineno),))
            return frozenset(out)
        # phase-end
        for stack in states:
            if not stack:
                self._flag(em.lineno, f"phase-end {em.token!r} with no open phase")
                out.add(stack)
                continue
            token, opened = stack[-1]
            if em.token != token and "?" not in (em.token, token):
                self._flag(
                    em.lineno,
                    f"phase-end {em.token!r} closes mismatched open phase "
                    f"{token!r} (opened line {opened})",
                    opened_at=opened,
                )
            out.add(stack[:-1])
        return frozenset(out)


def _emits_phase_end(fn: FunctionInfo) -> bool:
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Call):
            emission = _phase_emission(node)
            if emission is not None and emission.kind == "phase-end":
                return True
    return False


def analyze_phases(index: ModuleIndex) -> List[CausalFinding]:
    """Check every paired-style function in the tree."""
    findings: List[CausalFinding] = []
    for fn in index.iter_functions():
        if not _emits_phase_end(fn):
            continue  # marker style (or no phase emissions at all)
        _PhaseChecker(fn, findings).check()
    findings.sort(key=lambda f: (f.file, f.line))
    return findings
