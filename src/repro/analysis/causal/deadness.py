"""ND203: determinant kinds that are recorded but never replayed.

A determinant that is appended to the causal log but never consumed by the
replay machinery is pure overhead — worse, it silently suggests a
nondeterminism source is covered when recovery in fact ignores it.  The
check is structural:

* **Recorded** — the determinant class is constructed anywhere outside its
  defining module (constructors in the defining module and in tests don't
  count as production recording sites).
* **Replayed** — the class name is referenced (outside ``import``
  statements), or its ``kind`` string appears as a literal, in one of the
  *replay consumer* modules: the recovery manager that splits bundles into
  control/value queues, the causal services that answer calls from value
  determinants, the task loop that executes control determinants, and the
  causal-log/writer layer that applies queue-log cuts.

A class that is recorded but not replayed is dead (ND203); the finding
anchors at the recording site so the fix — consume it or stop logging it —
is one hop away.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.causal.graph import ModuleIndex, ModuleInfo
from repro.analysis.causal.model import CausalFinding, FlowStep, ND_DEAD
from repro.analysis.rules import dotted_name

#: Path suffixes of the modules whose code *consumes* determinants during
#: replay.  A kind referenced in none of them is never replayed.
REPLAY_CONSUMER_SUFFIXES: Tuple[str, ...] = (
    "core/recovery.py",
    "core/services.py",
    "core/causal_log.py",
    "runtime/task.py",
    "net/writer.py",
)


@dataclass
class DeterminantClass:
    name: str
    kind: Optional[str]
    module: str
    file: str
    lineno: int


def _kind_of(node: ast.ClassDef) -> Optional[str]:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "kind":
                    if isinstance(stmt.value, ast.Constant):
                        return str(stmt.value.value)
    return None


def _determinant_classes(index: ModuleIndex) -> List[DeterminantClass]:
    out: List[DeterminantClass] = []
    for module in index.modules.values():
        for cls in module.classes.values():
            is_det = cls.name != "Determinant" and (
                cls.name.endswith("Determinant")
                or any(b.rsplit(".", 1)[-1] == "Determinant" for b in cls.base_names)
            )
            if is_det:
                out.append(
                    DeterminantClass(
                        name=cls.name,
                        kind=_kind_of(cls.node),
                        module=module.name,
                        file=module.path,
                        lineno=cls.node.lineno,
                    )
                )
    return out


def _recording_sites(
    index: ModuleIndex, classes: List[DeterminantClass]
) -> Dict[str, Tuple[str, int]]:
    """Class name -> first construction site outside its defining module."""
    defining = {cls.name: cls.module for cls in classes}
    names = set(defining)
    sites: Dict[str, Tuple[str, int]] = {}
    for module in index.modules.values():
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            leaf = name.rsplit(".", 1)[-1]
            if leaf in names and module.name != defining[leaf]:
                sites.setdefault(leaf, (module.path, node.lineno))
    return sites


def _consumer_vocabulary(
    index: ModuleIndex, consumer_suffixes: Tuple[str, ...]
) -> Tuple[Set[str], Set[str]]:
    """(identifiers referenced outside imports, string literals) in consumers."""
    identifiers: Set[str] = set()
    literals: Set[str] = set()
    for module in index.modules.values():
        normalized = module.path.replace("\\", "/")
        if not any(normalized.endswith(s) for s in consumer_suffixes):
            continue
        imported_lines: Set[int] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                end = getattr(node, "end_lineno", node.lineno)
                imported_lines.update(range(node.lineno, end + 1))
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Name) and node.lineno not in imported_lines:
                identifiers.add(node.id)
            elif isinstance(node, ast.Attribute):
                identifiers.add(node.attr)
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                literals.add(node.value)
    return identifiers, literals


def analyze_deadness(
    index: ModuleIndex,
    consumer_suffixes: Tuple[str, ...] = REPLAY_CONSUMER_SUFFIXES,
) -> List[CausalFinding]:
    classes = _determinant_classes(index)
    if not classes:
        return []
    sites = _recording_sites(index, classes)
    identifiers, literals = _consumer_vocabulary(index, consumer_suffixes)
    findings: List[CausalFinding] = []
    for cls in classes:
        site = sites.get(cls.name)
        if site is None:
            continue  # never recorded: nothing piggybacks, nothing to replay
        replayed = cls.name in identifiers or (
            cls.kind is not None and cls.kind in literals
        )
        if replayed:
            continue
        file, lineno = site
        findings.append(
            CausalFinding(
                rule=ND_DEAD,
                file=file,
                line=lineno,
                message=(
                    f"{cls.name} (kind={cls.kind!r}) is recorded here but no "
                    "replay consumer ever references it"
                ),
                path=(
                    FlowStep(cls.file, cls.lineno, f"{cls.name} defined"),
                    FlowStep(file, lineno, "recorded into the causal log"),
                    FlowStep(
                        file,
                        lineno,
                        "no reference in " + ", ".join(consumer_suffixes),
                    ),
                ),
                symbol=cls.name,
            )
        )
    findings.sort(key=lambda f: (f.file, f.line))
    return findings
