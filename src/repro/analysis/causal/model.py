"""The causal-coverage model: what counts as a source, sink, and sanitizer.

NDLint's per-function rules (ND101–ND107) flag *call sites*; the causal
analyzer proves a whole-program property instead: no nondeterminism source
can reach replayable state or sink output without flowing through
determinant logging.  That property needs a shared vocabulary:

* **Sources** create values that differ across re-executions: the wall
  clock, un-seeded RNG, hash/identity-ordered containers, and the
  cross-channel select order of the input gate.
* **Sinks** are where a nondeterministic value becomes *load-bearing* for
  recovery: persisted task state (``TaskSnapshot``, operator snapshots,
  the keyed state backend) and emitted output (``Context.collect``,
  ``RecordWriter.emit``, in-flight log entries).
* **Sanitizers** are the determinant-recording calls of
  :mod:`repro.core.determinants` / :mod:`repro.core.causal_log`: once a
  value (or the decision that produced it) is appended to the causal log,
  replay regenerates it exactly and the flow is covered.

Each category lists *dotted-name patterns* matched against call
expressions — the same matching discipline as :mod:`repro.analysis.rules`,
kept file-based and import-free so the analyzer never executes the code it
scans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from repro.analysis.rules import (
    _WALL_CLOCK_CALLS,
    RULES_BY_KEY,
    Rule,
    SEV_ERROR,
)

# -- the interprocedural rule catalogue ---------------------------------------------

ND_STATE = Rule(
    "ND201",
    "unlogged-nd-reaches-state",
    SEV_ERROR,
    "nondeterministic value reaches replayable state without a determinant",
    "any — the flow must pass a determinant-recording call",
    "§4 (determinant taxonomy), §5 (causal replay)",
    "route the nondeterministic read through ctx.services (or append a "
    "determinant) before it is persisted into snapshot/keyed state",
)

ND_OUTPUT = Rule(
    "ND202",
    "unlogged-nd-reaches-output",
    SEV_ERROR,
    "nondeterministic value reaches sink output without a determinant",
    "any — the flow must pass a determinant-recording call",
    "§4.3 (piggybacked determinants), §5.2 (byte-identical replay)",
    "log the value as a determinant before emitting; replayed output must "
    "be byte-identical to the original run",
)

ND_DEAD = Rule(
    "ND203",
    "dead-determinant",
    SEV_ERROR,
    "determinant type is recorded but never replayed",
    "the recorded type itself",
    "§5 (replay consumes every logged determinant)",
    "consume the determinant kind in the replay path "
    "(repro.core.recovery / services), or stop recording it",
)

ND_PHASE = Rule(
    "ND210",
    "phase-protocol",
    SEV_ERROR,
    "phase-begin/phase-end emissions are not well-nested on every path",
    "none — recovery observability invariant (PR 5)",
    "DESIGN.md, Causal tracing: phases partition the incident",
    "close every phase-begin with a matching phase-end on each "
    "early-return/exception edge (try/finally), or demote it to phase-mark",
)

CAUSAL_RULES: Tuple[Rule, ...] = (ND_STATE, ND_OUTPUT, ND_DEAD, ND_PHASE)

# Register in the shared key map so `# ndlint: disable=ND201` comments and
# report rendering resolve causal rules exactly like the per-function ones.
for _rule in CAUSAL_RULES:
    RULES_BY_KEY.setdefault(_rule.rule_id, _rule)
    RULES_BY_KEY.setdefault(_rule.name, _rule)


# -- source taxonomy ---------------------------------------------------------------

#: Source categories (used to pair sources with the sanitizers that cover them).
RNG = "rng"
CLOCK = "clock"
HASH_ORDER = "hash_order"
SELECT_ORDER = "select_order"
AMBIENT = "ambient"

#: Dotted-name prefixes that draw module-level / OS randomness.  Seeded
#: streams (``random.Random(derive_seed(...))``, ``self.rng.random()``)
#: deliberately do NOT match: prefixes anchor at the start of the dotted
#: name, so only the *module-level* ``random.*`` API is a source.
RNG_PREFIXES: Tuple[str, ...] = (
    "random.",
    "np.random.",
    "numpy.random.",
    "secrets.",
)
RNG_CALLS: FrozenSet[str] = frozenset(
    {"os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4"}
)
#: ``random.Random()`` *without* a seed argument falls back to OS entropy;
#: with one it is the standard deterministic-stream idiom and is exempt.
UNSEEDED_RNG_CTORS: FrozenSet[str] = frozenset({"random.Random", "Random"})

#: Wall-clock reads (shared with ND101).
CLOCK_CALLS: FrozenSet[str] = frozenset(_WALL_CLOCK_CALLS)

#: Identity/hash observations: values vary per process (PYTHONHASHSEED,
#: allocator layout), so anything derived from them is nondeterministic.
HASH_ORDER_CALLS: FrozenSet[str] = frozenset({"id", "hash"})

#: Cross-channel select order: which input channel the main loop consumes
#: next is a race outcome; it must be captured as an OrderDeterminant.
SELECT_ORDER_SUFFIXES: Tuple[str, ...] = (
    ".poll_buffer",
    ".next_buffer",
    ".take_ready",
    "._take_ready",
)

#: Ambient host/process environment reads (shared spirit with ND106).
AMBIENT_CALLS: FrozenSet[str] = frozenset(
    {"os.getenv", "os.getpid", "os.getcwd", "os.cpu_count", "input"}
)


# -- sanitizer taxonomy ------------------------------------------------------------

#: Determinant constructors sanitize the category they log.  Any class name
#: ending in ``Determinant`` is recognized; this map refines *which*
#: category each known constructor covers (unknown ``*Determinant`` names
#: cover every category — custom determinants log arbitrary results).
DETERMINANT_CATEGORIES = {
    "TimestampDeterminant": (CLOCK,),
    "RngSeedDeterminant": (RNG,),
    "OrderDeterminant": (SELECT_ORDER,),
    "TimerFiredDeterminant": (CLOCK, SELECT_ORDER),
    "WatermarkEmitDeterminant": (CLOCK,),
    "BarrierInjectDeterminant": (SELECT_ORDER,),
    "BufferSizeDeterminant": (SELECT_ORDER,),
}

#: Call-name suffixes that append to the causal log: passing a value to one
#: of these *is* logging it.
LOG_APPEND_SUFFIXES: Tuple[str, ...] = (
    ".append_main",
    ".append_queue",
    ".merge_slice",
)

#: The causal services facade: results of these calls are logged/replayed by
#: construction, so the call expression itself is deterministic.
SERVICE_CALL_SUFFIXES: Tuple[str, ...] = (
    "services.timestamp",
    "services.random",
    "services.http_get",
    "services.custom",
    ".processing_time",
)

#: Canonicalisers: remove hash-order nondeterminism from their argument.
CANONICALIZERS: FrozenSet[str] = frozenset({"sorted", "fingerprint", "min", "max"})


# -- sink taxonomy ----------------------------------------------------------------

STATE_SINK = "state"
OUTPUT_SINK = "output"

#: Constructing a TaskSnapshot persists its arguments.
STATE_SINK_CTORS: FrozenSet[str] = frozenset({"TaskSnapshot"})

#: Writes into the keyed state backend.
STATE_SINK_SUFFIXES: Tuple[str, ...] = (
    ".update",
    ".put",
    ".add",
)
#: ...but only on receivers that look like state handles; bare ``x.append``
#: on a local list must not count.  A call matches only when its receiver
#: name contains one of these tokens.
STATE_RECEIVER_TOKENS: Tuple[str, ...] = ("state", "backend")

#: Functions whose *return value* is persisted verbatim into checkpoints.
SNAPSHOT_DEFS: FrozenSet[str] = frozenset(
    {"snapshot", "snapshot_state", "snapshot_keyed_state"}
)

#: Emission entry points: anything passed here leaves the task.
OUTPUT_SINK_SUFFIXES: Tuple[str, ...] = (
    ".collect",
    ".collect_record",
    ".emit",
    ".broadcast",
    ".append_element",
)


@dataclass(frozen=True)
class SourceHit:
    """One nondeterminism source observation inside a function."""

    category: str
    lineno: int
    description: str


@dataclass(frozen=True)
class FlowStep:
    """One hop of a reported source→sink path."""

    file: str
    line: int
    description: str


@dataclass(frozen=True)
class CausalFinding:
    """An interprocedural finding, carrying its full flow path."""

    rule: Rule
    file: str
    line: int
    message: str
    path: Tuple[FlowStep, ...] = field(default_factory=tuple)
    #: Stable identity used by the allowlist: ``rule:file-suffix:symbol``.
    symbol: str = ""

    @property
    def location(self) -> str:
        """``file:line`` — same shape as per-function lint findings, so
        :meth:`DeterminismViolation.from_findings` accepts either kind."""
        return f"{self.file}:{self.line}"

    def render_path(self) -> str:
        return "\n".join(
            f"      {i + 1}. {step.file}:{step.line}  {step.description}"
            for i, step in enumerate(self.path)
        )


def match_suffix(name: Optional[str], suffixes: Tuple[str, ...]) -> bool:
    return bool(name) and any(name.endswith(s) for s in suffixes)


def match_prefix(name: Optional[str], prefixes: Tuple[str, ...]) -> bool:
    return bool(name) and any(
        name == p.rstrip(".") or name.startswith(p) for p in prefixes
    )
