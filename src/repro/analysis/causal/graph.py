"""Module-level call graph and class-hierarchy map over a source tree.

The causal analyzer never imports the code it scans: modules are parsed
from disk (``ast``), indexed by their dotted name relative to the scanned
package root, and linked by *name resolution*, not runtime objects.

Resolution is deliberately conservative — an edge is added only when the
callee can be pinned down:

* bare names resolve to same-module functions (or classes);
* ``alias.f`` resolves through ``import``/``from ... import`` bindings;
* ``self.m`` / ``cls.m`` resolves via class-hierarchy analysis: the
  enclosing class, its ancestors, and its descendants (an overriding
  subclass method is a legal callee of a base-class ``self.m()`` call);
* everything else stays unresolved — cross-object flows are instead
  covered by the *pattern* sinks/sanitizers of
  :mod:`repro.analysis.causal.model`, which match call names regardless of
  receiver.

Unresolved calls never create edges, so the graph under-approximates
reachability rather than connecting everything to everything.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.rules import dotted_name


@dataclass
class ClassInfo:
    """One class definition: methods, base names, and its module."""

    name: str
    module: str
    node: ast.ClassDef
    methods: Dict[str, "FunctionInfo"] = field(default_factory=dict)
    base_names: Tuple[str, ...] = ()


@dataclass
class FunctionInfo:
    """One function/method definition addressable as ``module:qualname``."""

    module: str
    qualname: str
    file: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: Optional[str] = None

    @property
    def fid(self) -> str:
        return f"{self.module}:{self.qualname}"

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 0)

    @property
    def params(self) -> List[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names


@dataclass
class ModuleInfo:
    """One parsed module: AST, import bindings, defs, classes."""

    name: str
    path: str
    tree: ast.Module
    lines: Tuple[str, ...]
    #: local alias -> dotted target ("json", "repro.core.determinants",
    #: or "repro.core.determinants.OrderDeterminant" for from-imports).
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)


class ModuleIndex:
    """Every ``*.py`` under ``root``, parsed and cross-linked."""

    def __init__(self, root: Path, package: str = ""):
        self.root = Path(root)
        self.package = package
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: class name -> every ClassInfo with that (unqualified) name.
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}
        #: class -> direct subclasses (by resolved base-name match).
        self._subclasses: Dict[Tuple[str, str], List[ClassInfo]] = {}
        self.parse_errors: List[str] = []
        self._build()

    # -- construction -----------------------------------------------------------

    def _module_name(self, path: Path) -> str:
        rel = path.relative_to(self.root).with_suffix("")
        parts = list(rel.parts)
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        dotted = ".".join(parts)
        if self.package:
            dotted = f"{self.package}.{dotted}" if dotted else self.package
        return dotted

    def _build(self) -> None:
        for path in sorted(self.root.rglob("*.py")):
            try:
                text = path.read_text()
                tree = ast.parse(text, filename=str(path))
            except (OSError, SyntaxError, ValueError) as exc:
                self.parse_errors.append(f"{path}: {exc}")
                continue
            name = self._module_name(path)
            info = ModuleInfo(
                name=name,
                path=str(path),
                tree=tree,
                lines=tuple(text.splitlines()),
            )
            self._index_module(info)
            self.modules[name] = info
        self._link_hierarchy()

    def _index_module(self, info: ModuleInfo) -> None:
        for node in info.tree.body:
            self._index_statement(info, node)

    def _index_statement(self, info: ModuleInfo, node: ast.stmt) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                info.imports[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                # Relative import: resolve against this module's package.
                parts = info.name.split(".")
                parts = parts[: len(parts) - node.level]
                base = ".".join(parts + ([node.module] if node.module else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                info.imports[alias.asname or alias.name] = (
                    f"{base}.{alias.name}" if base else alias.name
                )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn = FunctionInfo(info.name, node.name, info.path, node)
            info.functions[node.name] = fn
            self.functions[fn.fid] = fn
        elif isinstance(node, ast.ClassDef):
            cls = ClassInfo(
                name=node.name,
                module=info.name,
                node=node,
                base_names=tuple(
                    filter(None, (dotted_name(b) for b in node.bases))
                ),
            )
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    fn = FunctionInfo(
                        info.name,
                        f"{node.name}.{item.name}",
                        info.path,
                        item,
                        class_name=node.name,
                    )
                    cls.methods[item.name] = fn
                    self.functions[fn.fid] = fn
            info.classes[node.name] = cls
            self.classes_by_name.setdefault(node.name, []).append(cls)
        elif isinstance(node, (ast.If, ast.Try)):
            # Guarded defs (TYPE_CHECKING blocks, version gates).
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    self._index_statement(info, child)

    def _link_hierarchy(self) -> None:
        for module in self.modules.values():
            for cls in module.classes.values():
                for base in cls.base_names:
                    base_leaf = base.rsplit(".", 1)[-1]
                    for candidate in self.classes_by_name.get(base_leaf, ()):
                        self._subclasses.setdefault(
                            (candidate.module, candidate.name), []
                        ).append(cls)

    # -- queries -----------------------------------------------------------------

    def iter_functions(self) -> Iterator[FunctionInfo]:
        for fid in sorted(self.functions):
            yield self.functions[fid]

    def subclasses_of(self, cls: ClassInfo) -> List[ClassInfo]:
        return self._subclasses.get((cls.module, cls.name), [])

    def ancestors_of(self, cls: ClassInfo) -> List[ClassInfo]:
        out: List[ClassInfo] = []
        frontier = list(cls.base_names)
        seen = set()
        while frontier:
            base = frontier.pop()
            leaf = base.rsplit(".", 1)[-1]
            for candidate in self.classes_by_name.get(leaf, ()):
                key = (candidate.module, candidate.name)
                if key in seen:
                    continue
                seen.add(key)
                out.append(candidate)
                frontier.extend(candidate.base_names)
        return out

    def hierarchy_methods(self, cls: ClassInfo, method: str) -> List[FunctionInfo]:
        """``self.<method>`` candidates: this class, ancestors, descendants."""
        found: List[FunctionInfo] = []
        pool = [cls] + self.ancestors_of(cls) + self._descendants(cls)
        for candidate in pool:
            fn = candidate.methods.get(method)
            if fn is not None:
                found.append(fn)
        return found

    def _descendants(self, cls: ClassInfo) -> List[ClassInfo]:
        out: List[ClassInfo] = []
        frontier = [cls]
        seen = {(cls.module, cls.name)}
        while frontier:
            current = frontier.pop()
            for sub in self.subclasses_of(current):
                key = (sub.module, sub.name)
                if key in seen:
                    continue
                seen.add(key)
                out.append(sub)
                frontier.append(sub)
        return out

    def resolve_call(
        self, module: ModuleInfo, caller: FunctionInfo, name: str
    ) -> List[FunctionInfo]:
        """Callee candidates for dotted call ``name`` inside ``caller``."""
        parts = name.split(".")
        # self.m() / cls.m(): class-hierarchy analysis.
        if parts[0] in ("self", "cls") and len(parts) == 2 and caller.class_name:
            cls = module.classes.get(caller.class_name)
            if cls is not None:
                return self.hierarchy_methods(cls, parts[1])
            return []
        # Bare name: same-module function, imported function, or local class
        # constructor (constructor edges point at __init__).
        if len(parts) == 1:
            fn = module.functions.get(name)
            if fn is not None:
                return [fn]
            cls = module.classes.get(name)
            if cls is not None:
                init = cls.methods.get("__init__")
                return [init] if init is not None else []
            target = module.imports.get(name)
            if target is not None:
                return self._resolve_dotted(target)
            return []
        # alias.f / alias.Class.method through imports.
        target = module.imports.get(parts[0])
        if target is not None:
            return self._resolve_dotted(".".join([target] + parts[1:]))
        return []

    def _resolve_dotted(self, dotted: str) -> List[FunctionInfo]:
        """``pkg.module.fn`` / ``pkg.module.Class`` → FunctionInfo list."""
        # Longest-prefix module match.
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            mod = self.modules.get(".".join(parts[:cut]))
            if mod is None:
                continue
            rest = parts[cut:]
            if not rest:
                return []
            if len(rest) == 1:
                fn = mod.functions.get(rest[0])
                if fn is not None:
                    return [fn]
                cls = mod.classes.get(rest[0])
                if cls is not None:
                    init = cls.methods.get("__init__")
                    return [init] if init is not None else []
                return []
            if len(rest) == 2:
                cls = mod.classes.get(rest[0])
                if cls is not None:
                    fn = cls.methods.get(rest[1])
                    return [fn] if fn is not None else []
            return []
        return []
