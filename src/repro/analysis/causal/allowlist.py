"""The causal-analyzer allowlist: justified exemptions, each with a reason.

Mirrors the discipline of :data:`repro.analysis.rules.FRAMEWORK_ALLOWLIST`:
the exemption set is *seeded, named, and minimal*.  Every entry must carry a
non-empty reason string — enforced at construction, so an unreasoned
exemption cannot even be written — and the minimality regression test pins
the exact contents of :data:`CAUSAL_ALLOWLIST`, so growing it is a reviewed
decision, not a drive-by.

An entry exempts findings of one rule in files matching one path suffix
(optionally narrowed to a symbol substring).  Matching findings are moved
from the report's ``findings`` to its ``exempted`` list — still visible in
the report, never failing the gate.

The current tree needs **no** exemptions: the one sanctioned
nondeterminism source (the profiler's ``time.perf_counter`` reads, ND101
FRAMEWORK_ALLOWLIST) never reaches replayable state or dataflow output, so
the causal analyzer is clean on it without help.  The seeded set is
therefore empty — the strongest statement of the coverage property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.causal.model import CausalFinding


@dataclass(frozen=True)
class Exemption:
    """One sanctioned finding pattern.  ``reason`` is mandatory and
    non-empty: an exemption that cannot say why it exists is a bug."""

    rule_id: str
    path_suffix: str
    #: Substring of the finding's symbol ("" matches any symbol).
    symbol: str
    reason: str

    def __post_init__(self) -> None:
        if not self.reason.strip():
            raise ValueError(
                f"allowlist entry ({self.rule_id}, {self.path_suffix!r}) "
                "must carry a non-empty reason"
            )

    def matches(self, finding: CausalFinding) -> bool:
        if finding.rule.rule_id != self.rule_id:
            return False
        normalized = finding.file.replace("\\", "/")
        if not normalized.endswith(self.path_suffix):
            return False
        return self.symbol in finding.symbol


#: The seeded exemptions.  Keep this tuple minimal — the regression test in
#: tests/analysis/causal/test_allowlist.py pins its exact contents.
CAUSAL_ALLOWLIST: Tuple[Exemption, ...] = ()


def exemption_for(
    finding: CausalFinding,
    allowlist: Tuple[Exemption, ...] = CAUSAL_ALLOWLIST,
) -> Optional[Exemption]:
    for exemption in allowlist:
        if exemption.matches(finding):
            return exemption
    return None


def partition(
    findings: List[CausalFinding],
    allowlist: Tuple[Exemption, ...] = CAUSAL_ALLOWLIST,
) -> Tuple[List[CausalFinding], List[Tuple[CausalFinding, Exemption]]]:
    """Split findings into (live, exempted-with-reason)."""
    live: List[CausalFinding] = []
    exempted: List[Tuple[CausalFinding, Exemption]] = []
    for finding in findings:
        exemption = exemption_for(finding, allowlist)
        if exemption is None:
            live.append(finding)
        else:
            exempted.append((finding, exemption))
    return live, exempted
