"""Flow-sensitive, interprocedural taint analysis: sources → sinks.

The property proved (over-approximately): *no nondeterminism source reaches
replayable state (ND201) or emitted output (ND202) without passing a
determinant-recording call*.  The machinery:

**Local scan.**  Each function body is interpreted statement-by-statement in
textual order.  The environment maps local names to *taints* — dicts from
category (:data:`~repro.analysis.causal.model.RNG`, ``clock``, …) to a short
origin chain of :class:`~repro.analysis.causal.model.FlowStep` hops.  Source
calls introduce taint; expression forms union the taint of their parts;
attribute/subscript access inherits the root name's taint.

**Sanitizers clear by category.**  Appending to the causal log (or
constructing a determinant) covers the *decision*, not just the value passed:
once an ``OrderDeterminant`` is logged, everything derived from that select
order replays identically.  Sanitizing therefore clears the matched
categories function-wide from the clearing point on (a later source
re-taints).  Sanitizers merge *optimistically* across branches — a
determinant logged under ``if self.causal is not None:`` counts, because the
``None`` branch is the deliberately-unlogged baseline mode, not a missed
flow.  Sources merge pessimistically (a source on any branch taints).

**Interprocedural fixpoint.**  Every function also runs with pseudo-taints
(``param:<i>``) seeded on its parameters, producing a summary: which
categories its return value carries, which parameters flow to its return,
which parameters reach a sink inside it, which parameters it sanitizes, and
which categories calling it sanitizes outright.  Summaries start empty and
the scan repeats until they stabilise; findings are collected on one final
pass.  Call edges come from :class:`~repro.analysis.causal.graph.ModuleIndex`
resolution; *unresolved* calls conservatively propagate argument taint to
their result but create no edges.

Out of scope, by design: dict iteration (insertion-ordered since 3.7),
set-container serialization order (ND104/ND107's per-function domain),
taint through ``self`` attributes across methods (the pattern sinks and the
service-call discipline cover the in-tree cross-object flows).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.causal.graph import FunctionInfo, ModuleIndex, ModuleInfo
from repro.analysis.causal.model import (
    AMBIENT,
    AMBIENT_CALLS,
    CANONICALIZERS,
    CLOCK,
    CLOCK_CALLS,
    CausalFinding,
    DETERMINANT_CATEGORIES,
    FlowStep,
    HASH_ORDER,
    HASH_ORDER_CALLS,
    LOG_APPEND_SUFFIXES,
    ND_OUTPUT,
    ND_STATE,
    OUTPUT_SINK,
    OUTPUT_SINK_SUFFIXES,
    RNG,
    RNG_CALLS,
    RNG_PREFIXES,
    SELECT_ORDER,
    SELECT_ORDER_SUFFIXES,
    SERVICE_CALL_SUFFIXES,
    SNAPSHOT_DEFS,
    STATE_RECEIVER_TOKENS,
    STATE_SINK,
    STATE_SINK_CTORS,
    STATE_SINK_SUFFIXES,
    UNSEEDED_RNG_CTORS,
    match_prefix,
    match_suffix,
)
from repro.analysis.report import suppresses
from repro.analysis.rules import _matches, dotted_name

ALL_CATS: FrozenSet[str] = frozenset({RNG, CLOCK, HASH_ORDER, SELECT_ORDER, AMBIENT})

#: Trace/observability receivers whose ``.emit`` is an event-bus append, not
#: dataflow output.
_NON_OUTPUT_RECEIVER_TOKENS = ("trace",)

_SINK_RULE = {STATE_SINK: ND_STATE, OUTPUT_SINK: ND_OUTPUT}
_MAX_ITERATIONS = 10
_MAX_CHAIN = 8

#: One taint: category -> representative origin chain.
Taint = Dict[str, Tuple[FlowStep, ...]]


def _union(*taints: Taint) -> Taint:
    out: Taint = {}
    for taint in taints:
        for cat, chain in taint.items():
            out.setdefault(cat, chain)
    return out


@dataclass
class Summary:
    """What callers need to know about one function."""

    #: Category -> origin chain the return value may carry.
    returns: Dict[str, Tuple[FlowStep, ...]] = field(default_factory=dict)
    #: Parameter indices whose taint flows into the return value.
    param_to_return: Set[int] = field(default_factory=set)
    #: Parameter index -> (sink kind, sink step) when the parameter's taint
    #: reaches a sink inside this function (possibly transitively).
    param_to_sink: Dict[int, Tuple[str, FlowStep]] = field(default_factory=dict)
    #: Parameter index -> categories the function logs for that argument.
    param_sanitized: Dict[int, Set[str]] = field(default_factory=dict)
    #: Categories unconditionally covered by calling this function.
    sanitizes: Set[str] = field(default_factory=set)

    def fingerprint(self):
        return (
            frozenset(self.returns),
            frozenset(self.param_to_return),
            frozenset((k, v[0]) for k, v in self.param_to_sink.items()),
            frozenset(
                (k, frozenset(v)) for k, v in self.param_sanitized.items()
            ),
            frozenset(self.sanitizes),
        )


class _Scanner:
    """One pass over one function body."""

    def __init__(
        self,
        index: ModuleIndex,
        module: ModuleInfo,
        fn: FunctionInfo,
        summaries: Dict[str, Summary],
    ):
        self.index = index
        self.module = module
        self.fn = fn
        self.summaries = summaries
        self.summary = Summary()
        self.findings: List[CausalFinding] = []
        self._seen_findings: Set[Tuple[str, str, int, str]] = set()
        #: name -> taint.
        self.env: Dict[str, Taint] = {}
        #: Currently-covered categories (real and ``param:<i>`` pseudo).
        self.sanitized: Set[str] = set()
        self._in_snapshot_class = self._class_has_snapshot()
        for i, param in enumerate(fn.params):
            if param in ("self", "cls"):
                continue
            self.env[param] = {
                f"param:{i}": (
                    FlowStep(
                        fn.file, fn.lineno, f"parameter {param!r} of {fn.name}()"
                    ),
                )
            }

    def _class_has_snapshot(self) -> bool:
        if self.fn.class_name is None:
            return False
        cls = self.module.classes.get(self.fn.class_name)
        if cls is None:
            return False
        pool = [cls] + self.index.ancestors_of(cls)
        return any(
            name in SNAPSHOT_DEFS for c in pool for name in c.methods
        )

    def run(self) -> None:
        self._exec(self.fn.node.body)

    # -- bookkeeping --------------------------------------------------------------

    def _active(self, taint: Taint) -> Taint:
        return {c: ch for c, ch in taint.items() if c not in self.sanitized}

    def _step(self, node: ast.AST, description: str) -> FlowStep:
        return FlowStep(self.fn.file, getattr(node, "lineno", 0), description)

    def _sanitize(self, cats: Set[str], taints: List[Taint]) -> None:
        self.sanitized |= cats
        self.summary.sanitizes |= cats & ALL_CATS
        for taint in taints:
            for cat in taint:
                if cat.startswith("param:"):
                    self.sanitized.add(cat)
                    idx = int(cat.split(":", 1)[1])
                    self.summary.param_sanitized.setdefault(idx, set()).update(
                        cats & ALL_CATS or ALL_CATS
                    )

    def _finding(self, rule, node: ast.AST, chain: Tuple[FlowStep, ...], cat: str) -> None:
        line = getattr(node, "lineno", 0)
        # Inline suppression works exactly like NDLint's per-function rules.
        if 0 < line <= len(self.module.lines) and suppresses(
            self.module.lines[line - 1], rule
        ):
            return
        message = (
            f"{cat} nondeterminism reaches "
            f"{'replayable state' if rule is ND_STATE else 'sink output'} "
            f"without a determinant (in {self.fn.qualname})"
        )
        key = (rule.rule_id, self.fn.file, line, message)
        if key in self._seen_findings:
            return
        self._seen_findings.add(key)
        self.findings.append(
            CausalFinding(
                rule=rule,
                file=self.fn.file,
                line=line,
                message=message,
                path=chain[:_MAX_CHAIN],
                symbol=self.fn.fid,
            )
        )

    def _sink(self, kind: str, node: ast.Call, taints: List[Taint], name: str) -> None:
        step = self._step(node, f"{kind} sink {name}()")
        for taint in taints:
            for cat, chain in self._active(taint).items():
                if cat.startswith("param:"):
                    idx = int(cat.split(":", 1)[1])
                    self.summary.param_to_sink.setdefault(idx, (kind, step))
                else:
                    self._finding(_SINK_RULE[kind], node, chain + (step,), cat)

    # -- statements ---------------------------------------------------------------

    def _exec(self, stmts) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, s: ast.stmt) -> None:
        if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested defs are out of scope
        if isinstance(s, ast.Return):
            self._return(s)
        elif isinstance(s, ast.Assign):
            taint = self._eval(s.value)
            for target in s.targets:
                self._bind(target, taint, s)
        elif isinstance(s, ast.AnnAssign):
            if s.value is not None:
                self._bind(s.target, self._eval(s.value), s)
        elif isinstance(s, ast.AugAssign):
            taint = self._eval(s.value)
            root = _root_name(s.target)
            if root is not None:
                self.env[root] = _union(self.env.get(root, {}), taint)
        elif isinstance(s, ast.Expr):
            self._eval(s.value)
        elif isinstance(s, ast.If):
            self._eval(s.test)
            self._exec(s.body)
            self._exec(s.orelse)
        elif isinstance(s, (ast.For, ast.AsyncFor)):
            taint = self._eval(s.iter)
            for _ in range(2):  # propagate loop-carried taint
                self._bind(s.target, taint, s)
                self._exec(s.body)
            self._exec(s.orelse)
        elif isinstance(s, ast.While):
            self._eval(s.test)
            self._exec(s.body)
            self._exec(s.body)
            self._exec(s.orelse)
        elif isinstance(s, ast.Try):
            self._exec(s.body)
            for handler in s.handlers:
                self._exec(handler.body)
            self._exec(s.orelse)
            self._exec(s.finalbody)
        elif isinstance(s, (ast.With, ast.AsyncWith)):
            for item in s.items:
                taint = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, taint, s)
            self._exec(s.body)
        elif isinstance(s, ast.Raise):
            if s.exc is not None:
                self._eval(s.exc)
        elif isinstance(s, ast.Assert):
            self._eval(s.test)
        elif isinstance(s, ast.Delete):
            for target in s.targets:
                root = _root_name(target)
                if root is not None:
                    self.env.pop(root, None)
        # Pass/Break/Continue/Import/Global/Nonlocal: no taint effect.

    def _return(self, s: ast.Return) -> None:
        taint = self._eval(s.value) if s.value is not None else {}
        for cat, chain in self._active(taint).items():
            if cat.startswith("param:"):
                self.summary.param_to_return.add(int(cat.split(":", 1)[1]))
                continue
            step = self._step(s, f"returned from {self.fn.qualname}()")
            self.summary.returns.setdefault(cat, chain + (step,))
            if self.fn.name in SNAPSHOT_DEFS:
                sink = self._step(
                    s, f"persisted via {self.fn.qualname}() snapshot return"
                )
                self._finding(ND_STATE, s, chain + (sink,), cat)
        for cat in taint:
            if cat.startswith("param:") and cat not in self.sanitized:
                if self.fn.name in SNAPSHOT_DEFS:
                    idx = int(cat.split(":", 1)[1])
                    self.summary.param_to_sink.setdefault(
                        idx,
                        (
                            STATE_SINK,
                            self._step(s, f"{self.fn.qualname}() snapshot return"),
                        ),
                    )

    def _bind(self, target: ast.AST, taint: Taint, stmt: ast.stmt) -> None:
        if isinstance(target, ast.Name):
            if taint:
                self.env[target.id] = dict(taint)
            else:
                self.env.pop(target.id, None)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, taint, stmt)
            return
        if isinstance(target, ast.Starred):
            self._bind(target.value, taint, stmt)
            return
        root = _root_name(target)
        if root is None:
            return
        # Writing a tainted value into an attribute of a snapshot-bearing
        # object persists it: the next checkpoint images it.
        if (
            isinstance(target, ast.Attribute)
            and root == "self"
            and self._in_snapshot_class
        ):
            step = self._step(
                stmt, f"stored on self.{target.attr} (snapshot-bearing class)"
            )
            for cat, chain in self._active(taint).items():
                if cat.startswith("param:"):
                    self.summary.param_to_sink.setdefault(
                        int(cat.split(":", 1)[1]), (STATE_SINK, step)
                    )
                else:
                    self._finding(ND_STATE, stmt, chain + (step,), cat)
        # Mutating obj[...] / obj.attr taints obj itself.
        if taint and root != "self":
            self.env[root] = _union(self.env.get(root, {}), taint)

    # -- expressions --------------------------------------------------------------

    def _eval(self, node: Optional[ast.AST]) -> Taint:
        if node is None or isinstance(node, (ast.Constant, ast.Lambda)):
            return {}
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Name):
            return dict(self.env.get(node.id, {}))
        if isinstance(node, (ast.Attribute, ast.Subscript)):
            root = _root_name(node)
            taint = dict(self.env.get(root, {})) if root else {}
            if isinstance(node, ast.Subscript):
                taint = _union(taint, self._eval(node.slice))
            return taint
        return self._children(node)

    def _children(self, node: ast.AST) -> Taint:
        out: Taint = {}
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                out = _union(out, self._eval(child))
            elif isinstance(child, ast.comprehension):
                out = _union(out, self._eval(child.iter))
            elif isinstance(child, ast.keyword):
                out = _union(out, self._eval(child.value))
        return out

    def _source(self, node: ast.Call, cat: str, desc: str, base: Taint) -> Taint:
        self.sanitized.discard(cat)  # a fresh source re-taints its category
        return _union(base, {cat: (self._step(node, desc),)})

    def _call(self, node: ast.Call) -> Taint:
        name = dotted_name(node.func) or ""
        leaf = name.rsplit(".", 1)[-1]
        arg_taints = [self._eval(a) for a in node.args]
        kw_taints = {
            kw.arg: self._eval(kw.value) for kw in node.keywords if kw.arg
        }
        star_taints = [
            self._eval(kw.value) for kw in node.keywords if kw.arg is None
        ]
        all_taints = arg_taints + list(kw_taints.values()) + star_taints
        receiver: Taint = {}
        if isinstance(node.func, ast.Attribute):
            receiver = self._eval(node.func.value)

        # -- sanitizers -------------------------------------------------------
        if leaf.endswith("Determinant") and leaf != "Determinant":
            cats = set(DETERMINANT_CATEGORIES.get(leaf, ALL_CATS))
            self._sanitize(cats, all_taints + [receiver])
            return {}
        if match_suffix(name, LOG_APPEND_SUFFIXES):
            self._sanitize(set(ALL_CATS), all_taints)
            return {}
        if match_suffix(name, SERVICE_CALL_SUFFIXES):
            # Logged/replayed by construction: result deterministic, args
            # sanctioned (the custom determinant intercepts them).
            return {}

        # -- sources ----------------------------------------------------------
        base = _union(receiver, *all_taints)
        if name in UNSEEDED_RNG_CTORS:
            if node.args or node.keywords:
                return base  # seeded stream: the standard deterministic idiom
            return self._source(node, RNG, f"unseeded {name}()", base)
        if _matches(name, CLOCK_CALLS):
            return self._source(node, CLOCK, f"wall-clock read {name}()", base)
        if match_prefix(name, RNG_PREFIXES) or _matches(name, RNG_CALLS):
            return self._source(node, RNG, f"unlogged randomness {name}()", base)
        if name in HASH_ORDER_CALLS:
            return self._source(
                node, HASH_ORDER, f"process-dependent {name}()", base
            )
        if match_suffix(name, SELECT_ORDER_SUFFIXES):
            return self._source(
                node, SELECT_ORDER, f"cross-channel select {name}()", base
            )
        if _matches(name, AMBIENT_CALLS):
            return self._source(
                node, AMBIENT, f"ambient environment read {name}()", base
            )
        if name in CANONICALIZERS:
            out = dict(base)
            out.pop(HASH_ORDER, None)
            return out

        # -- sinks ------------------------------------------------------------
        if leaf in STATE_SINK_CTORS:
            self._sink(STATE_SINK, node, all_taints, name)
            return {}
        receiver_name = name.rsplit(".", 1)[0] if "." in name else ""
        if match_suffix(name, STATE_SINK_SUFFIXES) and any(
            token in receiver_name for token in STATE_RECEIVER_TOKENS
        ):
            self._sink(STATE_SINK, node, all_taints, name)
            return {}
        if match_suffix(name, OUTPUT_SINK_SUFFIXES) and not any(
            token in receiver_name for token in _NON_OUTPUT_RECEIVER_TOKENS
        ):
            self._sink(OUTPUT_SINK, node, all_taints, name)
            return {}

        # -- interprocedural edges -------------------------------------------
        callees = (
            self.index.resolve_call(self.module, self.fn, name) if name else []
        )
        if not callees:
            # Unresolved: the result derives from the inputs.
            return base
        result: Taint = {}
        call_step = self._step(node, f"into {name}()")
        for callee in callees:
            summ = self.summaries.get(callee.fid)
            if summ is None:
                continue
            self.sanitized |= summ.sanitizes
            for cat, chain in summ.returns.items():
                result = _union(result, {cat: chain})
            offset = (
                1
                if callee.class_name is not None
                and callee.params
                and callee.params[0] in ("self", "cls")
                and (isinstance(node.func, ast.Attribute) or callee.name == "__init__")
                else 0
            )
            for j, taint in enumerate(arg_taints):
                result = _union(
                    result,
                    self._apply_param(summ, callee, j + offset, taint, node, call_step),
                )
            for kwname, taint in kw_taints.items():
                if kwname in callee.params:
                    result = _union(
                        result,
                        self._apply_param(
                            summ,
                            callee,
                            callee.params.index(kwname),
                            taint,
                            node,
                            call_step,
                        ),
                    )
        return result

    def _apply_param(
        self,
        summ: Summary,
        callee: FunctionInfo,
        pidx: int,
        taint: Taint,
        node: ast.Call,
        call_step: FlowStep,
    ) -> Taint:
        if not taint:
            return {}
        # Sanitization inside the callee is applied first: this is a
        # coverage checker, and a logged argument is a covered argument.
        if pidx in summ.param_sanitized:
            cats = set(summ.param_sanitized[pidx])
            self.sanitized |= cats
            self.summary.sanitizes |= cats & ALL_CATS
            for cat in taint:
                if cat.startswith("param:"):
                    self.sanitized.add(cat)
                    self.summary.param_sanitized.setdefault(
                        int(cat.split(":", 1)[1]), set()
                    ).update(cats)
        active = self._active(taint)
        sink = summ.param_to_sink.get(pidx)
        if sink is not None:
            kind, sink_step = sink
            for cat, chain in active.items():
                if cat.startswith("param:"):
                    self.summary.param_to_sink.setdefault(
                        int(cat.split(":", 1)[1]), (kind, sink_step)
                    )
                else:
                    self._finding(
                        _SINK_RULE[kind],
                        node,
                        chain + (call_step, sink_step),
                        cat,
                    )
        if pidx in summ.param_to_return:
            return {cat: chain + (call_step,) for cat, chain in active.items()}
        return {}


def _root_name(node: ast.AST) -> Optional[str]:
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Starred)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def analyze_taint(index: ModuleIndex) -> Tuple[List[CausalFinding], int]:
    """Run the interprocedural fixpoint; returns (findings, iterations)."""
    summaries: Dict[str, Summary] = {
        fn.fid: Summary() for fn in index.iter_functions()
    }
    iterations = 0
    for iterations in range(1, _MAX_ITERATIONS + 1):
        fresh: Dict[str, Summary] = {}
        changed = False
        for fn in index.iter_functions():
            scanner = _Scanner(index, index.modules[fn.module], fn, summaries)
            scanner.run()
            fresh[fn.fid] = scanner.summary
            if scanner.summary.fingerprint() != summaries[fn.fid].fingerprint():
                changed = True
        summaries = fresh
        if not changed:
            break
    findings: List[CausalFinding] = []
    seen: Set[Tuple[str, str, int, str]] = set()
    for fn in index.iter_functions():
        scanner = _Scanner(index, index.modules[fn.module], fn, summaries)
        scanner.run()
        for finding in scanner.findings:
            key = (finding.rule.rule_id, finding.file, finding.line, finding.message)
            if key not in seen:
                seen.add(key)
                findings.append(finding)
    findings.sort(key=lambda f: (f.file, f.line, f.rule.rule_id))
    return findings, iterations
