"""repro.analysis.causal — the interprocedural causal-coverage analyzer.

NDLint (ND101–ND107) flags nondeterministic *call sites* one function at a
time.  This package proves the whole-program property behind them: every
nondeterminism source either flows through determinant logging before it
reaches replayable state or emitted output, every recorded determinant is
actually consumed on replay, and the recovery coordinators' phase emissions
keep the PR-5 timeline invariant on every code path.  Rules:

* **ND201** — unlogged nondeterminism reaches replayable state.
* **ND202** — unlogged nondeterminism reaches sink output.
* **ND203** — dead determinant: recorded but never replayed.
* **ND210** — phase-begin/phase-end not well-nested on some exit edge.

Entry point::

    report = analyze_tree()          # scan src/repro
    report.ok                        # gate condition
    print(report.render())           # human report
    report.to_json()                 # machine report

The analyzer parses sources from disk — it never imports or executes the
code under analysis — so it is equally happy scanning synthetic trees in
tests (pass ``root``/``package``/``consumer_suffixes`` explicitly).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.causal.allowlist import (
    CAUSAL_ALLOWLIST,
    Exemption,
    exemption_for,
    partition,
)
from repro.analysis.causal.deadness import (
    REPLAY_CONSUMER_SUFFIXES,
    analyze_deadness,
)
from repro.analysis.causal.graph import ModuleIndex
from repro.analysis.causal.model import (
    CAUSAL_RULES,
    CausalFinding,
    FlowStep,
    ND_DEAD,
    ND_OUTPUT,
    ND_PHASE,
    ND_STATE,
)
from repro.analysis.causal.phases import analyze_phases
from repro.analysis.causal.taint import analyze_taint

__all__ = [
    "CAUSAL_ALLOWLIST",
    "CAUSAL_RULES",
    "CausalFinding",
    "CausalReport",
    "Exemption",
    "FlowStep",
    "ND_DEAD",
    "ND_OUTPUT",
    "ND_PHASE",
    "ND_STATE",
    "analyze_tree",
    "exemption_for",
]


@dataclass
class CausalReport:
    """The result of one analyzer run over one source tree."""

    root: str
    findings: List[CausalFinding] = field(default_factory=list)
    exempted: List[Tuple[CausalFinding, Exemption]] = field(default_factory=list)
    parse_errors: List[str] = field(default_factory=list)
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for finding in self.findings:
            out[finding.rule.rule_id] = out.get(finding.rule.rule_id, 0) + 1
        return dict(sorted(out.items()))

    def _rel(self, path: str) -> str:
        try:
            return os.path.relpath(path, self.root)
        except ValueError:
            return path

    def _render_finding(self, finding: CausalFinding) -> str:
        lines = [
            f"  {finding.rule.rule_id} {finding.rule.name} "
            f"{self._rel(finding.file)}:{finding.line}",
            f"      {finding.message}",
        ]
        for i, step in enumerate(finding.path):
            lines.append(
                f"      {i + 1}. {self._rel(step.file)}:{step.line}  "
                f"{step.description}"
            )
        return "\n".join(lines)

    def render(self) -> str:
        lines = [f"causal-coverage analysis of {self.root}"]
        for key, value in sorted(self.stats.items()):
            lines.append(f"  {key}: {value}")
        if self.parse_errors:
            lines.append(f"parse errors ({len(self.parse_errors)}):")
            lines.extend(f"  {err}" for err in self.parse_errors)
        if self.findings:
            lines.append(f"findings ({len(self.findings)}):")
            lines.extend(self._render_finding(f) for f in self.findings)
        if self.exempted:
            lines.append(f"exempted ({len(self.exempted)}):")
            for finding, exemption in self.exempted:
                lines.append(
                    f"  {finding.rule.rule_id} "
                    f"{self._rel(finding.file)}:{finding.line} — "
                    f"{exemption.reason}"
                )
        lines.append("status: " + ("clean" if self.ok else "FINDINGS"))
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = {
            "root": self.root,
            "ok": self.ok,
            "counts": self.counts(),
            "stats": self.stats,
            "parse_errors": self.parse_errors,
            "findings": [
                {
                    "rule": f.rule.rule_id,
                    "name": f.rule.name,
                    "file": self._rel(f.file),
                    "line": f.line,
                    "message": f.message,
                    "symbol": f.symbol,
                    "path": [
                        {
                            "file": self._rel(step.file),
                            "line": step.line,
                            "description": step.description,
                        }
                        for step in f.path
                    ],
                }
                for f in self.findings
            ],
            "exempted": [
                {
                    "rule": f.rule.rule_id,
                    "file": self._rel(f.file),
                    "line": f.line,
                    "reason": e.reason,
                }
                for f, e in self.exempted
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True)


def _default_root() -> Path:
    return Path(__file__).resolve().parent.parent.parent


def analyze_tree(
    root: Optional[Path] = None,
    package: str = "repro",
    consumer_suffixes: Tuple[str, ...] = REPLAY_CONSUMER_SUFFIXES,
    use_allowlist: bool = True,
) -> CausalReport:
    """Run the full analyzer (taint + deadness + phases) over ``root``."""
    root = Path(root) if root is not None else _default_root()
    started = time.perf_counter()  # ndlint: disable=ND101 — analyzer timing
    index = ModuleIndex(root, package=package)
    taint_findings, iterations = analyze_taint(index)
    dead_findings = analyze_deadness(index, consumer_suffixes=consumer_suffixes)
    phase_findings = analyze_phases(index)
    all_findings = sorted(
        taint_findings + dead_findings + phase_findings,
        key=lambda f: (f.file, f.line, f.rule.rule_id),
    )
    if use_allowlist:
        live, exempted = partition(all_findings)
    else:
        live, exempted = all_findings, []
    report = CausalReport(
        root=str(root),
        findings=live,
        exempted=exempted,
        parse_errors=list(index.parse_errors),
    )
    report.stats = {
        "modules": len(index.modules),
        "functions": len(index.functions),
        "fixpoint_iterations": iterations,
        "wall_clock_s": round(time.perf_counter() - started, 4),  # ndlint: disable=ND101
    }
    return report
