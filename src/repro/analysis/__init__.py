"""``repro.analysis``: NDLint + the runtime determinism sanitizer.

Clonos' exactly-once guarantee holds only if *every* source of nondeterminism
in a UDF is intercepted by the causal services layer and logged as a
determinant (§4).  This package converts that assumption into an enforced
property:

* **NDLint** (static): :func:`lint_graph` resolves every operator callable on
  a :class:`~repro.graph.logical.JobGraph` and flags un-intercepted
  nondeterminism — wall-clock reads, module-level RNG, direct I/O, unordered
  iteration, shared mutable closures — each mapped to the determinant type
  that should have captured it.  Wired into
  :meth:`repro.runtime.jobmanager.JobManager.submit` (``lint="warn"|"strict"``)
  and ``python -m repro lint``.
* **Sanitizer** (runtime): :func:`double_run` executes a job twice from the
  same seed, compares rolling schedule hashes, and reports the first
  divergent event; :data:`SANITIZER` checks protocol invariants online
  (FIFO sequences, epoch monotonicity, replay provenance, buffer-pool
  leaks).  Wired into ``python -m repro sanitize``.
"""

from repro.analysis.engine import (
    dedupe_reports,
    lint_callable,
    lint_file,
    lint_graph,
    resolve_callables,
)
from repro.analysis.invariants import SANITIZER, RuntimeSanitizer, Violation
from repro.analysis.report import Finding, LintReport
from repro.analysis.rules import ALL_RULES, RULES_BY_KEY, Rule
from repro.analysis.sanitizer import (
    Divergence,
    SanitizeReport,
    ScheduleTracer,
    combined_digest,
    double_run,
    traced_environments,
)

__all__ = [
    "ALL_RULES",
    "Divergence",
    "Finding",
    "LintReport",
    "Rule",
    "RULES_BY_KEY",
    "RuntimeSanitizer",
    "SANITIZER",
    "SanitizeReport",
    "ScheduleTracer",
    "Violation",
    "combined_digest",
    "double_run",
    "dedupe_reports",
    "lint_callable",
    "lint_file",
    "lint_graph",
    "resolve_callables",
    "traced_environments",
]
