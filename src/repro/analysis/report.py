"""Lint findings and the report object NDLint hands back.

A :class:`Finding` pins one rule violation to an absolute source location and
the graph element it was reached from; a :class:`LintReport` aggregates them,
separates suppressed hits (``# ndlint: disable=<rule>``), and renders the
flake8-style listing the CLI prints.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.rules import RULES_BY_KEY, SEV_ERROR, SEV_WARNING, Rule

#: ``# ndlint: disable`` or ``# ndlint: disable=ND101,rng`` (ids or names).
_DISABLE_RE = re.compile(r"#\s*ndlint:\s*disable(?:=([\w\-,\s]+))?")


def disabled_rules(line: str) -> Optional[frozenset]:
    """Rules suppressed by an inline comment on ``line``.

    Returns None when the line carries no marker; an empty frozenset means
    "disable everything" (bare ``# ndlint: disable``).
    """
    match = _DISABLE_RE.search(line)
    if match is None:
        return None
    if not match.group(1):
        return frozenset()
    keys = [k.strip() for k in match.group(1).split(",") if k.strip()]
    resolved = set()
    for key in keys:
        rule = RULES_BY_KEY.get(key)
        if rule is not None:
            resolved.add(rule.rule_id)
    return frozenset(resolved)


def suppresses(line: str, rule: Rule) -> bool:
    rules = disabled_rules(line)
    if rules is None:
        return False
    return not rules or rule.rule_id in rules


@dataclass
class Finding:
    """One rule violation at an absolute source position."""

    rule: Rule
    message: str
    file: str
    line: int
    source_line: str = ""
    #: The graph element / callable the engine reached this code from,
    #: e.g. ``node 'calc' factory (nexmark-q14)``.
    target: str = ""
    suppressed: bool = False

    @property
    def location(self) -> str:
        return f"{self.file}:{self.line}"

    def render(self) -> str:
        head = (
            f"{self.location}: {self.rule.rule_id} {self.rule.name} "
            f"[{self.rule.severity}] {self.message}"
        )
        if self.target:
            head += f"  (via {self.target})"
        detail = (
            f"    expected determinant: {self.rule.determinant} ({self.rule.citation})\n"
            f"    fix: {self.rule.remediation}"
        )
        if self.source_line.strip():
            detail = f"    > {self.source_line.strip()}\n" + detail
        return head + "\n" + detail

    def __str__(self) -> str:
        return self.render()


@dataclass
class LintReport:
    """Everything NDLint found over one lint surface (graph, file, callable)."""

    subject: str = ""
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    #: Callables the engine reached but could not read source for.
    unresolved: List[str] = field(default_factory=list)

    def add(self, finding: Finding) -> None:
        (self.suppressed if finding.suppressed else self.findings).append(finding)

    def extend(self, findings) -> None:
        for finding in findings:
            self.add(finding)

    def merge(self, other: "LintReport") -> None:
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.unresolved.extend(other.unresolved)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.rule.severity == SEV_ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.rule.severity == SEV_WARNING]

    def ok(self, strict: bool = False) -> bool:
        """Clean? Errors always fail; ``strict`` also fails on warnings."""
        return not self.errors and not (strict and self.warnings)

    def summary(self) -> str:
        parts = [
            f"{len(self.errors)} error{'s' if len(self.errors) != 1 else ''}",
            f"{len(self.warnings)} warning{'s' if len(self.warnings) != 1 else ''}",
        ]
        if self.suppressed:
            parts.append(f"{len(self.suppressed)} suppressed")
        status = "clean" if self.ok() else "NOT causally loggable"
        subject = f" [{self.subject}]" if self.subject else ""
        return f"ndlint{subject}: {', '.join(parts)} — {status}"

    def render(self, verbose: bool = True) -> str:
        lines = []
        for finding in self.findings:
            lines.append(finding.render() if verbose else str(finding).splitlines()[0])
        lines.append(self.summary())
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
