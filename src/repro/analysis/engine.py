"""NDLint engine: prove a :class:`~repro.graph.logical.JobGraph` causally loggable.

The engine resolves every user callable attached to a graph — node operator
factories, the functions/lambdas they close over, user-defined operator
classes, edge key selectors — reads their source with :mod:`inspect`, locates
the exact ``def``/``lambda`` node in the module AST, and runs the rule
catalogue of :mod:`repro.analysis.rules` over it.  Library built-ins
(``repro.operators`` etc.) are trusted: their nondeterminism is already routed
through the causal services, so analysing them would only add noise.

Three entry points::

    lint_graph(graph)        # the submission-path check
    lint_callable(fn)        # one UDF
    lint_file(path)          # whole-module sweep (scripts/lint_repro.py)
"""

from __future__ import annotations

import ast
import inspect
import sys
from functools import lru_cache
from pathlib import Path
from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro.analysis.report import Finding, LintReport, suppresses
from repro.analysis.rules import RawFinding, allowlisted_calls, scan

#: repro-internal modules whose callables are deterministic by construction
#: (all their nondeterminism already flows through Services); skipping them
#: keeps graph lints focused on *user* logic.  ``repro.nexmark`` is
#: deliberately absent: its query UDFs are user code and must stay lint-clean.
TRUSTED_PREFIXES = (
    "repro.operators",
    "repro.core",
    "repro.net",
    "repro.state",
    "repro.timing",
    "repro.sim",
    "repro.graph",
    "repro.runtime",
    "repro.external",
    "repro.harness",
    "repro.metrics",
    "repro.workloads",
    "repro.ft",
    "repro.config",
    "repro.errors",
    "repro.analysis",
    "repro.trace",
)

#: How many hops of closures/globals to chase from a factory.
_MAX_DEPTH = 4
_MAX_CALLABLES = 64


def _is_trusted_module(module: Optional[str]) -> bool:
    if not module:
        return True  # builtins / C extensions: no source to lint anyway
    if any(module == p or module.startswith(p + ".") for p in TRUSTED_PREFIXES):
        return True
    top = module.split(".", 1)[0]
    return top in sys.stdlib_module_names and top != "__main__"


@lru_cache(maxsize=64)
def _module_source(filename: str) -> Optional[Tuple[ast.Module, Tuple[str, ...]]]:
    try:
        text = Path(filename).read_text()
        return ast.parse(text, filename=filename), tuple(text.splitlines())
    except (OSError, SyntaxError, ValueError):
        return None


def _locate_def(tree: ast.Module, lineno: int, fn: Callable) -> Optional[ast.AST]:
    """The ``def``/``lambda`` node starting at ``lineno`` in ``tree``.

    ``inspect.getsource`` on a lambda returns the surrounding statement, which
    often does not parse standalone; locating the node inside the module AST
    sidesteps that entirely and keeps line numbers absolute.
    """
    candidates = [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
        and node.lineno == lineno
    ]
    if len(candidates) > 1:
        # Several defs on one line (nested lambdas): prefer a matching arity.
        nargs = fn.__code__.co_argcount
        exact = [c for c in candidates if len(c.args.args) == nargs]
        if exact:
            candidates = exact
    return candidates[0] if candidates else None


def _findings_for(
    raw: Iterable[RawFinding],
    filename: str,
    lines: Tuple[str, ...],
    def_line: int,
    target: str,
) -> List[Finding]:
    findings = []
    for hit in raw:
        line_text = lines[hit.lineno - 1] if 0 < hit.lineno <= len(lines) else ""
        def_text = lines[def_line - 1] if 0 < def_line <= len(lines) else ""
        # A disable comment suppresses the hit from anywhere in the flagged
        # construct's span: multi-line comprehensions/calls carry their
        # trailing comment on the closing line, not the first.
        suppressed = any(
            suppresses(lines[n - 1], hit.rule)
            for n in hit.span()
            if 0 < n <= len(lines)
        ) or (hit.lineno != def_line and suppresses(def_text, hit.rule))
        findings.append(
            Finding(
                rule=hit.rule,
                message=hit.message,
                file=filename,
                line=hit.lineno,
                source_line=line_text,
                target=target,
                suppressed=suppressed,
            )
        )
    return findings


def lint_callable(fn: Callable, target: str = "") -> LintReport:
    """Lint one Python callable (function, lambda, or bound method)."""
    report = LintReport(subject=target or getattr(fn, "__qualname__", repr(fn)))
    fn = inspect.unwrap(fn)
    if inspect.ismethod(fn):
        fn = fn.__func__
    code = getattr(fn, "__code__", None)
    if code is None or _is_trusted_module(getattr(fn, "__module__", None)):
        return report
    try:
        filename = inspect.getsourcefile(fn)
    except TypeError:
        filename = None
    if filename is None:
        report.unresolved.append(report.subject)
        return report
    parsed = _module_source(filename)
    if parsed is None:
        report.unresolved.append(report.subject)
        return report
    tree, lines = parsed
    node = _locate_def(tree, code.co_firstlineno, fn)
    if node is None:
        report.unresolved.append(report.subject)
        return report
    raw = scan(node, freevars=code.co_freevars)
    report.extend(
        _findings_for(raw, filename, lines, code.co_firstlineno, target)
    )
    return report


# -- callable resolution -----------------------------------------------------------


def _expand(obj: Any) -> List[Any]:
    """Callables reachable one hop from ``obj``: closure cells, referenced
    globals, and (for user operator classes/instances) their methods."""
    reached: List[Any] = []
    fn = inspect.unwrap(obj) if callable(obj) else obj
    if inspect.ismethod(fn):
        fn = fn.__func__
    code = getattr(fn, "__code__", None)
    if code is not None:
        closure = getattr(fn, "__closure__", None) or ()
        for cell in closure:
            try:
                reached.append(cell.cell_contents)
            except ValueError:  # empty cell
                pass
        fn_globals = getattr(fn, "__globals__", {})
        for name in code.co_names:
            if name in fn_globals:
                reached.append(fn_globals[name])
    elif inspect.isclass(fn) and not _is_trusted_module(fn.__module__):
        for attr in ("process", "poll", "on_timer", "on_watermark", "open",
                     "close", "on_barrier", "snapshot", "restore"):
            method = fn.__dict__.get(attr)
            if method is not None:
                reached.append(method)
    elif not inspect.isclass(fn) and hasattr(fn, "__class__"):
        cls = type(fn)
        if not _is_trusted_module(getattr(cls, "__module__", None)):
            reached.append(cls)
    return reached


def resolve_callables(root: Callable, label: str) -> List[Tuple[str, Callable]]:
    """Every lintable callable reachable from ``root`` (bounded BFS)."""
    seen = {id(root)}
    frontier: List[Tuple[Any, int]] = [(root, 0)]
    resolved: List[Tuple[str, Callable]] = []
    while frontier and len(resolved) < _MAX_CALLABLES:
        obj, depth = frontier.pop(0)
        fn = obj.__func__ if inspect.ismethod(obj) else obj
        if getattr(fn, "__code__", None) is not None and not _is_trusted_module(
            getattr(fn, "__module__", None)
        ):
            name = getattr(fn, "__qualname__", getattr(fn, "__name__", "<callable>"))
            resolved.append((f"{label} -> {name}" if depth else label, fn))
        if depth >= _MAX_DEPTH:
            continue
        for child in _expand(obj):
            if not (callable(child) or inspect.isclass(child)):
                continue
            if id(child) in seen:
                continue
            seen.add(id(child))
            frontier.append((child, depth + 1))
    return resolved


def lint_graph(graph) -> LintReport:
    """Lint every UDF/operator callable attached to a job graph."""
    report = LintReport(subject=getattr(graph, "name", "graph"))
    linted = set()
    for label, root in graph.udf_callables():
        for target, fn in resolve_callables(root, label):
            key = (id(fn.__code__), target.split(" -> ")[-1])
            if key in linted:
                continue
            linted.add(key)
            report.merge(lint_callable(fn, target=target))
    report.subject = getattr(graph, "name", "graph")
    return report


def dedupe_reports(reports: List[LintReport]) -> List[LintReport]:
    """Drop findings already reported by an earlier report in ``reports``.

    ``lint all`` sweeps the example files with :func:`lint_file` *and*
    reaches some of the same defs again through :func:`lint_graph` (a query
    graph whose UDFs live in an already-swept module).  Both engines pin
    findings to absolute ``file:line`` positions, so the duplicate is
    exact — same rule, file, line, and message; only the ``target``
    breadcrumb differs.  The first occurrence wins; later duplicates are
    removed in place (suppressed hits are deduped the same way).  Returns
    ``reports`` for chaining.
    """
    seen: set = set()
    for report in reports:
        for attr in ("findings", "suppressed"):
            kept = []
            for finding in getattr(report, attr):
                key = (finding.rule.rule_id, finding.file, finding.line,
                       finding.message)
                if key in seen:
                    continue
                seen.add(key)
                kept.append(finding)
            setattr(report, attr, kept)
    return reports


def lint_file(path) -> LintReport:
    """Whole-module sweep: every statement in ``path`` (UDFs and drivers).

    Framework files carrying a documented exemption (see
    :data:`repro.analysis.rules.FRAMEWORK_ALLOWLIST`) have exactly those
    sanctioned calls excluded; everything else is linted as usual.
    """
    path = str(path)
    report = LintReport(subject=path)
    parsed = _module_source(path)
    if parsed is None:
        report.unresolved.append(path)
        return report
    tree, lines = parsed
    raw = scan(tree, freevars=(), allowed=allowlisted_calls(path))
    report.extend(_findings_for(raw, path, lines, 0, target=""))
    return report
