"""Runtime determinism sanitizer: catch what static analysis can't.

Two mechanisms:

* **Schedule hashing** — a :class:`ScheduleTracer` attached to every
  :class:`~repro.sim.core.Environment` folds each popped event
  ``(time, priority, kind, process-name)`` into a rolling hash.  The
  simulation kernel is totally ordered, so two runs of the same program from
  the same seed must produce identical hashes; any divergence means host-level
  nondeterminism leaked in (unordered iteration, ``id()``-keyed containers,
  un-seeded randomness) — exactly the class of bug that silently breaks the
  paper's replay guarantee.
* **Double-run mode** (:func:`double_run`) — execute a job twice, compare the
  schedules step by step, and report the *first divergent event* with its
  task/offset context.

The protocol-invariant half (FIFO sequences, epoch monotonicity, buffer-pool
leaks, determinant accounting) lives in :mod:`repro.analysis.invariants`; the
CLI (``python -m repro sanitize``) enables both together.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.sim.core import Environment

#: One schedule entry: (time, priority, event kind, event/process name).
Entry = Tuple[float, int, str, str]


class ScheduleTracer:
    """Rolling hash (and optional full trace) of one environment's schedule."""

    __slots__ = ("_hash", "_buffer", "entries", "keep_trace", "steps")

    #: How many entry reprs to accumulate before one hash.update call.
    #: Batching feeds blake2b the identical byte stream (concatenation of
    #: per-entry reprs), so digests are unchanged — it only amortises the
    #: per-call overhead over the hottest per-event path in the simulator.
    _BATCH = 256

    def __init__(self, keep_trace: bool = True):
        self._hash = hashlib.blake2b(digest_size=8)
        self._buffer: List[str] = []
        self.entries: List[Entry] = []
        self.keep_trace = keep_trace
        self.steps = 0

    def on_step(self, when: float, priority: int, event) -> None:
        entry: Entry = (
            round(when, 9),
            priority,
            type(event).__name__,
            getattr(event, "name", ""),
        )
        buffer = self._buffer
        buffer.append(repr(entry))
        if len(buffer) >= self._BATCH:
            self._hash.update("".join(buffer).encode())
            buffer.clear()
        self.steps += 1
        if self.keep_trace:
            self.entries.append(entry)

    def digest(self) -> str:
        buffer = self._buffer
        if buffer:
            self._hash.update("".join(buffer).encode())
            buffer.clear()
        return self._hash.hexdigest()

    def __repr__(self) -> str:
        return f"ScheduleTracer(steps={self.steps}, hash={self.digest()})"


@contextmanager
def traced_environments(keep_trace: bool = True):
    """Attach a fresh :class:`ScheduleTracer` to every Environment created
    inside the ``with`` block; yields the list of tracers (in creation
    order)."""
    tracers: List[ScheduleTracer] = []

    def factory() -> ScheduleTracer:
        tracer = ScheduleTracer(keep_trace=keep_trace)
        tracers.append(tracer)
        return tracer

    previous = Environment._tracer_factory
    Environment._tracer_factory = staticmethod(factory)
    try:
        yield tracers
    finally:
        Environment._tracer_factory = previous


def combined_digest(tracers: List[ScheduleTracer]) -> str:
    """One hash over all environments of a run (harnesses create several)."""
    rollup = hashlib.blake2b(digest_size=8)
    for tracer in tracers:
        rollup.update(tracer.digest().encode())
    return rollup.hexdigest()


@dataclass
class Divergence:
    """The first point where two runs' schedules disagree."""

    env_index: int
    step: int
    first: Optional[Entry]
    second: Optional[Entry]

    def render(self) -> str:
        def fmt(entry: Optional[Entry]) -> str:
            if entry is None:
                return "<schedule ended>"
            when, priority, kind, name = entry
            who = f" {name!r}" if name else ""
            return f"t={when:.6f} prio={priority} {kind}{who}"

        return (
            f"first divergence: environment #{self.env_index}, step {self.step}\n"
            f"    run A: {fmt(self.first)}\n"
            f"    run B: {fmt(self.second)}"
        )


@dataclass
class SanitizeReport:
    """Outcome of a double run, plus any protocol-invariant violations."""

    label: str
    hash_a: str
    hash_b: str
    steps: int
    environments: int
    divergence: Optional[Divergence] = None
    violations: List = field(default_factory=list)

    @property
    def deterministic(self) -> bool:
        return self.divergence is None

    @property
    def ok(self) -> bool:
        return self.deterministic and not self.violations

    def render(self) -> str:
        lines = [
            f"sanitize [{self.label}]: {self.environments} environment(s), "
            f"{self.steps} scheduled events per run",
            f"    schedule hash run A: {self.hash_a}",
            f"    schedule hash run B: {self.hash_b}"
            + ("  (MATCH)" if self.hash_a == self.hash_b else "  (MISMATCH)"),
        ]
        if self.divergence is not None:
            lines.append(self.divergence.render())
        for violation in self.violations:
            lines.append(f"    invariant violation: {violation}")
        lines.append(
            "verdict: deterministic, protocol invariants hold"
            if self.ok
            else "verdict: NONDETERMINISM DETECTED"
        )
        return "\n".join(lines)


def _first_divergence(
    first: List[ScheduleTracer], second: List[ScheduleTracer]
) -> Optional[Divergence]:
    if len(first) != len(second):
        return Divergence(min(len(first), len(second)), 0, None, None)
    for env_index, (a, b) in enumerate(zip(first, second)):
        if a.digest() == b.digest():
            continue
        for step, (ea, eb) in enumerate(zip(a.entries, b.entries)):
            if ea != eb:
                return Divergence(env_index, step, ea, eb)
        longer = a.entries if len(a.entries) > len(b.entries) else b.entries
        step = min(len(a.entries), len(b.entries))
        extra = longer[step] if step < len(longer) else None
        return Divergence(
            env_index,
            step,
            extra if len(a.entries) > len(b.entries) else None,
            extra if len(b.entries) > len(a.entries) else None,
        )
    return None


def double_run(
    fn: Callable[[], object],
    label: str = "",
    keep_trace: bool = True,
    check_invariants: bool = True,
) -> SanitizeReport:
    """Run ``fn`` twice from identical initial conditions and compare the
    event schedules; optionally also arm the online protocol invariants."""
    from repro.analysis.invariants import SANITIZER

    violations: List = []
    with SANITIZER.armed(enabled=check_invariants):
        with traced_environments(keep_trace=keep_trace) as run_a:
            fn()
        violations.extend(SANITIZER.violations)
        SANITIZER.reset()
        with traced_environments(keep_trace=keep_trace) as run_b:
            fn()
        violations.extend(SANITIZER.violations)
    return SanitizeReport(
        label=label or getattr(fn, "__name__", "job"),
        hash_a=combined_digest(run_a),
        hash_b=combined_digest(run_b),
        steps=sum(t.steps for t in run_a),
        environments=len(run_a),
        divergence=_first_divergence(run_a, run_b),
        violations=violations,
    )
