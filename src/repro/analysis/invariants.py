"""Online protocol-invariant checks (the second half of the sanitizer).

A process-wide :data:`SANITIZER` that, when enabled, receives cheap callbacks
from the hot paths of :mod:`repro.runtime.task`,
:mod:`repro.core.recovery`, and :class:`repro.runtime.jobmanager.JobManager`
and verifies the invariants the Clonos protocol relies on:

* **FIFO sequences** — under exactly-once modes, the buffers a task consumes
  from one channel carry strictly increasing sequence numbers within a task
  incarnation (§2.3's FIFO-channel assumption plus §5.2's sender-side dedup).
* **Epoch monotonicity** — checkpoint barriers observed on a channel never
  regress (§3.2 alignment).
* **Replay accounting** — every determinant consumed during replay was
  produced by the original run: consumption never exceeds what the retrieved
  bundle loaded (§5.2).
* **Buffer-pool leaks** — when a job finishes, every task's output pool has
  been fully returned (buffers are either recycled by consumers or owned by
  the in-flight log's own pool, §6.1's buffer exchange).

Disabled (the default) these hooks are a single attribute check; the
simulation's behaviour is untouched either way — violations are *recorded*,
never raised mid-run, and surfaced by ``python -m repro sanitize``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class Violation:
    """One broken protocol invariant."""

    check: str
    task: str
    message: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.task}: {self.message}"


class RuntimeSanitizer:
    """Process-wide invariant checker; a no-op unless :attr:`enabled`."""

    def __init__(self):
        self.enabled = False
        self.reset()

    def reset(self) -> None:
        self.violations: List[Violation] = []
        self._buffer_seq: Dict[Tuple[str, int], int] = {}
        self._barrier_epoch: Dict[Tuple[str, int], int] = {}
        self._replay_loaded: Dict[str, int] = {}
        self._replay_consumed: Dict[str, int] = {}

    @contextmanager
    def armed(self, enabled: bool = True):
        """Enable (and reset) the sanitizer for the duration of a block."""
        previous = self.enabled
        self.enabled = enabled
        self.reset()
        try:
            yield self
        finally:
            self.enabled = previous
            if not previous:
                # Leave violations readable; drop the per-run trackers.
                self._buffer_seq.clear()
                self._barrier_epoch.clear()

    def _violate(self, check: str, task: str, message: str) -> None:
        self.violations.append(Violation(check, task, message))

    # -- per-task lifecycle --------------------------------------------------------

    def on_task_start(self, task: str) -> None:
        """A (re)starting task begins a fresh incarnation: sequence and epoch
        tracking restart (replayed buffers legitimately reuse old numbers)."""
        if not self.enabled:
            return
        for store in (self._buffer_seq, self._barrier_epoch):
            for key in [k for k in store if k[0] == task]:
                del store[key]
        self._replay_loaded.pop(task, None)
        self._replay_consumed.pop(task, None)

    # -- network invariants -----------------------------------------------------------

    def on_buffer(self, task: str, channel: int, seq: int, strict: bool) -> None:
        """A task consumed buffer ``seq`` from ``channel``.  ``strict`` is
        False under at-least-once modes (SEEP/divergent replay re-delivers)."""
        if not self.enabled:
            return
        key = (task, channel)
        last = self._buffer_seq.get(key)
        if strict and last is not None and seq <= last:
            self._violate(
                "fifo-seq",
                task,
                f"channel {channel} delivered seq {seq} after {last} "
                "(duplicate or reordered buffer under an exactly-once mode)",
            )
        self._buffer_seq[key] = seq if last is None else max(last, seq)

    def on_barrier(self, task: str, channel: int, checkpoint_id: int) -> None:
        if not self.enabled:
            return
        key = (task, channel)
        last = self._barrier_epoch.get(key)
        if last is not None and checkpoint_id < last:
            self._violate(
                "epoch-monotonic",
                task,
                f"channel {channel} delivered barrier for epoch {checkpoint_id} "
                f"after epoch {last}",
            )
        self._barrier_epoch[key] = max(last or 0, checkpoint_id)

    # -- replay accounting ---------------------------------------------------------------

    def on_replay_loaded(self, task: str, count: int) -> None:
        if not self.enabled:
            return
        self._replay_loaded[task] = self._replay_loaded.get(task, 0) + count

    def on_replay_consumed(self, task: str) -> None:
        if not self.enabled:
            return
        consumed = self._replay_consumed.get(task, 0) + 1
        self._replay_consumed[task] = consumed
        if consumed > self._replay_loaded.get(task, 0):
            self._violate(
                "replay-provenance",
                task,
                f"replay consumed determinant #{consumed} but the retrieved "
                f"bundle only produced {self._replay_loaded.get(task, 0)}",
            )

    # -- end-of-job accounting ------------------------------------------------------------

    def on_job_done(self, jobmanager) -> None:
        """Buffer-pool leak check: a finished job must have returned every
        output-pool buffer (consumers recycle; the in-flight log owns its
        copies out of its *own* pool after the §6.1 exchange)."""
        if not self.enabled:
            return
        for vertex in jobmanager.vertices.values():
            task = vertex.task
            if task is None:
                continue
            pool = getattr(task, "out_pool", None)
            if pool is None:
                continue
            if task.status.value == "finished" and pool.in_use_buffers:
                self._violate(
                    "buffer-leak",
                    task.name,
                    f"output pool still holds {pool.in_use_buffers} buffer(s) "
                    "after the job finished",
                )


#: The process-wide instance the runtime hooks talk to.
SANITIZER = RuntimeSanitizer()
