"""NDLint rules: the catalogue of nondeterminism a UDF can smuggle past Clonos.

Each rule describes one way operator logic can observe the world *without*
going through the causal services layer (:mod:`repro.core.services`).  Such a
call produces no determinant, so causal recovery silently replays it
differently — the exact assumption violation that separates Clonos from the
SEEP-style baselines (Table 1).  Every rule therefore names the determinant
type that *would* have intercepted the call, the paper section that defines
it, and the concrete rewrite that makes the UDF causally loggable.

The AST matching lives in :class:`RuleVisitor`; rule identity/severity/
remediation live in the frozen :class:`Rule` records so reports and errors
(:class:`repro.errors.LintError`) can carry them around.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

SEV_ERROR = "error"
SEV_WARNING = "warning"


@dataclass(frozen=True)
class Rule:
    """One lint rule: identity, severity, and its paper grounding."""

    rule_id: str
    name: str
    severity: str
    summary: str
    #: Determinant type that should have intercepted this nondeterminism.
    determinant: str
    #: Paper section defining that determinant / nondeterminism source.
    citation: str
    remediation: str

    def __str__(self) -> str:
        return f"{self.rule_id} {self.name}"


WALL_CLOCK = Rule(
    "ND101",
    "wall-clock",
    SEV_ERROR,
    "direct wall-clock read in operator logic",
    "TimestampDeterminant",
    "§4.1 (processing time), §4.2 Timestamps",
    "use ctx.services.timestamp() (or ctx.processing_time()) so the value is "
    "logged and replayed",
)

RNG = Rule(
    "ND102",
    "rng",
    SEV_ERROR,
    "module-level / OS randomness in operator logic",
    "RngSeedDeterminant",
    "§4.1 (RNG initialized from current time), §4.2 Random Numbers",
    "use ctx.services.random(); Clonos reseeds it per epoch and logs the seed",
)

EXTERNAL_IO = Rule(
    "ND103",
    "external-io",
    SEV_ERROR,
    "direct I/O or network call bypassing the causal services",
    "ExternalCallDeterminant",
    "§4.1 (UDFs & external calls), §4.2 External Calls",
    "route the call through ctx.services.http_get(key) or wrap it in "
    "ctx.services.custom(name, fn, arg)",
)

UNORDERED_ITERATION = Rule(
    "ND104",
    "unordered-iteration",
    SEV_WARNING,
    "iteration over an unordered collection can change emission order",
    "OrderDeterminant (covers consumption, not emission, order)",
    "§4.1 (record arrival order)",
    "iterate a sorted(...) copy (or an insertion-ordered dict) before emitting",
)

SHARED_STATE = Rule(
    "ND105",
    "shared-mutable-state",
    SEV_WARNING,
    "mutation of captured state that is invisible to checkpoints",
    "none — cross-record state must live in the keyed state backend",
    "§2.2 (task state), §4.1",
    "move the accumulator into ctx.state(StateDescriptor(...)) so snapshots "
    "and replay see it",
)

AMBIENT = Rule(
    "ND106",
    "ambient-environment",
    SEV_WARNING,
    "read of ambient process/host environment",
    "CustomDeterminant",
    "§4.2 (custom user services, Listing 2)",
    "wrap the read in ctx.services.custom(name, fn, arg) so the observed "
    "value is logged",
)

NONDET_SERIALIZATION = Rule(
    "ND107",
    "nondeterministic-serialization",
    SEV_WARNING,
    "persisted snapshot state has no canonical serialized form",
    "none — checkpoint fingerprints assume a canonical value walk",
    "§2.2 (task state snapshots); DESIGN.md Integrity & validated recovery",
    "persist a sorted(...) projection (or an insertion-ordered dict) from "
    "snapshot()/snapshot_state() so every re-serialization fingerprints "
    "identically",
)

ALL_RULES: Tuple[Rule, ...] = (
    WALL_CLOCK,
    RNG,
    EXTERNAL_IO,
    UNORDERED_ITERATION,
    SHARED_STATE,
    AMBIENT,
    NONDET_SERIALIZATION,
)

RULES_BY_KEY = {rule.rule_id: rule for rule in ALL_RULES}
RULES_BY_KEY.update({rule.name: rule for rule in ALL_RULES})


# -- call-pattern tables ----------------------------------------------------------

#: Dotted-name suffixes read off the wall clock.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.clock_gettime",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
    }
)

#: Dotted-name prefixes whose calls draw module-level / OS randomness.
_RNG_PREFIXES = ("random.", "np.random.", "numpy.random.", "secrets.")
_RNG_CALLS = frozenset({"os.urandom", "uuid.uuid1", "uuid.uuid4", "os.getrandom"})

#: Direct I/O / network entry points that bypass Services.
_IO_PREFIXES = ("requests.", "urllib.", "socket.", "http.client.", "subprocess.")
_IO_CALLS = frozenset({"open", "socket.socket"})
#: The simulated drifting external service's synchronous accessor
#: (repro.external.http.ExternalService.get_now): calling it outside
#: ctx.services.custom() is exactly the un-intercepted external call.
_IO_SUFFIXES = (".get_now",)

#: Ambient host/process environment reads.
_AMBIENT_PREFIXES = ("os.environ", "platform.", "sys.stdin")
_AMBIENT_CALLS = frozenset(
    {
        "os.getenv",
        "os.getpid",
        "os.getppid",
        "os.getcwd",
        "os.cpu_count",
        "socket.gethostname",
        "socket.getfqdn",
        "input",
    }
)

#: Calls whose results have no deterministic order.
_UNORDERED_CALLS = frozenset({"os.listdir", "os.scandir", "glob.glob", "glob.iglob"})

#: Framework-internal allowlist: path suffixes of *framework* modules whose
#: documented use of an otherwise-flagged call is sanctioned.  The sim
#: profiler reads ``time.perf_counter_ns`` to attribute wall-clock self-time
#: to sim processes; the readings never reach dataflow logic, the event bus,
#: or any deterministic export, so they cannot make a pipeline diverge.
#: User operator code never matches these paths — the exemption cannot leak
#: into lint results for pipelines.
FRAMEWORK_ALLOWLIST: Dict[str, FrozenSet[str]] = {
    "repro/trace/profiler.py": frozenset(
        {"time.perf_counter", "time.perf_counter_ns"}
    ),
}


def allowlisted_calls(path) -> FrozenSet[str]:
    """Sanctioned call names for ``path`` (empty for non-framework files)."""
    normalized = str(path).replace("\\", "/")
    for suffix, calls in FRAMEWORK_ALLOWLIST.items():
        if normalized.endswith(suffix):
            return calls
    return frozenset()

#: Method names that build the state image a checkpoint persists.  Hash-order
#: values constructed inside them feed the integrity layer's content
#: fingerprint (repro.integrity.fingerprint), which canonicalises dict/set
#: *containers* but cannot canonicalise an already hash-ordered projection
#: (e.g. a list built from a set) — two runs of the same state then
#: fingerprint differently and validated restores can false-positive.
_SNAPSHOT_DEFS = frozenset({"snapshot", "snapshot_state"})

#: Builtins whose results depend on element hashing / PYTHONHASHSEED.
_HASH_ORDER_CALLS = frozenset({"set", "frozenset", "hash"})

#: Methods that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "update",
        "extend",
        "insert",
        "remove",
        "discard",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "setdefault",
    }
)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _matches(name: str, exact: FrozenSet[str]) -> bool:
    if name in exact:
        return True
    return any(name.endswith("." + pattern) for pattern in exact)


def _prefixed(name: str, prefixes: Iterable[str]) -> bool:
    return any(name == p.rstrip(".") or name.startswith(p) for p in prefixes)


@dataclass
class RawFinding:
    """A rule hit, positioned relative to the snippet being linted."""

    rule: Rule
    lineno: int
    col: int
    message: str
    #: Last line of the flagged construct (== ``lineno`` for single-line
    #: hits).  Multi-line constructs — e.g. a set comprehension in a
    #: snapshot method (ND107) wrapped over several lines — honour an
    #: inline ``# ndlint: disable`` comment anywhere in the span.
    end_lineno: int = 0

    def span(self) -> range:
        """Line numbers covered by the flagged construct (inclusive)."""
        return range(self.lineno, max(self.end_lineno, self.lineno) + 1)


class RuleVisitor(ast.NodeVisitor):
    """Walks one callable's AST and collects :class:`RawFinding`s.

    ``freevars`` are the closure variables of the analysed callable (from
    ``fn.__code__.co_freevars``): mutating one of them is cross-record shared
    state (ND105).  Calls inside the argument list of a
    ``...services.custom(...)`` call are *sanctioned* — the custom determinant
    intercepts whatever happens inside (Listing 2) — and are exempt from
    ND101/ND102/ND103/ND106.  Bodies of methods named in ``_SNAPSHOT_DEFS``
    additionally run the ND107 serialization checks: hash-ordered values
    built there end up inside persisted, fingerprinted state.
    """

    def __init__(
        self, freevars: Iterable[str] = (), allowed: Iterable[str] = ()
    ):
        self.freevars = frozenset(freevars)
        #: Framework-sanctioned call names (see :data:`FRAMEWORK_ALLOWLIST`).
        self.allowed = frozenset(allowed)
        self.findings: List[RawFinding] = []
        self._sanctioned = 0
        self._in_snapshot = 0
        self._canonicalised = 0

    # -- snapshot-method tracking (ND107) ---------------------------------------

    def _visit_def(self, node) -> None:
        if node.name in _SNAPSHOT_DEFS:
            self._in_snapshot += 1
            try:
                self.generic_visit(node)
            finally:
                self._in_snapshot -= 1
        else:
            self.generic_visit(node)

    visit_FunctionDef = _visit_def
    visit_AsyncFunctionDef = _visit_def

    # -- helpers ----------------------------------------------------------------

    def _flag(self, rule: Rule, node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 0)
        self.findings.append(
            RawFinding(
                rule,
                lineno,
                getattr(node, "col_offset", 0),
                message,
                end_lineno=getattr(node, "end_lineno", lineno) or lineno,
            )
        )

    @staticmethod
    def _is_services_custom(name: Optional[str]) -> bool:
        return bool(name) and (
            name.endswith("services.custom") or name.endswith("services.http_get")
        )

    # -- call sites ------------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if self._is_services_custom(name):
            # The services layer logs whatever the wrapped callable observes;
            # everything inside the argument list is sanctioned.
            self.visit(node.func)
            self._sanctioned += 1
            try:
                for arg in node.args:
                    self.visit(arg)
                for kw in node.keywords:
                    self.visit(kw)
            finally:
                self._sanctioned -= 1
            return
        if name == "sorted" and self._in_snapshot:
            # sorted(set(...)) is the ND107 remediation itself: the
            # projection that gets persisted is canonical.  hash() stays
            # flagged even here — its *values* vary across processes.
            self._canonicalised += 1
            try:
                self.generic_visit(node)
            finally:
                self._canonicalised -= 1
            return
        if name is not None and self._in_snapshot and name in _HASH_ORDER_CALLS:
            if name == "hash" or not self._canonicalised:
                self._flag(
                    NONDET_SERIALIZATION,
                    node,
                    f"{name}() in persisted snapshot state: value depends on "
                    "element hashing",
                )
        if name is not None and not self._sanctioned:
            self._check_call_name(name, node)
        self.generic_visit(node)

    def _check_call_name(self, name: str, node: ast.Call) -> None:
        if self.allowed and _matches(name, self.allowed):
            return
        if _matches(name, _WALL_CLOCK_CALLS):
            self._flag(WALL_CLOCK, node, f"direct wall-clock call {name}()")
        elif _prefixed(name, _RNG_PREFIXES) or _matches(name, _RNG_CALLS):
            self._flag(RNG, node, f"un-intercepted randomness {name}()")
        elif _matches(name, _AMBIENT_CALLS) or _prefixed(name, _AMBIENT_PREFIXES):
            self._flag(AMBIENT, node, f"ambient environment read {name}()")
        elif _matches(name, _UNORDERED_CALLS):
            self._flag(UNORDERED_ITERATION, node, f"unordered result of {name}()")
        elif (
            _prefixed(name, _IO_PREFIXES)
            or name in _IO_CALLS
            or any(name.endswith(s) for s in _IO_SUFFIXES)
        ):
            self._flag(
                EXTERNAL_IO, node, f"direct external call {name}() bypasses Services"
            )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # `os.environ[...]` reads without a call.
        if not self._sanctioned and dotted_name(node) == "os.environ":
            self._flag(AMBIENT, node, "ambient environment read os.environ")
        self.generic_visit(node)

    # -- unordered iteration --------------------------------------------------------

    @staticmethod
    def _is_unordered_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            return name in ("set", "frozenset")
        return False

    def visit_Set(self, node: ast.Set) -> None:
        if self._in_snapshot and not self._canonicalised:
            self._flag(
                NONDET_SERIALIZATION,
                node,
                "set literal in persisted snapshot state serializes in hash order",
            )
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        if self._in_snapshot and not self._canonicalised:
            self._flag(
                NONDET_SERIALIZATION,
                node,
                "set comprehension in persisted snapshot state serializes in "
                "hash order",
            )
        for gen in node.generators:
            self.visit_comprehension_iter(gen.iter)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if self._is_unordered_expr(node.iter):
            self._flag(
                UNORDERED_ITERATION,
                node.iter,
                "iteration over a set: emission order depends on hashing",
            )
        self.generic_visit(node)

    def visit_comprehension_iter(self, node: ast.AST) -> None:
        if self._is_unordered_expr(node):
            self._flag(
                UNORDERED_ITERATION,
                node,
                "comprehension over a set: result order depends on hashing",
            )

    def _visit_comp(self, node) -> None:
        for gen in node.generators:
            self.visit_comprehension_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_GeneratorExp = _visit_comp

    # -- shared mutable state ---------------------------------------------------------

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self._flag(
            SHARED_STATE,
            node,
            f"nonlocal rebinding of {', '.join(node.names)} carries state "
            "across records outside the state backend",
        )
        self.generic_visit(node)

    def _base_name(self, node: ast.AST) -> Optional[str]:
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        return node.id if isinstance(node, ast.Name) else None

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                base = self._base_name(target)
                if base in self.freevars:
                    self._flag(
                        SHARED_STATE,
                        target,
                        f"mutation of captured variable {base!r}",
                    )
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        base = self._base_name(node.target)
        if base in self.freevars:
            self._flag(SHARED_STATE, node, f"mutation of captured variable {base!r}")
        self.generic_visit(node)

    def _check_mutator_call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute) and node.func.attr in _MUTATORS:
            base = self._base_name(node.func)
            if base in self.freevars:
                self._flag(
                    SHARED_STATE,
                    node,
                    f"mutating call .{node.func.attr}() on captured variable {base!r}",
                )

    def generic_visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.Call):
            self._check_mutator_call(node)
        super().generic_visit(node)


def scan(
    tree: ast.AST,
    freevars: Iterable[str] = (),
    allowed: Iterable[str] = (),
) -> List[RawFinding]:
    """Run every rule over ``tree``; returns findings in source order.

    ``allowed`` names framework-sanctioned calls (from
    :func:`allowlisted_calls`) that are exempt from the call-site rules.
    """
    visitor = RuleVisitor(freevars, allowed=allowed)
    visitor.visit(tree)
    return sorted(visitor.findings, key=lambda f: (f.lineno, f.col))
