"""Window operators: event-time, processing-time, sliding, session.

Event-time windows are deterministic *given watermarks*; processing-time
windows (and ingestion-time, which is processing time at the source) are
nondeterministic because both the window assignment and the trigger instant
come from the wall clock (Section 4.1) — they draw that clock through
``ctx.processing_time()``, i.e. the causal Timestamp service, and use
processing-time timers whose firing offsets Clonos logs.
"""

from __future__ import annotations

from typing import Any, Callable, List, NamedTuple, Optional

from repro.graph.elements import StreamRecord
from repro.operators.base import Context, Operator
from repro.state.backend import MapStateDescriptor


class TimeWindow(NamedTuple):
    start: float
    end: float


class WindowAggregator:
    """Incremental window aggregation (Flink's AggregateFunction)."""

    def create(self) -> Any:
        raise NotImplementedError

    def add(self, accumulator: Any, value: Any) -> Any:
        raise NotImplementedError

    def result(self, accumulator: Any) -> Any:
        raise NotImplementedError


class CountAggregator(WindowAggregator):
    def create(self):
        return 0

    def add(self, accumulator, value):
        return accumulator + 1

    def result(self, accumulator):
        return accumulator


class SumAggregator(WindowAggregator):
    def __init__(self, value_fn: Callable[[Any], float] = lambda v: v):
        self._value_fn = value_fn

    def create(self):
        return 0.0

    def add(self, accumulator, value):
        return accumulator + self._value_fn(value)

    def result(self, accumulator):
        return accumulator


class AvgAggregator(WindowAggregator):
    def __init__(self, value_fn: Callable[[Any], float] = lambda v: v):
        self._value_fn = value_fn

    def create(self):
        return (0.0, 0)

    def add(self, accumulator, value):
        total, count = accumulator
        return (total + self._value_fn(value), count + 1)

    def result(self, accumulator):
        total, count = accumulator
        return total / count if count else 0.0


class MaxAggregator(WindowAggregator):
    """Keeps the value maximising ``score_fn``."""

    def __init__(self, score_fn: Callable[[Any], float] = lambda v: v):
        self._score_fn = score_fn

    def create(self):
        return None

    def add(self, accumulator, value):
        if accumulator is None or self._score_fn(value) > self._score_fn(accumulator):
            return value
        return accumulator

    def result(self, accumulator):
        return accumulator


class ListAggregator(WindowAggregator):
    """Collects all window elements (for apply-style window functions)."""

    def create(self):
        return []

    def add(self, accumulator, value):
        accumulator.append(value)
        return accumulator

    def result(self, accumulator):
        return accumulator


def _window_start(timestamp: float, size: float, slide: Optional[float] = None) -> float:
    step = slide if slide is not None else size
    return (timestamp // step) * step


class EventTimeWindowOperator(Operator):
    """Keyed tumbling/sliding event-time window.

    ``result_fn(key, window, aggregate_result)`` shapes the emitted value;
    defaults to the aggregate result itself.
    """

    def __init__(
        self,
        size: float,
        aggregator: WindowAggregator,
        slide: Optional[float] = None,
        result_fn: Optional[Callable[[Any, TimeWindow, Any], Any]] = None,
        state_name: str = "windows",
    ):
        self.size = size
        self.slide = slide
        self.aggregator = aggregator
        self.result_fn = result_fn
        self._descriptor = MapStateDescriptor(state_name)

    def _assigned_windows(self, timestamp: float) -> List[TimeWindow]:
        if self.slide is None:
            start = _window_start(timestamp, self.size)
            return [TimeWindow(start, start + self.size)]
        windows = []
        first = _window_start(timestamp, self.size, self.slide)
        start = first
        while start + self.size > timestamp >= start - 1e-12:
            windows.append(TimeWindow(start, start + self.size))
            start -= self.slide
            if start < first - self.size:
                break
        return [w for w in windows if w.start <= timestamp < w.end]

    def process(self, record: StreamRecord, ctx: Context) -> None:
        if record.timestamp <= ctx.current_watermark:
            return  # late record: dropped (bounded lateness already applied)
        state = ctx.state(self._descriptor)
        for window in self._assigned_windows(record.timestamp):
            acc = state.get(window.start)
            if acc is None:
                acc = self.aggregator.create()
                ctx.register_event_timer(window.end, "window", payload=window)
            state.put(window.start, self.aggregator.add(acc, record.value))

    def on_timer(self, timer, ctx: Context) -> None:
        if timer.namespace != "window":
            return
        window: TimeWindow = timer.payload
        state = ctx.state(self._descriptor)
        acc = state.get(window.start)
        if acc is None:
            return
        result = self.aggregator.result(acc)
        if self.result_fn is not None:
            result = self.result_fn(ctx.current_key, window, result)
        # Flink's maxTimestamp(): end - epsilon, so cascaded same-size
        # windows downstream fire on the same watermark pass.
        ctx.collect(result, timestamp=window.end - 1e-6)
        state.remove(window.start)


class ProcessingTimeWindowOperator(Operator):
    """Keyed tumbling processing-time window — nondeterministic by nature."""

    deterministic = False

    def __init__(
        self,
        size: float,
        aggregator: WindowAggregator,
        result_fn: Optional[Callable[[Any, TimeWindow, Any], Any]] = None,
        state_name: str = "pt_windows",
    ):
        self.size = size
        self.aggregator = aggregator
        self.result_fn = result_fn
        self._descriptor = MapStateDescriptor(state_name)

    def process(self, record: StreamRecord, ctx: Context) -> None:
        now = ctx.processing_time()  # causal Timestamp service
        start = _window_start(now, self.size)
        window = TimeWindow(start, start + self.size)
        state = ctx.state(self._descriptor)
        acc = state.get(start)
        if acc is None:
            acc = self.aggregator.create()
            ctx.register_processing_timer(window.end, "pt_window", payload=window)
        state.put(start, self.aggregator.add(acc, record.value))

    def on_timer(self, timer, ctx: Context) -> None:
        if timer.namespace != "pt_window":
            return
        window: TimeWindow = timer.payload
        self._fire(window, ctx)

    def _fire(self, window: TimeWindow, ctx: Context) -> None:
        state = ctx.state(self._descriptor)
        acc = state.get(window.start)
        if acc is None:
            return
        result = self.aggregator.result(acc)
        if self.result_fn is not None:
            result = self.result_fn(ctx.current_key, window, result)
        ctx.collect(result, timestamp=window.end)
        state.remove(window.start)

    def close(self, ctx: Context) -> None:
        """End of stream: flush windows whose timers have not fired yet
        (processing-time timers would otherwise die with the job)."""
        for key in list(ctx.backend.keys(self._descriptor.name)):
            ctx.backend.set_current_key(key)
            ctx.current_key = key
            state = ctx.state(self._descriptor)
            for start, _acc in sorted(state.items()):
                self._fire(TimeWindow(start, start + self.size), ctx)


class SessionWindowOperator(Operator):
    """Keyed event-time session windows with a fixed gap (Nexmark Q11)."""

    def __init__(
        self,
        gap: float,
        aggregator: WindowAggregator,
        result_fn: Optional[Callable[[Any, TimeWindow, Any], Any]] = None,
        state_name: str = "sessions",
    ):
        self.gap = gap
        self.aggregator = aggregator
        self.result_fn = result_fn
        #: map window_start -> (end, accumulator); sessions merge on overlap.
        self._descriptor = MapStateDescriptor(state_name)

    def process(self, record: StreamRecord, ctx: Context) -> None:
        if record.timestamp <= ctx.current_watermark:
            return
        state = ctx.state(self._descriptor)
        start, end = record.timestamp, record.timestamp + self.gap
        acc = self.aggregator.add(self.aggregator.create(), record.value)
        # Merge every overlapping session into the new one.
        for other_start, (other_end, other_acc) in state.items():
            if other_start <= end and start <= other_end:
                start = min(start, other_start)
                end = max(end, other_end)
                acc = self._merge(other_acc, acc)
                state.remove(other_start)
        state.put(start, (end, acc))
        ctx.register_event_timer(end, "session", payload=start)

    def _merge(self, left: Any, right: Any) -> Any:
        merged = left
        if isinstance(left, list) and isinstance(right, list):
            return left + right
        if isinstance(left, (int, float)) and isinstance(right, (int, float)):
            return left + right
        # Fallback: re-add right into left is impossible generically; prefer
        # list/count aggregators for sessions.
        return merged

    def on_timer(self, timer, ctx: Context) -> None:
        if timer.namespace != "session":
            return
        state = ctx.state(self._descriptor)
        start = timer.payload
        entry = state.get(start)
        if entry is None:
            return  # session was merged away
        end, acc = entry
        if end > timer.fire_time + 1e-12:
            return  # session was extended; a later timer will fire it
        result = self.aggregator.result(acc)
        window = TimeWindow(start, end)
        if self.result_fn is not None:
            result = self.result_fn(ctx.current_key, window, result)
        ctx.collect(result, timestamp=end - 1e-6)
        state.remove(start)
