"""Source operators: replayable readers over the durable log.

A source's nondeterminism (Section 4.1): ingestion timestamps, watermark
emission points, and barrier-injection offsets all depend on wall-clock
time.  The *offsets* consumed are deterministic state (checkpointed), which
is what makes lineage-based replay bottom out at the sources.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import ExternalSystemError, StateError
from repro.external.kafka import DurableLog
from repro.graph.elements import StreamRecord
from repro.operators.base import Context, Operator
from repro.timing.watermarks import SourceWatermarkGenerator


class SourceOperator(Operator):
    """Base for sources; the runtime drives :meth:`poll` in its source loop."""

    def poll(self, ctx: Context, max_records: int):
        """Return ``(records, next_arrival_time_or_None)``.

        ``records`` may be empty; ``next_arrival_time`` tells the runtime
        when new input becomes available (None = exhausted forever).
        """
        raise NotImplementedError

    def watermark_generator(self) -> Optional[SourceWatermarkGenerator]:
        return None


class KafkaSource(SourceOperator):
    """Reads one topic partition per subtask (partition = subtask index).

    ``timestamp_fn(value, arrival_time) -> event time`` defaults to the
    arrival time (which doubles as ``created_at`` for latency metrics).
    ``ingestion_time=True`` stamps records with the *processing* clock via
    the causal Timestamp service instead — the nondeterministic
    ingestion-time mode of Section 4.1.
    """

    def __init__(
        self,
        log: DurableLog,
        topic: str,
        timestamp_fn: Optional[Callable[[Any, float], float]] = None,
        key_fn: Optional[Callable[[Any], Any]] = None,
        ingestion_time: bool = False,
        lateness: float = 0.5,
        watermark_interval: float = 0.2,
    ):
        self.log = log
        self.topic = topic
        self.timestamp_fn = timestamp_fn
        self.key_fn = key_fn
        self.ingestion_time = ingestion_time
        self.offset = 0
        self._partition = None
        self._wm_gen = SourceWatermarkGenerator(lateness, watermark_interval)
        #: Polls refused by a broker fault window (observability for tests).
        self.stalled_polls = 0

    deterministic = False  # ingestion times / watermark points are wall-clock

    def open(self, ctx: Context) -> None:
        self._partition = self.log.partition(self.topic, ctx.subtask_index)

    def poll(self, ctx: Context, max_records: int):
        if self._partition is None:
            raise StateError("source polled before open()")
        # Availability gating is physical (what has arrived at the broker),
        # not computational: it must NOT go through the causal timestamp
        # service, or replay would consume determinants per poll.
        now = ctx.now
        try:
            self.log.check_available(now, f"fetch {self.topic}")
        except ExternalSystemError:
            # Broker outage/brownout: stall without advancing the offset —
            # consumption resumes where it left off, so nothing is lost or
            # duplicated, exactly like a real consumer's fetch retry loop.
            self.stalled_polls += 1
            return [], self.log.retry_at(now)
        entries = self._partition.read(self.offset, max_records, now=now)
        records = []
        if entries:
            ingestion_time = self.ingestion_time
            timestamp_fn = self.timestamp_fn
            key_fn = self.key_fn
            observe = self._wm_gen.observe
            append = records.append
            for offset, arrival, value in entries:
                if ingestion_time:
                    # Ingestion time IS computational: per-record causal read.
                    event_time = ctx.services.timestamp()
                elif timestamp_fn is not None:
                    event_time = timestamp_fn(value, arrival)
                else:
                    event_time = arrival
                key = key_fn(value) if key_fn is not None else None
                observe(event_time)
                append(
                    StreamRecord(
                        value, timestamp=event_time, key=key, created_at=arrival
                    )
                )
            self.offset = offset + 1
        next_arrival = self._partition.next_arrival_after(self.offset)
        return records, next_arrival

    def watermark_generator(self) -> SourceWatermarkGenerator:
        return self._wm_gen

    def snapshot(self) -> dict:
        return {"offset": self.offset, "wm": self._wm_gen.snapshot()}

    def restore(self, state: dict) -> None:
        self.offset = state["offset"]
        self._wm_gen.restore(state["wm"])


class IteratorSource(SourceOperator):
    """A finite in-memory source for unit tests: ``items`` with optional
    per-item event timestamps, all available immediately."""

    def __init__(self, items, key_fn: Optional[Callable[[Any], Any]] = None):
        self.items = list(items)
        self.key_fn = key_fn
        self.offset = 0

    def poll(self, ctx: Context, max_records: int):
        records = []
        while self.offset < len(self.items) and len(records) < max_records:
            item = self.items[self.offset]
            if isinstance(item, tuple) and len(item) == 2 and isinstance(item[1], float):
                value, event_time = item
            else:
                value, event_time = item, float(self.offset)
            key = self.key_fn(value) if self.key_fn is not None else None
            records.append(
                StreamRecord(value, timestamp=event_time, key=key, created_at=0.0)
            )
            self.offset += 1
        return records, None

    def snapshot(self) -> dict:
        return {"offset": self.offset}

    def restore(self, state: dict) -> None:
        self.offset = state["offset"]
