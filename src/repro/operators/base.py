"""Operator model: the user/system logic hosted inside a task.

Operators receive records via :meth:`Operator.process` and emit through the
:class:`Context`.  All interaction with *nondeterministic* facilities —
wall-clock time, random numbers, external services, custom logic — goes
through ``ctx.services`` (the causal services of Section 4.2); under Clonos
these log determinants and replay them during recovery, under the baselines
they are passthroughs that genuinely observe the (changed) world.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.errors import StateError
from repro.graph.elements import StreamRecord
from repro.state.backend import HashMapStateBackend, StateDescriptor
from repro.timing.timers import Timer, TimerService


class Services:
    """Interface of the (causal) service provider available to operators.

    Concrete implementations: :class:`repro.core.services.NaiveServices`
    (baselines: real nondeterminism, nothing logged) and
    :class:`repro.core.services.CausalServices` (Clonos: log + replay).
    """

    def timestamp(self) -> float:
        """Current wall-clock (processing) time."""
        raise NotImplementedError

    def random(self) -> float:
        """Uniform [0,1) random number."""
        raise NotImplementedError

    def http_get(self, key: str):
        """Generator: query the external service; returns the response."""
        raise NotImplementedError

    def custom(self, name: str, fn: Callable[[Any], Any], argument: Any) -> Any:
        """Run arbitrary user nondeterministic logic (Listing 2)."""
        raise NotImplementedError


class Context:
    """Per-task context handed to operators.

    The runtime sets ``current_key``/``element_timestamp`` before each
    ``process`` call and drains ``pending_output`` afterwards (emission can
    block on backpressure, so it happens in the task coroutine, not here).
    """

    def __init__(
        self,
        task_name: str,
        subtask_index: int,
        num_subtasks: int,
        backend: HashMapStateBackend,
        timer_service: TimerService,
        services: Services,
        env=None,
    ):
        self._env = env
        self.task_name = task_name
        self.subtask_index = subtask_index
        self.num_subtasks = num_subtasks
        self.backend = backend
        self.timers = timer_service
        self.services = services
        self.current_key: Any = None
        self.element_timestamp: float = 0.0
        self.element_created_at: Optional[float] = None
        self.current_watermark: float = float("-inf")
        self.input_index: int = 0
        self.pending_output: List[StreamRecord] = []

    # -- emission ---------------------------------------------------------------

    def collect(
        self, value: Any, timestamp: Optional[float] = None, key: Any = None
    ) -> None:
        """Emit a value downstream (keyed routing is applied per edge)."""
        self.pending_output.append(
            StreamRecord(
                value,
                timestamp=self.element_timestamp if timestamp is None else timestamp,
                key=key,
                created_at=self.element_created_at,
            )
        )

    def collect_record(self, record: StreamRecord) -> None:
        self.pending_output.append(record)

    # -- state --------------------------------------------------------------------

    def state(self, descriptor: StateDescriptor):
        return self.backend.get_state(descriptor)

    # -- timers -------------------------------------------------------------------

    def register_processing_timer(
        self, fire_time: float, namespace: str, payload: Any = None
    ) -> Timer:
        return self.timers.register_processing_timer(
            fire_time, self.current_key, namespace, payload
        )

    def register_event_timer(
        self, fire_time: float, namespace: str, payload: Any = None
    ) -> Timer:
        return self.timers.register_event_timer(
            fire_time, self.current_key, namespace, payload
        )

    def processing_time(self) -> float:
        """Wall-clock time via the (causal) timestamp service."""
        return self.services.timestamp()

    @property
    def now(self) -> float:
        """Raw simulation clock — for *external side effects* (sink append
        times, metrics) only; computation logic must use
        :meth:`processing_time` so Clonos can log and replay it."""
        if self._env is None:
            raise StateError("context has no environment attached")
        return self._env.now


class Operator:
    """Base operator. Subclasses override what they need."""

    #: Set by deterministic built-ins; nondeterministic operators (anything
    #: touching services other than through Clonos) must leave this False.
    deterministic = True

    def open(self, ctx: Context) -> None:
        """Called once before any record (also after recovery restore)."""

    def process(self, record: StreamRecord, ctx: Context) -> None:
        raise NotImplementedError

    def on_watermark(self, watermark_ts: float, ctx: Context) -> None:
        """Called when the task's combined watermark advances (event timers
        have already been delivered via :meth:`on_timer`)."""

    def on_timer(self, timer: Timer, ctx: Context) -> None:
        """A registered timer fired (ctx.current_key is the timer's key)."""

    def on_barrier(self, checkpoint_id: int, ctx: Context) -> None:
        """A checkpoint barrier passed this operator (epoch boundary)."""

    def on_checkpoint_complete(self, checkpoint_id: int, ctx: Context) -> None:
        """The job manager confirmed global completion of a checkpoint
        (delivered via RPC; used by transactional sinks)."""

    def snapshot(self) -> Any:
        """Operator (non-keyed) state for checkpoints."""
        return None

    def restore(self, state: Any) -> None:
        if state is not None:
            raise StateError(f"{type(self).__name__} cannot restore state {state!r}")

    def close(self, ctx: Context) -> None:
        """End of stream (finite inputs only)."""
