"""Operator library: sources, transforms, windows, joins, sinks."""

from repro.operators.base import Context, Operator, Services
from repro.operators.basic import (
    FilterOperator,
    FlatMapOperator,
    KeyedCounterOperator,
    KeyedReduceOperator,
    MapOperator,
    ProcessOperator,
    StatefulMapOperator,
)
from repro.operators.join import FullHistoryJoinOperator, WindowJoinOperator
from repro.operators.multi import (
    BroadcastApplyOperator,
    CoFlatMapOperator,
    CoMapOperator,
    UnionOperator,
)
from repro.operators.sink import (
    CollectSink,
    KafkaSink,
    SinkEntry,
    TransactionalKafkaSink,
)
from repro.operators.source import IteratorSource, KafkaSource, SourceOperator
from repro.operators.window import (
    AvgAggregator,
    CountAggregator,
    EventTimeWindowOperator,
    ListAggregator,
    MaxAggregator,
    ProcessingTimeWindowOperator,
    SessionWindowOperator,
    SumAggregator,
    TimeWindow,
    WindowAggregator,
)

__all__ = [
    "AvgAggregator",
    "BroadcastApplyOperator",
    "CoFlatMapOperator",
    "CoMapOperator",
    "CollectSink",
    "Context",
    "CountAggregator",
    "EventTimeWindowOperator",
    "FilterOperator",
    "FlatMapOperator",
    "FullHistoryJoinOperator",
    "IteratorSource",
    "KafkaSink",
    "KafkaSource",
    "KeyedCounterOperator",
    "KeyedReduceOperator",
    "ListAggregator",
    "MapOperator",
    "MaxAggregator",
    "Operator",
    "ProcessOperator",
    "ProcessingTimeWindowOperator",
    "Services",
    "SessionWindowOperator",
    "SinkEntry",
    "SourceOperator",
    "StatefulMapOperator",
    "SumAggregator",
    "TimeWindow",
    "TransactionalKafkaSink",
    "UnionOperator",
    "WindowAggregator",
    "WindowJoinOperator",
]
