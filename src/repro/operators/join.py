"""Two-input join operators.

Joins are *order-sensitive* multi-input operators: the interleaving of the
two input streams decides both state evolution and output order, which is a
core source of nondeterminism (Section 4.1, keyed streams & record arrival
order).  Clonos' Order determinants pin the interleaving on replay.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.graph.elements import StreamRecord
from repro.operators.base import Context, Operator
from repro.operators.window import TimeWindow, _window_start
from repro.state.backend import ListStateDescriptor, MapStateDescriptor


class FullHistoryJoinOperator(Operator):
    """Unbounded two-input equi-join on the record key (Nexmark Q3 style).

    Every left record is matched against all right records seen so far for
    its key, and vice versa; both sides are retained forever.
    """

    def __init__(
        self,
        join_fn: Callable[[Any, Any], Any],
        retain_left: bool = True,
        retain_right: bool = True,
    ):
        self._join_fn = join_fn
        self._retain = (retain_left, retain_right)
        self._left = ListStateDescriptor("join_left")
        self._right = ListStateDescriptor("join_right")

    def process(self, record: StreamRecord, ctx: Context) -> None:
        mine, other = (
            (self._left, self._right) if ctx.input_index == 0 else (self._right, self._left)
        )
        if self._retain[ctx.input_index]:
            ctx.state(mine).add(record.value)
        for match in ctx.state(other).get():
            if ctx.input_index == 0:
                ctx.collect(self._join_fn(record.value, match))
            else:
                ctx.collect(self._join_fn(match, record.value))


class WindowJoinOperator(Operator):
    """Tumbling event-time window equi-join (Nexmark Q8 style).

    Both inputs are bucketed into the same tumbling windows per key; when the
    watermark passes a window's end, matching pairs are emitted.
    """

    def __init__(
        self,
        size: float,
        join_fn: Callable[[Any, Any], Any],
        emit_once_per_key: bool = False,
    ):
        self.size = size
        self._join_fn = join_fn
        self._emit_once_per_key = emit_once_per_key
        self._buckets = MapStateDescriptor("wjoin")

    def process(self, record: StreamRecord, ctx: Context) -> None:
        if record.timestamp <= ctx.current_watermark:
            return
        start = _window_start(record.timestamp, self.size)
        state = ctx.state(self._buckets)
        bucket = state.get(start)
        if bucket is None:
            bucket = ([], [])
            ctx.register_event_timer(
                start + self.size, "wjoin", payload=TimeWindow(start, start + self.size)
            )
        bucket[ctx.input_index].append(record.value)
        state.put(start, bucket)

    def on_timer(self, timer, ctx: Context) -> None:
        if timer.namespace != "wjoin":
            return
        window: TimeWindow = timer.payload
        state = ctx.state(self._buckets)
        bucket = state.get(window.start)
        if bucket is None:
            return
        left, right = bucket
        emit_ts = window.end - 1e-6  # maxTimestamp(): same watermark pass
        if self._emit_once_per_key:
            if left and right:
                ctx.collect(self._join_fn(left[0], right[0]), timestamp=emit_ts)
        else:
            for lv in left:
                for rv in right:
                    ctx.collect(self._join_fn(lv, rv), timestamp=emit_ts)
        state.remove(window.start)
