"""Two-input combinators: union and co-processing.

These are thin but load-bearing: multi-input operators are where record
*arrival order* nondeterminism lives (Section 4.1, keyed streams), so they
are the natural subjects for the Order-determinant machinery.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.graph.elements import StreamRecord
from repro.operators.base import Context, Operator


class UnionOperator(Operator):
    """Merges both inputs into one stream, order of interleaving untouched."""

    def process(self, record: StreamRecord, ctx: Context) -> None:
        ctx.collect(record.value)


class CoMapOperator(Operator):
    """Applies ``left_fn`` to input 0 and ``right_fn`` to input 1."""

    def __init__(self, left_fn: Callable[[Any], Any], right_fn: Callable[[Any], Any]):
        self._fns = (left_fn, right_fn)

    def process(self, record: StreamRecord, ctx: Context) -> None:
        ctx.collect(self._fns[ctx.input_index](record.value))


class CoFlatMapOperator(Operator):
    """Flat-map variant of :class:`CoMapOperator`."""

    def __init__(
        self,
        left_fn: Callable[[Any], Iterable[Any]],
        right_fn: Callable[[Any], Iterable[Any]],
    ):
        self._fns = (left_fn, right_fn)

    def process(self, record: StreamRecord, ctx: Context) -> None:
        for value in self._fns[ctx.input_index](record.value):
            ctx.collect(value)


class BroadcastApplyOperator(Operator):
    """Input 1 carries (broadcast) control values that update shared per-key
    state; input 0 records are transformed against the latest control value.

    A common enrich-with-rules pattern; order-sensitive, hence a good
    nondeterminism stress (rule updates race with data).
    """

    def __init__(self, apply_fn: Callable[[Any, Any], Any], initial: Any = None):
        self._apply_fn = apply_fn
        self._rule = initial

    def process(self, record: StreamRecord, ctx: Context) -> None:
        if ctx.input_index == 1:
            self._rule = record.value
            return
        ctx.collect(self._apply_fn(record.value, self._rule))

    def snapshot(self):
        return self._rule

    def restore(self, state):
        self._rule = state
