"""Stateless and simply-stateful building-block operators."""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.graph.elements import StreamRecord
from repro.operators.base import Context, Operator
from repro.state.backend import ReducingStateDescriptor, ValueStateDescriptor


class MapOperator(Operator):
    """Applies ``fn`` to each value, emitting one output per input."""

    def __init__(self, fn: Callable[[Any], Any]):
        self._fn = fn

    def process(self, record: StreamRecord, ctx: Context) -> None:
        ctx.collect(self._fn(record.value))


class FilterOperator(Operator):
    """Keeps values for which ``predicate`` is true."""

    def __init__(self, predicate: Callable[[Any], bool]):
        self._predicate = predicate

    def process(self, record: StreamRecord, ctx: Context) -> None:
        if self._predicate(record.value):
            ctx.collect(record.value)


class FlatMapOperator(Operator):
    """Applies ``fn`` returning an iterable; emits each element."""

    def __init__(self, fn: Callable[[Any], Iterable[Any]]):
        self._fn = fn

    def process(self, record: StreamRecord, ctx: Context) -> None:
        for value in self._fn(record.value):
            ctx.collect(value)


class KeyedReduceOperator(Operator):
    """Running reduce per key: emits the updated accumulator per record."""

    def __init__(self, reduce_fn: Callable[[Any, Any], Any], state_name: str = "acc"):
        self._descriptor = ReducingStateDescriptor(state_name, reduce_fn)

    def process(self, record: StreamRecord, ctx: Context) -> None:
        state = ctx.state(self._descriptor)
        state.add(record.value)
        ctx.collect(state.get())


class KeyedCounterOperator(Operator):
    """Counts records per key; emits ``(key, count)``."""

    def __init__(self, state_name: str = "count"):
        self._descriptor = ValueStateDescriptor(state_name, 0)

    def process(self, record: StreamRecord, ctx: Context) -> None:
        state = ctx.state(self._descriptor)
        count = state.value() + 1
        state.update(count)
        ctx.collect((ctx.current_key, count))


class StatefulMapOperator(Operator):
    """Map with per-key value state: ``fn(old_state, value) -> (new_state, out)``."""

    def __init__(self, fn: Callable[[Any, Any], tuple], state_name: str = "s", default: Any = None):
        self._fn = fn
        self._descriptor = ValueStateDescriptor(state_name, default)

    def process(self, record: StreamRecord, ctx: Context) -> None:
        state = ctx.state(self._descriptor)
        new_state, out = self._fn(state.value(), record.value)
        state.update(new_state)
        if out is not None:
            ctx.collect(out)


class ProcessOperator(Operator):
    """Escape hatch: wraps a user function ``fn(record, ctx)``."""

    deterministic = False  # the user function may do anything

    def __init__(
        self,
        fn: Callable[[StreamRecord, Context], None],
        timer_fn: Optional[Callable[[Any, Context], None]] = None,
        open_fn: Optional[Callable[[Context], None]] = None,
    ):
        self._fn = fn
        self._timer_fn = timer_fn
        self._open_fn = open_fn

    def open(self, ctx: Context) -> None:
        if self._open_fn is not None:
            self._open_fn(ctx)

    def process(self, record: StreamRecord, ctx: Context) -> None:
        self._fn(record, ctx)

    def on_timer(self, timer, ctx: Context) -> None:
        if self._timer_fn is not None:
            self._timer_fn(timer, ctx)
