"""The in-flight record log (Sections 2.1, 6.1).

Epoch-segmented, per-output-channel log of dispatched buffers, with the
no-copy ownership exchange: when the network layer dispatches a buffer the
log takes it over (acquiring from the *log's* pool) and the output pool gets
its permit back immediately, so senders never stall on downstream delivery.

Four spill policies (Section 6.1):

* ``IN_MEMORY`` — hold everything; processing blocks when the pool empties.
* ``SPILL_EPOCH`` — spill a whole epoch as soon as the next one starts.
* ``SPILL_BUFFER`` — spill every buffer synchronously as it is appended
  (conservative memory, extra synchronous work, no I/O batching).
* ``SPILL_THRESHOLD`` — an asynchronous spiller drains oldest-first whenever
  the pool's available fraction drops below a threshold (the well-rounded
  default).
"""

from __future__ import annotations

import zlib
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.config import CostModel, SpillPolicy
from repro.errors import IntegrityError, RecoveryError
from repro.integrity.fingerprint import combine, fingerprint
from repro.integrity.monitor import IntegrityMonitor
from repro.net.buffer import BufferPool, NetworkBuffer
from repro.net.link import NetworkLink
from repro.net.writer import InFlightLogSink
from repro.sim.core import Environment
from repro.sim.queues import Signal


def buffer_fingerprint(buffer: NetworkBuffer) -> int:
    """Content fingerprint of a logged buffer: header plus the ordered
    element sequence, so a dropped, duplicated, reordered, or value-mutated
    element changes the digest.  Elements are digested through their reprs
    (C-speed) because this runs on every logged buffer."""
    crc = fingerprint((buffer.channel_id, buffer.seq, buffer.epoch))
    for element in buffer.elements:
        crc = combine(crc, zlib.crc32(repr(element).encode()) & 0xFFFFFFFF)
    return crc


class LogEntry:
    __slots__ = ("buffer", "sent", "spilled", "crc")

    def __init__(self, buffer: NetworkBuffer, sent: bool):
        self.buffer = buffer
        self.sent = sent
        self.spilled = False
        #: Fingerprint sealed when the log took ownership of the buffer;
        #: verified on replay read-back (and by ``repro audit``).
        self.crc = buffer_fingerprint(buffer)

    def verify(self, owner: str = "") -> None:
        actual = buffer_fingerprint(self.buffer)
        if actual != self.crc:
            raise IntegrityError(
                "inflight-segment",
                f"{owner}:ch{self.buffer.channel_id}:seq{self.buffer.seq}",
                expected=self.crc,
                actual=actual,
                detail="spilled segment" if self.spilled else "logged buffer",
            )

    @property
    def intact(self) -> bool:
        return buffer_fingerprint(self.buffer) == self.crc


class InFlightLog(InFlightLogSink):
    """One task's in-flight record log across all its output channels."""

    def __init__(
        self,
        env: Environment,
        cost: CostModel,
        pool_bytes: int,
        policy: SpillPolicy = SpillPolicy.SPILL_THRESHOLD,
        spill_threshold_fraction: float = 0.25,
        name: str = "",
        monitor: Optional[IntegrityMonitor] = None,
    ):
        self.env = env
        self.cost = cost
        self.policy = policy
        self.threshold = spill_threshold_fraction
        self.name = name
        self.monitor = monitor
        self.pool = BufferPool(
            env, pool_bytes, cost.buffer_size_bytes, name=f"inflight:{name}"
        )
        self._entries: Dict[int, Deque[LogEntry]] = {}
        #: Spill-candidate queue in append order (== epoch-sorted order:
        #: a log lives for one task incarnation, whose epoch only grows).
        #: Entries already spilled or truncated are dropped lazily on pop,
        #: which keeps candidate selection O(batch) instead of re-scanning
        #: every logged entry per spiller wake-up.
        self._spill_queue: Deque[LogEntry] = deque()
        self._spill_signal = Signal(env)
        self._spiller_proc = None
        if policy in (SpillPolicy.SPILL_THRESHOLD, SpillPolicy.SPILL_EPOCH):
            self._spiller_proc = env.process(self._spiller(), name=f"spiller:{name}")
        self.buffers_logged = 0
        self.buffers_spilled = 0
        self.buffers_replayed = 0
        #: Synchronous time spent on spill-buffer writes (overhead metric).
        self.sync_spill_time = 0.0
        self._current_max_epoch = 0
        self._truncated_before = 0

    # -- InFlightLogSink interface ------------------------------------------------

    def append(self, channel_index: int, buffer: NetworkBuffer, sent: bool):
        """Generator: take ownership of ``buffer`` into the log."""
        entry = LogEntry(buffer, sent)
        if self.policy is SpillPolicy.SPILL_BUFFER:
            # Synchronous spill: the buffer never occupies log memory.
            yield self.env.timeout(self.cost.disk_write_time(buffer.size_bytes))
            self.sync_spill_time += self.cost.disk_write_time(buffer.size_bytes)
            entry.spilled = True
            self.buffers_spilled += 1
            if buffer.pool is not None:
                buffer.pool.release_bytes(buffer.pool.buffer_bytes)
                buffer.pool = None
        else:
            # The §6.1 exchange: acquire a log permit (may block = back-
            # pressure), then hand the output pool its permit back.
            yield self.pool.acquire()
            buffer.transfer_to(self.pool)
            if self.policy is SpillPolicy.SPILL_THRESHOLD:
                if self.pool.available_fraction < self.threshold:
                    self._spill_signal.pulse()
        self._entries.setdefault(buffer.epoch, deque()).append(entry)
        if self._spiller_proc is not None:
            self._spill_queue.append(entry)
        if buffer.epoch > self._current_max_epoch:
            self._current_max_epoch = buffer.epoch
            if self.policy is SpillPolicy.SPILL_EPOCH:
                self._spill_signal.pulse()
        self.buffers_logged += 1

    def mark_sent(self, channel_index: int, seq: int) -> None:
        for entries in self._entries.values():
            for entry in entries:
                if entry.buffer.channel_id == channel_index and entry.buffer.seq == seq:
                    entry.sent = True
                    return

    # -- spilling ---------------------------------------------------------------------

    def _spill_candidates(self) -> List[LogEntry]:
        # Only the (single) spiller process calls this, and it spills every
        # returned entry before asking again, so popping candidates off the
        # queue is safe: a popped entry is never a candidate twice.
        queue = self._spill_queue
        candidates: List[LogEntry] = []
        if self.policy is SpillPolicy.SPILL_EPOCH:
            # Spill every entry of epochs older than the current one.
            current = self._current_max_epoch
            while queue and queue[0].buffer.epoch < current:
                entry = queue.popleft()
                if not entry.spilled:
                    candidates.append(entry)
            return candidates
        # SPILL_THRESHOLD: oldest-first until back above the threshold.
        deficit = int(
            (self.threshold - self.pool.available_fraction) * self.pool.total_buffers
        ) + 1
        while queue and len(candidates) < deficit:
            entry = queue.popleft()
            if not entry.spilled:
                candidates.append(entry)
        return candidates

    def _spiller(self):
        while True:
            yield self._spill_signal.wait()
            batch = self._spill_candidates()
            for entry in batch:
                if entry.spilled:
                    continue
                yield self.env.timeout(
                    self.cost.disk_write_time(entry.buffer.size_bytes)
                )
                if entry.spilled:
                    continue  # raced with truncation
                entry.spilled = True
                self.buffers_spilled += 1
                if entry.buffer.pool is not None:
                    entry.buffer.pool.release_bytes(entry.buffer.pool.buffer_bytes)
                    entry.buffer.pool = None

    # -- truncation (checkpoint complete) ------------------------------------------------

    def truncate_before(self, epoch: int) -> int:
        dropped = 0
        for old_epoch in [e for e in self._entries if e < epoch]:
            for entry in self._entries[old_epoch]:
                if not entry.spilled and entry.buffer.pool is not None:
                    entry.buffer.pool.release_bytes(entry.buffer.pool.buffer_bytes)
                    entry.buffer.pool = None
                entry.spilled = True  # prevents the spiller double-releasing
                dropped += 1
            del self._entries[old_epoch]
        self._truncated_before = max(self._truncated_before, epoch)
        return dropped

    # -- replay (Section 5.1) --------------------------------------------------------------

    def entries_for_channel(self, channel_index: int, from_epoch: int) -> List[LogEntry]:
        out = []
        for epoch in sorted(self._entries):
            if epoch < from_epoch:
                continue
            out.extend(
                e for e in self._entries[epoch] if e.buffer.channel_id == channel_index
            )
        return out

    def has_epoch(self, epoch: int) -> bool:
        """Whether the log still covers ``epoch`` (it does unless truncated
        past it — or this task itself recently recovered, Section 5.1)."""
        return epoch >= self._truncated_before

    def replay(
        self,
        channel_index: int,
        from_epoch: int,
        link: NetworkLink,
        skip_up_to_seq: int = -1,
        delta_provider: Optional[Callable[[int], tuple]] = None,
    ):
        """Generator: re-send this channel's logged buffers, oldest first,
        skipping those the receiver already holds (``skip_up_to_seq``).

        ``delta_provider`` (the causal log's ``delta_for_dispatch``) refreshes
        each buffer's piggybacked determinants: the frozen delta from the
        original dispatch would have gaps relative to the reconnected
        receiver's (possibly empty) causal store.

        Entries appended *during* the replay (the unsent parking of §6.1)
        are picked up because we re-scan until no unsent work remains.
        """
        handled: set = set()
        while True:
            pending = [
                entry
                for entry in self.entries_for_channel(channel_index, from_epoch)
                if entry.buffer.seq not in handled
            ]
            if not pending:
                return
            for entry in pending:
                handled.add(entry.buffer.seq)
                if entry.buffer.seq <= skip_up_to_seq:
                    entry.sent = True
                    continue
                if entry.spilled:
                    # Prefetching read back from disk.
                    yield self.env.timeout(
                        self.cost.disk_write_time(entry.buffer.size_bytes)
                    )
                if self.monitor is not None and self.monitor.validate:
                    # Checksum what we are about to re-send: a corrupted
                    # segment replayed downstream becomes silent wrong
                    # output, the one outcome integrity must rule out.
                    try:
                        entry.verify(self.name)
                    except IntegrityError as exc:
                        self.monitor.record_failure(
                            exc.artifact, exc.name, str(exc)
                        )
                        raise
                    self.monitor.record_ok("inflight-segment")
                if delta_provider is not None:
                    delta, delta_bytes = delta_provider(channel_index)
                    entry.buffer.delta = delta
                    entry.buffer.delta_bytes = delta_bytes
                yield link.send(entry.buffer)
                entry.sent = True
                self.buffers_replayed += 1

    # -- metrics -------------------------------------------------------------------------------

    def memory_buffers_in_use(self) -> int:
        return self.pool.in_use_buffers

    def total_logged_bytes(self) -> int:
        return sum(
            entry.buffer.size_bytes
            for entries in self._entries.values()
            for entry in entries
        )
