"""Clonos core: causal logging, in-flight logs, causal services, recovery."""

from repro.core.causal_log import (
    CausalLogManager,
    EpochLog,
    LogBundle,
    merge_bundles,
)
from repro.core.determinants import (
    BarrierInjectDeterminant,
    BufferSizeDeterminant,
    CustomDeterminant,
    Determinant,
    ExternalCallDeterminant,
    OrderDeterminant,
    RngSeedDeterminant,
    TimerFiredDeterminant,
    TimestampDeterminant,
    WatermarkEmitDeterminant,
)
from repro.core.dsd import (
    RecoveryCase,
    classify_failed_task,
    longest_failed_chain,
    requires_global_rollback,
)
from repro.core.inflight_log import InFlightLog
from repro.core.recovery import RecoveryManager
from repro.core.services import CausalServices, NaiveServices
from repro.core.standby import StandbyState

__all__ = [
    "BarrierInjectDeterminant",
    "BufferSizeDeterminant",
    "CausalLogManager",
    "CausalServices",
    "CustomDeterminant",
    "Determinant",
    "EpochLog",
    "ExternalCallDeterminant",
    "InFlightLog",
    "LogBundle",
    "NaiveServices",
    "OrderDeterminant",
    "RecoveryCase",
    "RecoveryManager",
    "RngSeedDeterminant",
    "StandbyState",
    "TimerFiredDeterminant",
    "TimestampDeterminant",
    "WatermarkEmitDeterminant",
    "classify_failed_task",
    "longest_failed_chain",
    "merge_bundles",
    "requires_global_rollback",
]
