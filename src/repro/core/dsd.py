"""Determinant sharing depth: the Figure 4 / Section 5.3 case analysis.

Determinants of task *t* are replicated to tasks up to ``dsd`` hops
downstream of *t* (``None`` = the full graph depth).  Given a set of failed
tasks, recovery classifies each failed task:

* ``WITH_DETERMINANTS`` — some surviving task within ``dsd`` hops downstream
  holds *t*'s log: causally consistent replay (Log(e) ⊄ F).
* ``FREE`` — every holder failed, but so did every task that could depend on
  *t*'s events (Depend(e) ⊆ F): a fresh execution path is consistent.
* ``ORPHANED`` — every holder failed while some surviving task depends on
  *t*: local recovery is impossible; fall back to a global rollback
  (the bottom-left leaf of Figure 4).

This module is pure graph logic so the property-based tests can exercise
the always-no-orphans condition exhaustively.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple


class RecoveryCase(enum.Enum):
    WITH_DETERMINANTS = "with-determinants"
    FREE = "free"
    ORPHANED = "orphaned"


def downstream_within(
    adjacency: Dict[str, List[str]], start: str, max_hops: Optional[int]
) -> Set[str]:
    """Tasks reachable from ``start`` in 1..max_hops hops (all if None)."""
    reached: Set[str] = set()
    frontier = [start]
    hops = 0
    while frontier and (max_hops is None or hops < max_hops):
        hops += 1
        next_frontier: List[str] = []
        for task in frontier:
            for succ in adjacency.get(task, ()):
                if succ not in reached:
                    reached.add(succ)
                    next_frontier.append(succ)
        frontier = next_frontier
    return reached


def transitive_downstream(adjacency: Dict[str, List[str]], start: str) -> Set[str]:
    return downstream_within(adjacency, start, None)


def classify_failed_task(
    adjacency: Dict[str, List[str]],
    failed: Iterable[str],
    task: str,
    dsd: Optional[int],
) -> RecoveryCase:
    """Which Figure-4 leaf applies to ``task`` given the failure set."""
    failed_set = set(failed)
    if task not in failed_set:
        raise ValueError(f"{task!r} is not in the failure set")
    if dsd == 0:
        holders: Set[str] = set()
    else:
        holders = downstream_within(adjacency, task, dsd)
    surviving_holders = holders - failed_set
    if surviving_holders:
        return RecoveryCase.WITH_DETERMINANTS
    dependents = transitive_downstream(adjacency, task)
    if dependents <= failed_set:
        return RecoveryCase.FREE
    return RecoveryCase.ORPHANED


def requires_global_rollback(
    adjacency: Dict[str, List[str]],
    failed: Iterable[str],
    dsd: Optional[int],
) -> bool:
    """True when any failed task is orphaned (Equation 3's escape hatch)."""
    failed_list = list(failed)
    return any(
        classify_failed_task(adjacency, failed_list, task, dsd)
        is RecoveryCase.ORPHANED
        for task in failed_list
    )


def max_consecutive_failures_tolerated(
    adjacency: Dict[str, List[str]], dsd: Optional[int], depth: int
) -> Optional[int]:
    """The f of Section 5.4: DSD bounds the longest chain of *consecutive*
    (connected) concurrent failures recoverable without global rollback."""
    if dsd is None:
        return depth
    return dsd


def longest_failed_chain(
    adjacency: Dict[str, List[str]], failed: Iterable[str]
) -> int:
    """Length of the longest directed path consisting solely of failed
    tasks (the 'consecutive failures' the paper's f refers to)."""
    failed_set = set(failed)
    memo: Dict[str, int] = {}

    def chain_from(task: str, visiting: FrozenSet[str]) -> int:
        if task in memo:
            return memo[task]
        best = 1
        for succ in adjacency.get(task, ()):
            if succ in failed_set and succ not in visiting:
                best = max(best, 1 + chain_from(succ, visiting | {task}))
        memo[task] = best
        return best

    return max((chain_from(t, frozenset()) for t in failed_set), default=0)


def holders_of(
    adjacency: Dict[str, List[str]], task: str, dsd: Optional[int]
) -> Set[str]:
    """Which tasks hold ``task``'s determinant bundle (Log(e))."""
    if dsd == 0:
        return set()
    return downstream_within(adjacency, task, dsd)
