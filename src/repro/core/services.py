"""Causal services (Section 4.2): the programming abstraction that hides
causal logging and replay from UDF authors and system programmers.

Two implementations of :class:`repro.operators.base.Services`:

* :class:`NaiveServices` — what the baselines use.  Every call observes the
  real (simulated) world: the wall clock, a time-seeded RNG, the drifting
  external service.  Re-executing after a failure therefore yields
  *different* answers — the divergence Clonos exists to mask.
* :class:`CausalServices` — Clonos.  Under normal operation each call
  produces its nondeterministic result *and appends a determinant* to the
  causal log; during recovery the same call returns the logged result
  instead (Listing 3's two-branch ``apply``).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional

from repro.core.causal_log import CausalLogManager
from repro.core.determinants import (
    CustomDeterminant,
    ExternalCallDeterminant,
    RngSeedDeterminant,
    TimestampDeterminant,
)
from repro.core.recovery import RecoveryManager
from repro.errors import ExternalSystemError
from repro.external.http import ExternalService
from repro.operators.base import Services
from repro.sim.core import Environment
from repro.sim.rng import derive_seed


class NaiveServices(Services):
    """Baseline services: honest nondeterminism, nothing logged.

    The RNG is seeded from the wall-clock instant the task (re)started —
    the classic "initialized using the current time" pattern (Section 4.1) —
    so a restarted task draws a different sequence.
    """

    def __init__(
        self,
        env: Environment,
        external: Optional[ExternalService],
        task_name: str,
        root_seed: int = 0,
    ):
        self.env = env
        self.external = external
        self._rng = random.Random(
            derive_seed(root_seed, f"{task_name}@{env.now:.9f}")
        )

    def timestamp(self) -> float:
        return self.env.now

    def random(self) -> float:
        return self._rng.random()

    def http_get(self, key: str):
        if self.external is None:
            raise RuntimeError("no external service configured")
        response = yield from self.external.get(key)
        return response

    def custom(self, name: str, fn: Callable[[Any], Any], argument: Any) -> Any:
        return fn(argument)


class CausalServices(Services):
    """Clonos services: log on the way in, replay on the way out."""

    def __init__(
        self,
        env: Environment,
        causal: CausalLogManager,
        recovery: RecoveryManager,
        external: Optional[ExternalService],
        task_name: str,
        root_seed: int = 0,
        timestamp_granularity: float = 1e-3,
        external_retry=None,
    ):
        self.env = env
        self.causal = causal
        self.recovery = recovery
        self.external = external
        self.task_name = task_name
        self.root_seed = root_seed
        self.granularity = timestamp_granularity
        #: RetryPolicy for transient external-call failures; None = one shot.
        self.external_retry = external_retry
        self._retry_rng = random.Random(
            derive_seed(root_seed, f"{task_name}:external-retry")
        )
        self.external_retries = 0
        self._cached_ts: Optional[float] = None
        self._rng = random.Random(derive_seed(root_seed, f"{task_name}:rng:0"))
        #: Calls answered from the log (for assertions in tests).
        self.replayed_calls = 0
        #: Section 5.4 availability mode: when replay runs out of (or
        #: disagrees with) determinants, fall back to live values instead of
        #: failing — degrading to at-least-once.
        self.availability_mode = False

    # -- timestamp ---------------------------------------------------------------

    def _pop_or_degrade(self, kind: str, match=None):
        """Pop a replay determinant; in availability mode an exhausted or
        mismatching log degrades to live execution instead of failing."""
        from repro.errors import DeterminantLogError

        try:
            return self.recovery.pop_value(kind, match=match)
        except DeterminantLogError:
            if not self.availability_mode:
                raise
            self.recovery.force_finish()
            return None

    def timestamp(self) -> float:
        if self.recovery.active:
            det = self._pop_or_degrade("timestamp")
            if det is not None:
                self.replayed_calls += 1
                self._cached_ts = det.value
                # Rebuild the log so this task can serve future failures.
                self.causal.append_main(det)
                return det.value
        now = self.env.now
        if self._cached_ts is not None and now - self._cached_ts < self.granularity:
            value, fresh = self._cached_ts, False
        else:
            value, fresh = now, True
            self._cached_ts = now
        self.causal.append_main(TimestampDeterminant(value, fresh))
        return value

    # -- random numbers ---------------------------------------------------------------

    def random(self) -> float:
        # Draws consume no determinants: the per-epoch seed determinant makes
        # the whole sequence reproducible (Section 4.2, Random Numbers).
        return self._rng.random()

    def reseed_for_epoch(self, epoch: int) -> None:
        """Called at each epoch boundary under normal operation."""
        seed = derive_seed(self.root_seed, f"{self.task_name}:rng:{epoch}")
        self.causal.append_main(RngSeedDeterminant(seed))
        self._rng.seed(seed)

    def replay_reseed(self) -> None:
        """Called during recovery wherever a seed determinant is due."""
        det = self._pop_or_degrade("rng")
        if det is None:
            self.reseed_for_epoch(self.causal.current_epoch)
            return
        self.replayed_calls += 1
        self.causal.append_main(det)
        self._rng.seed(det.seed)

    # -- external calls ------------------------------------------------------------------

    def http_get(self, key: str):
        if self.recovery.active:
            det = self._pop_or_degrade("http", match=key)
            if det is not None:
                self.replayed_calls += 1
                self.causal.append_main(det)
                return det.response
        if self.external is None:
            raise RuntimeError("no external service configured")
        # Retry transient failures with backoff; only the final, successful
        # response is logged, so the determinant stream stays replay-safe.
        attempt = 0
        while True:
            try:
                response = yield from self.external.get(key)
                break
            except ExternalSystemError:
                policy = self.external_retry
                if policy is None or attempt >= policy.max_attempts - 1:
                    raise
                self.external_retries += 1
                yield self.env.timeout(policy.delay(attempt, self._retry_rng))
                attempt += 1
        self.causal.append_main(ExternalCallDeterminant(key, response))
        return response

    # -- custom user services (Listings 2 & 3) ----------------------------------------------

    def custom(self, name: str, fn: Callable[[Any], Any], argument: Any) -> Any:
        if self.recovery.active:
            det = self._pop_or_degrade("custom", match=name)
            if det is not None:
                self.replayed_calls += 1
                self.causal.append_main(det)
                return det.result
        result = fn(argument)
        self.causal.append_main(CustomDeterminant(name, result))
        return result
