"""Exactly-once output without transactional commits (Section 5.5).

The two classic fixes for the output-commit problem are idempotent sinks
(broken by nondeterminism) and transactional sinks (latency grows by up to a
checkpoint interval — see :class:`repro.operators.sink.TransactionalKafkaSink`).
Clonos' extension: piggyback determinant metadata on the records written to
the downstream system; the downstream system stores it and returns it on
request, letting a recovering sink deduplicate its replayed output *without*
waiting for any checkpoint.

Because Clonos regenerates the sink's input byte-identically, it suffices to
store ``(epoch, seq_in_epoch)`` with each record: on recovery the sink asks
the external system how many records of each epoch it already holds and
skips exactly that many re-appends.  Metadata older than the completed
checkpoint is truncated, as the paper prescribes.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.causal_log import MAIN, LogBundle
from repro.external.kafka import DurableLog
from repro.graph.elements import StreamRecord
from repro.operators.base import Context, Operator
from repro.operators.sink import SinkEntry


class OutputDeterminant:
    """What rides along with each record into the external system."""

    __slots__ = ("task", "epoch", "seq_in_epoch")

    def __init__(self, task: str, epoch: int, seq_in_epoch: int):
        self.task = task
        self.epoch = epoch
        self.seq_in_epoch = seq_in_epoch

    def __repr__(self) -> str:
        return f"OutputDeterminant({self.task}, e{self.epoch}, #{self.seq_in_epoch})"


class ExactlyOnceKafkaSink(Operator):
    """The Section 5.5 sink: immediate appends, exactly-once output.

    Requires Clonos (causal recovery): under any other scheme the replayed
    input would diverge and count-based skipping would be wrong.
    """

    deterministic = False  # interacts with the external world

    def __init__(self, log: DurableLog, topic: str):
        self.log = log
        self.topic = topic
        self._partition_index = 0
        self._epoch = 0
        self._seq_in_epoch = 0
        #: After restore: how many appends per epoch to skip (already stored
        #: by the external system).
        self._skip: Dict[int, int] = {}
        self._restored = False
        self.appended = 0
        self.skipped_duplicates = 0

    def open(self, ctx: Context) -> None:
        n_parts = len(self.log.partitions_of(self.topic))
        self._partition_index = ctx.subtask_index % n_parts
        # Ask the external system what it already holds for epochs >= the
        # current one: those appends will be replayed and must be skipped.
        # Unconditional (not just after restore()): a task that crashes
        # before its first checkpoint recovers with no snapshot at all, so
        # restore() is never called, yet its pre-crash appends are stored.
        store = self._metadata_store()
        self._skip = {
            epoch: len(dets)
            for epoch, dets in store.items()
            if epoch >= self._epoch
        }
        self._restored = False

    def process(self, record: StreamRecord, ctx: Context) -> None:
        if self._skip.get(self._epoch, 0) > 0:
            self._skip[self._epoch] -= 1
            self._seq_in_epoch += 1
            self.skipped_duplicates += 1
            return
        determinant = OutputDeterminant(ctx.task_name, self._epoch, self._seq_in_epoch)
        self._seq_in_epoch += 1
        self.log.append(
            self.topic,
            self._partition_index,
            ctx.now,
            SinkEntry(record.value, record.created_at, record.timestamp),
        )
        # The external system stores the determinant alongside the record.
        self._metadata_store().setdefault(self._epoch, []).append(determinant)
        self.appended += 1
        self._externalize_determinants(ctx)

    def _externalize_determinants(self, ctx: Context) -> None:
        """Piggyback the sink's own causal log into the external system.

        A sink has no downstream task, so nothing in the dataflow holds its
        determinants — without this, a recovering sink replays its input in
        arrival order, which may diverge from the original interleaving and
        make the count-based skip above dedupe the *wrong* records (one
        silent loss + one silent duplicate per swapped pair).  Storing the
        main-log prefix with the records makes the external system the
        determinant holder, exactly as Section 5.5 prescribes.  Copies are
        prefix-idempotent, so replaying incarnations re-store harmlessly.
        """
        causal = getattr(ctx.services, "causal", None)
        if causal is None or not causal.enabled:
            return
        src = causal.bundle.log(MAIN)
        ext = self.log.sink_bundles.get(ctx.task_name)
        if ext is None:
            ext = self.log.sink_bundles[ctx.task_name] = LogBundle()
        dst = ext.log(MAIN)
        for epoch in src.epochs():
            have = dst.length(epoch)
            entries = src.entries(epoch)
            if have < len(entries):
                dst.merge_slice(epoch, have, entries[have:])

    @property
    def output_is_externalized(self) -> bool:
        """True once the external system holds any of this sink's output
        metadata.  The external world then *depends* on the exact event
        order that produced it: regenerating this sink's input without
        determinants would silently break the count-based dedup contract."""
        if self.appended:
            return True
        for index in range(len(self.log.partitions_of(self.topic))):
            partition = self.log.partition(self.topic, index)
            if getattr(partition, "output_determinants", None):
                return True
        return False

    def external_determinant_bundle(self, task_name: str) -> Optional[LogBundle]:
        """Recovery hook: the bundle the external system holds for this sink
        (None if it never externalized anything)."""
        return self.log.sink_bundles.get(task_name)

    def reset_external_dedup(self) -> None:
        """Degraded (global-rollback) restart: replayed input may diverge
        from the original run, so count-based skipping is unsound — clear
        the stored determinants and re-append everything (at-least-once)."""
        for index in range(len(self.log.partitions_of(self.topic))):
            partition = self.log.partition(self.topic, index)
            if hasattr(partition, "output_determinants"):
                partition.output_determinants = {}
        self.log.sink_bundles.clear()
        self._skip = {}

    def _metadata_store(self) -> Dict[int, list]:
        partition = self.log.partition(self.topic, self._partition_index)
        if not hasattr(partition, "output_determinants"):
            partition.output_determinants = {}
        return partition.output_determinants

    def on_barrier(self, checkpoint_id: int, ctx: Context) -> None:
        self._epoch = checkpoint_id
        self._seq_in_epoch = 0

    def on_checkpoint_complete(self, checkpoint_id: int, ctx: Context) -> None:
        # Truncate metadata of epochs covered by the checkpoint (Section 5.5).
        store = self._metadata_store()
        for epoch in [e for e in store if e < checkpoint_id]:
            del store[epoch]
        bundle = self.log.sink_bundles.get(ctx.task_name)
        if bundle is not None:
            bundle.truncate_before(checkpoint_id)

    def snapshot(self) -> dict:
        return {"epoch": self._epoch}

    def restore(self, state: Optional[dict]) -> None:
        self._epoch = state["epoch"] if state else 0
        self._seq_in_epoch = 0
        self._restored = True  # skip counts are fetched in open()
