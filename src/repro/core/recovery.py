"""The per-task recovery manager: determinant-driven replay (Section 5).

When a task recovers, it is handed the determinant bundle its predecessor
replicated downstream.  The manager splits it into:

* a **control sequence** (order / timer / barrier-injection / watermark /
  rpc determinants) that drives the main loop: which channel to consume
  next, when a timer interleaved, where the source cut epochs; and
* **value queues** per service kind (timestamp / http / custom / rng), from
  which the causal services answer calls during replay; and
* the **output-queue logs**, which pre-load each output channel's forced
  buffer cuts so the network threads rebuild byte-identical buffers
  (Section 5.2, concurrent dedup).

When every determinant is consumed the manager flips to inactive and the
task continues in normal operation — seamlessly, mid-stream.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.core.causal_log import MAIN, LogBundle, queue_log_name
from repro.core.determinants import (
    BarrierInjectDeterminant,
    BufferSizeDeterminant,
    CustomDeterminant,
    Determinant,
    ExternalCallDeterminant,
    OrderDeterminant,
    RngSeedDeterminant,
    RpcDeterminant,
    TimerFiredDeterminant,
    TimestampDeterminant,
    WatermarkEmitDeterminant,
)
from repro.analysis.invariants import SANITIZER
from repro.errors import DeterminantLogError

_CONTROL_KINDS = ("order", "timer", "barrier", "watermark", "rpc")
_VALUE_KINDS = ("timestamp", "http", "custom", "rng")


class RecoveryManager:
    """Replays a determinant bundle; inert once (or if never) exhausted."""

    def __init__(self, task_name: str, trace=None, clock=None):
        self.task_name = task_name
        self._control: Deque[Determinant] = deque()
        self._values: Dict[str, Deque[Determinant]] = {
            kind: deque() for kind in _VALUE_KINDS
        }
        self._queue_logs: Dict[int, List[BufferSizeDeterminant]] = {}
        self._active = False
        self._loaded = False
        #: Statistics for the experiments.
        self.replayed_control = 0
        self.replayed_values = 0
        #: Optional repro.trace event bus + ``() -> sim time`` clock
        #: (passive observability only).
        self.trace = trace
        self.clock = clock
        self._nondet_marked = False

    def _emit(self, kind: str, **args) -> None:
        if self.trace is not None and self.clock is not None:
            self.trace.emit(self.clock(), kind, self.task_name, **args)

    @property
    def active(self) -> bool:
        return self._active

    def load(self, bundle: LogBundle, from_epoch: int) -> None:
        """Ingest the retrieved bundle, keeping only epochs >= ``from_epoch``
        (earlier epochs are covered by the restored checkpoint).

        Loading twice would double every determinant and corrupt replay, so
        a second ``load`` (e.g. a duplicated control path under chaos) is an
        error — retried recovery attempts build a *fresh* task and manager.
        """
        if self._loaded:
            raise DeterminantLogError(
                f"{self.task_name}: recovery bundle loaded twice"
            )
        self._loaded = True
        main = bundle.log(MAIN)
        for epoch in main.epochs():
            if epoch < from_epoch:
                continue
            for det in main.entries(epoch):
                if det.kind in _VALUE_KINDS:
                    self._values[det.kind].append(det)
                elif det.kind in _CONTROL_KINDS:
                    self._control.append(det)
                else:
                    raise DeterminantLogError(f"unknown determinant kind {det.kind!r}")
        for name, log in bundle.logs.items():
            if name == MAIN:
                continue
            channel = int(name.split(":", 1)[1])
            cuts: List[BufferSizeDeterminant] = []
            for epoch in log.epochs():
                if epoch < from_epoch:
                    continue
                cuts.extend(log.entries(epoch))
            self._queue_logs[channel] = cuts
        self._active = bool(
            self._control
            or any(self._values[k] for k in _VALUE_KINDS)
            or any(self._queue_logs.values())
        )
        self._emit(
            "replay-loaded",
            control=len(self._control),
            values=sum(len(self._values[k]) for k in _VALUE_KINDS),
        )
        if SANITIZER.enabled:
            # Replay-provenance accounting: everything replay may consume was
            # produced by the original run and retrieved in this bundle.
            SANITIZER.on_replay_loaded(
                self.task_name,
                len(self._control)
                + sum(len(self._values[k]) for k in _VALUE_KINDS),
            )

    # -- control-flow replay ----------------------------------------------------

    def peek_control(self) -> Optional[Determinant]:
        return self._control[0] if self._control else None

    def pop_control(self) -> Determinant:
        if not self._control:
            raise DeterminantLogError("control determinant log exhausted")
        self.replayed_control += 1
        if SANITIZER.enabled:
            SANITIZER.on_replay_consumed(self.task_name)
        det = self._control.popleft()
        self._maybe_finish()
        return det

    # -- value replay ---------------------------------------------------------------

    def pop_value(self, kind: str, match: Optional[str] = None) -> Determinant:
        queue = self._values[kind]
        if not queue:
            raise DeterminantLogError(
                f"{self.task_name}: {kind} determinants exhausted during replay"
            )
        det = queue.popleft()
        if not self._nondet_marked:
            # First replayed nondeterministic value: step 5 of the protocol
            # (value replay) begins here; order-only replay before this point
            # is step 4 (in-flight record replay).
            self._nondet_marked = True
            self._emit("phase-mark", phase="nondeterminism-replay")
        if match is not None:
            actual = det.key if isinstance(det, ExternalCallDeterminant) else getattr(det, "name", None)
            if actual != match:
                raise DeterminantLogError(
                    f"{self.task_name}: replay divergence — expected {kind} "
                    f"determinant for {match!r}, log has {actual!r}"
                )
        self.replayed_values += 1
        if SANITIZER.enabled:
            SANITIZER.on_replay_consumed(self.task_name)
        self._maybe_finish()
        return det

    def has_value(self, kind: str) -> bool:
        return bool(self._values[kind])

    # -- output-queue logs -------------------------------------------------------------

    def forced_cuts_for_channel(self, channel: int) -> List[int]:
        return [det.num_elements for det in self._queue_logs.get(channel, [])]

    def first_replayed_seq(self, channel: int) -> Optional[int]:
        cuts = self._queue_logs.get(channel)
        return cuts[0].seq if cuts else None

    # -- lifecycle ------------------------------------------------------------------------

    def begin(self) -> None:
        self._active = True
        self._maybe_finish()

    def _maybe_finish(self) -> None:
        if self._active and not self._control and not any(
            self._values[k] for k in _VALUE_KINDS
        ):
            self._active = False
            self._emit(
                "replay-exhausted",
                control=self.replayed_control,
                values=self.replayed_values,
            )

    def force_finish(self) -> None:
        """Give up on remaining determinants (divergent / at-least-once)."""
        self._control.clear()
        for queue in self._values.values():
            queue.clear()
        self._active = False
