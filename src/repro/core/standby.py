"""Standby tasks and state-snapshot dispatch (Sections 2.1, 6.3, 6.4).

A standby mirrors a running task: same logic, same placement constraints
machinery, but idle.  After every completed checkpoint the job manager
dispatches the running task's snapshot to its standby; activation waits for
any in-flight transfer, so a standby is never more than one checkpoint
behind.

A standby is itself a process on a node and can crash (node failure, chaos
``standby_loss``) — including *during* activation.  :meth:`fail` models
that: the held snapshot is gone, an in-flight activation raises
:class:`~repro.errors.RecoveryError`, and the recovery supervisor escalates
to a fresh deployment from the DFS checkpoint.
"""

from __future__ import annotations

from typing import Optional

from repro.config import CostModel
from repro.errors import IntegrityError, RecoveryError
from repro.integrity.monitor import IntegrityMonitor
from repro.sim.core import Environment
from repro.state.snapshot import TaskSnapshot


class StandbyState:
    """The standby side of one task: last received snapshot + transfer state."""

    def __init__(
        self,
        env: Environment,
        cost: CostModel,
        task_name: str,
        node_id: int,
        monitor: Optional[IntegrityMonitor] = None,
        trace=None,
    ):
        self.env = env
        self.cost = cost
        self.task_name = task_name
        #: Cluster node hosting the standby (anti-affinity decided at
        #: placement time, Section 6.3).
        self.node_id = node_id
        self.monitor = monitor
        #: Optional repro.trace event bus (passive observability only).
        self.trace = trace
        self.snapshot: Optional[TaskSnapshot] = None
        self._transfer_done = None  # event while a dispatch is in flight
        self.transfers_received = 0
        self.failed = False
        self._fail_event = None  # event while an activation is waiting

    @property
    def usable(self) -> bool:
        """Whether the fast-path activation can use this standby."""
        return not self.failed and self.snapshot is not None

    def fail(self) -> None:
        """The standby process crashed: its in-memory state is lost."""
        if self.failed:
            return
        self.failed = True
        self.snapshot = None
        if self.trace is not None:
            self.trace.emit(self.env.now, "standby-lost", self.task_name)
        if self._fail_event is not None:
            event, self._fail_event = self._fail_event, None
            event.succeed()

    def dispatch(self, snapshot: TaskSnapshot):
        """Generator: ship ``snapshot`` to the standby over the network.

        Bound by checkpoint frequency in practice (Section 6.4): the caller
        (checkpoint coordinator) never overlaps two dispatches for one task.
        """
        self._transfer_done = self.env.event()
        if self.trace is not None:
            self.trace.emit(
                self.env.now,
                "standby-transfer-begin",
                self.task_name,
                checkpoint_id=snapshot.checkpoint_id,
            )
        try:
            yield self.env.timeout(self.cost.transmission_time(snapshot.size_bytes))
            if not self.failed:
                self.snapshot = snapshot
                self.transfers_received += 1
                if self.trace is not None:
                    self.trace.emit(
                        self.env.now,
                        "standby-transfer-done",
                        self.task_name,
                        checkpoint_id=snapshot.checkpoint_id,
                    )
        finally:
            done, self._transfer_done = self._transfer_done, None
            done.succeed()

    def wait_ready(self):
        """Generator: if a transfer is in flight, wait for it (Section 6.4:
        activation waits for the transfer to complete).  Raises
        :class:`RecoveryError` if the standby crashed — before or *during*
        the wait."""
        if self.failed:
            raise RecoveryError(f"standby for {self.task_name} has failed")
        if self._transfer_done is not None:
            self._fail_event = self.env.event()
            yield self.env.any_of([self._transfer_done, self._fail_event])
            self._fail_event = None
        if self.failed:
            raise RecoveryError(
                f"standby for {self.task_name} crashed during activation"
            )
        # No snapshot (no checkpoint completed yet) is fine: activation
        # proceeds with empty state.
        if (
            self.snapshot is not None
            and self.monitor is not None
            and self.monitor.validate
        ):
            # Installing a corrupt image would silently fork the task's
            # state; a failed check escalates to the DFS checkpoint instead.
            try:
                self.snapshot.verify(artifact="standby-image")
            except IntegrityError as exc:
                self.monitor.record_failure(exc.artifact, exc.name, str(exc))
                raise
            self.monitor.record_ok("standby-image")
        return self.snapshot

    @property
    def checkpoint_id(self) -> Optional[int]:
        return self.snapshot.checkpoint_id if self.snapshot is not None else None
